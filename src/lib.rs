#![forbid(unsafe_code)]
#![warn(missing_docs)]

//! # fragdb — fragments and agents for high availability
//!
//! A from-scratch Rust implementation of
//! *Garcia-Molina & Kogan, "Achieving High Availability in Distributed
//! Databases"* (Princeton CS-TR-043-86 / ICDE 1987): a replicated
//! database divided into disjoint **fragments**, each updatable only by
//! its token-holding **agent**, with updates propagated everywhere as
//! write-only **quasi-transactions** over a reliable FIFO broadcast.
//! Depending on how reads and agent movement are restricted, the same
//! mechanism yields global serializability, **fragmentwise
//! serializability**, or plain mutual consistency — a whole spectrum of
//! correctness/availability trade-offs (the paper's Figure 1.1).
//!
//! ## Quick start
//!
//! ```
//! use fragdb::core::{Submission, System, SystemConfig};
//! use fragdb::model::{AgentId, FragmentCatalog, NodeId, Value};
//! use fragdb::net::Topology;
//! use fragdb::sim::{SimDuration, SimTime};
//!
//! // A 3-node network and one fragment owned by node 0.
//! let mut catalog = FragmentCatalog::builder();
//! let (frag, objs) = catalog.add_fragment("COUNTERS", 1);
//! let mut sys = System::build(
//!     Topology::full_mesh(3, SimDuration::from_millis(10)),
//!     catalog.build(),
//!     vec![(frag, AgentId::Node(NodeId(0)), NodeId(0))],
//!     SystemConfig::unrestricted(42),
//! )
//! .unwrap();
//!
//! // The agent increments its counter; the update reaches every replica.
//! let obj = objs[0];
//! sys.submit_at(
//!     SimTime::from_secs(1),
//!     Submission::update(frag, Box::new(move |ctx| {
//!         let v = ctx.read_int(obj, 0);
//!         ctx.write(obj, v + 1)?;
//!         Ok(())
//!     })),
//! );
//! sys.run_until(SimTime::from_secs(10));
//! for node in 0..3 {
//!     assert_eq!(sys.replica(NodeId(node)).read(obj), &Value::Int(1));
//! }
//! assert!(fragdb::graphs::analyze(&sys.history).globally_serializable);
//! ```
//!
//! ## Crate map
//!
//! | re-export | contents |
//! |-----------|----------|
//! | [`sim`] | deterministic discrete-event kernel (clock, engine, RNG, metrics) |
//! | [`model`] | fragments, agents, tokens, transactions, executed histories |
//! | [`net`] | topology, partitions, store-and-forward transport, FIFO broadcast |
//! | [`storage`] | per-node replicas, WAL, lock manager |
//! | [`graphs`] | read-access / serialization graphs and all checkers |
//! | [`core`] | the fragments-and-agents engine: strategies §4.1–4.3, movement §4.4 |
//! | [`check`] | static admission analysis (`FDB0xx` diagnostics) over declared configs |
//! | [`alloc`] | telemetry-driven fragment allocator: placement, migration, shrink (§6) |
//! | [`mc`] | bounded exhaustive model checker + counterexample witnesses |
//! | [`baselines`] | mutual exclusion and log transformation (§1) |
//! | [`workloads`] | banking, warehouse, airline applications + generators |
//! | [`harness`] | experiments E1–E10 regenerating the paper's figures |

pub use fragdb_alloc as alloc;
pub use fragdb_baselines as baselines;
pub use fragdb_check as check;
pub use fragdb_core as core;
pub use fragdb_graphs as graphs;
pub use fragdb_harness as harness;
pub use fragdb_mc as mc;
pub use fragdb_model as model;
pub use fragdb_net as net;
pub use fragdb_obs as obs;
pub use fragdb_sim as sim;
pub use fragdb_storage as storage;
pub use fragdb_workloads as workloads;
