//! Chaos property tests for the §3.2 broadcast stack: random
//! drop/duplicate/reorder schedules must never break per-sender FIFO
//! processing, lose a message, or leak a duplicate to the application.
//!
//! Implemented as seeded randomized loops over [`SimRng`] (same style as
//! `proptest_net.rs`) so the suite builds with no external dependencies;
//! every case is reproducible from the printed seed.
//!
//! Two layers are attacked:
//!
//! 1. [`BroadcastLayer::accept`] directly, against an adversarial
//!    scheduler that duplicates and arbitrarily reorders arrivals;
//! 2. the full stack — `BroadcastLayer` stamping over [`ReliableNet`]
//!    with random per-link fault plans — driven by a miniature event
//!    loop.

use std::collections::BTreeMap;

use fragdb_model::NodeId;
use fragdb_net::{
    BroadcastLayer, FaultConfig, FaultPlan, NetAction, ReliableNet, RetransmitTimer, Topology,
};
use fragdb_sim::{SimDuration, SimRng, SimTime};

fn n(i: u32) -> NodeId {
    NodeId(i)
}

fn shuffle<T>(rng: &mut SimRng, xs: &mut [T]) {
    for i in (1..xs.len()).rev() {
        let j = rng.gen_range(0..i + 1);
        xs.swap(i, j);
    }
}

/// An adversarial scheduler feeds every stamped message to `accept` in a
/// random order, with every message presented 1–3 times (duplication).
/// Whatever the schedule: each receiver processes each sender's stream
/// exactly once, in stamp order — nothing lost, nothing duplicated, and
/// at quiescence nothing still held back.
#[test]
fn random_reorder_and_duplication_never_break_fifo() {
    for case in 0..256u64 {
        let mut rng = SimRng::new(0xB_CA57_0000 + case);
        let nodes = rng.gen_range(2..6u32);
        let msgs_per_sender = rng.gen_range(1..40u64);

        // Stamp: every sender broadcasts `msgs_per_sender` messages to all
        // other nodes. Payload identifies (sender, k).
        let mut layer: BroadcastLayer<(u32, u64)> = BroadcastLayer::new();
        let mut arrivals: Vec<(NodeId, NodeId, u64, (u32, u64))> = Vec::new();
        for s in 0..nodes {
            for k in 0..msgs_per_sender {
                for r in 0..nodes {
                    if r == s {
                        continue;
                    }
                    let seq = layer.stamp_for(n(s), n(r));
                    arrivals.push((n(r), n(s), seq, (s, k)));
                }
            }
        }

        // Duplicate each arrival 1-3 times, then shuffle the lot.
        let mut schedule: Vec<(NodeId, NodeId, u64, (u32, u64))> = Vec::new();
        for a in &arrivals {
            for _ in 0..rng.gen_range(1..4u32) {
                schedule.push(*a);
            }
        }
        shuffle(&mut rng, &mut schedule);

        let mut processed: BTreeMap<(NodeId, NodeId), Vec<u64>> = BTreeMap::new();
        for (recv, send, seq, payload) in schedule {
            for (_, (s, k)) in layer.accept(recv, send, seq, payload) {
                assert_eq!(s, send.0, "case {case}: payload from wrong sender");
                processed.entry((recv, send)).or_default().push(k);
            }
        }

        // Exactly once, in send order, on every (receiver, sender) stream.
        for s in 0..nodes {
            for r in 0..nodes {
                if r == s {
                    continue;
                }
                let got = processed.get(&(n(r), n(s))).cloned().unwrap_or_default();
                let want: Vec<u64> = (0..msgs_per_sender).collect();
                assert_eq!(got, want, "case {case}: stream {s}->{r} broken");
            }
        }
        assert_eq!(layer.held_back(), 0, "case {case}: messages stuck");
    }
}

/// Miniature event loop driving `BroadcastLayer` stamping over a
/// `ReliableNet` with random faults — the same composition the `System`
/// uses. Payloads carry their broadcast stamp; the loop runs `accept` on
/// every released delivery.
/// `(broadcast stamp, (sender, k))` — the wire message of the chaos loop.
type Wire = (u64, (u32, u64));

struct ChaosLoop {
    net: ReliableNet<Wire>,
    layer: BroadcastLayer<(u32, u64)>,
    rng: SimRng,
    queue: BTreeMap<(SimTime, u64), NetAction<Wire>>,
    seq: u64,
    processed: BTreeMap<(NodeId, NodeId), Vec<u64>>,
    /// `Timer` actions handed to the loop by the reliable layer (armed)
    /// vs fed back through `on_timer` (fired). Conservation — armed ==
    /// fired at quiescence — is the wheel-ops hygiene law: a timer that
    /// never fires is a leak in the caller's wheel, and a firing that was
    /// never armed is a phantom.
    timers_armed: u64,
    timers_fired: u64,
    /// Every timer ever armed, for the stale-replay hygiene test.
    timer_log: Vec<RetransmitTimer>,
}

impl ChaosLoop {
    fn new(net: ReliableNet<Wire>, seed: u64) -> Self {
        ChaosLoop {
            net,
            layer: BroadcastLayer::new(),
            rng: SimRng::new(seed),
            queue: BTreeMap::new(),
            seq: 0,
            processed: BTreeMap::new(),
            timers_armed: 0,
            timers_fired: 0,
            timer_log: Vec::new(),
        }
    }

    fn push(&mut self, actions: Vec<NetAction<Wire>>) {
        for a in actions {
            let at = match &a {
                NetAction::Deliver(t, _) => *t,
                NetAction::Timer(t, tm) => {
                    self.timers_armed += 1;
                    self.timer_log.push(*tm);
                    *t
                }
            };
            self.queue.insert((at, self.seq), a);
            self.seq += 1;
        }
    }

    fn broadcast(&mut self, now: SimTime, from: NodeId, payload: (u32, u64), nodes: u32) {
        for r in 0..nodes {
            if n(r) == from {
                continue;
            }
            let bseq = self.layer.stamp_for(from, n(r));
            let acts = self
                .net
                .send(now, from, n(r), (bseq, payload), &mut self.rng);
            self.push(acts);
        }
    }

    fn run(&mut self, limit: SimTime) {
        while let Some((&(at, s), _)) = self.queue.iter().next() {
            if at > limit {
                break;
            }
            let action = self.queue.remove(&(at, s)).unwrap();
            match action {
                NetAction::Deliver(_, pd) => {
                    let (rel, acts) = self.net.on_packet(at, pd, &mut self.rng);
                    for d in rel {
                        let (bseq, payload) = d.msg;
                        for (_, (snd, k)) in self.layer.accept(d.to, d.from, bseq, payload) {
                            assert_eq!(snd, d.from.0);
                            self.processed.entry((d.to, d.from)).or_default().push(k);
                        }
                    }
                    self.push(acts);
                }
                NetAction::Timer(_, t) => {
                    self.timers_fired += 1;
                    let acts = self.net.on_timer(at, t, &mut self.rng);
                    self.push(acts);
                }
            }
        }
    }
}

fn random_plan(rng: &mut SimRng) -> FaultPlan {
    FaultPlan::new(
        rng.gen_range(0..35u64) as f64 / 100.0,
        rng.gen_range(0..35u64) as f64 / 100.0,
        SimDuration::from_millis(rng.gen_range(0..60u64)),
    )
}

/// Broadcasts through the full faulty stack: whatever the random fault
/// plan (loss + duplication + reordering jitter), every stream is
/// processed exactly once in send order once the retransmission loops
/// drain.
#[test]
fn faulty_stack_preserves_fifo_exactly_once() {
    for case in 0..24u64 {
        let mut rng = SimRng::new(0xB_CA57_1000 + case);
        let nodes = rng.gen_range(2..5u32);
        let msgs_per_sender = rng.gen_range(1..20u64);
        let plan = random_plan(&mut rng);

        let net = ReliableNet::new(Topology::full_mesh(nodes, SimDuration::from_millis(10)))
            .with_faults(FaultConfig::uniform(plan));
        let mut l = ChaosLoop::new(net, 0xB_CA57_2000 + case);
        for k in 0..msgs_per_sender {
            for s in 0..nodes {
                let at = SimTime::from_millis(k * 40 + s as u64);
                l.broadcast(at, n(s), (s, k), nodes);
            }
        }
        l.run(SimTime::from_secs(3_600));

        for s in 0..nodes {
            for r in 0..nodes {
                if r == s {
                    continue;
                }
                let got = l.processed.get(&(n(r), n(s))).cloned().unwrap_or_default();
                let want: Vec<u64> = (0..msgs_per_sender).collect();
                assert_eq!(
                    got, want,
                    "case {case} (plan {plan:?}): stream {s}->{r} broken"
                );
            }
        }
        assert_eq!(l.net.pending_count(), 0, "case {case}: unacked packets");
        assert_eq!(l.layer.held_back(), 0, "case {case}: messages stuck");
        // Timer conservation: the loop drained, so every retransmission
        // timer the layer armed must have fired exactly once — a deficit
        // is a leaked wheel entry, a surplus a phantom firing.
        assert_eq!(
            l.timers_armed, l.timers_fired,
            "case {case}: timers armed != timers fired at quiescence"
        );
    }
}

/// Timer hygiene: once every window has drained, re-firing any timer the
/// layer ever armed is a generation-checked no-op — no retransmissions,
/// no new actions, no stat movement. A regression here means a stale
/// timer can resurrect acked traffic or re-arm itself forever.
#[test]
fn stale_timers_are_no_ops_after_quiescence() {
    let mut rng = SimRng::new(0xB_CA57_4000);
    let plan = random_plan(&mut rng);
    let net = ReliableNet::new(Topology::full_mesh(3, SimDuration::from_millis(10)))
        .with_faults(FaultConfig::uniform(plan));
    let mut l = ChaosLoop::new(net, 0xB_CA57_4001);
    for k in 0..10u64 {
        for s in 0..3u32 {
            l.broadcast(SimTime::from_millis(k * 30 + s as u64), n(s), (s, k), 3);
        }
    }
    l.run(SimTime::from_secs(3_600));
    assert_eq!(l.net.pending_count(), 0, "loop must quiesce first");
    assert!(!l.timer_log.is_empty(), "the plan must have armed timers");

    let before = l.net.stats();
    let late = SimTime::from_secs(7_200);
    for &t in &l.timer_log {
        let acts = l.net.on_timer(late, t, &mut l.rng);
        assert!(
            acts.is_empty(),
            "stale timer {t:?} produced actions after quiescence"
        );
    }
    let after = l.net.stats();
    assert_eq!(
        before.retransmissions, after.retransmissions,
        "stale timers must not retransmit"
    );
    assert_eq!(
        before.transmissions, after.transmissions,
        "stale timers must not put packets on the wire"
    );
}

/// Chaos runs are deterministic: the same seed yields byte-identical
/// processing logs and fault statistics.
#[test]
fn same_seed_identical_chaos_run() {
    let run = |seed: u64| {
        let mut rng = SimRng::new(seed);
        let plan = random_plan(&mut rng);
        let net = ReliableNet::new(Topology::full_mesh(3, SimDuration::from_millis(10)))
            .with_faults(FaultConfig::uniform(plan));
        let mut l = ChaosLoop::new(net, seed ^ 0xFEED);
        for k in 0..15u64 {
            for s in 0..3u32 {
                l.broadcast(SimTime::from_millis(k * 30 + s as u64), n(s), (s, k), 3);
            }
        }
        l.run(SimTime::from_secs(3_600));
        (l.processed, l.net.stats())
    };
    let (p1, s1) = run(0xB_CA57_3000);
    let (p2, s2) = run(0xB_CA57_3000);
    assert_eq!(p1, p2);
    assert_eq!(s1.retransmissions, s2.retransmissions);
    assert_eq!(s1.fault_dropped, s2.fault_dropped);
    assert_eq!(s1.dup_dropped, s2.dup_dropped);
}
