//! Property tests for the network substrate: eventual delivery and FIFO
//! under arbitrary link-flap/send interleavings.
//!
//! Implemented as seeded randomized loops over [`SimRng`] rather than a
//! proptest harness so the suite builds with no external dependencies;
//! every case is reproducible from the printed seed.

use fragdb_model::NodeId;
use fragdb_net::{NetworkChange, Topology, Transport};
use fragdb_sim::{SimDuration, SimRng, SimTime};

/// One step of a randomized transport scenario.
#[derive(Debug, Clone)]
enum Step {
    Send { from: u32, to: u32, tag: u64 },
    LinkDown { a: u32, b: u32 },
    LinkUp { a: u32, b: u32 },
}

fn random_steps(rng: &mut SimRng, n: u32, count: usize) -> Vec<Step> {
    let mut steps = Vec::with_capacity(count);
    while steps.len() < count {
        let a = rng.gen_range(0..n);
        let b = rng.gen_range(0..n);
        if a == b {
            continue;
        }
        steps.push(match rng.gen_range(0..3u32) {
            0 => Step::Send {
                from: a,
                to: b,
                tag: rng.next_u64(),
            },
            1 => Step::LinkDown { a, b },
            _ => Step::LinkUp { a, b },
        });
    }
    steps
}

/// Whatever the interleaving of sends and link flaps, once all links
/// heal every message is delivered exactly once, and per ordered pair
/// the delivery order equals the send order with strictly increasing
/// delivery times.
#[test]
fn transport_delivers_everything_after_heal() {
    for case in 0..128u64 {
        let mut rng = SimRng::new(0x4E45_5400 + case);
        let count = rng.gen_range(1..80);
        let steps = random_steps(&mut rng, 4, count);

        let mut transport: Transport<u64> =
            Transport::new(Topology::full_mesh(4, SimDuration::from_millis(5)));
        let mut now = SimTime::ZERO;
        let mut sent: std::collections::BTreeMap<(NodeId, NodeId), Vec<u64>> = Default::default();
        let mut delivered: Vec<(SimTime, NodeId, NodeId, u64)> = Vec::new();

        for step in &steps {
            now += SimDuration::from_millis(1);
            match *step {
                Step::Send { from, to, tag } => {
                    let (f, t) = (NodeId(from), NodeId(to));
                    sent.entry((f, t)).or_default().push(tag);
                    if let Some((at, d)) = transport.send(now, f, t, tag) {
                        delivered.push((at, d.from, d.to, d.msg));
                    }
                }
                Step::LinkDown { a, b } => {
                    let released =
                        transport.apply_change(now, &NetworkChange::LinkDown(NodeId(a), NodeId(b)));
                    for (at, d) in released {
                        delivered.push((at, d.from, d.to, d.msg));
                    }
                }
                Step::LinkUp { a, b } => {
                    let released =
                        transport.apply_change(now, &NetworkChange::LinkUp(NodeId(a), NodeId(b)));
                    for (at, d) in released {
                        delivered.push((at, d.from, d.to, d.msg));
                    }
                }
            }
        }
        // Heal everything: all parked messages must be released.
        now += SimDuration::from_millis(1);
        for (at, d) in transport.apply_change(now, &NetworkChange::HealAll) {
            delivered.push((at, d.from, d.to, d.msg));
        }
        assert_eq!(
            transport.queued_count(),
            0,
            "case {case}: nothing may stay parked"
        );

        // Exactly-once, order-preserving per pair.
        let mut got: std::collections::BTreeMap<(NodeId, NodeId), Vec<(SimTime, u64)>> =
            Default::default();
        for (at, f, t, tag) in delivered {
            got.entry((f, t)).or_default().push((at, tag));
        }
        for (pair, tags) in &sent {
            let deliveries = got.get(pair).cloned().unwrap_or_default();
            let tag_order: Vec<u64> = deliveries.iter().map(|(_, t)| *t).collect();
            assert_eq!(
                &tag_order, tags,
                "case {case}: pair {pair:?} reordered or lost"
            );
            for w in deliveries.windows(2) {
                assert!(
                    w[0].0 < w[1].0,
                    "case {case}: delivery times must strictly increase"
                );
            }
        }
        let total_sent: usize = sent.values().map(Vec::len).sum();
        let total_got: usize = got.values().map(Vec::len).sum();
        assert_eq!(total_sent, total_got, "case {case}");
    }
}

/// Components always partition the node set (every node in exactly one
/// component), whatever the link state.
#[test]
fn components_partition_the_nodes() {
    for case in 0..128u64 {
        let mut rng = SimRng::new(0x434F_4D50 + case);
        let topo = Topology::full_mesh(5, SimDuration::from_millis(1));
        let mut transport: Transport<u8> = Transport::new(topo);
        let mut now = SimTime::ZERO;
        for _ in 0..rng.gen_range(0..12usize) {
            let a = rng.gen_range(0..5u32);
            let b = rng.gen_range(0..5u32);
            if a != b {
                now += SimDuration::from_millis(1);
                transport.apply_change(now, &NetworkChange::LinkDown(NodeId(a), NodeId(b)));
            }
        }
        let comps = transport.components();
        let mut seen = std::collections::BTreeSet::new();
        for comp in &comps {
            for &n in comp {
                assert!(seen.insert(n), "case {case}: node {n} in two components");
            }
        }
        assert_eq!(seen.len(), 5, "case {case}");
        // Connectivity is consistent with the components.
        for comp in &comps {
            for &a in comp {
                for &b in comp {
                    assert!(transport.connected(a, b), "case {case}");
                }
            }
        }
    }
}
