//! Property tests for the network substrate: eventual delivery and FIFO
//! under arbitrary link-flap/send interleavings.

use proptest::prelude::*;

use fragdb_model::NodeId;
use fragdb_net::{NetworkChange, Topology, Transport};
use fragdb_sim::{SimDuration, SimTime};

/// One step of a randomized transport scenario.
#[derive(Debug, Clone)]
enum Step {
    Send { from: u32, to: u32, tag: u64 },
    LinkDown { a: u32, b: u32 },
    LinkUp { a: u32, b: u32 },
}

fn step_strategy(n: u32) -> impl Strategy<Value = Step> {
    prop_oneof![
        (0..n, 0..n, any::<u64>()).prop_filter_map("no loopback", |(from, to, tag)| {
            (from != to).then_some(Step::Send { from, to, tag })
        }),
        (0..n, 0..n).prop_filter_map("no self-link", |(a, b)| {
            (a != b).then_some(Step::LinkDown { a, b })
        }),
        (0..n, 0..n).prop_filter_map("no self-link", |(a, b)| {
            (a != b).then_some(Step::LinkUp { a, b })
        }),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    /// Whatever the interleaving of sends and link flaps, once all links
    /// heal every message is delivered exactly once, and per ordered pair
    /// the delivery order equals the send order with strictly increasing
    /// delivery times.
    #[test]
    fn transport_delivers_everything_after_heal(
        steps in proptest::collection::vec(step_strategy(4), 1..80),
    ) {
        let mut transport: Transport<u64> =
            Transport::new(Topology::full_mesh(4, SimDuration::from_millis(5)));
        let mut now = SimTime::ZERO;
        let mut sent: std::collections::BTreeMap<(NodeId, NodeId), Vec<u64>> = Default::default();
        let mut delivered: Vec<(SimTime, NodeId, NodeId, u64)> = Vec::new();

        for step in &steps {
            now += SimDuration::from_millis(1);
            match *step {
                Step::Send { from, to, tag } => {
                    let (f, t) = (NodeId(from), NodeId(to));
                    sent.entry((f, t)).or_default().push(tag);
                    if let Some((at, d)) = transport.send(now, f, t, tag) {
                        delivered.push((at, d.from, d.to, d.msg));
                    }
                }
                Step::LinkDown { a, b } => {
                    let released =
                        transport.apply_change(now, &NetworkChange::LinkDown(NodeId(a), NodeId(b)));
                    for (at, d) in released {
                        delivered.push((at, d.from, d.to, d.msg));
                    }
                }
                Step::LinkUp { a, b } => {
                    let released =
                        transport.apply_change(now, &NetworkChange::LinkUp(NodeId(a), NodeId(b)));
                    for (at, d) in released {
                        delivered.push((at, d.from, d.to, d.msg));
                    }
                }
            }
        }
        // Heal everything: all parked messages must be released.
        now += SimDuration::from_millis(1);
        for (at, d) in transport.apply_change(now, &NetworkChange::HealAll) {
            delivered.push((at, d.from, d.to, d.msg));
        }
        prop_assert_eq!(transport.queued_count(), 0, "nothing may stay parked");

        // Exactly-once, order-preserving per pair.
        let mut got: std::collections::BTreeMap<(NodeId, NodeId), Vec<(SimTime, u64)>> =
            Default::default();
        for (at, f, t, tag) in delivered {
            got.entry((f, t)).or_default().push((at, tag));
        }
        for (pair, tags) in &sent {
            let deliveries = got.get(pair).cloned().unwrap_or_default();
            let tag_order: Vec<u64> = deliveries.iter().map(|(_, t)| *t).collect();
            prop_assert_eq!(&tag_order, tags, "pair {:?} reordered or lost", pair);
            for w in deliveries.windows(2) {
                prop_assert!(w[0].0 < w[1].0, "delivery times must strictly increase");
            }
        }
        let total_sent: usize = sent.values().map(Vec::len).sum();
        let total_got: usize = got.values().map(Vec::len).sum();
        prop_assert_eq!(total_sent, total_got);
    }

    /// Components always partition the node set (every node in exactly one
    /// component), whatever the link state.
    #[test]
    fn components_partition_the_nodes(
        downs in proptest::collection::vec((0u32..5, 0u32..5), 0..12),
    ) {
        let topo = Topology::full_mesh(5, SimDuration::from_millis(1));
        let mut transport: Transport<u8> = Transport::new(topo);
        let mut now = SimTime::ZERO;
        for (a, b) in downs {
            if a != b {
                now += SimDuration::from_millis(1);
                transport.apply_change(now, &NetworkChange::LinkDown(NodeId(a), NodeId(b)));
            }
        }
        let comps = transport.components();
        let mut seen = std::collections::BTreeSet::new();
        for comp in &comps {
            for &n in comp {
                prop_assert!(seen.insert(n), "node {n} in two components");
            }
        }
        prop_assert_eq!(seen.len(), 5);
        // Connectivity is consistent with the components.
        for comp in &comps {
            for &a in comp {
                for &b in comp {
                    prop_assert!(transport.connected(a, b));
                }
            }
        }
    }
}
