//! Reliable FIFO broadcast (§3.2).
//!
//! The paper requires a broadcast mechanism in which
//!
//! 1. all messages are eventually delivered, and
//! 2. messages broadcast by one node are *processed* at all other nodes in
//!    the order they were sent.
//!
//! (1) is provided by the store-and-forward [`Transport`]. (2) is enforced
//! here: every broadcast carries a per-sender sequence number, and each
//! receiver keeps a **hold-back queue** per sender, releasing messages to
//! the application strictly in sequence order. Duplicates (possible under
//! retransmission schemes) are dropped.
//!
//! The layer is transport-agnostic: [`BroadcastLayer::stamp`] allocates the
//! sequence number, the caller fans the stamped message out over whatever
//! channel it likes, and [`BroadcastLayer::accept`] runs the hold-back
//! logic at the receiver.
//!
//! [`Transport`]: crate::transport::Transport

use std::collections::BTreeMap;

use fragdb_model::NodeId;
use serde::{Deserialize, Serialize};

/// A stamped broadcast message, ready to fan out.
#[derive(Clone, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct BcastMsg<M> {
    /// Broadcasting node.
    pub from: NodeId,
    /// Per-sender sequence number, dense from 0.
    pub seq: u64,
    /// Application payload.
    pub payload: M,
}

/// Per-sender stamping and per-receiver FIFO hold-back state.
#[derive(Clone, Debug, Default)]
pub struct BroadcastLayer<M> {
    /// Next sequence number to assign, per sender.
    next_seq: BTreeMap<NodeId, u64>,
    /// Next sequence number to assign, per `(sender, receiver)` pair.
    pair_seq: BTreeMap<(NodeId, NodeId), u64>,
    /// Next sequence expected, per `(receiver, sender)`.
    next_expected: BTreeMap<(NodeId, NodeId), u64>,
    /// Out-of-order arrivals awaiting their predecessors, per
    /// `(receiver, sender)`, keyed by sequence number.
    holdback: BTreeMap<(NodeId, NodeId), BTreeMap<u64, M>>,
    /// Duplicate messages dropped.
    duplicates: u64,
}

impl<M> BroadcastLayer<M> {
    /// Fresh layer with no history.
    pub fn new() -> Self {
        BroadcastLayer {
            next_seq: BTreeMap::new(),
            pair_seq: BTreeMap::new(),
            next_expected: BTreeMap::new(),
            holdback: BTreeMap::new(),
            duplicates: 0,
        }
    }

    /// Allocate the next sequence number for a broadcast by `from`,
    /// shared by every receiver. Use only when the message goes to ALL
    /// other nodes; for subset fan-out (partial replication) use
    /// [`BroadcastLayer::stamp_for`], or the skipped receivers' hold-back
    /// queues will stall forever waiting for sequence numbers they never
    /// get.
    pub fn stamp(&mut self, from: NodeId) -> u64 {
        let seq = self.next_seq.entry(from).or_insert(0);
        let s = *seq;
        *seq += 1;
        s
    }

    /// Allocate the next sequence number for the ordered pair
    /// `(from, to)`. Receivers key their hold-back by `(receiver, sender)`,
    /// so per-pair streams deliver the same per-sender FIFO guarantee while
    /// allowing each message to go to any subset of receivers.
    pub fn stamp_for(&mut self, from: NodeId, to: NodeId) -> u64 {
        let seq = self.pair_seq.entry((from, to)).or_insert(0);
        let s = *seq;
        *seq += 1;
        s
    }

    /// Sequence number the next `stamp(from)` would return.
    pub fn peek_seq(&self, from: NodeId) -> u64 {
        self.next_seq.get(&from).copied().unwrap_or(0)
    }

    /// Process an arrival of `(sender, seq, payload)` at `receiver`.
    ///
    /// Returns the messages now processable at `receiver` from `sender`, in
    /// strict sequence order. The arrival itself is included when it is the
    /// next expected one; otherwise it is held back and an empty vec is
    /// returned. Duplicates are dropped.
    pub fn accept(
        &mut self,
        receiver: NodeId,
        sender: NodeId,
        seq: u64,
        payload: M,
    ) -> Vec<(u64, M)> {
        let key = (receiver, sender);
        let expected = self.next_expected.entry(key).or_insert(0);
        if seq < *expected {
            self.duplicates += 1;
            return Vec::new();
        }
        let slot = self.holdback.entry(key).or_default();
        if slot.insert(seq, payload).is_some() {
            // Same seq already waiting: duplicate; the newer copy replaced
            // the older identical one, which is harmless.
            self.duplicates += 1;
        }
        let mut ready = Vec::new();
        while let Some(msg) = slot.remove(expected) {
            ready.push((*expected, msg));
            *expected += 1;
        }
        ready
    }

    /// Number of messages held back across all `(receiver, sender)` pairs.
    pub fn held_back(&self) -> usize {
        self.holdback.values().map(BTreeMap::len).sum()
    }

    /// Messages held back at `receiver` from `sender`.
    pub fn held_back_for(&self, receiver: NodeId, sender: NodeId) -> usize {
        self.holdback
            .get(&(receiver, sender))
            .map_or(0, BTreeMap::len)
    }

    /// Next sequence `receiver` expects from `sender`.
    pub fn expected(&self, receiver: NodeId, sender: NodeId) -> u64 {
        self.next_expected
            .get(&(receiver, sender))
            .copied()
            .unwrap_or(0)
    }

    /// Count of dropped duplicates.
    pub fn duplicates(&self) -> u64 {
        self.duplicates
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn n(i: u32) -> NodeId {
        NodeId(i)
    }

    #[test]
    fn stamp_is_dense_per_sender() {
        let mut b: BroadcastLayer<&str> = BroadcastLayer::new();
        assert_eq!(b.stamp(n(0)), 0);
        assert_eq!(b.stamp(n(0)), 1);
        assert_eq!(b.stamp(n(1)), 0);
        assert_eq!(b.peek_seq(n(0)), 2);
        assert_eq!(b.peek_seq(n(2)), 0);
    }

    #[test]
    fn in_order_arrivals_release_immediately() {
        let mut b = BroadcastLayer::new();
        assert_eq!(b.accept(n(1), n(0), 0, "a"), vec![(0, "a")]);
        assert_eq!(b.accept(n(1), n(0), 1, "b"), vec![(1, "b")]);
        assert_eq!(b.expected(n(1), n(0)), 2);
    }

    #[test]
    fn out_of_order_arrival_is_held_back() {
        let mut b = BroadcastLayer::new();
        assert!(b.accept(n(1), n(0), 2, "c").is_empty());
        assert!(b.accept(n(1), n(0), 1, "b").is_empty());
        assert_eq!(b.held_back_for(n(1), n(0)), 2);
        // Seq 0 arrives: the whole prefix is released, in order.
        assert_eq!(
            b.accept(n(1), n(0), 0, "a"),
            vec![(0, "a"), (1, "b"), (2, "c")]
        );
        assert_eq!(b.held_back(), 0);
    }

    #[test]
    fn duplicates_are_dropped() {
        let mut b = BroadcastLayer::new();
        b.accept(n(1), n(0), 0, "a");
        assert!(b.accept(n(1), n(0), 0, "a").is_empty());
        assert_eq!(b.duplicates(), 1);
        // Duplicate of a held-back message.
        b.accept(n(1), n(0), 5, "f");
        b.accept(n(1), n(0), 5, "f");
        assert_eq!(b.duplicates(), 2);
        assert_eq!(b.held_back_for(n(1), n(0)), 1);
    }

    #[test]
    fn per_sender_streams_are_independent() {
        let mut b = BroadcastLayer::new();
        assert!(b.accept(n(2), n(0), 1, "x").is_empty());
        // A different sender's seq 0 is unaffected by sender 0's gap.
        assert_eq!(b.accept(n(2), n(1), 0, "y"), vec![(0, "y")]);
    }

    #[test]
    fn per_receiver_streams_are_independent() {
        let mut b = BroadcastLayer::new();
        assert_eq!(b.accept(n(1), n(0), 0, "a"), vec![(0, "a")]);
        // Receiver 2 hasn't seen seq 0 yet.
        assert!(b.accept(n(2), n(0), 1, "b").is_empty());
        assert_eq!(b.accept(n(2), n(0), 0, "a"), vec![(0, "a"), (1, "b")]);
    }

    #[test]
    fn large_gap_then_fill() {
        let mut b = BroadcastLayer::new();
        for seq in (1..100u64).rev() {
            assert!(b.accept(n(1), n(0), seq, seq).is_empty());
        }
        let released = b.accept(n(1), n(0), 0, 0);
        assert_eq!(released.len(), 100);
        let seqs: Vec<u64> = released.iter().map(|(s, _)| *s).collect();
        assert_eq!(seqs, (0..100).collect::<Vec<_>>());
    }
}
