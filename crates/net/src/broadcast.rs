//! Reliable FIFO broadcast (§3.2).
//!
//! The paper requires a broadcast mechanism in which
//!
//! 1. all messages are eventually delivered, and
//! 2. messages broadcast by one node are *processed* at all other nodes in
//!    the order they were sent.
//!
//! (1) is provided by the transport underneath (the store-and-forward
//! [`Transport`], or [`ReliableNet`] when links are lossy). (2) is enforced
//! here: every broadcast carries a per-`(sender, receiver)` sequence
//! number, and each receiver keeps a **hold-back queue** per sender,
//! releasing messages to the application strictly in sequence order.
//! Duplicates (possible under retransmission schemes) are dropped.
//!
//! Sequencing is per ordered pair rather than per sender so that a message
//! may go to any *subset* of receivers (partial replication) without
//! stalling the skipped receivers' hold-back queues on sequence numbers
//! they will never see. An earlier revision also offered a per-sender
//! counter (`stamp`); mixing the two fed the same `(receiver, sender)`
//! hold-back key from two independent counters, silently dropping live
//! messages as "duplicates" — that path is gone, [`stamp_for`] is the only
//! way to allocate a sequence number.
//!
//! The layer is transport-agnostic: [`stamp_for`] allocates the sequence
//! number, the caller fans the stamped message out over whatever channel it
//! likes, and [`BroadcastLayer::accept`] runs the hold-back logic at the
//! receiver. [`resync_node`] re-synchronizes both directions of a node's
//! streams after a crash, abstracting the recovery handshake of a real
//! deployment.
//!
//! [`Transport`]: crate::transport::Transport
//! [`ReliableNet`]: crate::reliable::ReliableNet
//! [`stamp_for`]: BroadcastLayer::stamp_for
//! [`resync_node`]: BroadcastLayer::resync_node

use std::collections::BTreeMap;

use fragdb_model::NodeId;

/// Per-pair stamping and per-receiver FIFO hold-back state.
#[derive(Clone, Debug, Default)]
pub struct BroadcastLayer<M> {
    /// Next sequence number to assign, per `(sender, receiver)` pair.
    pair_seq: BTreeMap<(NodeId, NodeId), u64>,
    /// Next sequence expected, per `(receiver, sender)`.
    next_expected: BTreeMap<(NodeId, NodeId), u64>,
    /// Out-of-order arrivals awaiting their predecessors, per
    /// `(receiver, sender)`, keyed by sequence number.
    holdback: BTreeMap<(NodeId, NodeId), BTreeMap<u64, M>>,
    /// Duplicate messages dropped.
    duplicates: u64,
}

impl<M> BroadcastLayer<M> {
    /// Fresh layer with no history.
    pub fn new() -> Self {
        BroadcastLayer {
            pair_seq: BTreeMap::new(),
            next_expected: BTreeMap::new(),
            holdback: BTreeMap::new(),
            duplicates: 0,
        }
    }

    /// Allocate the next sequence number for the ordered pair
    /// `(from, to)`. Receivers key their hold-back by `(receiver, sender)`,
    /// so per-pair streams deliver the same per-sender FIFO guarantee while
    /// allowing each message to go to any subset of receivers.
    pub fn stamp_for(&mut self, from: NodeId, to: NodeId) -> u64 {
        let seq = self.pair_seq.entry((from, to)).or_insert(0);
        let s = *seq;
        *seq += 1;
        s
    }

    /// Process an arrival of `(sender, seq, payload)` at `receiver`.
    ///
    /// Returns the messages now processable at `receiver` from `sender`, in
    /// strict sequence order. The arrival itself is included when it is the
    /// next expected one; otherwise it is held back and an empty vec is
    /// returned. Duplicates are dropped.
    pub fn accept(
        &mut self,
        receiver: NodeId,
        sender: NodeId,
        seq: u64,
        payload: M,
    ) -> Vec<(u64, M)> {
        let key = (receiver, sender);
        let expected = self.next_expected.entry(key).or_insert(0);
        if seq < *expected {
            self.duplicates += 1;
            return Vec::new();
        }
        let slot = self.holdback.entry(key).or_default();
        if slot.insert(seq, payload).is_some() {
            // Same seq already waiting: duplicate; the newer copy replaced
            // the older identical one, which is harmless.
            self.duplicates += 1;
        }
        let mut ready = Vec::new();
        while let Some(msg) = slot.remove(expected) {
            ready.push((*expected, msg));
            *expected += 1;
        }
        ready
    }

    /// Re-synchronize every stream touching `node` after it crashed and
    /// lost its volatile broadcast state.
    ///
    /// Both directions are cut over to "now": the recovering node expects
    /// from each peer exactly what that peer will stamp next, and each peer
    /// expects from the recovering node what it will stamp next. Hold-back
    /// queues on both sides are discarded — anything unprocessed there (and
    /// any pre-crash message still in flight, which necessarily carries a
    /// stamp below the cut) is dropped as stale on arrival, and its
    /// *content* is recovered out-of-band via WAL replay and the
    /// `SeqQuery` anti-entropy path. This models the sequence-number
    /// handshake a real recovery protocol would run, compressed to an
    /// instant (safe here because every in-flight stamp is strictly below
    /// the cut).
    pub fn resync_node(&mut self, node: NodeId) {
        let peers: std::collections::BTreeSet<NodeId> = self
            .pair_seq
            .keys()
            .chain(self.next_expected.keys())
            .flat_map(|&(a, b)| [a, b])
            .filter(|&n| n != node)
            .collect();
        for &p in &peers {
            // node's inbound stream from p.
            let inbound = self.pair_seq.get(&(p, node)).copied().unwrap_or(0);
            self.next_expected.insert((node, p), inbound);
            self.holdback.remove(&(node, p));
            // p's inbound stream from node.
            let outbound = self.pair_seq.get(&(node, p)).copied().unwrap_or(0);
            self.next_expected.insert((p, node), outbound);
            self.holdback.remove(&(p, node));
        }
    }

    /// Number of messages held back across all `(receiver, sender)` pairs.
    pub fn held_back(&self) -> usize {
        self.holdback.values().map(BTreeMap::len).sum()
    }

    /// Messages held back at `receiver` from `sender`.
    pub fn held_back_for(&self, receiver: NodeId, sender: NodeId) -> usize {
        self.holdback
            .get(&(receiver, sender))
            .map_or(0, BTreeMap::len)
    }

    /// Next sequence `receiver` expects from `sender`.
    pub fn expected(&self, receiver: NodeId, sender: NodeId) -> u64 {
        self.next_expected
            .get(&(receiver, sender))
            .copied()
            .unwrap_or(0)
    }

    /// Count of dropped duplicates.
    pub fn duplicates(&self) -> u64 {
        self.duplicates
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn n(i: u32) -> NodeId {
        NodeId(i)
    }

    #[test]
    fn stamp_for_is_dense_per_pair() {
        let mut b: BroadcastLayer<&str> = BroadcastLayer::new();
        assert_eq!(b.stamp_for(n(0), n(1)), 0);
        assert_eq!(b.stamp_for(n(0), n(1)), 1);
        assert_eq!(b.stamp_for(n(0), n(2)), 0);
        assert_eq!(b.stamp_for(n(1), n(0)), 0);
    }

    #[test]
    fn in_order_arrivals_release_immediately() {
        let mut b = BroadcastLayer::new();
        assert_eq!(b.accept(n(1), n(0), 0, "a"), vec![(0, "a")]);
        assert_eq!(b.accept(n(1), n(0), 1, "b"), vec![(1, "b")]);
        assert_eq!(b.expected(n(1), n(0)), 2);
    }

    #[test]
    fn out_of_order_arrival_is_held_back() {
        let mut b = BroadcastLayer::new();
        assert!(b.accept(n(1), n(0), 2, "c").is_empty());
        assert!(b.accept(n(1), n(0), 1, "b").is_empty());
        assert_eq!(b.held_back_for(n(1), n(0)), 2);
        // Seq 0 arrives: the whole prefix is released, in order.
        assert_eq!(
            b.accept(n(1), n(0), 0, "a"),
            vec![(0, "a"), (1, "b"), (2, "c")]
        );
        assert_eq!(b.held_back(), 0);
    }

    #[test]
    fn duplicates_are_dropped() {
        let mut b = BroadcastLayer::new();
        b.accept(n(1), n(0), 0, "a");
        assert!(b.accept(n(1), n(0), 0, "a").is_empty());
        assert_eq!(b.duplicates(), 1);
        // Duplicate of a held-back message.
        b.accept(n(1), n(0), 5, "f");
        b.accept(n(1), n(0), 5, "f");
        assert_eq!(b.duplicates(), 2);
        assert_eq!(b.held_back_for(n(1), n(0)), 1);
    }

    #[test]
    fn per_sender_streams_are_independent() {
        let mut b = BroadcastLayer::new();
        assert!(b.accept(n(2), n(0), 1, "x").is_empty());
        // A different sender's seq 0 is unaffected by sender 0's gap.
        assert_eq!(b.accept(n(2), n(1), 0, "y"), vec![(0, "y")]);
    }

    #[test]
    fn per_receiver_streams_are_independent() {
        let mut b = BroadcastLayer::new();
        assert_eq!(b.accept(n(1), n(0), 0, "a"), vec![(0, "a")]);
        // Receiver 2 hasn't seen seq 0 yet.
        assert!(b.accept(n(2), n(0), 1, "b").is_empty());
        assert_eq!(b.accept(n(2), n(0), 0, "a"), vec![(0, "a"), (1, "b")]);
    }

    #[test]
    fn large_gap_then_fill() {
        let mut b = BroadcastLayer::new();
        for seq in (1..100u64).rev() {
            assert!(b.accept(n(1), n(0), seq, seq).is_empty());
        }
        let released = b.accept(n(1), n(0), 0, 0);
        assert_eq!(released.len(), 100);
        let seqs: Vec<u64> = released.iter().map(|(s, _)| *s).collect();
        assert_eq!(seqs, (0..100).collect::<Vec<_>>());
    }

    /// Regression for the seq-collision footgun: the removed per-sender
    /// `stamp` counter and `stamp_for` both fed the same
    /// `(receiver, sender)` hold-back key, so mixing them dropped live
    /// messages as duplicates. With per-pair stamping only, subset fan-out
    /// followed by full fan-out releases every message exactly once.
    #[test]
    fn subset_then_full_fanout_loses_nothing() {
        let mut b: BroadcastLayer<u64> = BroadcastLayer::new();
        let sender = n(0);
        let sub = [n(1)]; // partial-replication style subset
        let all = [n(1), n(2)];
        let mut released: BTreeMap<NodeId, Vec<u64>> = BTreeMap::new();
        // Message 100 goes only to node 1; message 200 goes to everyone.
        for &to in &sub {
            let seq = b.stamp_for(sender, to);
            for (_, m) in b.accept(to, sender, seq, 100) {
                released.entry(to).or_default().push(m);
            }
        }
        for &to in &all {
            let seq = b.stamp_for(sender, to);
            for (_, m) in b.accept(to, sender, seq, 200) {
                released.entry(to).or_default().push(m);
            }
        }
        // Node 1 sees both, in order; node 2 sees only the second — and
        // crucially nothing was dropped as a duplicate.
        assert_eq!(released[&n(1)], vec![100, 200]);
        assert_eq!(released[&n(2)], vec![200]);
        assert_eq!(b.duplicates(), 0);
    }

    #[test]
    fn resync_cuts_both_directions() {
        let mut b: BroadcastLayer<&str> = BroadcastLayer::new();
        // Node 0 sends seqs 0..3 to node 1; only 0 and 1 get processed,
        // 3 sits in the hold-back (2 "lost in flight").
        for (seq, msg) in [(0, "a"), (1, "b")] {
            b.stamp_for(n(0), n(1));
            b.accept(n(1), n(0), seq, msg);
        }
        b.stamp_for(n(0), n(1)); // seq 2, in flight
        let seq3 = b.stamp_for(n(0), n(1));
        b.accept(n(1), n(0), seq3, "d");
        assert_eq!(b.held_back_for(n(1), n(0)), 1);
        // Node 1 also had sent one message to node 0.
        let s = b.stamp_for(n(1), n(0));
        b.accept(n(0), n(1), s, "x");

        // Node 1 crashes and recovers: both directions cut to "now".
        b.resync_node(n(1));
        assert_eq!(b.held_back_for(n(1), n(0)), 0);
        assert_eq!(b.expected(n(1), n(0)), 4); // node 0 stamped 4 so far
        assert_eq!(b.expected(n(0), n(1)), 1); // node 1 stamped 1 so far

        // The in-flight pre-crash seq 2 now arrives: dropped as stale.
        assert!(b.accept(n(1), n(0), 2, "c").is_empty());
        assert_eq!(b.duplicates(), 1);
        // Fresh post-recovery traffic flows normally in both directions.
        let s = b.stamp_for(n(0), n(1));
        assert_eq!(b.accept(n(1), n(0), s, "e"), vec![(4, "e")]);
        let s = b.stamp_for(n(1), n(0));
        assert_eq!(b.accept(n(0), n(1), s, "y"), vec![(1, "y")]);
    }
}
