#![forbid(unsafe_code)]
#![warn(missing_docs)]

//! Simulated communication substrate.
//!
//! §3.1 assumes "a point-to-point communication network of arbitrary
//! topology"; §3.2 requires a **reliable broadcast mechanism** in which
//! (1) all messages are eventually delivered and (2) messages broadcast by
//! one node are processed at every other node in the order sent. This crate
//! provides both, on top of the deterministic simulation kernel:
//!
//! * [`topology`] — the static link graph with per-link delays.
//! * [`linkstate`] — which links are currently severed.
//! * [`partition`] — timed schedules of partition/heal events.
//! * [`transport`] — store-and-forward point-to-point delivery: a message
//!   is delivered (after shortest-path delay) iff sender and receiver are
//!   in the same connected component; otherwise it waits in the sender's
//!   outbox and is released, in order, when connectivity returns. This is
//!   the standard model of a routed network with retransmission.
//! * [`broadcast`] — per-sender sequence numbers plus per-receiver
//!   hold-back queues, yielding exactly the paper's two requirements even
//!   if the transport were to reorder.
//! * [`fault`] — per-link fault plans: drop/duplication probabilities and
//!   reordering jitter, as pure data sampled by the reliable layer.
//! * [`reliable`] — ack/retransmit point-to-point delivery that *earns*
//!   eventual, exactly-once, per-pair-FIFO delivery under injected loss,
//!   duplication, and reordering, instead of assuming it.
//! * [`detector`] — deterministic heartbeat failure detection: each node's
//!   local view of peer liveness, feeding the quorum election that
//!   replaces the paper's manual post-failure operator hooks.
//!
//! The crate is engine-agnostic: methods take the current [`SimTime`] and
//! return `(deliver_at, Delivery)` pairs (or [`reliable::NetAction`]s) for
//! the caller to schedule, so any event-loop owner (fragdb-core, the
//! baselines, tests) can drive it.
//!
//! [`SimTime`]: fragdb_sim::SimTime

pub mod broadcast;
pub mod detector;
pub mod fault;
pub mod linkstate;
pub mod partition;
pub mod reliable;
pub mod topology;
pub mod transport;

pub use broadcast::BroadcastLayer;
pub use detector::FailureDetector;
pub use fault::{FaultConfig, FaultPlan};
pub use linkstate::LinkState;
pub use partition::{NetworkChange, PartitionSchedule};
pub use reliable::{
    NetAction, Pkt, PktDelivery, ReliableNet, ReliableStats, RetransmitConfig, RetransmitTimer,
};
pub use topology::{RouteCache, Topology};
pub use transport::{Delivery, Transport, TransportStats};
