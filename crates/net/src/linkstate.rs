//! Dynamic link state: which links are currently severed.
//!
//! A [`LinkState`] is a set of *down* links over some topology. Higher
//! layers mutate it through [`crate::partition::NetworkChange`] events; the
//! topology consults it for routing.

use std::collections::BTreeSet;

use fragdb_model::NodeId;

use crate::topology::canon;

/// The set of currently-severed links (empty = everything up).
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct LinkState {
    down: BTreeSet<(NodeId, NodeId)>,
}

impl LinkState {
    /// All links operational.
    pub fn all_up() -> Self {
        LinkState::default()
    }

    /// Is the (undirected) link `a`–`b` down?
    pub fn is_down(&self, a: NodeId, b: NodeId) -> bool {
        self.down.contains(&canon(a, b))
    }

    /// Sever link `a`–`b`. Idempotent. Returns `true` if the state changed.
    pub fn fail(&mut self, a: NodeId, b: NodeId) -> bool {
        self.down.insert(canon(a, b))
    }

    /// Restore link `a`–`b`. Idempotent. Returns `true` if the state changed.
    pub fn heal(&mut self, a: NodeId, b: NodeId) -> bool {
        self.down.remove(&canon(a, b))
    }

    /// Restore every link.
    pub fn heal_all(&mut self) {
        self.down.clear();
    }

    /// Sever every link whose endpoints fall in different groups. Links
    /// inside a group, and links touching nodes not mentioned in any group,
    /// are left as they are.
    pub fn split(&mut self, groups: &[Vec<NodeId>]) {
        for (i, ga) in groups.iter().enumerate() {
            for gb in groups.iter().skip(i + 1) {
                for &a in ga {
                    for &b in gb {
                        self.fail(a, b);
                    }
                }
            }
        }
    }

    /// Number of down links.
    pub fn down_count(&self) -> usize {
        self.down.len()
    }

    /// Iterate over down links.
    pub fn down_links(&self) -> impl Iterator<Item = (NodeId, NodeId)> + '_ {
        self.down.iter().copied()
    }

    /// True if no link is down.
    pub fn is_fully_up(&self) -> bool {
        self.down.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn n(i: u32) -> NodeId {
        NodeId(i)
    }

    #[test]
    fn fail_and_heal_are_symmetric_and_idempotent() {
        let mut s = LinkState::all_up();
        assert!(s.fail(n(2), n(1)));
        assert!(!s.fail(n(1), n(2)), "second fail is a no-op");
        assert!(s.is_down(n(1), n(2)));
        assert!(s.is_down(n(2), n(1)));
        assert!(s.heal(n(1), n(2)));
        assert!(!s.heal(n(2), n(1)));
        assert!(s.is_fully_up());
    }

    #[test]
    fn split_cuts_only_cross_group_links() {
        let mut s = LinkState::all_up();
        s.split(&[vec![n(0), n(1)], vec![n(2), n(3)]]);
        assert!(s.is_down(n(0), n(2)));
        assert!(s.is_down(n(0), n(3)));
        assert!(s.is_down(n(1), n(2)));
        assert!(s.is_down(n(1), n(3)));
        assert!(!s.is_down(n(0), n(1)));
        assert!(!s.is_down(n(2), n(3)));
        assert_eq!(s.down_count(), 4);
    }

    #[test]
    fn three_way_split() {
        let mut s = LinkState::all_up();
        s.split(&[vec![n(0)], vec![n(1)], vec![n(2)]]);
        assert_eq!(s.down_count(), 3);
        for (a, b) in [(0, 1), (0, 2), (1, 2)] {
            assert!(s.is_down(n(a), n(b)));
        }
    }

    #[test]
    fn heal_all_restores_everything() {
        let mut s = LinkState::all_up();
        s.split(&[vec![n(0)], vec![n(1), n(2)]]);
        assert!(!s.is_fully_up());
        s.heal_all();
        assert!(s.is_fully_up());
        assert_eq!(s.down_links().count(), 0);
    }

    #[test]
    fn split_leaves_unmentioned_nodes_alone() {
        let mut s = LinkState::all_up();
        s.split(&[vec![n(0)], vec![n(1)]]);
        assert!(!s.is_down(n(0), n(5)));
        assert!(!s.is_down(n(1), n(5)));
    }
}
