//! Ack/retransmit point-to-point delivery over faulty links.
//!
//! [`Transport`] realizes §3.2's "all messages are eventually delivered"
//! *by construction*: nothing is ever lost, parked messages wait out the
//! partition. [`ReliableNet`] earns the same guarantee the way a real
//! network stack does — every application message becomes a numbered
//! `Data` packet that stays in the sender's window until covered by a
//! **cumulative ack** (`Ack { upto }` acknowledges every id below `upto`,
//! and the same watermark piggybacks on reverse-direction `Data` when
//! there is any). One retransmission timer per ordered link — not per
//! packet — re-sends the whole unacked window (go-back-N) with capped
//! exponential backoff. Between retransmission and the receiver's
//! in-order reassembly buffer, the layer delivers every message **exactly
//! once, in per-pair send order**, under any mix of:
//!
//! * message loss ([`FaultPlan::drop`]), including total loss while the
//!   pair is partitioned (an unreachable destination just counts as a
//!   dropped attempt);
//! * duplication ([`FaultPlan::dup`]) — receiver-side id tracking drops
//!   the copies;
//! * reordering ([`FaultPlan::jitter`]) — per-packet extra delay lets
//!   packets overtake on the wire; the reassembly buffer re-sequences.
//!
//! Ack compression: the receiver sends a standalone ack only when its
//! in-order watermark *advances* or when a stale (already-covered) packet
//! arrives — an out-of-order packet parked in the reassembly buffer is
//! not acked (the ack that eventually closes the gap covers it). This is
//! safe because the sender's per-link timer stays armed while anything is
//! unacked, and every retransmission of the window includes its lowest
//! outstanding id, whose arrival always triggers an ack that clears at
//! least that packet (see DESIGN.md §3f for the full argument).
//!
//! The layer is engine-agnostic like the rest of the crate: methods return
//! [`NetAction`]s (future packet arrivals and retransmission timers) that
//! the caller schedules on its own event loop, and packet arrivals are fed
//! back through [`ReliableNet::on_packet`]. All randomness comes from the
//! caller's seeded RNG, so runs are reproducible.
//!
//! Crash semantics: [`crash`] forgets the unacked sends of a dead node
//! (its volatile send buffer); [`resync_node`] — called at *recovery* —
//! cuts both directions of every stream touching the node to "now", so
//! packets stamped before recovery drain as duplicates (stale arrivals
//! still draw a cumulative ack, which clears the senders' whole windows
//! at once and stops their retransmit timers) and fresh traffic flows.
//! Message *content* lost to the crash is the application's to repair
//! (WAL replay + anti-entropy).
//!
//! [`Transport`]: crate::transport::Transport
//! [`FaultPlan::drop`]: crate::fault::FaultPlan
//! [`FaultPlan::dup`]: crate::fault::FaultPlan
//! [`FaultPlan::jitter`]: crate::fault::FaultPlan
//! [`crash`]: ReliableNet::crash
//! [`resync_node`]: ReliableNet::resync_node

use std::collections::BTreeMap;

use fragdb_model::NodeId;
use fragdb_sim::{SimDuration, SimRng, SimTime};

use crate::fault::FaultConfig;
use crate::linkstate::LinkState;
use crate::partition::NetworkChange;
use crate::topology::{RouteCache, Topology};
use crate::transport::Delivery;

/// A packet on the wire.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum Pkt<M> {
    /// An application message, numbered densely per ordered node pair.
    Data {
        /// Per-pair packet id.
        id: u64,
        /// Piggybacked cumulative ack for the *reverse* stream: the sender
        /// has released every id below this from the receiver. `None` when
        /// the reverse stream has never delivered anything.
        ack: Option<u64>,
        /// The application payload.
        msg: M,
    },
    /// Cumulative acknowledgment: every `Data` id below `upto` (for the
    /// stream flowing toward this packet's sender) is acknowledged.
    Ack {
        /// One past the highest id released in order by the receiver.
        upto: u64,
    },
}

/// A packet due to arrive.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct PktDelivery<M> {
    /// Transmitting node.
    pub from: NodeId,
    /// Destination node.
    pub to: NodeId,
    /// The packet.
    pub pkt: Pkt<M>,
}

/// A pending retransmission check for one ordered link. There is at most
/// one *live* timer per `(from, to)` pair; `gen` invalidates timers that
/// outlived the window they guarded (the window fully drained and a new
/// one started).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct RetransmitTimer {
    /// Original sender.
    pub from: NodeId,
    /// Destination.
    pub to: NodeId,
    /// Window generation the timer was armed for.
    pub gen: u64,
}

/// Something the caller must schedule on its event loop.
#[derive(Clone, Debug)]
pub enum NetAction<M> {
    /// A packet arrives at the given time.
    Deliver(SimTime, PktDelivery<M>),
    /// A retransmission timer fires at the given time; feed it back through
    /// [`ReliableNet::on_timer`].
    Timer(SimTime, RetransmitTimer),
}

/// Retransmission timing knobs.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct RetransmitConfig {
    /// Delay before the first retransmission of an unacked packet.
    pub rto: SimDuration,
    /// Cap on the exponentially backed-off retransmission interval. Also
    /// bounds how long after a partition heals a blocked packet gets
    /// through.
    pub max_rto: SimDuration,
}

impl Default for RetransmitConfig {
    fn default() -> Self {
        RetransmitConfig {
            rto: SimDuration::from_millis(200),
            max_rto: SimDuration::from_millis(3_200),
        }
    }
}

/// Counters describing reliable-layer activity.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct ReliableStats {
    /// Application messages handed to `send`.
    pub sent: u64,
    /// Data packets put on the wire (first transmissions + retransmissions
    /// + fault duplicates).
    pub transmissions: u64,
    /// Timer-driven retransmissions of unacked packets.
    pub retransmissions: u64,
    /// Transmission attempts lost to an injected drop fault.
    pub fault_dropped: u64,
    /// Transmission attempts duplicated by an injected dup fault.
    pub fault_duplicated: u64,
    /// Transmission attempts lost because no route existed (partition).
    pub unreachable: u64,
    /// Application messages released to the caller (exactly once each).
    pub delivered: u64,
    /// Data packets discarded by the receiver as duplicates or stale.
    pub dup_dropped: u64,
    /// Standalone cumulative `Ack` packets put on the wire.
    pub acks_sent: u64,
    /// Arrivals that would have drawn a per-packet ack under the old
    /// scheme but were absorbed by ack compression (out-of-order packets
    /// parked in the reassembly buffer).
    pub acks_suppressed: u64,
    /// `Data` transmissions that carried a piggybacked cumulative ack for
    /// the reverse stream.
    pub acks_piggybacked: u64,
    /// Cumulative-ack applications (standalone or piggybacked) that
    /// cleared at least one pending packet from a sender window.
    pub cumulative_acks: u64,
}

/// Sender-side retransmission control for one ordered link.
#[derive(Clone, Copy, Debug, Default)]
struct SendCtl {
    /// Window generation; bumped when the window drains so a still-
    /// scheduled timer from the old window becomes a no-op.
    gen: u64,
    /// Consecutive timer firings without ack progress (drives backoff).
    attempt: u32,
    /// Is a timer currently scheduled for this generation?
    armed: bool,
}

/// Reliable, in-order, exactly-once point-to-point delivery with
/// deterministic fault injection.
#[derive(Debug)]
pub struct ReliableNet<M> {
    topo: Topology,
    state: LinkState,
    faults: FaultConfig,
    rcfg: RetransmitConfig,
    /// Next packet id per ordered `(from, to)` pair. Survives crashes
    /// (conceptually re-negotiated by the recovery handshake).
    next_id: BTreeMap<(NodeId, NodeId), u64>,
    /// Sender-side unacked packets per ordered `(from, to)` pair. Volatile.
    pending: BTreeMap<(NodeId, NodeId), BTreeMap<u64, M>>,
    /// Per-link retransmission state (one timer per ordered pair).
    ctl: BTreeMap<(NodeId, NodeId), SendCtl>,
    /// Memoized shortest-path delays for the current link state.
    routes: RouteCache,
    /// Receiver-side next id to release, per `(receiver, sender)`. Volatile.
    expected: BTreeMap<(NodeId, NodeId), u64>,
    /// Receiver-side reassembly buffer, per `(receiver, sender)`. Volatile.
    inbuf: BTreeMap<(NodeId, NodeId), BTreeMap<u64, M>>,
    /// Last scheduled arrival per ordered pair — keeps jitter-free links
    /// FIFO on the wire, matching [`Transport`]'s timing.
    ///
    /// [`Transport`]: crate::transport::Transport
    last_sched: BTreeMap<(NodeId, NodeId), SimTime>,
    stats: ReliableStats,
}

impl<M: Clone> ReliableNet<M> {
    /// Build over a topology with all links up and no faults.
    pub fn new(topo: Topology) -> Self {
        ReliableNet {
            topo,
            state: LinkState::all_up(),
            faults: FaultConfig::clean(),
            rcfg: RetransmitConfig::default(),
            next_id: BTreeMap::new(),
            pending: BTreeMap::new(),
            ctl: BTreeMap::new(),
            routes: RouteCache::new(),
            expected: BTreeMap::new(),
            inbuf: BTreeMap::new(),
            last_sched: BTreeMap::new(),
            stats: ReliableStats::default(),
        }
    }

    /// Install a fault configuration (builder form).
    pub fn with_faults(mut self, faults: FaultConfig) -> Self {
        self.faults = faults;
        self
    }

    /// Install retransmission timing (builder form).
    pub fn with_retransmit(mut self, rcfg: RetransmitConfig) -> Self {
        self.rcfg = rcfg;
        self
    }

    /// The static topology.
    pub fn topology(&self) -> &Topology {
        &self.topo
    }

    /// The live link state.
    pub fn link_state(&self) -> &LinkState {
        &self.state
    }

    /// The active fault configuration.
    pub fn faults(&self) -> &FaultConfig {
        &self.faults
    }

    /// Are two nodes currently in the same connected component?
    pub fn connected(&self, a: NodeId, b: NodeId) -> bool {
        self.topo.connected(a, b, &self.state)
    }

    /// Current partition groups.
    pub fn components(&self) -> Vec<std::collections::BTreeSet<NodeId>> {
        self.topo.components(&self.state)
    }

    /// Activity counters.
    pub fn stats(&self) -> ReliableStats {
        self.stats
    }

    /// Application messages accepted but not yet acknowledged.
    pub fn pending_count(&self) -> usize {
        self.pending.values().map(BTreeMap::len).sum()
    }

    /// Apply a network change. Unlike [`Transport`], nothing is parked and
    /// so nothing is released: blocked packets simply fail their
    /// transmission attempts and get through on a later retransmission.
    ///
    /// [`Transport`]: crate::transport::Transport
    pub fn apply_change(&mut self, change: &NetworkChange) {
        change.apply(&mut self.state);
        self.routes.invalidate();
    }

    /// Put one packet on the wire, rolling the link's fault dice.
    fn transmit(
        &mut self,
        now: SimTime,
        from: NodeId,
        to: NodeId,
        pkt: Pkt<M>,
        rng: &mut SimRng,
        out: &mut Vec<NetAction<M>>,
    ) {
        let plan = self.faults.plan_for(from, to);
        let Some(base) = self.routes.path_delay(&self.topo, &self.state, from, to) else {
            self.stats.unreachable += 1;
            return;
        };
        let copies = if plan.dup > 0.0 && rng.chance(plan.dup) {
            self.stats.fault_duplicated += 1;
            2
        } else {
            1
        };
        for _ in 0..copies {
            if plan.drop > 0.0 && rng.chance(plan.drop) {
                self.stats.fault_dropped += 1;
                continue;
            }
            let at = if plan.jitter > SimDuration(0) {
                // Per-packet jitter: packets may overtake — real reordering.
                now + base + SimDuration(rng.gen_range(0..=plan.jitter.0))
            } else {
                // Jitter-free links stay FIFO on the wire, like Transport.
                let candidate = now + base;
                let pair = (from, to);
                let slot = match self.last_sched.get(&pair) {
                    Some(&last) if candidate <= last => last + SimDuration(1),
                    _ => candidate,
                };
                self.last_sched.insert(pair, slot);
                slot
            };
            out.push(NetAction::Deliver(
                at,
                PktDelivery {
                    from,
                    to,
                    pkt: pkt.clone(),
                },
            ));
        }
    }

    /// The cumulative-ack watermark `from` can piggyback on data to `to`:
    /// one past the highest id released in order from the `to -> from`
    /// stream, or `None` if that stream never delivered anything.
    fn reverse_ack(&self, from: NodeId, to: NodeId) -> Option<u64> {
        self.expected.get(&(from, to)).copied()
    }

    /// Apply a cumulative ack for the stream `sender -> acker`: clear
    /// every pending id below `upto`; on progress reset the backoff, and
    /// when the window fully drains invalidate the link's live timer.
    fn apply_cum_ack(&mut self, sender: NodeId, acker: NodeId, upto: u64) {
        let key = (sender, acker);
        let Some(p) = self.pending.get_mut(&key) else {
            return;
        };
        let keep = p.split_off(&upto);
        let cleared = p.len();
        *p = keep;
        let emptied = p.is_empty();
        if cleared == 0 {
            return;
        }
        self.stats.cumulative_acks += 1;
        let ctl = self.ctl.entry(key).or_default();
        ctl.attempt = 0;
        if emptied {
            self.pending.remove(&key);
            ctl.gen += 1;
            ctl.armed = false;
        }
    }

    /// Capped exponential backoff interval after `attempt` fruitless
    /// timer firings.
    fn backoff(&self, attempt: u32) -> SimDuration {
        let shift = attempt.min(20);
        SimDuration(
            self.rcfg
                .rto
                .0
                .saturating_mul(1u64 << shift)
                .min(self.rcfg.max_rto.0),
        )
    }

    /// Accept an application message for delivery. Returns the actions to
    /// schedule: the initial transmission attempt(s) and — only if the
    /// link had no live timer — one retransmission timer for the link.
    ///
    /// # Panics
    /// Panics if `from == to`; local loopback should not go through the
    /// network.
    pub fn send(
        &mut self,
        now: SimTime,
        from: NodeId,
        to: NodeId,
        msg: M,
        rng: &mut SimRng,
    ) -> Vec<NetAction<M>> {
        assert!(from != to, "loopback send through the network");
        self.stats.sent += 1;
        let id = {
            let next = self.next_id.entry((from, to)).or_insert(0);
            let id = *next;
            *next += 1;
            id
        };
        self.pending
            .entry((from, to))
            .or_default()
            .insert(id, msg.clone());
        // At most the data transmission plus one timer arm.
        let mut out = Vec::with_capacity(2);
        self.stats.transmissions += 1;
        let ack = self.reverse_ack(from, to);
        if ack.is_some() {
            self.stats.acks_piggybacked += 1;
        }
        self.transmit(now, from, to, Pkt::Data { id, ack, msg }, rng, &mut out);
        let ctl = self.ctl.entry((from, to)).or_default();
        if !ctl.armed {
            ctl.armed = true;
            ctl.attempt = 0;
            let gen = ctl.gen;
            out.push(NetAction::Timer(
                now + self.rcfg.rto,
                RetransmitTimer { from, to, gen },
            ));
        }
        out
    }

    /// A link's retransmission timer fired. If the timer's generation is
    /// current and the window is non-empty, the whole unacked window is
    /// retransmitted (go-back-N) and the timer re-armed with doubled
    /// (capped) delay; a stale or empty-window firing is a no-op.
    pub fn on_timer(
        &mut self,
        now: SimTime,
        timer: RetransmitTimer,
        rng: &mut SimRng,
    ) -> Vec<NetAction<M>> {
        let RetransmitTimer { from, to, gen } = timer;
        let key = (from, to);
        match self.ctl.get(&key) {
            Some(ctl) if ctl.gen == gen => {}
            _ => return Vec::new(), // superseded by a drained window
        }
        let window: Vec<(u64, M)> = match self.pending.get(&key) {
            Some(p) if !p.is_empty() => {
                let mut w = Vec::with_capacity(p.len());
                w.extend(p.iter().map(|(&id, m)| (id, m.clone())));
                w
            }
            _ => {
                // Nothing left to guard (e.g. a crash dropped the sends).
                let ctl = self.ctl.get_mut(&key).expect("checked above");
                ctl.armed = false;
                return Vec::new();
            }
        };
        let ctl = self.ctl.get_mut(&key).expect("checked above");
        ctl.attempt += 1;
        let attempt = ctl.attempt;
        // Pre-size for the whole go-back-N window plus the re-armed timer.
        let mut out = Vec::with_capacity(window.len() + 1);
        let ack = self.reverse_ack(from, to);
        for (id, msg) in window {
            self.stats.retransmissions += 1;
            self.stats.transmissions += 1;
            if ack.is_some() {
                self.stats.acks_piggybacked += 1;
            }
            self.transmit(now, from, to, Pkt::Data { id, ack, msg }, rng, &mut out);
        }
        out.push(NetAction::Timer(
            now + self.backoff(attempt),
            RetransmitTimer { from, to, gen },
        ));
        out
    }

    /// A packet arrived. Returns the application messages released (in
    /// per-pair id order, possibly several when a gap closes, possibly none)
    /// and follow-up actions (acks) to schedule.
    pub fn on_packet(
        &mut self,
        now: SimTime,
        d: PktDelivery<M>,
        rng: &mut SimRng,
    ) -> (Vec<Delivery<M>>, Vec<NetAction<M>>) {
        let mut actions = Vec::new();
        let mut released = Vec::new();
        match d.pkt {
            Pkt::Data { id, ack, msg } => {
                if let Some(upto) = ack {
                    // Piggybacked ack for the reverse stream (d.to -> d.from).
                    self.apply_cum_ack(d.to, d.from, upto);
                }
                let key = (d.to, d.from);
                // Decide whether this arrival draws a standalone ack:
                // stale packets always do (so post-resync windows drain),
                // watermark advances do; out-of-order parks are absorbed.
                let ack_upto = {
                    let expected = self.expected.entry(key).or_insert(0);
                    if id < *expected {
                        self.stats.dup_dropped += 1;
                        Some(*expected)
                    } else {
                        let buf = self.inbuf.entry(key).or_default();
                        if buf.insert(id, msg).is_some() {
                            self.stats.dup_dropped += 1;
                        }
                        let before = *expected;
                        while let Some(m) = buf.remove(expected) {
                            self.stats.delivered += 1;
                            released.push(Delivery {
                                from: d.from,
                                to: d.to,
                                msg: m,
                            });
                            *expected += 1;
                        }
                        if *expected > before {
                            Some(*expected)
                        } else {
                            None
                        }
                    }
                };
                match ack_upto {
                    Some(upto) => {
                        self.stats.acks_sent += 1;
                        self.transmit(now, d.to, d.from, Pkt::Ack { upto }, rng, &mut actions);
                    }
                    None => self.stats.acks_suppressed += 1,
                }
            }
            Pkt::Ack { upto } => {
                // The acked stream is (original sender = d.to) -> (acker =
                // d.from).
                self.apply_cum_ack(d.to, d.from, upto);
            }
        }
        (released, actions)
    }

    /// `node` crashed: its volatile send buffer is gone (its links' live
    /// timers fire once more as no-ops and disarm). Packets other nodes
    /// have pending toward it keep retransmitting — they drain via stale
    /// cumulative acks after [`ReliableNet::resync_node`] at recovery.
    pub fn crash(&mut self, node: NodeId) {
        self.pending.retain(|&(from, _), _| from != node);
    }

    /// `node` recovered: cut both directions of every stream touching it
    /// to "now". The node expects from each peer exactly what the peer
    /// will number next (so everything sent to the node before recovery —
    /// including packets a peer is still retransmitting — drains as
    /// acked duplicates), and each peer expects from the node what it will
    /// number next (so ids lost with the node's send buffer leave no
    /// permanent gap). Reassembly buffers on both sides are discarded.
    pub fn resync_node(&mut self, node: NodeId) {
        let peers: std::collections::BTreeSet<NodeId> = self
            .next_id
            .keys()
            .chain(self.expected.keys())
            .flat_map(|&(a, b)| [a, b])
            .filter(|&n| n != node)
            .collect();
        for &p in &peers {
            let inbound = self.next_id.get(&(p, node)).copied().unwrap_or(0);
            self.expected.insert((node, p), inbound);
            self.inbuf.remove(&(node, p));
            let outbound = self.next_id.get(&(node, p)).copied().unwrap_or(0);
            self.expected.insert((p, node), outbound);
            self.inbuf.remove(&(p, node));
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fault::FaultPlan;

    fn n(i: u32) -> NodeId {
        NodeId(i)
    }

    fn ms(x: u64) -> SimDuration {
        SimDuration::from_millis(x)
    }

    /// Tiny deterministic event loop driving one ReliableNet.
    struct Loop<M> {
        net: ReliableNet<M>,
        rng: SimRng,
        queue: BTreeMap<(SimTime, u64), NetAction<M>>,
        seq: u64,
        delivered: Vec<Delivery<M>>,
    }

    impl<M: Clone> Loop<M> {
        fn new(net: ReliableNet<M>, seed: u64) -> Self {
            Loop {
                net,
                rng: SimRng::new(seed),
                queue: BTreeMap::new(),
                seq: 0,
                delivered: Vec::new(),
            }
        }

        fn push(&mut self, actions: Vec<NetAction<M>>) {
            for a in actions {
                let at = match &a {
                    NetAction::Deliver(t, _) => *t,
                    NetAction::Timer(t, _) => *t,
                };
                self.queue.insert((at, self.seq), a);
                self.seq += 1;
            }
        }

        fn send(&mut self, now: SimTime, from: NodeId, to: NodeId, msg: M) {
            let acts = self.net.send(now, from, to, msg, &mut self.rng);
            self.push(acts);
        }

        /// Run until the queue is empty or `limit` is reached.
        fn run(&mut self, limit: SimTime) {
            while let Some((&(at, s), _)) = self.queue.iter().next() {
                if at > limit {
                    break;
                }
                let action = self.queue.remove(&(at, s)).unwrap();
                match action {
                    NetAction::Deliver(_, pd) => {
                        let (rel, acts) = self.net.on_packet(at, pd, &mut self.rng);
                        self.delivered.extend(rel);
                        self.push(acts);
                    }
                    NetAction::Timer(_, t) => {
                        let acts = self.net.on_timer(at, t, &mut self.rng);
                        self.push(acts);
                    }
                }
            }
        }
    }

    #[test]
    fn clean_link_delivers_once_in_order() {
        let net: ReliableNet<u64> = ReliableNet::new(Topology::full_mesh(2, ms(10)));
        let mut l = Loop::new(net, 1);
        for i in 0..10u64 {
            l.send(SimTime(i), n(0), n(1), i);
        }
        l.run(SimTime::from_secs(60));
        let got: Vec<u64> = l.delivered.iter().map(|d| d.msg).collect();
        assert_eq!(got, (0..10).collect::<Vec<_>>());
        assert_eq!(l.net.stats().retransmissions, 0);
        assert_eq!(l.net.pending_count(), 0);
    }

    #[test]
    fn lossy_link_still_delivers_everything_in_order() {
        let net: ReliableNet<u64> = ReliableNet::new(Topology::full_mesh(2, ms(10)))
            .with_faults(FaultConfig::uniform(FaultPlan::lossy(0.4)));
        let mut l = Loop::new(net, 7);
        for i in 0..50u64 {
            l.send(SimTime::from_millis(i * 3), n(0), n(1), i);
        }
        l.run(SimTime::from_secs(600));
        let got: Vec<u64> = l.delivered.iter().map(|d| d.msg).collect();
        assert_eq!(got, (0..50).collect::<Vec<_>>(), "loss broke delivery");
        assert!(l.net.stats().retransmissions > 0, "loss must cause retries");
        assert_eq!(l.net.pending_count(), 0, "everything must get acked");
    }

    #[test]
    fn duplication_is_absorbed() {
        let net: ReliableNet<u64> = ReliableNet::new(Topology::full_mesh(2, ms(10))).with_faults(
            FaultConfig::uniform(FaultPlan::new(0.0, 0.8, SimDuration(0))),
        );
        let mut l = Loop::new(net, 3);
        for i in 0..30u64 {
            l.send(SimTime::from_millis(i * 2), n(0), n(1), i);
        }
        l.run(SimTime::from_secs(60));
        let got: Vec<u64> = l.delivered.iter().map(|d| d.msg).collect();
        assert_eq!(got, (0..30).collect::<Vec<_>>(), "dups leaked or lost");
        assert!(l.net.stats().fault_duplicated > 0);
        assert!(l.net.stats().dup_dropped > 0);
    }

    #[test]
    fn jitter_reorders_on_wire_but_not_at_the_app() {
        let net: ReliableNet<u64> = ReliableNet::new(Topology::full_mesh(2, ms(10))).with_faults(
            FaultConfig::uniform(FaultPlan::new(
                0.0,
                0.0,
                ms(30), // far larger than the 1ms send spacing: heavy reorder
            )),
        );
        let mut l = Loop::new(net, 11);
        for i in 0..40u64 {
            l.send(SimTime::from_millis(i), n(0), n(1), i);
        }
        l.run(SimTime::from_secs(60));
        let got: Vec<u64> = l.delivered.iter().map(|d| d.msg).collect();
        assert_eq!(got, (0..40).collect::<Vec<_>>(), "app saw reordering");
    }

    #[test]
    fn partition_heals_into_delivery() {
        let net: ReliableNet<u64> = ReliableNet::new(Topology::full_mesh(2, ms(10)));
        let mut l = Loop::new(net, 5);
        l.net.apply_change(&NetworkChange::LinkDown(n(0), n(1)));
        l.send(SimTime::ZERO, n(0), n(1), 42);
        l.run(SimTime::from_secs(5));
        assert!(l.delivered.is_empty(), "nothing can get through a cut");
        assert!(l.net.stats().unreachable > 0);
        l.net.apply_change(&NetworkChange::HealAll);
        l.run(SimTime::from_secs(60));
        assert_eq!(l.delivered.len(), 1, "retransmission must get through");
        assert_eq!(l.delivered[0].msg, 42);
        assert_eq!(l.net.pending_count(), 0);
    }

    #[test]
    fn crash_then_resync_drains_and_resumes() {
        let net: ReliableNet<u64> = ReliableNet::new(Topology::full_mesh(2, ms(10)));
        let mut l = Loop::new(net, 9);
        // Node 1 is "down": packets to it are dropped by the driver, so we
        // just never feed them in — sender keeps retransmitting.
        l.send(SimTime::ZERO, n(0), n(1), 1);
        l.send(SimTime::ZERO, n(0), n(1), 2);
        // Drop the two initial Deliver actions (node 1 is down), keep timers.
        l.queue.retain(|_, a| matches!(a, NetAction::Timer(..)));
        // Node 1 had also sent something that is now lost with its buffer.
        let _ = l.net.send(SimTime::ZERO, n(1), n(0), 99, &mut l.rng);
        l.net.crash(n(1));
        assert_eq!(l.net.pending_count(), 2, "only node 0's sends remain");

        // Recovery: cut streams. Node 0's pending retransmits now arrive,
        // get acked as duplicates, and drain — without reaching the app.
        l.net.resync_node(n(1));
        l.run(SimTime::from_secs(60));
        assert!(l.delivered.is_empty(), "pre-recovery packets must be stale");
        assert_eq!(l.net.pending_count(), 0, "dup-acks must drain pending");
        assert!(l.net.stats().dup_dropped >= 2);

        // Fresh traffic flows both ways.
        l.send(SimTime::from_secs(61), n(0), n(1), 7);
        l.send(SimTime::from_secs(61), n(1), n(0), 8);
        l.run(SimTime::from_secs(120));
        let got: Vec<u64> = l.delivered.iter().map(|d| d.msg).collect();
        assert_eq!(got, vec![7, 8]);
    }

    #[test]
    fn one_link_arms_one_timer() {
        let net: ReliableNet<u64> = ReliableNet::new(Topology::full_mesh(2, ms(10)));
        let mut l = Loop::new(net, 1);
        let mut timers = 0;
        for i in 0..10u64 {
            let acts = l.net.send(SimTime(i), n(0), n(1), i, &mut l.rng);
            timers += acts
                .iter()
                .filter(|a| matches!(a, NetAction::Timer(..)))
                .count();
            l.push(acts);
        }
        assert_eq!(timers, 1, "a busy link keeps exactly one live timer");
        l.run(SimTime::from_secs(60));
        assert_eq!(l.delivered.len(), 10);
        assert_eq!(l.net.pending_count(), 0);
    }

    #[test]
    fn out_of_order_arrivals_suppress_acks() {
        // Heavy jitter reorders arrivals; parked packets must not each
        // draw a standalone ack, and one cumulative ack must clear a
        // multi-packet window when the gap closes.
        let net: ReliableNet<u64> = ReliableNet::new(Topology::full_mesh(2, ms(10)))
            .with_faults(FaultConfig::uniform(FaultPlan::new(0.0, 0.0, ms(30))));
        let mut l = Loop::new(net, 11);
        for i in 0..40u64 {
            l.send(SimTime::from_millis(i), n(0), n(1), i);
        }
        l.run(SimTime::from_secs(60));
        let got: Vec<u64> = l.delivered.iter().map(|d| d.msg).collect();
        assert_eq!(got, (0..40).collect::<Vec<_>>());
        let s = l.net.stats();
        assert!(s.acks_suppressed > 0, "reordering must absorb some acks");
        assert!(s.cumulative_acks > 0, "acks must clear pending packets");
        assert!(
            s.acks_sent < s.delivered,
            "compression: fewer standalone acks ({}) than deliveries ({})",
            s.acks_sent,
            s.delivered
        );
        assert_eq!(l.net.pending_count(), 0);
    }

    #[test]
    fn reverse_data_piggybacks_cumulative_ack() {
        let net: ReliableNet<u64> = ReliableNet::new(Topology::full_mesh(2, ms(10)));
        let mut l = Loop::new(net, 2);
        l.send(SimTime::ZERO, n(0), n(1), 1);
        l.run(SimTime::from_secs(1));
        // Node 1 has received from node 0, so its own data carries an ack.
        l.send(SimTime::from_secs(2), n(1), n(0), 2);
        l.run(SimTime::from_secs(60));
        assert_eq!(l.delivered.len(), 2);
        assert!(l.net.stats().acks_piggybacked > 0);
        assert_eq!(l.net.pending_count(), 0);
    }

    #[test]
    fn same_seed_same_schedule() {
        let mk = || {
            let net: ReliableNet<u64> = ReliableNet::new(Topology::full_mesh(3, ms(10)))
                .with_faults(FaultConfig::uniform(FaultPlan::new(0.3, 0.3, ms(20))));
            let mut l = Loop::new(net, 1234);
            for i in 0..30u64 {
                l.send(SimTime::from_millis(i * 5), n((i % 2) as u32), n(2), i);
            }
            l.run(SimTime::from_secs(600));
            (
                l.delivered
                    .iter()
                    .map(|d| (d.from, d.msg))
                    .collect::<Vec<_>>(),
                l.net.stats(),
            )
        };
        let (a, sa) = mk();
        let (b, sb) = mk();
        assert_eq!(a, b, "same seed must give the same delivery sequence");
        assert_eq!(sa, sb, "same seed must give the same stats");
    }
}
