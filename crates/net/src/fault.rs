//! Per-link fault plans: message drop, duplication, and reordering jitter.
//!
//! A [`FaultPlan`] describes how hostile one directed link is; a
//! [`FaultConfig`] maps every ordered pair of nodes to a plan (a default
//! plus per-link overrides). The plans are *pure data* — sampling happens
//! in the [`ReliableNet`] layer, driven by the engine's seeded RNG, so two
//! runs with the same seed inject exactly the same faults.
//!
//! [`ReliableNet`]: crate::reliable::ReliableNet

use std::collections::BTreeMap;

use fragdb_model::NodeId;
use fragdb_sim::SimDuration;

/// Fault characteristics of one directed link.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct FaultPlan {
    /// Probability that a transmission attempt is silently lost.
    pub drop: f64,
    /// Probability that a transmission attempt is duplicated (a second
    /// copy is injected with its own independently sampled delay).
    pub dup: f64,
    /// Maximum extra delay added to a transmission, sampled uniformly from
    /// `[0, jitter]`. With per-packet jitter two packets can overtake each
    /// other, producing genuine reordering on the wire.
    pub jitter: SimDuration,
}

impl FaultPlan {
    /// A perfectly clean link.
    pub const NONE: FaultPlan = FaultPlan {
        drop: 0.0,
        dup: 0.0,
        jitter: SimDuration(0),
    };

    /// A plan with the given drop/dup probabilities and jitter bound.
    ///
    /// # Panics
    /// Panics unless `0 <= drop < 1` and `0 <= dup <= 1`: a drop
    /// probability of 1 would defeat eventual delivery outright.
    pub fn new(drop: f64, dup: f64, jitter: SimDuration) -> Self {
        assert!((0.0..1.0).contains(&drop), "drop must be in [0, 1)");
        assert!((0.0..=1.0).contains(&dup), "dup must be in [0, 1]");
        FaultPlan { drop, dup, jitter }
    }

    /// Drop-only plan.
    pub fn lossy(drop: f64) -> Self {
        FaultPlan::new(drop, 0.0, SimDuration(0))
    }

    /// Does this plan inject anything at all?
    pub fn is_clean(&self) -> bool {
        self.drop == 0.0 && self.dup == 0.0 && self.jitter == SimDuration(0)
    }
}

impl Default for FaultPlan {
    fn default() -> Self {
        FaultPlan::NONE
    }
}

/// Fault plans for the whole network: a default plus per-link overrides.
#[derive(Clone, Debug, Default)]
pub struct FaultConfig {
    default: FaultPlan,
    overrides: BTreeMap<(NodeId, NodeId), FaultPlan>,
}

impl FaultConfig {
    /// Every link clean.
    pub fn clean() -> Self {
        FaultConfig::default()
    }

    /// The same plan on every directed link.
    pub fn uniform(plan: FaultPlan) -> Self {
        FaultConfig {
            default: plan,
            overrides: BTreeMap::new(),
        }
    }

    /// Override the plan for one directed link `(from, to)`.
    pub fn with_link(mut self, from: NodeId, to: NodeId, plan: FaultPlan) -> Self {
        self.overrides.insert((from, to), plan);
        self
    }

    /// The plan governing transmissions from `from` to `to`.
    pub fn plan_for(&self, from: NodeId, to: NodeId) -> FaultPlan {
        self.overrides
            .get(&(from, to))
            .copied()
            .unwrap_or(self.default)
    }

    /// True when no link anywhere injects faults.
    pub fn is_clean(&self) -> bool {
        self.default.is_clean() && self.overrides.values().all(FaultPlan::is_clean)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_is_clean() {
        assert!(FaultPlan::NONE.is_clean());
        assert!(FaultConfig::clean().is_clean());
        assert_eq!(
            FaultConfig::clean().plan_for(NodeId(0), NodeId(1)),
            FaultPlan::NONE
        );
    }

    #[test]
    fn overrides_take_precedence() {
        let plan = FaultPlan::lossy(0.3);
        let cfg = FaultConfig::clean().with_link(NodeId(0), NodeId(1), plan);
        assert_eq!(cfg.plan_for(NodeId(0), NodeId(1)), plan);
        assert_eq!(cfg.plan_for(NodeId(1), NodeId(0)), FaultPlan::NONE);
        assert!(!cfg.is_clean());
    }

    #[test]
    fn uniform_applies_everywhere() {
        let plan = FaultPlan::new(0.1, 0.2, SimDuration::from_millis(5));
        let cfg = FaultConfig::uniform(plan);
        assert_eq!(cfg.plan_for(NodeId(3), NodeId(7)), plan);
    }

    #[test]
    #[should_panic(expected = "drop must be in [0, 1)")]
    fn certain_loss_is_rejected() {
        FaultPlan::new(1.0, 0.0, SimDuration(0));
    }
}
