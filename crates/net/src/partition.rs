//! Timed partition schedules.
//!
//! Experiments describe network failures declaratively: "at t=10s, split
//! {A} from {B, C}; at t=60s, heal". A [`PartitionSchedule`] is that list,
//! sorted by time; the simulation driver pops changes as the clock passes
//! them and applies them to the [`LinkState`].
//!
//! [`LinkState`]: crate::linkstate::LinkState

use fragdb_model::NodeId;
use fragdb_sim::SimTime;

use crate::linkstate::LinkState;

/// One network mutation.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum NetworkChange {
    /// Sever one link.
    LinkDown(NodeId, NodeId),
    /// Restore one link.
    LinkUp(NodeId, NodeId),
    /// Sever all links crossing between the listed groups.
    Split(Vec<Vec<NodeId>>),
    /// Restore every link.
    HealAll,
}

impl NetworkChange {
    /// Apply this change to a link state.
    pub fn apply(&self, state: &mut LinkState) {
        match self {
            NetworkChange::LinkDown(a, b) => {
                state.fail(*a, *b);
            }
            NetworkChange::LinkUp(a, b) => {
                state.heal(*a, *b);
            }
            NetworkChange::Split(groups) => state.split(groups),
            NetworkChange::HealAll => state.heal_all(),
        }
    }
}

/// A time-ordered list of network changes.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct PartitionSchedule {
    /// `(when, what)` pairs, kept sorted by time (stable for equal times).
    events: Vec<(SimTime, NetworkChange)>,
}

impl PartitionSchedule {
    /// A schedule with no failures: the network stays fully connected.
    pub fn none() -> Self {
        PartitionSchedule::default()
    }

    /// Add a change at an absolute time.
    pub fn at(mut self, when: SimTime, change: NetworkChange) -> Self {
        self.events.push((when, change));
        self.events.sort_by_key(|(t, _)| *t);
        self
    }

    /// Convenience: split into `groups` during `[from, until)`, then heal.
    pub fn split_between(self, from: SimTime, until: SimTime, groups: Vec<Vec<NodeId>>) -> Self {
        assert!(from < until, "partition must end after it begins");
        self.at(from, NetworkChange::Split(groups))
            .at(until, NetworkChange::HealAll)
    }

    /// All events in time order.
    pub fn events(&self) -> &[(SimTime, NetworkChange)] {
        &self.events
    }

    /// Number of scheduled changes.
    pub fn len(&self) -> usize {
        self.events.len()
    }

    /// True if nothing is scheduled.
    pub fn is_empty(&self) -> bool {
        self.events.is_empty()
    }

    /// Total virtual time during which at least one partition is in effect,
    /// assuming alternating `Split`/`HealAll` pairs (the common scenario
    /// shape). Used by availability reports.
    pub fn disrupted_time(&self, horizon: SimTime) -> fragdb_sim::SimDuration {
        let mut total = fragdb_sim::SimDuration::ZERO;
        let mut open: Option<SimTime> = None;
        for (t, change) in &self.events {
            match change {
                NetworkChange::Split(_) | NetworkChange::LinkDown(_, _) => {
                    if open.is_none() {
                        open = Some(*t);
                    }
                }
                NetworkChange::HealAll | NetworkChange::LinkUp(_, _) => {
                    if let Some(start) = open.take() {
                        total += *t - start;
                    }
                }
            }
        }
        if let Some(start) = open {
            total += horizon - start;
        }
        total
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fragdb_sim::SimDuration;

    fn n(i: u32) -> NodeId {
        NodeId(i)
    }

    fn secs(s: u64) -> SimTime {
        SimTime::from_secs(s)
    }

    #[test]
    fn events_stay_sorted() {
        let s = PartitionSchedule::none()
            .at(secs(10), NetworkChange::HealAll)
            .at(secs(5), NetworkChange::LinkDown(n(0), n(1)))
            .at(secs(7), NetworkChange::LinkUp(n(0), n(1)));
        let times: Vec<u64> = s.events().iter().map(|(t, _)| t.micros()).collect();
        assert_eq!(times, vec![5_000_000, 7_000_000, 10_000_000]);
        assert_eq!(s.len(), 3);
    }

    #[test]
    fn split_between_creates_pair() {
        let s = PartitionSchedule::none().split_between(
            secs(10),
            secs(20),
            vec![vec![n(0)], vec![n(1)]],
        );
        assert_eq!(s.len(), 2);
        assert!(matches!(s.events()[0].1, NetworkChange::Split(_)));
        assert!(matches!(s.events()[1].1, NetworkChange::HealAll));
    }

    #[test]
    #[should_panic(expected = "must end after")]
    fn inverted_split_panics() {
        PartitionSchedule::none().split_between(secs(20), secs(10), vec![]);
    }

    #[test]
    fn apply_changes_mutates_state() {
        let mut state = LinkState::all_up();
        NetworkChange::Split(vec![vec![n(0)], vec![n(1)]]).apply(&mut state);
        assert!(state.is_down(n(0), n(1)));
        NetworkChange::LinkUp(n(0), n(1)).apply(&mut state);
        assert!(state.is_fully_up());
        NetworkChange::LinkDown(n(2), n(3)).apply(&mut state);
        assert!(state.is_down(n(2), n(3)));
        NetworkChange::HealAll.apply(&mut state);
        assert!(state.is_fully_up());
    }

    #[test]
    fn disrupted_time_sums_intervals() {
        let s = PartitionSchedule::none()
            .split_between(secs(10), secs(20), vec![vec![n(0)], vec![n(1)]])
            .split_between(secs(30), secs(35), vec![vec![n(0)], vec![n(1)]]);
        assert_eq!(s.disrupted_time(secs(100)), SimDuration::from_secs(15));
    }

    #[test]
    fn disrupted_time_open_interval_runs_to_horizon() {
        let s = PartitionSchedule::none()
            .at(secs(90), NetworkChange::Split(vec![vec![n(0)], vec![n(1)]]));
        assert_eq!(s.disrupted_time(secs(100)), SimDuration::from_secs(10));
    }

    #[test]
    fn empty_schedule() {
        let s = PartitionSchedule::none();
        assert!(s.is_empty());
        assert_eq!(s.disrupted_time(secs(100)), SimDuration::ZERO);
    }
}
