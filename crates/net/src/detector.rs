//! Deterministic heartbeat failure detection.
//!
//! The paper (§4.4, §5) assumes an operator notices a dead agent home and
//! triggers recovery by hand. This module supplies the mechanical
//! replacement: every node broadcasts a periodic heartbeat over the
//! reliable layer, and every node runs one `FailureDetector` instance —
//! its *local view* of peer liveness. A peer that stays silent for more
//! than `suspect_after` heartbeat periods is **suspected**; suspicion is
//! advisory (it feeds the quorum election in fragdb-core, which is what
//! actually decides), so a false suspicion of a slow-but-alive peer is
//! safe — it costs at most an aborted election round.
//!
//! Like the rest of the crate the detector is engine-agnostic and purely
//! deterministic: it owns no timers and samples no clocks. The caller
//! feeds it observed beats (`heard`) and polls it on its own schedule
//! (`tick`), both stamped with virtual [`SimTime`], so two same-seed runs
//! suspect the same peers at the same instants.

use std::collections::BTreeMap;

use fragdb_model::NodeId;
use fragdb_sim::{SimDuration, SimTime};

/// One node's local view of which peers are alive.
#[derive(Clone, Debug)]
pub struct FailureDetector {
    /// Heartbeat broadcast period (shared, from config).
    period: SimDuration,
    /// Consecutive silent periods before suspecting a peer.
    suspect_after: u32,
    /// Tracked peers and when each was last heard from.
    peers: BTreeMap<NodeId, PeerView>,
}

#[derive(Clone, Debug)]
struct PeerView {
    last_heard: SimTime,
    suspected: bool,
}

impl FailureDetector {
    /// A detector suspecting peers silent for more than
    /// `suspect_after × period`.
    pub fn new(period: SimDuration, suspect_after: u32) -> Self {
        FailureDetector {
            period,
            suspect_after: suspect_after.max(1),
            peers: BTreeMap::new(),
        }
    }

    /// Start (or restart) tracking `peer`, granting it a full silence
    /// allowance from `now`. Used at startup and when the *observer*
    /// itself recovers from a crash — its stale liveness view must not
    /// produce instant suspicions.
    pub fn track(&mut self, peer: NodeId, now: SimTime) {
        self.peers.insert(
            peer,
            PeerView {
                last_heard: now,
                suspected: false,
            },
        );
    }

    /// Stop tracking `peer` entirely (it left the roster).
    pub fn forget(&mut self, peer: NodeId) {
        self.peers.remove(&peer);
    }

    /// Record a heartbeat (or any authenticated traffic) from `peer`.
    /// Returns `true` when this clears a standing suspicion — the caller
    /// uses that to abort an election the peer's silence started.
    pub fn heard(&mut self, peer: NodeId, now: SimTime) -> bool {
        match self.peers.get_mut(&peer) {
            Some(view) => {
                let was = view.suspected;
                view.last_heard = now;
                view.suspected = false;
                was
            }
            None => {
                self.track(peer, now);
                false
            }
        }
    }

    /// The silence threshold: peers quiet longer than this are suspected.
    pub fn suspicion_threshold(&self) -> SimDuration {
        SimDuration::from_micros(self.period.micros() * u64::from(self.suspect_after))
    }

    /// Sweep the roster at `now`; returns peers **newly** suspected by
    /// this sweep, in ascending node order (deterministic). Already-
    /// suspected peers are not re-reported.
    pub fn tick(&mut self, now: SimTime) -> Vec<NodeId> {
        let threshold = self.suspicion_threshold();
        let mut newly = Vec::new();
        for (&peer, view) in &mut self.peers {
            if !view.suspected && now.since(view.last_heard) > threshold {
                view.suspected = true;
                newly.push(peer);
            }
        }
        newly
    }

    /// Is `peer` on the tracked roster?
    pub fn is_tracked(&self, peer: NodeId) -> bool {
        self.peers.contains_key(&peer)
    }

    /// The tracked roster, ascending.
    pub fn tracked(&self) -> Vec<NodeId> {
        self.peers.keys().copied().collect()
    }

    /// Is `peer` currently suspected?
    pub fn is_suspected(&self, peer: NodeId) -> bool {
        self.peers.get(&peer).is_some_and(|v| v.suspected)
    }

    /// Currently-suspected peers, ascending.
    pub fn suspected(&self) -> Vec<NodeId> {
        self.peers
            .iter()
            .filter(|(_, v)| v.suspected)
            .map(|(&p, _)| p)
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn t(ms: u64) -> SimTime {
        SimTime::from_millis(ms)
    }

    #[test]
    fn silent_peer_is_suspected_once_past_threshold() {
        let mut d = FailureDetector::new(SimDuration::from_millis(100), 3);
        d.track(NodeId(1), t(0));
        assert_eq!(d.suspicion_threshold(), SimDuration::from_millis(300));
        assert!(d.tick(t(300)).is_empty(), "at threshold: not yet");
        assert_eq!(d.tick(t(301)), vec![NodeId(1)]);
        assert!(d.is_suspected(NodeId(1)));
        assert!(d.tick(t(500)).is_empty(), "no re-report");
        assert_eq!(d.suspected(), vec![NodeId(1)]);
    }

    #[test]
    fn heartbeats_keep_peer_alive_and_clear_suspicion() {
        let mut d = FailureDetector::new(SimDuration::from_millis(100), 3);
        d.track(NodeId(2), t(0));
        assert!(!d.heard(NodeId(2), t(250)));
        assert!(d.tick(t(400)).is_empty(), "heard at 250, silent 150 < 300");
        assert_eq!(d.tick(t(600)), vec![NodeId(2)]);
        // The slow peer speaks again: suspicion clears and is reported.
        assert!(d.heard(NodeId(2), t(700)));
        assert!(!d.is_suspected(NodeId(2)));
        assert!(d.tick(t(900)).is_empty());
    }

    #[test]
    fn tracking_resets_the_allowance_and_unknown_peers_autotrack() {
        let mut d = FailureDetector::new(SimDuration::from_millis(100), 2);
        d.track(NodeId(3), t(0));
        assert_eq!(d.tick(t(1000)), vec![NodeId(3)]);
        // Observer recovery: re-track with a fresh allowance.
        d.track(NodeId(3), t(1000));
        assert!(d.tick(t(1100)).is_empty());
        // A beat from an untracked peer starts tracking it.
        assert!(!d.heard(NodeId(9), t(1000)));
        assert_eq!(d.tick(t(2000)), vec![NodeId(3), NodeId(9)]);
        assert!(d.is_tracked(NodeId(9)));
        assert_eq!(d.tracked(), vec![NodeId(3), NodeId(9)]);
        d.forget(NodeId(9));
        assert!(!d.is_tracked(NodeId(9)));
        assert_eq!(d.tracked(), vec![NodeId(3)]);
        assert!(!d.is_suspected(NodeId(9)));
        assert_eq!(d.suspected(), vec![NodeId(3)]);
    }

    #[test]
    fn same_inputs_same_suspicions() {
        let run = || {
            let mut d = FailureDetector::new(SimDuration::from_millis(50), 3);
            for n in 0..5 {
                d.track(NodeId(n), t(0));
            }
            let mut out = Vec::new();
            for step in 1..20 {
                let now = t(step * 40);
                if step % 3 == 0 {
                    d.heard(NodeId(step as u32 % 5), now);
                }
                out.extend(d.tick(now));
            }
            out
        };
        assert_eq!(run(), run());
    }
}
