//! Store-and-forward point-to-point transport.
//!
//! Semantics (the standard model of a routed WAN with retransmission):
//!
//! * A message from `a` to `b` sent while they are in the same connected
//!   component is delivered after the shortest-path delay.
//! * A message sent while they are disconnected waits in `a`'s outbox and
//!   is released — in send order — the moment a [`NetworkChange`] reconnects
//!   them. This realizes the paper's §3.2 requirement that "all messages
//!   are eventually delivered" (assuming every partition eventually heals).
//! * Deliveries between one ordered pair `(a, b)` are never reordered:
//!   each delivery is scheduled no earlier than one microsecond after the
//!   previous one for the same pair.
//!
//! Messages already in flight when a partition starts are still delivered
//! (they were already "past" the cut); only *new* sends are blocked. This
//! slightly favors availability, is deterministic, and matches the paper's
//! level of abstraction.
//!
//! The transport is engine-agnostic: `send`/`apply_change` return
//! `(deliver_at, Delivery)` pairs that the caller schedules on its own
//! event loop.

use std::collections::{BTreeMap, VecDeque};

use fragdb_model::NodeId;
use fragdb_sim::{SimDuration, SimTime};

use crate::linkstate::LinkState;
use crate::partition::NetworkChange;
use crate::topology::{RouteCache, Topology};

/// A message due for delivery.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Delivery<M> {
    /// Sender.
    pub from: NodeId,
    /// Receiver.
    pub to: NodeId,
    /// Payload.
    pub msg: M,
}

/// Counters describing transport activity.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct TransportStats {
    /// Messages handed to `send`.
    pub sent: u64,
    /// Messages scheduled for delivery at send time (connectivity existed).
    pub delivered_direct: u64,
    /// Messages parked in an outbox because the destination was unreachable.
    pub queued: u64,
    /// Parked messages released by a later connectivity change.
    pub released: u64,
}

/// The point-to-point network: topology + live link state + outboxes.
#[derive(Debug)]
pub struct Transport<M> {
    topo: Topology,
    state: LinkState,
    /// Blocked messages per ordered `(from, to)` pair, FIFO.
    outbox: BTreeMap<(NodeId, NodeId), VecDeque<M>>,
    /// Last scheduled delivery time per ordered pair, for FIFO enforcement.
    last_sched: BTreeMap<(NodeId, NodeId), SimTime>,
    /// Memoized shortest-path delays for the current link state.
    routes: RouteCache,
    stats: TransportStats,
}

impl<M> Transport<M> {
    /// Build over a topology with all links up.
    pub fn new(topo: Topology) -> Self {
        Transport {
            topo,
            state: LinkState::all_up(),
            outbox: BTreeMap::new(),
            last_sched: BTreeMap::new(),
            routes: RouteCache::new(),
            stats: TransportStats::default(),
        }
    }

    /// The static topology.
    pub fn topology(&self) -> &Topology {
        &self.topo
    }

    /// The live link state.
    pub fn link_state(&self) -> &LinkState {
        &self.state
    }

    /// Are two nodes currently in the same connected component?
    pub fn connected(&self, a: NodeId, b: NodeId) -> bool {
        self.topo.connected(a, b, &self.state)
    }

    /// Current partition groups.
    pub fn components(&self) -> Vec<std::collections::BTreeSet<NodeId>> {
        self.topo.components(&self.state)
    }

    /// Activity counters.
    pub fn stats(&self) -> TransportStats {
        self.stats
    }

    /// Number of messages parked in outboxes.
    pub fn queued_count(&self) -> usize {
        self.outbox.values().map(VecDeque::len).sum()
    }

    /// Pick the next FIFO-safe delivery instant for `(from, to)`.
    fn fifo_slot(&mut self, pair: (NodeId, NodeId), candidate: SimTime) -> SimTime {
        let at = match self.last_sched.get(&pair) {
            Some(&last) if candidate <= last => last + SimDuration(1),
            _ => candidate,
        };
        self.last_sched.insert(pair, at);
        at
    }

    /// Send `msg` from `from` to `to` at time `now`.
    ///
    /// Returns the scheduled delivery if the nodes are currently connected,
    /// or `None` if the message was parked awaiting connectivity.
    ///
    /// # Panics
    /// Panics if `from == to`; local loopback should not go through the
    /// network.
    pub fn send(
        &mut self,
        now: SimTime,
        from: NodeId,
        to: NodeId,
        msg: M,
    ) -> Option<(SimTime, Delivery<M>)> {
        assert!(from != to, "loopback send through the network");
        self.stats.sent += 1;
        match self.routes.path_delay(&self.topo, &self.state, from, to) {
            Some(delay) => {
                let at = self.fifo_slot((from, to), now + delay);
                self.stats.delivered_direct += 1;
                Some((at, Delivery { from, to, msg }))
            }
            None => {
                // Pre-size: a partition that parks one message usually
                // parks a burst; skip the first few regrowths.
                self.outbox
                    .entry((from, to))
                    .or_insert_with(|| VecDeque::with_capacity(16))
                    .push_back(msg);
                self.stats.queued += 1;
                None
            }
        }
    }

    /// Apply a network change at time `now`, returning any parked messages
    /// whose destination became reachable (in per-pair FIFO order).
    pub fn apply_change(
        &mut self,
        now: SimTime,
        change: &NetworkChange,
    ) -> Vec<(SimTime, Delivery<M>)> {
        change.apply(&mut self.state);
        self.routes.invalidate();
        let mut released = Vec::new();
        // Collect the reachable pairs first to avoid borrowing conflicts.
        let ready: Vec<(NodeId, NodeId)> = self
            .outbox
            .iter()
            .filter(|((from, to), q)| !q.is_empty() && self.topo.connected(*from, *to, &self.state))
            .map(|(&pair, _)| pair)
            .collect();
        for pair in ready {
            let (from, to) = pair;
            let delay = self
                .routes
                .path_delay(&self.topo, &self.state, from, to)
                .expect("checked connected above");
            let queue = self.outbox.remove(&pair).expect("pair was present");
            for msg in queue {
                let at = self.fifo_slot(pair, now + delay);
                self.stats.released += 1;
                released.push((at, Delivery { from, to, msg }));
            }
        }
        released
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn n(i: u32) -> NodeId {
        NodeId(i)
    }

    fn ms(x: u64) -> SimDuration {
        SimDuration::from_millis(x)
    }

    fn mesh(nodes: u32) -> Transport<u32> {
        Transport::new(Topology::full_mesh(nodes, ms(10)))
    }

    #[test]
    fn connected_send_schedules_after_delay() {
        let mut t = mesh(3);
        let (at, d) = t.send(SimTime::from_secs(1), n(0), n(1), 42).unwrap();
        assert_eq!(at, SimTime::from_secs(1) + ms(10));
        assert_eq!(
            d,
            Delivery {
                from: n(0),
                to: n(1),
                msg: 42
            }
        );
        assert_eq!(t.stats().delivered_direct, 1);
    }

    #[test]
    #[should_panic(expected = "loopback")]
    fn loopback_send_panics() {
        mesh(2).send(SimTime::ZERO, n(0), n(0), 1);
    }

    #[test]
    fn disconnected_send_is_parked() {
        let mut t = mesh(2);
        t.apply_change(SimTime::ZERO, &NetworkChange::LinkDown(n(0), n(1)));
        assert!(t.send(SimTime::ZERO, n(0), n(1), 7).is_none());
        assert_eq!(t.queued_count(), 1);
        assert_eq!(t.stats().queued, 1);
    }

    #[test]
    fn heal_releases_parked_messages_in_fifo_order() {
        let mut t = mesh(2);
        t.apply_change(SimTime::ZERO, &NetworkChange::LinkDown(n(0), n(1)));
        for i in 0..5u32 {
            assert!(t.send(SimTime(i as u64), n(0), n(1), i).is_none());
        }
        let released = t.apply_change(SimTime::from_secs(60), &NetworkChange::HealAll);
        assert_eq!(released.len(), 5);
        let payloads: Vec<u32> = released.iter().map(|(_, d)| d.msg).collect();
        assert_eq!(payloads, vec![0, 1, 2, 3, 4]);
        // Delivery times strictly increase (FIFO preserved through the heal).
        for w in released.windows(2) {
            assert!(w[0].0 < w[1].0);
        }
        assert_eq!(t.queued_count(), 0);
        assert_eq!(t.stats().released, 5);
    }

    #[test]
    fn fifo_per_pair_even_at_same_instant() {
        let mut t = mesh(2);
        let (at1, _) = t.send(SimTime::ZERO, n(0), n(1), 1).unwrap();
        let (at2, _) = t.send(SimTime::ZERO, n(0), n(1), 2).unwrap();
        assert!(at2 > at1, "same-instant sends must not tie");
    }

    #[test]
    fn distinct_pairs_do_not_interfere() {
        let mut t = mesh(3);
        let (a, _) = t.send(SimTime::ZERO, n(0), n(1), 1).unwrap();
        let (b, _) = t.send(SimTime::ZERO, n(0), n(2), 2).unwrap();
        // Different destinations: both can use the base delay slot.
        assert_eq!(a, b);
    }

    #[test]
    fn multihop_delivery_when_direct_link_down() {
        // Line 0-1-2: 0 and 2 communicate through 1.
        let topo = Topology::line(3, ms(10));
        let mut t: Transport<u32> = Transport::new(topo);
        let (at, _) = t.send(SimTime::ZERO, n(0), n(2), 9).unwrap();
        assert_eq!(at, SimTime::ZERO + ms(20));
    }

    #[test]
    fn partial_heal_releases_only_reconnected_pairs() {
        let mut t = mesh(3);
        t.apply_change(
            SimTime::ZERO,
            &NetworkChange::Split(vec![vec![n(0)], vec![n(1)], vec![n(2)]]),
        );
        t.send(SimTime::ZERO, n(0), n(1), 1);
        t.send(SimTime::ZERO, n(0), n(2), 2);
        // Reconnect only 0-1.
        let released = t.apply_change(SimTime::from_secs(1), &NetworkChange::LinkUp(n(0), n(1)));
        assert_eq!(released.len(), 1);
        assert_eq!(released[0].1.to, n(1));
        assert_eq!(t.queued_count(), 1);
    }

    #[test]
    fn release_through_indirect_route() {
        // 0 and 2 disconnected directly but a heal of 0-1 gives a route via 1.
        let mut t = mesh(3);
        t.apply_change(
            SimTime::ZERO,
            &NetworkChange::Split(vec![vec![n(0)], vec![n(1), n(2)]]),
        );
        t.send(SimTime::ZERO, n(0), n(2), 5);
        let released = t.apply_change(SimTime::from_secs(1), &NetworkChange::LinkUp(n(0), n(1)));
        assert_eq!(released.len(), 1, "0->2 should route through 1");
        assert_eq!(released[0].0, SimTime::from_secs(1) + ms(20));
    }

    #[test]
    fn components_exposed() {
        let mut t = mesh(3);
        assert_eq!(t.components().len(), 1);
        t.apply_change(
            SimTime::ZERO,
            &NetworkChange::Split(vec![vec![n(0)], vec![n(1), n(2)]]),
        );
        assert_eq!(t.components().len(), 2);
        assert!(!t.connected(n(0), n(1)));
        assert!(t.connected(n(1), n(2)));
    }

    #[test]
    fn stats_track_sends() {
        let mut t = mesh(2);
        t.send(SimTime::ZERO, n(0), n(1), 1);
        t.apply_change(SimTime::ZERO, &NetworkChange::LinkDown(n(0), n(1)));
        t.send(SimTime::ZERO, n(0), n(1), 2);
        let s = t.stats();
        assert_eq!(s.sent, 2);
        assert_eq!(s.delivered_direct, 1);
        assert_eq!(s.queued, 1);
        assert_eq!(s.released, 0);
    }
}
