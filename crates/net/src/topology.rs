//! Static network topology: nodes, undirected links, per-link delays.

use std::collections::{BTreeMap, BTreeSet, BinaryHeap, VecDeque};

use fragdb_model::NodeId;
use fragdb_sim::SimDuration;

use crate::linkstate::LinkState;

/// Canonical (smaller, larger) ordering for an undirected link.
pub(crate) fn canon(a: NodeId, b: NodeId) -> (NodeId, NodeId) {
    if a <= b {
        (a, b)
    } else {
        (b, a)
    }
}

/// The static link graph. Which links are *currently up* is tracked
/// separately in [`LinkState`] so one topology can be shared across
/// scenarios.
#[derive(Clone, Debug)]
pub struct Topology {
    n: u32,
    /// Undirected links with their one-way delay.
    links: BTreeMap<(NodeId, NodeId), SimDuration>,
    /// Adjacency lists indexed by dense node id, carrying the link delay
    /// so Dijkstra's inner loop never touches the `links` map — at half a
    /// million links a per-edge `BTreeMap` lookup dominated routing.
    adj: Vec<Vec<(NodeId, SimDuration)>>,
}

impl Topology {
    /// An edgeless topology of `n` nodes (ids `0..n`).
    pub fn new(n: u32) -> Self {
        assert!(n > 0, "a network needs at least one node");
        Topology {
            n,
            links: BTreeMap::new(),
            adj: vec![Vec::new(); n as usize],
        }
    }

    /// Complete graph with uniform link delay.
    pub fn full_mesh(n: u32, delay: SimDuration) -> Self {
        let mut t = Topology::new(n);
        for a in 0..n {
            for b in (a + 1)..n {
                t.add_link(NodeId(a), NodeId(b), delay);
            }
        }
        t
    }

    /// Complete graph with per-link delays jittered uniformly in
    /// `base ± jitter`, drawn from a dedicated seeded stream so the layout
    /// depends only on `(n, base, jitter, seed)` — two same-seed builds
    /// are identical, and `jitter` zero degenerates to
    /// [`Topology::full_mesh`]. The spread keeps commit propagation lags
    /// from collapsing onto a single value (degenerate percentiles).
    pub fn jittered_mesh(n: u32, base: SimDuration, jitter: SimDuration, seed: u64) -> Self {
        let mut rng = fragdb_sim::SimRng::new(seed);
        let mut t = Topology::new(n);
        let base_us = base.micros();
        let jitter_us = jitter.micros();
        for a in 0..n {
            for b in (a + 1)..n {
                // Uniform in [base − jitter, base + jitter], floored at 1µs
                // so no link is instantaneous.
                let offset = if jitter_us == 0 {
                    0
                } else {
                    rng.gen_range(0..=2 * jitter_us)
                };
                let delay_us = (base_us + offset).saturating_sub(jitter_us).max(1);
                t.add_link(NodeId(a), NodeId(b), SimDuration::from_micros(delay_us));
            }
        }
        t
    }

    /// Ring topology with uniform link delay.
    pub fn ring(n: u32, delay: SimDuration) -> Self {
        let mut t = Topology::new(n);
        if n > 1 {
            for a in 0..n {
                t.add_link(NodeId(a), NodeId((a + 1) % n), delay);
            }
        }
        t
    }

    /// Star centered on node 0 with uniform link delay.
    pub fn star(n: u32, delay: SimDuration) -> Self {
        let mut t = Topology::new(n);
        for b in 1..n {
            t.add_link(NodeId(0), NodeId(b), delay);
        }
        t
    }

    /// Line (path) topology 0–1–…–(n-1) with uniform link delay.
    pub fn line(n: u32, delay: SimDuration) -> Self {
        let mut t = Topology::new(n);
        for a in 1..n {
            t.add_link(NodeId(a - 1), NodeId(a), delay);
        }
        t
    }

    /// Add (or replace) an undirected link.
    ///
    /// # Panics
    /// Panics on self-links or out-of-range node ids.
    pub fn add_link(&mut self, a: NodeId, b: NodeId, delay: SimDuration) {
        assert!(a != b, "self-links are meaningless");
        assert!(a.0 < self.n && b.0 < self.n, "node id out of range");
        let key = canon(a, b);
        if self.links.insert(key, delay).is_none() {
            self.adj[a.0 as usize].push((b, delay));
            self.adj[b.0 as usize].push((a, delay));
        } else {
            // Replacement: refresh the delay carried on both adjacency rows.
            for (v, d) in &mut self.adj[a.0 as usize] {
                if *v == b {
                    *d = delay;
                }
            }
            for (v, d) in &mut self.adj[b.0 as usize] {
                if *v == a {
                    *d = delay;
                }
            }
        }
    }

    /// Number of nodes.
    pub fn node_count(&self) -> u32 {
        self.n
    }

    /// All node ids.
    pub fn nodes(&self) -> impl Iterator<Item = NodeId> + '_ {
        (0..self.n).map(NodeId)
    }

    /// All links as `((a, b), delay)` with `a < b`.
    pub fn links(&self) -> impl Iterator<Item = ((NodeId, NodeId), SimDuration)> + '_ {
        self.links.iter().map(|(&k, &d)| (k, d))
    }

    /// Does a (static) link exist between `a` and `b`?
    pub fn has_link(&self, a: NodeId, b: NodeId) -> bool {
        self.links.contains_key(&canon(a, b))
    }

    /// Delay of the direct link `a`–`b`, if one exists.
    pub fn link_delay(&self, a: NodeId, b: NodeId) -> Option<SimDuration> {
        self.links.get(&canon(a, b)).copied()
    }

    /// Neighbors of `node` over *static* links, with their link delays.
    pub fn neighbors(&self, node: NodeId) -> &[(NodeId, SimDuration)] {
        self.adj
            .get(node.0 as usize)
            .map(Vec::as_slice)
            .unwrap_or(&[])
    }

    /// Shortest-path delay from `from` to `to` over links that are up,
    /// or `None` if they are disconnected. Dijkstra over link delays,
    /// with dense-id distance arrays so the inner loop is map-free.
    pub fn path_delay(&self, from: NodeId, to: NodeId, state: &LinkState) -> Option<SimDuration> {
        if from == to {
            return Some(SimDuration::ZERO);
        }
        let mut dist = vec![u64::MAX; self.n as usize];
        let mut heap: BinaryHeap<std::cmp::Reverse<(u64, NodeId)>> = BinaryHeap::new();
        dist[from.0 as usize] = 0;
        heap.push(std::cmp::Reverse((0, from)));
        while let Some(std::cmp::Reverse((d, u))) = heap.pop() {
            if u == to {
                return Some(SimDuration(d));
            }
            if d > dist[u.0 as usize] {
                continue;
            }
            for &(v, w) in self.neighbors(u) {
                if state.is_down(u, v) {
                    continue;
                }
                let nd = d + w.micros();
                if nd < dist[v.0 as usize] {
                    dist[v.0 as usize] = nd;
                    heap.push(std::cmp::Reverse((nd, v)));
                }
            }
        }
        None
    }

    /// Shortest-path delays from `from` to *every* node reachable over up
    /// links, as one full Dijkstra sweep.
    ///
    /// One sweep costs the same as the single worst `path_delay` query
    /// from `from`, so a source that fans out to many destinations (a
    /// broadcast home on a large mesh) answers all of them for the price
    /// of one instead of re-running Dijkstra per destination.
    pub fn delays_from(&self, from: NodeId, state: &LinkState) -> BTreeMap<NodeId, SimDuration> {
        let mut dist = vec![u64::MAX; self.n as usize];
        let mut heap: BinaryHeap<std::cmp::Reverse<(u64, NodeId)>> = BinaryHeap::new();
        dist[from.0 as usize] = 0;
        heap.push(std::cmp::Reverse((0, from)));
        while let Some(std::cmp::Reverse((d, u))) = heap.pop() {
            if d > dist[u.0 as usize] {
                continue;
            }
            for &(v, w) in self.neighbors(u) {
                if state.is_down(u, v) {
                    continue;
                }
                let nd = d + w.micros();
                if nd < dist[v.0 as usize] {
                    dist[v.0 as usize] = nd;
                    heap.push(std::cmp::Reverse((nd, v)));
                }
            }
        }
        dist.iter()
            .enumerate()
            .filter(|(_, &d)| d != u64::MAX)
            .map(|(i, &d)| (NodeId(i as u32), SimDuration(d)))
            .collect()
    }

    /// Are `a` and `b` in the same connected component over up links?
    pub fn connected(&self, a: NodeId, b: NodeId, state: &LinkState) -> bool {
        self.path_delay(a, b, state).is_some()
    }

    /// Nodes reachable from `start` over up links (including `start`).
    pub fn component_of(&self, start: NodeId, state: &LinkState) -> BTreeSet<NodeId> {
        let mut seen = BTreeSet::new();
        let mut queue = VecDeque::new();
        seen.insert(start);
        queue.push_back(start);
        while let Some(u) = queue.pop_front() {
            for &(v, _) in self.neighbors(u) {
                if !state.is_down(u, v) && seen.insert(v) {
                    queue.push_back(v);
                }
            }
        }
        seen
    }

    /// All connected components (the current "partition groups"), each a
    /// sorted node set, ordered by smallest member.
    pub fn components(&self, state: &LinkState) -> Vec<BTreeSet<NodeId>> {
        let mut out = Vec::new();
        let mut assigned = BTreeSet::new();
        for id in 0..self.n {
            let node = NodeId(id);
            if assigned.contains(&node) {
                continue;
            }
            let comp = self.component_of(node, state);
            assigned.extend(comp.iter().copied());
            out.push(comp);
        }
        out
    }
}

/// Memoized [`Topology::path_delay`] lookups for one link-state epoch.
///
/// A full-mesh simulation asks for the same `(from, to)` delay once per
/// packet; running Dijkstra each time is the dominant cost at 64 nodes
/// (the BENCH_pr3 superlinearity). The cache answers repeats in O(log n)
/// and must be [`invalidate`]d whenever the live [`LinkState`] changes —
/// both [`ReliableNet`] and [`Transport`] do so in their `apply_change`.
///
/// [`invalidate`]: RouteCache::invalidate
/// [`ReliableNet`]: crate::reliable::ReliableNet
/// [`Transport`]: crate::transport::Transport
#[derive(Clone, Debug, Default)]
pub struct RouteCache {
    cache: BTreeMap<(NodeId, NodeId), Option<SimDuration>>,
    /// Cache misses per source since the last invalidation; past
    /// [`ROW_PROMOTE_MISSES`] the source's whole row is filled at once.
    misses: BTreeMap<NodeId, u32>,
    /// Sources whose full row is cached: absent pairs mean unreachable.
    full_rows: BTreeSet<NodeId>,
}

/// Base miss count before a source's whole Dijkstra row is cached.
///
/// A broadcast home on an `n`-node mesh would otherwise pay `n` separate
/// Dijkstras (each scanning a large frontier before the early exit) —
/// cubic in `n` overall, which is what made 1k-node meshes intractable.
/// One full sweep after enough misses makes it quadratic. The effective
/// threshold grows with `n` (see [`RouteCache::path_delay`]) so sources
/// that only talk to a handful of peers — ack paths back to a few
/// fragment homes — never pay for a row they would not use.
const ROW_PROMOTE_MISSES: u32 = 2;

impl RouteCache {
    /// An empty cache.
    pub fn new() -> Self {
        RouteCache::default()
    }

    /// Drop every memoized route. Call on any link-state change.
    pub fn invalidate(&mut self) {
        self.cache.clear();
        self.misses.clear();
        self.full_rows.clear();
    }

    /// Cached [`Topology::path_delay`]: Dijkstra on first use per pair,
    /// map lookup afterwards. Unreachability (`None`) is cached too.
    /// A source that keeps missing gets its entire row computed in one
    /// sweep ([`Topology::delays_from`]).
    pub fn path_delay(
        &mut self,
        topo: &Topology,
        state: &LinkState,
        from: NodeId,
        to: NodeId,
    ) -> Option<SimDuration> {
        if let Some(&d) = self.cache.get(&(from, to)) {
            return d;
        }
        if self.full_rows.contains(&from) {
            // Row is complete; a missing pair means `to` is unreachable.
            self.cache.insert((from, to), None);
            return None;
        }
        let missed = self.misses.entry(from).or_insert(0);
        *missed += 1;
        // Promote only once the misses amortize the sweep: a row costs
        // about n/32 single lookups, so fan-out below that stays per-pair.
        let threshold = ROW_PROMOTE_MISSES.max(topo.node_count() / 32);
        if *missed > threshold {
            for (node, d) in topo.delays_from(from, state) {
                self.cache.insert((from, node), Some(d));
            }
            self.full_rows.insert(from);
            let d = self.cache.get(&(from, to)).copied().flatten();
            self.cache.insert((from, to), d);
            return d;
        }
        let d = topo.path_delay(from, to, state);
        self.cache.insert((from, to), d);
        d
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ms(x: u64) -> SimDuration {
        SimDuration::from_millis(x)
    }

    #[test]
    fn route_cache_matches_dijkstra_and_invalidates() {
        let t = Topology::line(3, ms(10));
        let mut state = LinkState::all_up();
        let mut cache = RouteCache::new();
        assert_eq!(
            cache.path_delay(&t, &state, NodeId(0), NodeId(2)),
            Some(ms(20))
        );
        // Second lookup is served from the cache (same answer).
        assert_eq!(
            cache.path_delay(&t, &state, NodeId(0), NodeId(2)),
            Some(ms(20))
        );
        state.fail(NodeId(1), NodeId(2));
        cache.invalidate();
        assert_eq!(cache.path_delay(&t, &state, NodeId(0), NodeId(2)), None);
        // Unreachability is cached as well.
        assert_eq!(cache.path_delay(&t, &state, NodeId(0), NodeId(2)), None);
    }

    #[test]
    fn delays_from_matches_per_pair_dijkstra() {
        let t = Topology::line(5, ms(10));
        let mut state = LinkState::all_up();
        state.fail(NodeId(3), NodeId(4));
        let row = t.delays_from(NodeId(0), &state);
        for to in t.nodes() {
            assert_eq!(
                row.get(&to).copied(),
                t.path_delay(NodeId(0), to, &state),
                "row answer must equal Dijkstra for 0->{to:?}"
            );
        }
        assert!(!row.contains_key(&NodeId(4)), "cut node must be absent");
    }

    #[test]
    fn route_cache_row_promotion_answers_every_destination() {
        let t = Topology::full_mesh(8, ms(10));
        let mut state = LinkState::all_up();
        let mut cache = RouteCache::new();
        // A fanning-out source promotes to a full row after a few misses
        // and still answers exactly what per-pair Dijkstra would.
        for to in 1..8 {
            assert_eq!(
                cache.path_delay(&t, &state, NodeId(0), NodeId(to)),
                Some(ms(10))
            );
        }
        // Promotion must also cache unreachability correctly.
        for to in 1..8 {
            state.fail(NodeId(0), NodeId(to));
        }
        cache.invalidate();
        for to in 1..8 {
            assert_eq!(cache.path_delay(&t, &state, NodeId(0), NodeId(to)), None);
        }
    }

    #[test]
    fn full_mesh_link_count() {
        let t = Topology::full_mesh(5, ms(10));
        assert_eq!(t.links().count(), 10);
        assert_eq!(t.node_count(), 5);
        assert!(t.has_link(NodeId(0), NodeId(4)));
        assert!(t.has_link(NodeId(4), NodeId(0)), "links are undirected");
    }

    #[test]
    fn jittered_mesh_spreads_delays_deterministically() {
        let t1 = Topology::jittered_mesh(8, ms(10), ms(1), 42);
        let t2 = Topology::jittered_mesh(8, ms(10), ms(1), 42);
        assert_eq!(t1.links().count(), 28);
        let d1: Vec<SimDuration> = t1.links().map(|(_, d)| d).collect();
        let d2: Vec<SimDuration> = t2.links().map(|(_, d)| d).collect();
        assert_eq!(d1, d2, "same seed, same layout");
        // Delays stay inside base ± jitter and actually spread.
        for d in &d1 {
            assert!(d.micros() >= 9_000 && d.micros() <= 11_000, "{d:?}");
        }
        let distinct: std::collections::BTreeSet<u64> = d1.iter().map(|d| d.micros()).collect();
        assert!(distinct.len() > 1, "jitter must vary the links");
        // A different seed yields a different layout; zero jitter
        // degenerates to the uniform mesh.
        let t3 = Topology::jittered_mesh(8, ms(10), ms(1), 43);
        let d3: Vec<SimDuration> = t3.links().map(|(_, d)| d).collect();
        assert_ne!(d1, d3);
        let flat = Topology::jittered_mesh(4, ms(10), SimDuration::ZERO, 42);
        assert!(flat.links().all(|(_, d)| d == ms(10)));
    }

    #[test]
    fn ring_and_line_shapes() {
        let ring = Topology::ring(4, ms(1));
        assert_eq!(ring.links().count(), 4);
        let line = Topology::line(4, ms(1));
        assert_eq!(line.links().count(), 3);
        assert!(!line.has_link(NodeId(0), NodeId(3)));
        let star = Topology::star(4, ms(1));
        assert_eq!(star.links().count(), 3);
        assert_eq!(star.neighbors(NodeId(0)).len(), 3);
    }

    #[test]
    fn single_node_topologies_have_no_links() {
        assert_eq!(Topology::ring(1, ms(1)).links().count(), 0);
        assert_eq!(Topology::full_mesh(1, ms(1)).links().count(), 0);
    }

    #[test]
    #[should_panic(expected = "self-links")]
    fn self_link_panics() {
        Topology::new(2).add_link(NodeId(1), NodeId(1), ms(1));
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn out_of_range_link_panics() {
        Topology::new(2).add_link(NodeId(0), NodeId(5), ms(1));
    }

    #[test]
    fn duplicate_link_updates_delay_without_duplicating_adjacency() {
        let mut t = Topology::new(2);
        t.add_link(NodeId(0), NodeId(1), ms(10));
        t.add_link(NodeId(1), NodeId(0), ms(20));
        assert_eq!(t.links().count(), 1);
        assert_eq!(t.link_delay(NodeId(0), NodeId(1)), Some(ms(20)));
        assert_eq!(t.neighbors(NodeId(0)), &[(NodeId(1), ms(20))]);
    }

    #[test]
    fn path_delay_direct_and_multihop() {
        let t = Topology::line(3, ms(10));
        let up = LinkState::all_up();
        assert_eq!(t.path_delay(NodeId(0), NodeId(1), &up), Some(ms(10)));
        assert_eq!(t.path_delay(NodeId(0), NodeId(2), &up), Some(ms(20)));
        assert_eq!(
            t.path_delay(NodeId(1), NodeId(1), &up),
            Some(SimDuration::ZERO)
        );
    }

    #[test]
    fn path_delay_prefers_shortest() {
        // Triangle with one slow edge: 0-2 direct is 50ms; 0-1-2 is 20ms.
        let mut t = Topology::new(3);
        t.add_link(NodeId(0), NodeId(1), ms(10));
        t.add_link(NodeId(1), NodeId(2), ms(10));
        t.add_link(NodeId(0), NodeId(2), ms(50));
        let up = LinkState::all_up();
        assert_eq!(t.path_delay(NodeId(0), NodeId(2), &up), Some(ms(20)));
    }

    #[test]
    fn severed_link_forces_detour_or_disconnect() {
        let mut t = Topology::new(3);
        t.add_link(NodeId(0), NodeId(1), ms(10));
        t.add_link(NodeId(1), NodeId(2), ms(10));
        t.add_link(NodeId(0), NodeId(2), ms(50));
        let mut state = LinkState::all_up();
        state.fail(NodeId(0), NodeId(1));
        assert_eq!(t.path_delay(NodeId(0), NodeId(1), &state), Some(ms(60)));
        state.fail(NodeId(0), NodeId(2));
        assert_eq!(t.path_delay(NodeId(0), NodeId(1), &state), None);
        assert!(!t.connected(NodeId(0), NodeId(1), &state));
    }

    #[test]
    fn components_reflect_partitions() {
        let t = Topology::line(4, ms(1));
        let mut state = LinkState::all_up();
        assert_eq!(t.components(&state).len(), 1);
        state.fail(NodeId(1), NodeId(2));
        let comps = t.components(&state);
        assert_eq!(comps.len(), 2);
        assert!(comps[0].contains(&NodeId(0)) && comps[0].contains(&NodeId(1)));
        assert!(comps[1].contains(&NodeId(2)) && comps[1].contains(&NodeId(3)));
    }

    #[test]
    fn component_of_includes_start() {
        let t = Topology::new(3); // no links at all
        let state = LinkState::all_up();
        let comp = t.component_of(NodeId(1), &state);
        assert_eq!(comp.into_iter().collect::<Vec<_>>(), vec![NodeId(1)]);
        assert_eq!(t.components(&state).len(), 3);
    }
}
