//! Static network topology: nodes, undirected links, per-link delays.

use std::collections::{BTreeMap, BTreeSet, BinaryHeap, VecDeque};

use fragdb_model::NodeId;
use fragdb_sim::SimDuration;

use crate::linkstate::LinkState;

/// Canonical (smaller, larger) ordering for an undirected link.
pub(crate) fn canon(a: NodeId, b: NodeId) -> (NodeId, NodeId) {
    if a <= b {
        (a, b)
    } else {
        (b, a)
    }
}

/// The static link graph. Which links are *currently up* is tracked
/// separately in [`LinkState`] so one topology can be shared across
/// scenarios.
#[derive(Clone, Debug)]
pub struct Topology {
    n: u32,
    /// Undirected links with their one-way delay.
    links: BTreeMap<(NodeId, NodeId), SimDuration>,
    /// Adjacency lists, kept in sync with `links`.
    adj: BTreeMap<NodeId, Vec<NodeId>>,
}

impl Topology {
    /// An edgeless topology of `n` nodes (ids `0..n`).
    pub fn new(n: u32) -> Self {
        assert!(n > 0, "a network needs at least one node");
        Topology {
            n,
            links: BTreeMap::new(),
            adj: (0..n).map(|i| (NodeId(i), Vec::new())).collect(),
        }
    }

    /// Complete graph with uniform link delay.
    pub fn full_mesh(n: u32, delay: SimDuration) -> Self {
        let mut t = Topology::new(n);
        for a in 0..n {
            for b in (a + 1)..n {
                t.add_link(NodeId(a), NodeId(b), delay);
            }
        }
        t
    }

    /// Ring topology with uniform link delay.
    pub fn ring(n: u32, delay: SimDuration) -> Self {
        let mut t = Topology::new(n);
        if n > 1 {
            for a in 0..n {
                t.add_link(NodeId(a), NodeId((a + 1) % n), delay);
            }
        }
        t
    }

    /// Star centered on node 0 with uniform link delay.
    pub fn star(n: u32, delay: SimDuration) -> Self {
        let mut t = Topology::new(n);
        for b in 1..n {
            t.add_link(NodeId(0), NodeId(b), delay);
        }
        t
    }

    /// Line (path) topology 0–1–…–(n-1) with uniform link delay.
    pub fn line(n: u32, delay: SimDuration) -> Self {
        let mut t = Topology::new(n);
        for a in 1..n {
            t.add_link(NodeId(a - 1), NodeId(a), delay);
        }
        t
    }

    /// Add (or replace) an undirected link.
    ///
    /// # Panics
    /// Panics on self-links or out-of-range node ids.
    pub fn add_link(&mut self, a: NodeId, b: NodeId, delay: SimDuration) {
        assert!(a != b, "self-links are meaningless");
        assert!(a.0 < self.n && b.0 < self.n, "node id out of range");
        let key = canon(a, b);
        if self.links.insert(key, delay).is_none() {
            self.adj.get_mut(&a).expect("node exists").push(b);
            self.adj.get_mut(&b).expect("node exists").push(a);
        }
    }

    /// Number of nodes.
    pub fn node_count(&self) -> u32 {
        self.n
    }

    /// All node ids.
    pub fn nodes(&self) -> impl Iterator<Item = NodeId> + '_ {
        (0..self.n).map(NodeId)
    }

    /// All links as `((a, b), delay)` with `a < b`.
    pub fn links(&self) -> impl Iterator<Item = ((NodeId, NodeId), SimDuration)> + '_ {
        self.links.iter().map(|(&k, &d)| (k, d))
    }

    /// Does a (static) link exist between `a` and `b`?
    pub fn has_link(&self, a: NodeId, b: NodeId) -> bool {
        self.links.contains_key(&canon(a, b))
    }

    /// Delay of the direct link `a`–`b`, if one exists.
    pub fn link_delay(&self, a: NodeId, b: NodeId) -> Option<SimDuration> {
        self.links.get(&canon(a, b)).copied()
    }

    /// Neighbors of `node` over *static* links.
    pub fn neighbors(&self, node: NodeId) -> &[NodeId] {
        self.adj.get(&node).map(Vec::as_slice).unwrap_or(&[])
    }

    /// Shortest-path delay from `from` to `to` over links that are up,
    /// or `None` if they are disconnected. Dijkstra over link delays.
    pub fn path_delay(&self, from: NodeId, to: NodeId, state: &LinkState) -> Option<SimDuration> {
        if from == to {
            return Some(SimDuration::ZERO);
        }
        let mut dist: BTreeMap<NodeId, u64> = BTreeMap::new();
        let mut heap: BinaryHeap<std::cmp::Reverse<(u64, NodeId)>> = BinaryHeap::new();
        dist.insert(from, 0);
        heap.push(std::cmp::Reverse((0, from)));
        while let Some(std::cmp::Reverse((d, u))) = heap.pop() {
            if u == to {
                return Some(SimDuration(d));
            }
            if dist.get(&u).is_some_and(|&best| d > best) {
                continue;
            }
            for &v in self.neighbors(u) {
                if state.is_down(u, v) {
                    continue;
                }
                let w = self.links[&canon(u, v)].micros();
                let nd = d + w;
                if dist.get(&v).is_none_or(|&best| nd < best) {
                    dist.insert(v, nd);
                    heap.push(std::cmp::Reverse((nd, v)));
                }
            }
        }
        None
    }

    /// Are `a` and `b` in the same connected component over up links?
    pub fn connected(&self, a: NodeId, b: NodeId, state: &LinkState) -> bool {
        self.path_delay(a, b, state).is_some()
    }

    /// Nodes reachable from `start` over up links (including `start`).
    pub fn component_of(&self, start: NodeId, state: &LinkState) -> BTreeSet<NodeId> {
        let mut seen = BTreeSet::new();
        let mut queue = VecDeque::new();
        seen.insert(start);
        queue.push_back(start);
        while let Some(u) = queue.pop_front() {
            for &v in self.neighbors(u) {
                if !state.is_down(u, v) && seen.insert(v) {
                    queue.push_back(v);
                }
            }
        }
        seen
    }

    /// All connected components (the current "partition groups"), each a
    /// sorted node set, ordered by smallest member.
    pub fn components(&self, state: &LinkState) -> Vec<BTreeSet<NodeId>> {
        let mut out = Vec::new();
        let mut assigned = BTreeSet::new();
        for id in 0..self.n {
            let node = NodeId(id);
            if assigned.contains(&node) {
                continue;
            }
            let comp = self.component_of(node, state);
            assigned.extend(comp.iter().copied());
            out.push(comp);
        }
        out
    }
}

/// Memoized [`Topology::path_delay`] lookups for one link-state epoch.
///
/// A full-mesh simulation asks for the same `(from, to)` delay once per
/// packet; running Dijkstra each time is the dominant cost at 64 nodes
/// (the BENCH_pr3 superlinearity). The cache answers repeats in O(log n)
/// and must be [`invalidate`]d whenever the live [`LinkState`] changes —
/// both [`ReliableNet`] and [`Transport`] do so in their `apply_change`.
///
/// [`invalidate`]: RouteCache::invalidate
/// [`ReliableNet`]: crate::reliable::ReliableNet
/// [`Transport`]: crate::transport::Transport
#[derive(Clone, Debug, Default)]
pub struct RouteCache {
    cache: BTreeMap<(NodeId, NodeId), Option<SimDuration>>,
}

impl RouteCache {
    /// An empty cache.
    pub fn new() -> Self {
        RouteCache::default()
    }

    /// Drop every memoized route. Call on any link-state change.
    pub fn invalidate(&mut self) {
        self.cache.clear();
    }

    /// Cached [`Topology::path_delay`]: Dijkstra on first use per pair,
    /// map lookup afterwards. Unreachability (`None`) is cached too.
    pub fn path_delay(
        &mut self,
        topo: &Topology,
        state: &LinkState,
        from: NodeId,
        to: NodeId,
    ) -> Option<SimDuration> {
        if let Some(&d) = self.cache.get(&(from, to)) {
            return d;
        }
        let d = topo.path_delay(from, to, state);
        self.cache.insert((from, to), d);
        d
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ms(x: u64) -> SimDuration {
        SimDuration::from_millis(x)
    }

    #[test]
    fn route_cache_matches_dijkstra_and_invalidates() {
        let t = Topology::line(3, ms(10));
        let mut state = LinkState::all_up();
        let mut cache = RouteCache::new();
        assert_eq!(
            cache.path_delay(&t, &state, NodeId(0), NodeId(2)),
            Some(ms(20))
        );
        // Second lookup is served from the cache (same answer).
        assert_eq!(
            cache.path_delay(&t, &state, NodeId(0), NodeId(2)),
            Some(ms(20))
        );
        state.fail(NodeId(1), NodeId(2));
        cache.invalidate();
        assert_eq!(cache.path_delay(&t, &state, NodeId(0), NodeId(2)), None);
        // Unreachability is cached as well.
        assert_eq!(cache.path_delay(&t, &state, NodeId(0), NodeId(2)), None);
    }

    #[test]
    fn full_mesh_link_count() {
        let t = Topology::full_mesh(5, ms(10));
        assert_eq!(t.links().count(), 10);
        assert_eq!(t.node_count(), 5);
        assert!(t.has_link(NodeId(0), NodeId(4)));
        assert!(t.has_link(NodeId(4), NodeId(0)), "links are undirected");
    }

    #[test]
    fn ring_and_line_shapes() {
        let ring = Topology::ring(4, ms(1));
        assert_eq!(ring.links().count(), 4);
        let line = Topology::line(4, ms(1));
        assert_eq!(line.links().count(), 3);
        assert!(!line.has_link(NodeId(0), NodeId(3)));
        let star = Topology::star(4, ms(1));
        assert_eq!(star.links().count(), 3);
        assert_eq!(star.neighbors(NodeId(0)).len(), 3);
    }

    #[test]
    fn single_node_topologies_have_no_links() {
        assert_eq!(Topology::ring(1, ms(1)).links().count(), 0);
        assert_eq!(Topology::full_mesh(1, ms(1)).links().count(), 0);
    }

    #[test]
    #[should_panic(expected = "self-links")]
    fn self_link_panics() {
        Topology::new(2).add_link(NodeId(1), NodeId(1), ms(1));
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn out_of_range_link_panics() {
        Topology::new(2).add_link(NodeId(0), NodeId(5), ms(1));
    }

    #[test]
    fn duplicate_link_updates_delay_without_duplicating_adjacency() {
        let mut t = Topology::new(2);
        t.add_link(NodeId(0), NodeId(1), ms(10));
        t.add_link(NodeId(1), NodeId(0), ms(20));
        assert_eq!(t.links().count(), 1);
        assert_eq!(t.link_delay(NodeId(0), NodeId(1)), Some(ms(20)));
        assert_eq!(t.neighbors(NodeId(0)), &[NodeId(1)]);
    }

    #[test]
    fn path_delay_direct_and_multihop() {
        let t = Topology::line(3, ms(10));
        let up = LinkState::all_up();
        assert_eq!(t.path_delay(NodeId(0), NodeId(1), &up), Some(ms(10)));
        assert_eq!(t.path_delay(NodeId(0), NodeId(2), &up), Some(ms(20)));
        assert_eq!(
            t.path_delay(NodeId(1), NodeId(1), &up),
            Some(SimDuration::ZERO)
        );
    }

    #[test]
    fn path_delay_prefers_shortest() {
        // Triangle with one slow edge: 0-2 direct is 50ms; 0-1-2 is 20ms.
        let mut t = Topology::new(3);
        t.add_link(NodeId(0), NodeId(1), ms(10));
        t.add_link(NodeId(1), NodeId(2), ms(10));
        t.add_link(NodeId(0), NodeId(2), ms(50));
        let up = LinkState::all_up();
        assert_eq!(t.path_delay(NodeId(0), NodeId(2), &up), Some(ms(20)));
    }

    #[test]
    fn severed_link_forces_detour_or_disconnect() {
        let mut t = Topology::new(3);
        t.add_link(NodeId(0), NodeId(1), ms(10));
        t.add_link(NodeId(1), NodeId(2), ms(10));
        t.add_link(NodeId(0), NodeId(2), ms(50));
        let mut state = LinkState::all_up();
        state.fail(NodeId(0), NodeId(1));
        assert_eq!(t.path_delay(NodeId(0), NodeId(1), &state), Some(ms(60)));
        state.fail(NodeId(0), NodeId(2));
        assert_eq!(t.path_delay(NodeId(0), NodeId(1), &state), None);
        assert!(!t.connected(NodeId(0), NodeId(1), &state));
    }

    #[test]
    fn components_reflect_partitions() {
        let t = Topology::line(4, ms(1));
        let mut state = LinkState::all_up();
        assert_eq!(t.components(&state).len(), 1);
        state.fail(NodeId(1), NodeId(2));
        let comps = t.components(&state);
        assert_eq!(comps.len(), 2);
        assert!(comps[0].contains(&NodeId(0)) && comps[0].contains(&NodeId(1)));
        assert!(comps[1].contains(&NodeId(2)) && comps[1].contains(&NodeId(3)));
    }

    #[test]
    fn component_of_includes_start() {
        let t = Topology::new(3); // no links at all
        let state = LinkState::all_up();
        let comp = t.component_of(NodeId(1), &state);
        assert_eq!(comp.into_iter().collect::<Vec<_>>(), vec![NodeId(1)]);
        assert_eq!(t.components(&state).len(), 3);
    }
}
