//! Telemetry-driven fragment allocation (§6 partial replication).
//!
//! `BENCH_pr9.json` shows the real scaling wall is fan-out: with every
//! fragment fully replicated, a commit at 1024 nodes pays ~1023 broadcast
//! messages no matter how cheap the kernel gets. The paper's E12
//! experiment proves non-full replication preserves the availability and
//! serializability guarantees; this crate turns that observation into a
//! placement policy.
//!
//! The [`Allocator`] consumes per-node **access counts** (reads and writes
//! per fragment, recorded by the workload driver in an [`AccessStats`])
//! together with the current [`Placement`] and produces a [`Plan`] per
//! epoch that
//!
//! 1. **places replicas near readers** — a fragment's replica set keeps
//!    the nodes that actually read it;
//! 2. **migrates the token toward the heaviest writer** via the existing
//!    §4.4.2 move protocols (`System::move_agent_at`); and
//! 3. **shrinks the replica set** toward a configured replication factor
//!    (`System::shrink_replica_set_at`).
//!
//! Every decision is **deterministic**: ties are broken by a seeded
//! permutation derived from `(seed, epoch, fragment)`, and epochs advance
//! in virtual time under the driver's control, so two same-seed runs
//! produce byte-identical plans (see [`Plan::fingerprint`]). The
//! allocator is pure planning — it holds no reference to the system; the
//! driver applies a plan's decisions through the ordinary driver API,
//! which keeps the allocator off by default and golden traces
//! byte-identical.
//!
//! Convergence shape: a plan's replica set always contains both the
//! *current* home (so the shrink is immediately valid) and the *target*
//! home (so the migration lands inside the set). Once the token has moved,
//! the next epoch drops the old home and the set settles at the
//! replication factor.

use std::collections::{BTreeMap, BTreeSet};

use fragdb_model::{FragmentId, NodeId};
use fragdb_sim::metrics::{keys, Metrics};
use fragdb_sim::SimRng;

/// Per-fragment, per-node access counts recorded by the workload driver.
///
/// The driver — not the system — attributes accesses: updates execute at
/// the fragment home regardless of who submitted them, so only the driver
/// knows which node's client issued the write.
#[derive(Clone, Debug, Default)]
pub struct AccessStats {
    reads: BTreeMap<FragmentId, BTreeMap<NodeId, u64>>,
    writes: BTreeMap<FragmentId, BTreeMap<NodeId, u64>>,
}

impl AccessStats {
    /// Empty counts.
    pub fn new() -> Self {
        AccessStats::default()
    }

    /// Record one read of `fragment` issued from `node`.
    pub fn record_read(&mut self, fragment: FragmentId, node: NodeId) {
        *self
            .reads
            .entry(fragment)
            .or_default()
            .entry(node)
            .or_insert(0) += 1;
    }

    /// Record one write of `fragment` issued from `node`.
    pub fn record_write(&mut self, fragment: FragmentId, node: NodeId) {
        *self
            .writes
            .entry(fragment)
            .or_default()
            .entry(node)
            .or_insert(0) += 1;
    }

    /// Reads of `fragment` issued from `node`.
    pub fn reads(&self, fragment: FragmentId, node: NodeId) -> u64 {
        self.reads
            .get(&fragment)
            .and_then(|m| m.get(&node))
            .copied()
            .unwrap_or(0)
    }

    /// Writes of `fragment` issued from `node`.
    pub fn writes(&self, fragment: FragmentId, node: NodeId) -> u64 {
        self.writes
            .get(&fragment)
            .and_then(|m| m.get(&node))
            .copied()
            .unwrap_or(0)
    }

    /// Total writes of `fragment` across all nodes.
    pub fn total_writes(&self, fragment: FragmentId) -> u64 {
        self.writes
            .get(&fragment)
            .map(|m| m.values().sum())
            .unwrap_or(0)
    }

    /// Drop all counts (start of a new observation window).
    pub fn clear(&mut self) {
        self.reads.clear();
        self.writes.clear();
    }
}

/// The current cluster placement the allocator plans against.
#[derive(Clone, Debug)]
pub struct Placement {
    /// Number of nodes in the cluster.
    pub nodes: u32,
    /// Each fragment's current token home.
    pub homes: BTreeMap<FragmentId, NodeId>,
    /// Explicit replica sets; a fragment absent here is fully replicated.
    pub replica_sets: BTreeMap<FragmentId, BTreeSet<NodeId>>,
}

impl Placement {
    /// A fully replicated placement over `nodes` nodes.
    pub fn fully_replicated(
        nodes: u32,
        homes: impl IntoIterator<Item = (FragmentId, NodeId)>,
    ) -> Self {
        Placement {
            nodes,
            homes: homes.into_iter().collect(),
            replica_sets: BTreeMap::new(),
        }
    }

    /// The nodes currently holding a replica of `fragment`.
    pub fn replicas_of(&self, fragment: FragmentId) -> BTreeSet<NodeId> {
        match self.replica_sets.get(&fragment) {
            Some(set) => set.clone(),
            None => (0..self.nodes).map(NodeId).collect(),
        }
    }

    /// Apply a plan's decisions, yielding the placement the next epoch
    /// plans against (assumes every migration and shrink succeeded).
    pub fn after(&self, plan: &Plan) -> Placement {
        let mut next = self.clone();
        for d in &plan.decisions {
            next.homes.insert(d.fragment, d.target_home);
            next.replica_sets.insert(d.fragment, d.replica_set.clone());
        }
        next
    }
}

/// Allocator knobs.
#[derive(Clone, Copy, Debug)]
pub struct AllocConfig {
    /// Target replica-set size the allocator shrinks toward (floored at 1;
    /// §4.4.1 elections additionally want ≥ 3 — see Fdb061).
    pub replication_factor: u32,
    /// Seed for deterministic tie-breaks.
    pub seed: u64,
}

/// What one epoch decided for one fragment.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct FragmentDecision {
    /// The fragment planned.
    pub fragment: FragmentId,
    /// Where the token should live: the heaviest writer in the current
    /// replica set (ties seeded; the current home when nothing wrote).
    pub target_home: NodeId,
    /// Whether `target_home` differs from the current home (the driver
    /// issues a §4.4.2 move).
    pub migrate: bool,
    /// The planned replica set: current home ∪ target home ∪ heaviest
    /// readers, filled to the replication factor — always a subset of the
    /// current replica set, so the shrink is valid immediately.
    pub replica_set: BTreeSet<NodeId>,
    /// Whether `replica_set` is strictly smaller than the current one (the
    /// driver issues a shrink).
    pub shrink: bool,
}

/// One epoch's deterministic decisions.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Plan {
    /// The allocator epoch that produced this plan (1-based).
    pub epoch: u64,
    /// Per-fragment decisions, in fragment order.
    pub decisions: Vec<FragmentDecision>,
}

impl Plan {
    /// Number of token migrations this plan orders.
    pub fn migrations(&self) -> u64 {
        self.decisions.iter().filter(|d| d.migrate).count() as u64
    }

    /// Number of replica-set shrinks this plan orders.
    pub fn shrinks(&self) -> u64 {
        self.decisions.iter().filter(|d| d.shrink).count() as u64
    }

    /// The cost model: expected broadcast messages per committed update
    /// under this plan's placement — each fragment pays `|replicas| − 1`
    /// per commit, weighted by the fragment's share of observed writes
    /// (unweighted mean when nothing wrote).
    pub fn msgs_per_commit(&self, stats: &AccessStats) -> f64 {
        if self.decisions.is_empty() {
            return 0.0;
        }
        let total: u64 = self
            .decisions
            .iter()
            .map(|d| stats.total_writes(d.fragment))
            .sum();
        if total == 0 {
            let sum: u64 = self
                .decisions
                .iter()
                .map(|d| d.replica_set.len() as u64 - 1)
                .sum();
            return sum as f64 / self.decisions.len() as f64;
        }
        self.decisions
            .iter()
            .map(|d| {
                let w = stats.total_writes(d.fragment) as f64 / total as f64;
                w * (d.replica_set.len() as f64 - 1.0)
            })
            .sum()
    }

    /// Publish the plan under the registered metric keys:
    /// `alloc.migrations` accumulates across epochs;
    /// `alloc.msgs_per_commit` is a gauge in **milli-messages** per commit
    /// (`2500` = 2.5 messages), keeping the integer registry exact enough
    /// to compare placements.
    pub fn publish(&self, stats: &AccessStats, metrics: &mut Metrics) {
        metrics.add(keys::ALLOC_MIGRATIONS, self.migrations());
        let milli = (self.msgs_per_commit(stats) * 1000.0).round() as u64;
        metrics.set(keys::ALLOC_MSGS_PER_COMMIT, milli);
    }

    /// A canonical rendering of every decision — two same-seed runs must
    /// produce byte-identical fingerprints (tested by the equivalence
    /// suite).
    pub fn fingerprint(&self) -> String {
        let mut out = format!("epoch={}\n", self.epoch);
        for d in &self.decisions {
            let set: Vec<String> = d.replica_set.iter().map(|n| n.0.to_string()).collect();
            out.push_str(&format!(
                "frag={} home={} migrate={} shrink={} set=[{}]\n",
                d.fragment.0,
                d.target_home.0,
                d.migrate,
                d.shrink,
                set.join(",")
            ));
        }
        out
    }
}

/// The epoch-stepping planner.
#[derive(Clone, Debug)]
pub struct Allocator {
    cfg: AllocConfig,
    epoch: u64,
}

impl Allocator {
    /// A planner at epoch 0 (no plan produced yet).
    pub fn new(cfg: AllocConfig) -> Self {
        Allocator { cfg, epoch: 0 }
    }

    /// The last produced epoch (0 before the first plan).
    pub fn epoch(&self) -> u64 {
        self.epoch
    }

    /// Produce the next epoch's plan against `placement` using the access
    /// counts observed since the last epoch. Pure: applying the plan is
    /// the driver's job ([`Placement::after`] predicts the outcome).
    pub fn plan(&mut self, placement: &Placement, stats: &AccessStats) -> Plan {
        self.epoch += 1;
        let rf = self.cfg.replication_factor.max(1) as usize;
        let mut decisions = Vec::with_capacity(placement.homes.len());
        for (&fragment, &current_home) in &placement.homes {
            let candidates = placement.replicas_of(fragment);
            let rank = self.tie_rank(fragment, placement.nodes);
            // Heaviest writer in the current replica set; the current home
            // wins all-zero windows (no data ⇒ no churn).
            let target_home = candidates
                .iter()
                .copied()
                .max_by_key(|&c| {
                    (
                        stats.writes(fragment, c),
                        if c == current_home { 1 } else { 0 },
                        std::cmp::Reverse(rank[c.0 as usize]),
                    )
                })
                .unwrap_or(current_home);
            // Seed the set with both homes, then the heaviest readers, then
            // seeded filler — all drawn from the current replica set. A
            // migrating fragment keeps its old home in one transitional
            // slot *beyond* the replication factor, so the readers the set
            // exists for are not crowded out; the next epoch drops it.
            let mut set: BTreeSet<NodeId> = [current_home, target_home].into_iter().collect();
            let want = (rf + usize::from(target_home != current_home)).max(set.len());
            let mut readers: Vec<NodeId> = candidates
                .iter()
                .copied()
                .filter(|&c| !set.contains(&c) && stats.reads(fragment, c) > 0)
                .collect();
            readers.sort_by_key(|&c| {
                (
                    std::cmp::Reverse(stats.reads(fragment, c)),
                    rank[c.0 as usize],
                )
            });
            for r in readers {
                if set.len() >= want {
                    break;
                }
                set.insert(r);
            }
            if set.len() < want {
                let mut filler: Vec<NodeId> = candidates
                    .iter()
                    .copied()
                    .filter(|c| !set.contains(c))
                    .collect();
                filler.sort_by_key(|&c| rank[c.0 as usize]);
                for f in filler {
                    if set.len() >= want {
                        break;
                    }
                    set.insert(f);
                }
            }
            let shrink = set.len() < candidates.len();
            decisions.push(FragmentDecision {
                fragment,
                target_home,
                migrate: target_home != current_home,
                replica_set: set,
                shrink,
            });
        }
        Plan {
            epoch: self.epoch,
            decisions,
        }
    }

    /// A seeded permutation rank over the node ids: `rank[node]` is the
    /// node's position in a shuffle keyed by `(seed, epoch, fragment)`,
    /// used to break every tie deterministically but without a fixed
    /// lowest-id bias.
    fn tie_rank(&self, fragment: FragmentId, nodes: u32) -> Vec<u32> {
        let mut rng = SimRng::new(
            self.cfg
                .seed
                .wrapping_mul(0x9e37_79b9_7f4a_7c15)
                .wrapping_add(self.epoch)
                .rotate_left(17)
                ^ u64::from(fragment.0),
        );
        let mut perm: Vec<u32> = (0..nodes).collect();
        rng.shuffle(&mut perm);
        let mut rank = vec![0u32; nodes as usize];
        for (pos, &node) in perm.iter().enumerate() {
            rank[node as usize] = pos as u32;
        }
        rank
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn f(i: u32) -> FragmentId {
        FragmentId(i)
    }

    fn n(i: u32) -> NodeId {
        NodeId(i)
    }

    fn skewed_stats() -> AccessStats {
        let mut s = AccessStats::new();
        for _ in 0..50 {
            s.record_write(f(0), n(3));
        }
        for _ in 0..5 {
            s.record_write(f(0), n(0));
        }
        for _ in 0..40 {
            s.record_read(f(0), n(5));
        }
        for _ in 0..30 {
            s.record_read(f(0), n(6));
        }
        for _ in 0..1 {
            s.record_read(f(0), n(7));
        }
        s
    }

    #[test]
    fn counts_accumulate_and_clear() {
        let mut s = AccessStats::new();
        s.record_read(f(1), n(2));
        s.record_read(f(1), n(2));
        s.record_write(f(1), n(0));
        assert_eq!(s.reads(f(1), n(2)), 2);
        assert_eq!(s.writes(f(1), n(0)), 1);
        assert_eq!(s.total_writes(f(1)), 1);
        assert_eq!(s.reads(f(9), n(9)), 0);
        s.clear();
        assert_eq!(s.reads(f(1), n(2)), 0);
    }

    #[test]
    fn plan_migrates_to_heaviest_writer_and_keeps_readers() {
        let placement = Placement::fully_replicated(8, [(f(0), n(0))]);
        let mut a = Allocator::new(AllocConfig {
            replication_factor: 3,
            seed: 42,
        });
        let plan = a.plan(&placement, &skewed_stats());
        assert_eq!(plan.epoch, 1);
        let d = &plan.decisions[0];
        assert_eq!(d.target_home, n(3), "heaviest writer wins the token");
        assert!(d.migrate);
        assert!(d.shrink);
        // Both homes kept; the two heavy readers placed; RF honored plus
        // one transitional slot for the old home.
        assert!(d.replica_set.contains(&n(0)));
        assert!(d.replica_set.contains(&n(3)));
        assert!(d.replica_set.contains(&n(5)));
        assert!(d.replica_set.contains(&n(6)));
        assert_eq!(d.replica_set.len(), 4);
    }

    #[test]
    fn second_epoch_drops_the_old_home_and_settles_at_rf() {
        let placement = Placement::fully_replicated(8, [(f(0), n(0))]);
        let stats = skewed_stats();
        let mut a = Allocator::new(AllocConfig {
            replication_factor: 3,
            seed: 42,
        });
        let p1 = a.plan(&placement, &stats);
        let after1 = placement.after(&p1);
        assert_eq!(after1.homes[&f(0)], n(3));
        let p2 = a.plan(&after1, &stats);
        let d = &p2.decisions[0];
        assert!(!d.migrate, "token already at the heaviest writer");
        assert_eq!(d.replica_set.len(), 3);
        assert!(d.replica_set.contains(&n(3)));
        assert!(d.replica_set.contains(&n(5)));
        assert!(
            d.replica_set.is_subset(&after1.replicas_of(f(0))),
            "shrinks stay within the current set"
        );
        let after2 = after1.after(&p2);
        let p3 = a.plan(&after2, &stats);
        assert_eq!(p3.migrations() + p3.shrinks(), 0, "converged");
    }

    #[test]
    fn plans_are_byte_identical_across_same_seed_runs() {
        let run = |seed: u64| {
            let mut placement = Placement::fully_replicated(16, [(f(0), n(0)), (f(1), n(1))]);
            let mut s = AccessStats::new();
            // Symmetric counts everywhere: every choice is a pure tie-break.
            for node in 0..16 {
                s.record_write(f(0), n(node));
                s.record_write(f(1), n(node));
                s.record_read(f(0), n(node));
                s.record_read(f(1), n(node));
            }
            let mut a = Allocator::new(AllocConfig {
                replication_factor: 3,
                seed,
            });
            let mut out = String::new();
            for _ in 0..3 {
                let p = a.plan(&placement, &s);
                out.push_str(&p.fingerprint());
                placement = placement.after(&p);
            }
            out
        };
        assert_eq!(run(7), run(7), "same seed ⇒ byte-identical plans");
        assert_ne!(
            run(7),
            run(8),
            "tie-breaks must actually depend on the seed"
        );
    }

    #[test]
    fn quiet_window_leaves_the_placement_alone() {
        let placement = Placement {
            nodes: 8,
            homes: [(f(0), n(2))].into_iter().collect(),
            replica_sets: [(f(0), [n(1), n(2), n(4)].into_iter().collect())]
                .into_iter()
                .collect(),
        };
        let mut a = Allocator::new(AllocConfig {
            replication_factor: 3,
            seed: 1,
        });
        let p = a.plan(&placement, &AccessStats::new());
        let d = &p.decisions[0];
        assert_eq!(d.target_home, n(2), "no writes ⇒ no migration");
        assert!(!d.migrate);
        assert!(!d.shrink, "already at RF");
        assert_eq!(d.replica_set, placement.replicas_of(f(0)));
    }

    #[test]
    fn cost_model_weights_by_write_share() {
        let mut s = AccessStats::new();
        for _ in 0..3 {
            s.record_write(f(0), n(0));
        }
        s.record_write(f(1), n(0));
        let plan = Plan {
            epoch: 1,
            decisions: vec![
                FragmentDecision {
                    fragment: f(0),
                    target_home: n(0),
                    migrate: false,
                    replica_set: [n(0), n(1), n(2)].into_iter().collect(),
                    shrink: false,
                },
                FragmentDecision {
                    fragment: f(1),
                    target_home: n(0),
                    migrate: false,
                    replica_set: (0..7).map(n).collect(),
                    shrink: false,
                },
            ],
        };
        // 3/4 of writes pay 2 messages, 1/4 pay 6: 0.75*2 + 0.25*6 = 3.0.
        assert!((plan.msgs_per_commit(&s) - 3.0).abs() < 1e-9);
        let mut m = Metrics::new();
        plan.publish(&s, &mut m);
        assert_eq!(m.counter(keys::ALLOC_MSGS_PER_COMMIT), 3000);
        assert_eq!(m.counter(keys::ALLOC_MIGRATIONS), 0);
    }

    #[test]
    fn replication_factor_one_keeps_only_the_homes() {
        let placement = Placement::fully_replicated(4, [(f(0), n(1))]);
        let mut a = Allocator::new(AllocConfig {
            replication_factor: 1,
            seed: 3,
        });
        let mut s = AccessStats::new();
        s.record_write(f(0), n(1));
        let p = a.plan(&placement, &s);
        let d = &p.decisions[0];
        assert_eq!(d.replica_set, [n(1)].into_iter().collect());
        assert!(d.shrink);
        assert!(!d.migrate);
    }
}
