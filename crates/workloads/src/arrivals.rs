//! Arrival processes and access-skew generators for workload generation.
//!
//! Besides the original Poisson/periodic schedules, this module provides
//! the PR 8 scale-workload machinery: a [`Zipf`] rank sampler that models
//! hot-key/hot-user skew over populations of millions without any O(n)
//! table, and an [`OpenLoop`] driver whose arrivals are scheduled purely
//! from the offered rate — *independent of completions* — so overload
//! shows up as growing queues and lag instead of silently throttling the
//! generator the way a closed loop would.

use fragdb_sim::{SimDuration, SimRng, SimTime};

/// Zipf(θ) sampler over ranks `0..n` by rejection-inversion.
///
/// Rank `r` is drawn with probability proportional to `1/(r+1)^θ`, so rank
/// 0 is the hottest. Uses the rejection-inversion method of Hörmann &
/// Derflinger ("Rejection-inversion to generate variates from monotone
/// discrete distributions"): O(1) setup and O(1) expected time per sample
/// for any population size — no harmonic-number table, which matters when
/// `n` is in the millions.
#[derive(Clone, Debug)]
pub struct Zipf {
    n: u64,
    theta: f64,
    /// `H(1.5) - h(1)`: upper bound of the inversion domain.
    h_x1: f64,
    /// `H(n + 0.5)`: lower bound of the inversion domain.
    h_n: f64,
    /// Acceptance shortcut threshold.
    s: f64,
}

impl Zipf {
    /// Sampler over ranks `0..n` with skew `theta` (θ > 0; θ ≈ 0.99 is the
    /// customary YCSB-style default).
    ///
    /// # Panics
    /// Panics if `n == 0` or `theta <= 0`.
    pub fn new(n: u64, theta: f64) -> Self {
        assert!(n > 0, "population must be non-empty");
        assert!(theta > 0.0, "skew exponent must be positive");
        let mut z = Zipf {
            n,
            theta,
            h_x1: 0.0,
            h_n: 0.0,
            s: 0.0,
        };
        z.h_x1 = z.h_integral(1.5) - 1.0;
        z.h_n = z.h_integral(n as f64 + 0.5);
        z.s = 2.0 - z.h_integral_inverse(z.h_integral(2.5) - z.h(2.0));
        z
    }

    /// Population size.
    pub fn population(&self) -> u64 {
        self.n
    }

    /// `H(x) = ∫ t^-θ dt`, the antiderivative of the weight function,
    /// via `expm1`/`ln` so θ near 1 stays numerically stable.
    fn h_integral(&self, x: f64) -> f64 {
        let log_x = x.ln();
        if (1.0 - self.theta).abs() < 1e-9 {
            log_x
        } else {
            ((1.0 - self.theta) * log_x).exp_m1() / (1.0 - self.theta)
        }
    }

    /// The weight function `h(x) = x^-θ`.
    fn h(&self, x: f64) -> f64 {
        (-self.theta * x.ln()).exp()
    }

    /// Inverse of [`Zipf::h_integral`].
    fn h_integral_inverse(&self, x: f64) -> f64 {
        if (1.0 - self.theta).abs() < 1e-9 {
            x.exp()
        } else {
            // Clamp: limited precision can push the argument below the
            // function's range end.
            let t = (x * (1.0 - self.theta)).max(-1.0);
            (t.ln_1p() / (1.0 - self.theta)).exp()
        }
    }

    /// Draw a rank in `0..n` (0 = hottest).
    pub fn sample(&self, rng: &mut SimRng) -> u64 {
        if self.n == 1 {
            return 0;
        }
        loop {
            let u = self.h_n + rng.unit() * (self.h_x1 - self.h_n);
            let x = self.h_integral_inverse(u);
            let k = (x + 0.5).floor().clamp(1.0, self.n as f64);
            // Accept k if it is close enough to x (the overwhelmingly
            // common case) or if u falls inside k's exact weight slice.
            if k - x <= self.s || u >= self.h_integral(k + 0.5) - self.h(k) {
                return k as u64 - 1;
            }
        }
    }
}

/// One open-loop arrival: the instant it enters the system and the Zipf
/// rank of the simulated user issuing it (0 = hottest user).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Arrival {
    /// Arrival instant.
    pub at: SimTime,
    /// Issuing user's popularity rank in `0..users`.
    pub user: u64,
}

/// Configuration of an [`OpenLoop`] arrival stream.
#[derive(Clone, Copy, Debug)]
pub struct OpenLoopConfig {
    /// Simulated user population (Zipf-ranked; may be millions).
    pub users: u64,
    /// Zipf skew θ across users.
    pub theta: f64,
    /// Offered load in arrivals per simulated second.
    pub rate_per_sec: f64,
    /// First instant arrivals may occur at.
    pub start: SimTime,
    /// Arrivals stop at this instant (exclusive).
    pub horizon: SimTime,
}

/// Open-loop Poisson arrival stream with Zipf-distributed issuers.
///
/// "Open loop" means the next arrival depends only on the offered rate,
/// never on whether earlier requests completed: if the system falls
/// behind, arrivals keep coming and the backlog becomes measurable (peak
/// queue depth, commit→install lag) instead of the generator politely
/// waiting. Stream form — call [`OpenLoop::next_arrival`] — so a
/// million-user run never materializes its schedule.
#[derive(Clone, Debug)]
pub struct OpenLoop {
    zipf: Zipf,
    mean_gap_micros: f64,
    next_at: SimTime,
    horizon: SimTime,
    rate_per_sec: f64,
}

impl OpenLoop {
    /// Build the stream; the first arrival falls at `start` plus one
    /// exponential gap.
    ///
    /// # Panics
    /// Panics on a non-positive rate or an empty `[start, horizon)`.
    pub fn new(cfg: OpenLoopConfig, rng: &mut SimRng) -> Self {
        assert!(cfg.rate_per_sec > 0.0, "rate must be positive");
        assert!(cfg.start < cfg.horizon, "empty interval");
        let mean_gap_micros = 1e6 / cfg.rate_per_sec;
        let first = cfg.start + SimDuration(rng.exp_micros(mean_gap_micros));
        OpenLoop {
            zipf: Zipf::new(cfg.users, cfg.theta),
            mean_gap_micros,
            next_at: first,
            horizon: cfg.horizon,
            rate_per_sec: cfg.rate_per_sec,
        }
    }

    /// Offered load in arrivals per simulated second (for the
    /// `workload.offered_rate` metric).
    pub fn offered_rate(&self) -> f64 {
        self.rate_per_sec
    }

    /// Next arrival, or `None` once the horizon is reached.
    pub fn next_arrival(&mut self, rng: &mut SimRng) -> Option<Arrival> {
        if self.next_at >= self.horizon {
            return None;
        }
        let arrival = Arrival {
            at: self.next_at,
            user: self.zipf.sample(rng),
        };
        self.next_at += SimDuration(rng.exp_micros(self.mean_gap_micros));
        Some(arrival)
    }
}

/// Materialize a whole open-loop schedule (convenience for harness
/// configs at modest scale; benches use the streaming form).
pub fn open_loop_schedule(cfg: OpenLoopConfig, rng: &mut SimRng) -> Vec<Arrival> {
    let mut stream = OpenLoop::new(cfg, rng);
    let mut out = Vec::new();
    while let Some(a) = stream.next_arrival(rng) {
        out.push(a);
    }
    out
}

/// Generate arrival instants of a Poisson process with the given rate
/// (events per second) over `[start, horizon)`.
pub fn poisson(
    rng: &mut SimRng,
    rate_per_sec: f64,
    start: SimTime,
    horizon: SimTime,
) -> Vec<SimTime> {
    assert!(rate_per_sec > 0.0, "rate must be positive");
    assert!(start < horizon, "empty interval");
    let mean_gap_micros = 1e6 / rate_per_sec;
    let mut out = Vec::new();
    let mut t = start;
    loop {
        t += fragdb_sim::SimDuration(rng.exp_micros(mean_gap_micros));
        if t >= horizon {
            break;
        }
        out.push(t);
    }
    out
}

/// Evenly spaced instants (periodic tasks like the central office scan),
/// starting at `start + period`.
pub fn periodic(period: fragdb_sim::SimDuration, start: SimTime, horizon: SimTime) -> Vec<SimTime> {
    assert!(period.micros() > 0, "period must be positive");
    let mut out = Vec::new();
    let mut t = start + period;
    while t < horizon {
        out.push(t);
        t += period;
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use fragdb_sim::SimDuration;

    #[test]
    fn poisson_count_close_to_expectation() {
        let mut rng = SimRng::new(42);
        let times = poisson(&mut rng, 10.0, SimTime::ZERO, SimTime::from_secs(100));
        let expected = 1000.0;
        assert!(
            (times.len() as f64 - expected).abs() < expected * 0.2,
            "got {} arrivals, expected ~{expected}",
            times.len()
        );
        // Strictly increasing, within bounds.
        for w in times.windows(2) {
            assert!(w[0] < w[1]);
        }
        assert!(times.iter().all(|t| *t < SimTime::from_secs(100)));
    }

    #[test]
    fn poisson_is_deterministic_per_seed() {
        let a = poisson(
            &mut SimRng::new(7),
            5.0,
            SimTime::ZERO,
            SimTime::from_secs(10),
        );
        let b = poisson(
            &mut SimRng::new(7),
            5.0,
            SimTime::ZERO,
            SimTime::from_secs(10),
        );
        assert_eq!(a, b);
    }

    #[test]
    fn periodic_spacing() {
        let times = periodic(
            SimDuration::from_secs(10),
            SimTime::ZERO,
            SimTime::from_secs(35),
        );
        assert_eq!(
            times,
            vec![
                SimTime::from_secs(10),
                SimTime::from_secs(20),
                SimTime::from_secs(30)
            ]
        );
    }

    #[test]
    fn zipf_ranks_in_bounds_and_deterministic() {
        let z = Zipf::new(1_000_000, 0.99);
        let mut a = SimRng::new(42);
        let mut b = SimRng::new(42);
        for _ in 0..10_000 {
            let ra = z.sample(&mut a);
            assert!(ra < 1_000_000);
            assert_eq!(ra, z.sample(&mut b), "same seed, same stream");
        }
    }

    #[test]
    fn zipf_is_head_heavy() {
        // θ=0.99 over 1M ranks: rank 0 alone should draw a few percent of
        // samples (≈ 1/H where H ≈ 16.6), vastly above the uniform 1e-6.
        let z = Zipf::new(1_000_000, 0.99);
        let mut rng = SimRng::new(7);
        let samples = 20_000;
        let mut head = 0u64;
        let mut top8 = 0u64;
        for _ in 0..samples {
            let r = z.sample(&mut rng);
            if r == 0 {
                head += 1;
            }
            if r < 8 {
                top8 += 1;
            }
        }
        assert!(
            head as f64 / samples as f64 > 0.02,
            "rank 0 drew only {head}/{samples}"
        );
        assert!(
            top8 as f64 / samples as f64 > 0.15,
            "top-8 ranks drew only {top8}/{samples}"
        );
    }

    #[test]
    fn zipf_theta_one_and_singleton_edge_cases() {
        let z = Zipf::new(100, 1.0);
        let mut rng = SimRng::new(3);
        for _ in 0..1000 {
            assert!(z.sample(&mut rng) < 100);
        }
        let one = Zipf::new(1, 0.5);
        assert_eq!(one.sample(&mut rng), 0);
    }

    #[test]
    fn zipf_mild_skew_still_covers_tail() {
        let z = Zipf::new(1000, 0.5);
        let mut rng = SimRng::new(11);
        let mut tail = 0u64;
        for _ in 0..5000 {
            if z.sample(&mut rng) >= 500 {
                tail += 1;
            }
        }
        assert!(tail > 100, "mild skew should still reach the tail: {tail}");
    }

    #[test]
    fn open_loop_rate_and_horizon() {
        let cfg = OpenLoopConfig {
            users: 10_000,
            theta: 0.99,
            rate_per_sec: 200.0,
            start: SimTime::from_secs(1),
            horizon: SimTime::from_secs(11),
        };
        let arrivals = open_loop_schedule(cfg, &mut SimRng::new(42));
        let expected = 2000.0;
        assert!(
            (arrivals.len() as f64 - expected).abs() < expected * 0.2,
            "got {} arrivals, expected ~{expected}",
            arrivals.len()
        );
        for w in arrivals.windows(2) {
            assert!(w[0].at <= w[1].at, "arrivals must be time-ordered");
        }
        assert!(arrivals.iter().all(|a| a.at >= SimTime::from_secs(1)));
        assert!(arrivals.iter().all(|a| a.at < SimTime::from_secs(11)));
        assert!(arrivals.iter().all(|a| a.user < 10_000));
    }

    #[test]
    fn open_loop_stream_matches_materialized_schedule() {
        let cfg = OpenLoopConfig {
            users: 1000,
            theta: 0.8,
            rate_per_sec: 50.0,
            start: SimTime::ZERO,
            horizon: SimTime::from_secs(5),
        };
        let all = open_loop_schedule(cfg, &mut SimRng::new(9));
        let mut rng = SimRng::new(9);
        let mut stream = OpenLoop::new(cfg, &mut rng);
        assert!((stream.offered_rate() - 50.0).abs() < f64::EPSILON);
        let mut streamed = Vec::new();
        while let Some(a) = stream.next_arrival(&mut rng) {
            streamed.push(a);
        }
        assert_eq!(all, streamed);
    }

    #[test]
    fn poisson_respects_start() {
        let times = poisson(
            &mut SimRng::new(1),
            100.0,
            SimTime::from_secs(5),
            SimTime::from_secs(6),
        );
        assert!(times.iter().all(|t| *t >= SimTime::from_secs(5)));
        assert!(!times.is_empty());
    }
}
