//! Poisson arrival processes for workload generation.

use fragdb_sim::{SimRng, SimTime};

/// Generate arrival instants of a Poisson process with the given rate
/// (events per second) over `[start, horizon)`.
pub fn poisson(
    rng: &mut SimRng,
    rate_per_sec: f64,
    start: SimTime,
    horizon: SimTime,
) -> Vec<SimTime> {
    assert!(rate_per_sec > 0.0, "rate must be positive");
    assert!(start < horizon, "empty interval");
    let mean_gap_micros = 1e6 / rate_per_sec;
    let mut out = Vec::new();
    let mut t = start;
    loop {
        t += fragdb_sim::SimDuration(rng.exp_micros(mean_gap_micros));
        if t >= horizon {
            break;
        }
        out.push(t);
    }
    out
}

/// Evenly spaced instants (periodic tasks like the central office scan),
/// starting at `start + period`.
pub fn periodic(period: fragdb_sim::SimDuration, start: SimTime, horizon: SimTime) -> Vec<SimTime> {
    assert!(period.micros() > 0, "period must be positive");
    let mut out = Vec::new();
    let mut t = start + period;
    while t < horizon {
        out.push(t);
        t += period;
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use fragdb_sim::SimDuration;

    #[test]
    fn poisson_count_close_to_expectation() {
        let mut rng = SimRng::new(42);
        let times = poisson(&mut rng, 10.0, SimTime::ZERO, SimTime::from_secs(100));
        let expected = 1000.0;
        assert!(
            (times.len() as f64 - expected).abs() < expected * 0.2,
            "got {} arrivals, expected ~{expected}",
            times.len()
        );
        // Strictly increasing, within bounds.
        for w in times.windows(2) {
            assert!(w[0] < w[1]);
        }
        assert!(times.iter().all(|t| *t < SimTime::from_secs(100)));
    }

    #[test]
    fn poisson_is_deterministic_per_seed() {
        let a = poisson(
            &mut SimRng::new(7),
            5.0,
            SimTime::ZERO,
            SimTime::from_secs(10),
        );
        let b = poisson(
            &mut SimRng::new(7),
            5.0,
            SimTime::ZERO,
            SimTime::from_secs(10),
        );
        assert_eq!(a, b);
    }

    #[test]
    fn periodic_spacing() {
        let times = periodic(
            SimDuration::from_secs(10),
            SimTime::ZERO,
            SimTime::from_secs(35),
        );
        assert_eq!(
            times,
            vec![
                SimTime::from_secs(10),
                SimTime::from_secs(20),
                SimTime::from_secs(30)
            ]
        );
    }

    #[test]
    fn poisson_respects_start() {
        let times = poisson(
            &mut SimRng::new(1),
            100.0,
            SimTime::from_secs(5),
            SimTime::from_secs(6),
        );
        assert!(times.iter().all(|t| *t >= SimTime::from_secs(5)));
        assert!(!times.is_empty());
    }
}
