//! The wholesale warehouse application of §4.2.
//!
//! `k` warehouse fragments `W_1..W_k` (per-product quantity on hand plus a
//! running sales total) and a central fragment `C` holding purchase
//! decisions. Warehouses record sales and shipments locally — they read
//! and write only their own fragment. The central office periodically
//! scans every warehouse and updates its purchase plan — it reads
//! `W_1..W_k` and writes only `C`.
//!
//! The read-access graph is a star centered on `C`: **elementarily
//! acyclic**, so by the §4.2 theorem every execution is globally
//! serializable — with zero read synchronization, even during partitions.

use fragdb_core::{StrategyKind, Submission};
use fragdb_model::{AccessDecl, AgentId, FragmentCatalog, FragmentId, NodeId, ObjectId};

/// Configuration.
#[derive(Clone, Debug)]
pub struct WarehouseConfig {
    /// Number of warehouses (`k`).
    pub warehouses: u32,
    /// Products stocked at each warehouse.
    pub products: u32,
    /// Node hosting the central office.
    pub central: NodeId,
    /// Home node of each warehouse's agent.
    pub warehouse_homes: Vec<NodeId>,
    /// Reorder threshold: the central office plans a purchase when a
    /// product's total stock falls below this.
    pub reorder_below: i64,
}

/// Object layout.
#[derive(Clone, Debug)]
pub struct WarehouseSchema {
    /// The central purchase-decision fragment `C`.
    pub central: FragmentId,
    /// One planned-purchase object per product.
    pub plan_objs: Vec<ObjectId>,
    /// Warehouse fragments `W_i`.
    pub warehouse: Vec<FragmentId>,
    /// `qty_objs[w][p]`: quantity of product `p` on hand at warehouse `w`.
    pub qty_objs: Vec<Vec<ObjectId>>,
    /// `sales_objs[w]`: cumulative sales counter of warehouse `w`.
    pub sales_objs: Vec<ObjectId>,
}

impl WarehouseSchema {
    /// Build catalog, schema, and agent assignment.
    pub fn build(
        cfg: &WarehouseConfig,
    ) -> (
        FragmentCatalog,
        WarehouseSchema,
        Vec<(FragmentId, AgentId, NodeId)>,
    ) {
        assert_eq!(cfg.warehouse_homes.len(), cfg.warehouses as usize);
        let mut b = FragmentCatalog::builder();
        let (central, plan_objs) = b.add_fragment("C", cfg.products as usize);
        let mut warehouse = Vec::new();
        let mut qty_objs = Vec::new();
        let mut sales_objs = Vec::new();
        for w in 0..cfg.warehouses {
            let (f, objs) = b.add_fragment(format!("W{w}"), cfg.products as usize + 1);
            warehouse.push(f);
            sales_objs.push(objs[cfg.products as usize]);
            qty_objs.push(objs[..cfg.products as usize].to_vec());
        }
        let catalog = b.build();
        let mut agents = vec![(central, AgentId::Node(cfg.central), cfg.central)];
        for (&frag, &home) in warehouse.iter().zip(&cfg.warehouse_homes) {
            agents.push((frag, AgentId::Node(home), home));
        }
        let schema = WarehouseSchema {
            central,
            plan_objs,
            warehouse,
            qty_objs,
            sales_objs,
        };
        (catalog, schema, agents)
    }

    /// The §4.2 transaction-class declarations for this schema: warehouses
    /// touch only themselves; the central scan reads every warehouse.
    pub fn decls(&self) -> Vec<AccessDecl> {
        let mut decls = vec![AccessDecl::update(
            self.central,
            self.warehouse.iter().copied(),
        )];
        for &w in &self.warehouse {
            decls.push(AccessDecl::update(w, [w]));
        }
        decls
    }

    /// The validated §4.2 strategy for this schema.
    pub fn strategy(&self) -> StrategyKind {
        StrategyKind::AcyclicRag {
            decls: self.decls(),
            allow_violating_read_only: true,
        }
    }
}

/// Submission builders for the warehouse workload.
pub struct WarehouseDriver {
    /// The schema.
    pub schema: WarehouseSchema,
    cfg: WarehouseConfig,
}

impl WarehouseDriver {
    /// Create the driver.
    pub fn new(schema: WarehouseSchema, cfg: WarehouseConfig) -> Self {
        WarehouseDriver { schema, cfg }
    }

    /// A sale of `qty` units of `product` at `warehouse`: decrements the
    /// quantity on hand (refusing if stock is insufficient) and bumps the
    /// sales counter. Touches only `W_w`.
    pub fn sale(&self, warehouse: u32, product: u32, qty: i64) -> Submission {
        let q_obj = self.schema.qty_objs[warehouse as usize][product as usize];
        let s_obj = self.schema.sales_objs[warehouse as usize];
        Submission::update(
            self.schema.warehouse[warehouse as usize],
            Box::new(move |ctx| {
                let on_hand = ctx.read_int(q_obj, 0);
                if on_hand < qty {
                    return Err(ctx.abort(format!("stock {on_hand} < {qty}")));
                }
                ctx.write(q_obj, on_hand - qty)?;
                let sold = ctx.read_int(s_obj, 0);
                ctx.write(s_obj, sold + qty)?;
                Ok(())
            }),
        )
    }

    /// A shipment arriving at `warehouse`: increments the quantity on hand.
    pub fn shipment(&self, warehouse: u32, product: u32, qty: i64) -> Submission {
        let q_obj = self.schema.qty_objs[warehouse as usize][product as usize];
        Submission::update(
            self.schema.warehouse[warehouse as usize],
            Box::new(move |ctx| {
                let on_hand = ctx.read_int(q_obj, 0);
                ctx.write(q_obj, on_hand + qty)?;
                Ok(())
            }),
        )
    }

    /// The periodic central scan: reads every warehouse's quantities and
    /// plans purchases for under-stocked products. Reads `W_*`, writes `C`.
    pub fn central_scan(&self) -> Submission {
        let schema = self.schema.clone();
        let threshold = self.cfg.reorder_below;
        Submission::update(
            schema.central,
            Box::new(move |ctx| {
                for p in 0..schema.plan_objs.len() {
                    let total: i64 = (0..schema.warehouse.len())
                        .map(|w| ctx.read_int(schema.qty_objs[w][p], 0))
                        .sum();
                    if total < threshold {
                        ctx.write(schema.plan_objs[p], threshold - total)?;
                    }
                }
                Ok(())
            }),
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fragdb_core::{Notification, System, SystemConfig};
    use fragdb_graphs::ReadAccessGraph;
    use fragdb_net::{NetworkChange, Topology};
    use fragdb_sim::{SimDuration, SimTime};

    fn secs(s: u64) -> SimTime {
        SimTime::from_secs(s)
    }

    fn cfg(k: u32) -> WarehouseConfig {
        WarehouseConfig {
            warehouses: k,
            products: 2,
            central: NodeId(0),
            warehouse_homes: (1..=k).map(NodeId).collect(),
            reorder_below: 10,
        }
    }

    fn build(k: u32, seed: u64) -> (System, WarehouseDriver) {
        let c = cfg(k);
        let (catalog, schema, agents) = WarehouseSchema::build(&c);
        let strategy = schema.strategy();
        let sys = System::build(
            Topology::full_mesh(k + 1, SimDuration::from_millis(10)),
            catalog,
            agents,
            SystemConfig::unrestricted(seed).with_strategy(strategy),
        )
        .unwrap();
        (sys, WarehouseDriver::new(schema, c))
    }

    #[test]
    fn rag_is_a_star_and_elementarily_acyclic() {
        let c = cfg(5);
        let (_, schema, _) = WarehouseSchema::build(&c);
        let rag = ReadAccessGraph::from_decls(&schema.decls());
        assert!(rag.is_elementarily_acyclic(), "Figure 4.2.1 claim");
        assert_eq!(rag.edges().count(), 5);
        assert!(schema.strategy().validate().is_ok());
    }

    #[test]
    fn sales_and_scan_interleave_serializably() {
        let (mut sys, wh) = build(3, 1);
        for w in 0..3 {
            sys.submit_at(secs(1), wh.shipment(w, 0, 100));
            sys.submit_at(secs(1), wh.shipment(w, 1, 100));
        }
        for i in 0..10u64 {
            sys.submit_at(secs(2 + i), wh.sale((i % 3) as u32, (i % 2) as u32, 5));
        }
        sys.submit_at(secs(20), wh.central_scan());
        let notes = sys.run_until(secs(60));
        let committed = notes
            .iter()
            .filter(|n| matches!(n, Notification::Committed { .. }))
            .count();
        assert_eq!(committed, 17);
        let verdict = fragdb_graphs::analyze(&sys.history);
        assert!(verdict.globally_serializable, "§4.2 theorem");
    }

    #[test]
    fn warehouses_stay_available_during_partition() {
        let (mut sys, wh) = build(2, 2);
        sys.submit_at(secs(1), wh.shipment(0, 0, 50));
        sys.submit_at(secs(1), wh.shipment(1, 0, 50));
        // Partition every node from every other.
        sys.net_change_at(
            secs(5),
            NetworkChange::Split(vec![vec![NodeId(0)], vec![NodeId(1)], vec![NodeId(2)]]),
        );
        sys.submit_at(secs(6), wh.sale(0, 0, 10));
        sys.submit_at(secs(6), wh.sale(1, 0, 10));
        sys.submit_at(secs(7), wh.central_scan());
        let notes = sys.run_until(secs(30));
        let committed = notes
            .iter()
            .filter(|n| matches!(n, Notification::Committed { .. }))
            .count();
        assert_eq!(committed, 5, "all warehouse writes and the scan commit");
        sys.net_change_at(secs(40), NetworkChange::HealAll);
        sys.run_until(secs(120));
        assert!(sys.divergent_fragments().is_empty());
        assert!(fragdb_graphs::analyze(&sys.history).globally_serializable);
    }

    #[test]
    fn oversell_is_refused_locally() {
        let (mut sys, wh) = build(2, 3);
        sys.submit_at(secs(1), wh.sale(0, 0, 5)); // nothing on hand
        let notes = sys.run_until(secs(10));
        assert!(notes
            .iter()
            .any(|n| matches!(n, Notification::Aborted { .. })));
    }

    #[test]
    fn scan_plans_purchases_below_threshold() {
        let (mut sys, wh) = build(2, 4);
        sys.submit_at(secs(1), wh.shipment(0, 0, 3)); // total 3 < 10
        sys.submit_at(secs(1), wh.shipment(0, 1, 50)); // total 50 >= 10
        sys.submit_at(secs(10), wh.central_scan());
        sys.run_until(secs(60));
        let central = sys.replica(NodeId(0));
        assert_eq!(
            central.read(wh.schema.plan_objs[0]).as_int_or(0).unwrap(),
            7,
            "plan tops product 0 back to the threshold"
        );
        assert!(central.read(wh.schema.plan_objs[1]).is_null());
    }
}
