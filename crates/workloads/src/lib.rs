#![forbid(unsafe_code)]
#![warn(missing_docs)]

//! The paper's driving applications, as reusable workloads.
//!
//! * [`banking`] — §1/§2: accounts with BALANCES / ACTIVITY(i) /
//!   RECORDED(i) fragments, the central-office posting trigger, local
//!   views of balances, and overdraft fines as centralized corrective
//!   actions.
//! * [`warehouse`] — §4.2: `k` warehouse fragments plus a central
//!   purchasing fragment whose read-access graph is a star — elementarily
//!   acyclic, hence globally serializable with no read synchronization.
//! * [`airline`] — §4.3: customer request fragments `C_i` and flight
//!   fragments `F_j`; reservation requests are decoupled from grants, so
//!   customers get availability while the centralized grant decision
//!   prevents overbooking.
//! * [`partitions`] — randomized partition-scenario generators.
//! * [`arrivals`] — Poisson arrival-time generation, Zipf(θ) hot-key
//!   selection over large user populations, and the open-loop driver for
//!   overload-visible scale runs.

pub mod airline;
pub mod arrivals;
pub mod banking;
pub mod partitions;
pub mod warehouse;

pub use airline::{AirlineDriver, AirlineSchema};
pub use arrivals::{open_loop_schedule, Arrival, OpenLoop, OpenLoopConfig, Zipf};
pub use banking::{BankConfig, BankDriver, BankSchema};
pub use warehouse::{WarehouseConfig, WarehouseDriver, WarehouseSchema};
