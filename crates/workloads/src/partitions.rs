//! Randomized partition-scenario generators.

use fragdb_model::NodeId;
use fragdb_net::PartitionSchedule;
use fragdb_sim::{SimDuration, SimRng, SimTime};

/// A single split of the nodes into two groups for `[from, until)`.
pub fn single_split(
    group_a: Vec<NodeId>,
    group_b: Vec<NodeId>,
    from: SimTime,
    until: SimTime,
) -> PartitionSchedule {
    PartitionSchedule::none().split_between(from, until, vec![group_a, group_b])
}

/// Isolate one node for `[from, until)`.
pub fn isolate(node: NodeId, n_nodes: u32, from: SimTime, until: SimTime) -> PartitionSchedule {
    let others: Vec<NodeId> = (0..n_nodes).map(NodeId).filter(|&x| x != node).collect();
    single_split(vec![node], others, from, until)
}

/// Randomized alternating partitions: split into two random groups for an
/// exponential duration, heal for an exponential gap, repeat to `horizon`.
///
/// `disruption` in `[0, 1]` is the target fraction of time partitioned.
pub fn random_alternating(
    rng: &mut SimRng,
    n_nodes: u32,
    mean_partition: SimDuration,
    disruption: f64,
    horizon: SimTime,
) -> PartitionSchedule {
    assert!(n_nodes >= 2, "need at least two nodes to partition");
    assert!(
        (0.0..=1.0).contains(&disruption),
        "disruption is a fraction"
    );
    let mut schedule = PartitionSchedule::none();
    if disruption <= 0.0 {
        return schedule;
    }
    let mean_heal = if disruption >= 1.0 {
        SimDuration::ZERO
    } else {
        SimDuration((mean_partition.micros() as f64 * (1.0 - disruption) / disruption) as u64)
    };
    let mut t = SimTime::ZERO + SimDuration(rng.exp_micros(mean_heal.micros().max(1) as f64));
    while t < horizon {
        let dur = SimDuration(rng.exp_micros(mean_partition.micros().max(1) as f64));
        let end = t + dur;
        if end >= horizon {
            break;
        }
        // Random nonempty bipartition.
        let mut nodes: Vec<NodeId> = (0..n_nodes).map(NodeId).collect();
        rng.shuffle(&mut nodes);
        let cut = rng.gen_range(1..n_nodes as usize);
        let (a, b) = nodes.split_at(cut);
        schedule = schedule.split_between(t, end, vec![a.to_vec(), b.to_vec()]);
        t = end + SimDuration(rng.exp_micros(mean_heal.micros().max(1) as f64));
    }
    schedule
}

#[cfg(test)]
mod tests {
    use super::*;
    use fragdb_net::NetworkChange;

    #[test]
    fn isolate_builds_two_groups() {
        let s = isolate(NodeId(1), 4, SimTime::from_secs(1), SimTime::from_secs(2));
        assert_eq!(s.len(), 2);
        match &s.events()[0].1 {
            NetworkChange::Split(groups) => {
                assert_eq!(groups[0], vec![NodeId(1)]);
                assert_eq!(groups[1], vec![NodeId(0), NodeId(2), NodeId(3)]);
            }
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn random_alternating_respects_horizon_and_pairs() {
        let mut rng = SimRng::new(3);
        let s = random_alternating(
            &mut rng,
            5,
            SimDuration::from_secs(10),
            0.3,
            SimTime::from_secs(1000),
        );
        assert!(!s.is_empty(), "30% disruption over 1000s should partition");
        assert_eq!(s.len() % 2, 0, "split/heal pairs");
        for (t, _) in s.events() {
            assert!(*t < SimTime::from_secs(1000));
        }
    }

    #[test]
    fn random_alternating_disruption_fraction_roughly_matches() {
        let mut rng = SimRng::new(9);
        let horizon = SimTime::from_secs(10_000);
        let s = random_alternating(&mut rng, 4, SimDuration::from_secs(30), 0.4, horizon);
        let disrupted = s.disrupted_time(horizon).as_secs_f64();
        let frac = disrupted / horizon.as_secs_f64();
        assert!(
            (0.2..=0.6).contains(&frac),
            "observed disruption {frac}, wanted ~0.4"
        );
    }

    #[test]
    fn zero_disruption_is_empty() {
        let mut rng = SimRng::new(1);
        let s = random_alternating(
            &mut rng,
            3,
            SimDuration::from_secs(10),
            0.0,
            SimTime::from_secs(100),
        );
        assert!(s.is_empty());
    }

    #[test]
    fn deterministic_per_seed() {
        let a = random_alternating(
            &mut SimRng::new(5),
            4,
            SimDuration::from_secs(5),
            0.5,
            SimTime::from_secs(500),
        );
        let b = random_alternating(
            &mut SimRng::new(5),
            4,
            SimDuration::from_secs(5),
            0.5,
            SimTime::from_secs(500),
        );
        assert_eq!(a, b);
    }
}
