//! The airline reservation application of §4.3.
//!
//! Fragments, exactly as the paper's example:
//!
//! * `C_i` — customer `i`'s request objects `c_{i,j}` (seats wanted on
//!   flight `j`); agent: customer `i`. Requests are **write-only** and,
//!   once set, never change ("a customer cannot change his mind").
//! * `F_j` — flight `j`'s grant objects `f_{i,j}` (seats actually reserved
//!   for customer `i`); agent: the flight's node. The flight agent
//!   periodically scans every `C_i` and grants new requests unless that
//!   would overbook.
//!
//! Because requesting is decoupled from granting, customers enjoy full
//! availability during partitions while the **centralized** grant decision
//! guarantees no overbooking — "the best of both worlds" (§4.3). The
//! read-access graph (`F_j → C_i` for all i, j — Figure 4.3.3) is *not*
//! elementarily acyclic, so executions can be non-serializable globally;
//! they remain fragmentwise serializable, which experiment E6 verifies.

use fragdb_core::{Submission, System};
use fragdb_model::{AccessDecl, AgentId, FragmentCatalog, FragmentId, NodeId, ObjectId, UserId};

/// Object layout: `customers × flights`.
#[derive(Clone, Debug)]
pub struct AirlineSchema {
    /// Customer fragments `C_i`.
    pub customer: Vec<FragmentId>,
    /// `c_objs[i][j]`: customer `i`'s request for flight `j`.
    pub c_objs: Vec<Vec<ObjectId>>,
    /// Flight fragments `F_j`.
    pub flight: Vec<FragmentId>,
    /// `f_objs[j][i]`: seats granted to customer `i` on flight `j`.
    pub f_objs: Vec<Vec<ObjectId>>,
    /// Seat capacity per flight.
    pub capacity: i64,
}

impl AirlineSchema {
    /// Build the catalog and agent assignment: customer `i`'s agent homed
    /// at `customer_homes[i]`, flight `j`'s agent at `flight_homes[j]`.
    pub fn build(
        customers: u32,
        flights: u32,
        capacity: i64,
        customer_homes: &[NodeId],
        flight_homes: &[NodeId],
    ) -> (
        FragmentCatalog,
        AirlineSchema,
        Vec<(FragmentId, AgentId, NodeId)>,
    ) {
        assert_eq!(customer_homes.len(), customers as usize);
        assert_eq!(flight_homes.len(), flights as usize);
        let mut b = FragmentCatalog::builder();
        let mut customer = Vec::new();
        let mut c_objs = Vec::new();
        for i in 0..customers {
            let (f, objs) = b.add_fragment(format!("C{}", i + 1), flights as usize);
            customer.push(f);
            c_objs.push(objs);
        }
        let mut flight = Vec::new();
        let mut f_objs = Vec::new();
        for j in 0..flights {
            let (f, objs) = b.add_fragment(format!("F{}", j + 1), customers as usize);
            flight.push(f);
            f_objs.push(objs);
        }
        let catalog = b.build();
        let mut agents = Vec::new();
        for i in 0..customers as usize {
            agents.push((
                customer[i],
                AgentId::User(UserId(i as u32)),
                customer_homes[i],
            ));
        }
        for j in 0..flights as usize {
            agents.push((flight[j], AgentId::Node(flight_homes[j]), flight_homes[j]));
        }
        (
            catalog,
            AirlineSchema {
                customer,
                c_objs,
                flight,
                f_objs,
                capacity,
            },
            agents,
        )
    }

    /// Transaction-class declarations: flight scans read every customer
    /// fragment. (Not elementarily acyclic for ≥2 customers and ≥2
    /// flights — by design; the §4.3 example runs *without* the RAG
    /// restriction.)
    pub fn decls(&self) -> Vec<AccessDecl> {
        let mut decls = Vec::new();
        for &c in &self.customer {
            decls.push(AccessDecl::update(c, [c]));
        }
        for &f in &self.flight {
            decls.push(AccessDecl::update(f, self.customer.iter().copied()));
        }
        decls
    }
}

/// Submission builders for the airline workload.
pub struct AirlineDriver {
    /// The schema.
    pub schema: AirlineSchema,
}

impl AirlineDriver {
    /// Create the driver.
    pub fn new(schema: AirlineSchema) -> Self {
        AirlineDriver { schema }
    }

    /// Customer `i` requests `seats` on flight `j`: sets `c_{i,j}` if not
    /// already set (requests are immutable once made).
    pub fn request(&self, customer: u32, flight: u32, seats: i64) -> Submission {
        assert!(seats > 0);
        let obj = self.schema.c_objs[customer as usize][flight as usize];
        Submission::update(
            self.schema.customer[customer as usize],
            Box::new(move |ctx| {
                if !ctx.read(obj).is_null() {
                    return Err(ctx.abort("request already made"));
                }
                ctx.write(obj, seats)?;
                Ok(())
            }),
        )
    }

    /// Customer `i` requests seats on several flights in one transaction
    /// (all writes land in the one fragment `C_i`, so the initiation
    /// requirement is satisfied).
    pub fn request_many(&self, customer: u32, wants: Vec<(u32, i64)>) -> Submission {
        let objs: Vec<(ObjectId, i64)> = wants
            .into_iter()
            .map(|(flight, seats)| {
                assert!(seats > 0);
                (
                    self.schema.c_objs[customer as usize][flight as usize],
                    seats,
                )
            })
            .collect();
        Submission::update(
            self.schema.customer[customer as usize],
            Box::new(move |ctx| {
                for &(obj, seats) in &objs {
                    if !ctx.read(obj).is_null() {
                        return Err(ctx.abort("request already made"));
                    }
                    ctx.write(obj, seats)?;
                }
                Ok(())
            }),
        )
    }

    /// Flight `j`'s periodic scan: grant every new request that fits
    /// within the remaining capacity. Reads `C_*`, writes only `F_j`.
    pub fn flight_scan(&self, flight: u32) -> Submission {
        let schema = self.schema.clone();
        let j = flight as usize;
        Submission::update(
            schema.flight[j].to_owned(),
            Box::new(move |ctx| {
                let customers = schema.customer.len();
                let mut reserved: i64 = (0..customers)
                    .map(|i| ctx.read_int(schema.f_objs[j][i], 0))
                    .collect::<Vec<_>>()
                    .iter()
                    .sum();
                for i in 0..customers {
                    let granted = ctx.read_int(schema.f_objs[j][i], 0);
                    if granted != 0 {
                        continue; // already handled
                    }
                    let wanted = ctx.read_int(schema.c_objs[i][j], 0);
                    if wanted == 0 {
                        continue; // no (visible) request yet
                    }
                    if reserved + wanted > schema.capacity {
                        continue; // would overbook: leave ungranted
                    }
                    ctx.write(schema.f_objs[j][i], wanted)?;
                    reserved += wanted;
                }
                Ok(())
            }),
        )
    }

    /// Seats reserved on `flight` according to `node`'s replica.
    pub fn seats_reserved(&self, sys: &System, node: NodeId, flight: u32) -> i64 {
        let replica = sys.replica(node);
        self.schema.f_objs[flight as usize]
            .iter()
            .map(|&o| {
                replica
                    .read(o)
                    .as_int_or(0)
                    .expect("seat counts are integers")
            })
            .sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fragdb_core::{Notification, SystemConfig};
    use fragdb_graphs::ReadAccessGraph;
    use fragdb_net::{NetworkChange, Topology};
    use fragdb_sim::{SimDuration, SimTime};

    fn secs(s: u64) -> SimTime {
        SimTime::from_secs(s)
    }

    /// Paper's setup: 2 customers, 2 flights, all four agents on
    /// different nodes.
    fn build(seed: u64, capacity: i64) -> (System, AirlineDriver) {
        let (catalog, schema, agents) = AirlineSchema::build(
            2,
            2,
            capacity,
            &[NodeId(0), NodeId(1)],
            &[NodeId(2), NodeId(3)],
        );
        let sys = System::build(
            Topology::full_mesh(4, SimDuration::from_millis(10)),
            catalog,
            agents,
            SystemConfig::unrestricted(seed),
        )
        .unwrap();
        (sys, AirlineDriver::new(schema))
    }

    #[test]
    fn rag_of_figure_4_3_3_is_elementarily_cyclic() {
        let (_, schema, _) =
            AirlineSchema::build(2, 2, 10, &[NodeId(0), NodeId(1)], &[NodeId(2), NodeId(3)]);
        let rag = ReadAccessGraph::from_decls(&schema.decls());
        assert!(rag.is_acyclic(), "directed: no cycle");
        assert!(
            !rag.is_elementarily_acyclic(),
            "undirected square C1-F1-C2-F2"
        );
    }

    #[test]
    fn requests_granted_by_scans() {
        let (mut sys, air) = build(1, 10);
        sys.submit_at(secs(1), air.request(0, 0, 2));
        sys.submit_at(secs(2), air.request(1, 1, 3));
        sys.submit_at(secs(10), air.flight_scan(0));
        sys.submit_at(secs(10), air.flight_scan(1));
        sys.run_until(secs(60));
        assert_eq!(air.seats_reserved(&sys, NodeId(0), 0), 2);
        assert_eq!(air.seats_reserved(&sys, NodeId(0), 1), 3);
        assert!(sys.divergent_fragments().is_empty());
    }

    #[test]
    fn no_overbooking_even_when_requests_exceed_capacity() {
        let (mut sys, air) = build(2, 3);
        sys.submit_at(secs(1), air.request(0, 0, 2));
        sys.submit_at(secs(1), air.request(1, 0, 2));
        sys.submit_at(secs(10), air.flight_scan(0));
        sys.run_until(secs(60));
        let reserved = air.seats_reserved(&sys, NodeId(2), 0);
        assert_eq!(reserved, 2, "only one of the 2+2 requests fits in 3 seats");
        assert!(reserved <= 3, "never overbooked");
    }

    #[test]
    fn customers_stay_available_during_partition() {
        let (mut sys, air) = build(3, 10);
        sys.net_change_at(
            SimTime::ZERO,
            NetworkChange::Split(vec![
                vec![NodeId(0)],
                vec![NodeId(1)],
                vec![NodeId(2), NodeId(3)],
            ]),
        );
        sys.submit_at(secs(1), air.request(0, 0, 1));
        sys.submit_at(secs(1), air.request(1, 1, 1));
        let notes = sys.run_until(secs(10));
        let committed = notes
            .iter()
            .filter(|n| matches!(n, Notification::Committed { .. }))
            .count();
        assert_eq!(committed, 2, "both customers served while partitioned");
        // Scans during the partition see nothing (requests not propagated).
        sys.submit_at(secs(11), air.flight_scan(0));
        sys.run_until(secs(20));
        assert_eq!(air.seats_reserved(&sys, NodeId(2), 0), 0);
        // Heal; next scan grants.
        sys.net_change_at(secs(30), NetworkChange::HealAll);
        sys.submit_at(secs(40), air.flight_scan(0));
        sys.submit_at(secs(40), air.flight_scan(1));
        sys.run_until(secs(90));
        assert_eq!(air.seats_reserved(&sys, NodeId(0), 0), 1);
        assert_eq!(air.seats_reserved(&sys, NodeId(0), 1), 1);
        assert!(fragdb_graphs::analyze(&sys.history).fragmentwise_serializable());
    }

    #[test]
    fn request_is_immutable() {
        let (mut sys, air) = build(4, 10);
        sys.submit_at(secs(1), air.request(0, 0, 2));
        sys.submit_at(secs(5), air.request(0, 0, 5));
        let notes = sys.run_until(secs(30));
        assert!(notes.iter().any(|n| matches!(
            n,
            Notification::Aborted {
                reason: fragdb_core::AbortReason::Logic(_),
                ..
            }
        )));
    }
}
