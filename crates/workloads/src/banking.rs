//! The banking application of §1–§2.
//!
//! Fragment design, exactly as Figure 2.1/2.2:
//!
//! * **BALANCES** — one balance object per account; agent: the central
//!   office node.
//! * **ACTIVITY(i)** — per-account deposit/withdrawal records (a bounded
//!   number of entry slots; a deposit of $d writes `+d`, a withdrawal of
//!   $w writes `-w`); agent: the account's owner (a user), initially homed
//!   wherever the customer banks.
//! * **RECORDED(i)** — one boolean per ACTIVITY slot, flipped to `true`
//!   when the central office has posted that operation to BALANCES;
//!   agent: the central office.
//!
//! The *local view of balance* at any node is
//! `balance + Σ unrecorded deposits − Σ unrecorded withdrawals` — computed
//! from that node's replica alone, so withdrawals can be decided at any
//! node regardless of the network (§2's availability claim).
//!
//! [`BankDriver::react`] implements the central-office trigger: when an
//! ACTIVITY update becomes visible at the central node, it posts the
//! amount to BALANCES and flips RECORDED. If posting drives a balance
//! negative, the centralized **corrective action** fires: an overdraft
//! fine and a letter to the customer — decided only at the agent for
//! BALANCES, which is how the paper avoids the divergent-fines chaos
//! of §1.

use std::cell::RefCell;
use std::collections::BTreeSet;
use std::rc::Rc;

use fragdb_core::{Notification, Submission, System};
use fragdb_model::{AgentId, FragmentCatalog, FragmentId, NodeId, ObjectId, UserId, Value};
use fragdb_sim::{SimDuration, SimTime};
use fragdb_storage::Replica;

/// Static banking configuration.
#[derive(Clone, Debug)]
pub struct BankConfig {
    /// Number of accounts.
    pub accounts: u32,
    /// ACTIVITY slots pre-allocated per account (max ops per run).
    pub slots_per_account: u32,
    /// Node hosting the central office (agent of BALANCES and RECORDED).
    pub central: NodeId,
    /// Home node of each account's owner.
    pub account_homes: Vec<NodeId>,
    /// Fine charged when a posting overdraws an account (cents).
    pub overdraft_fine: i64,
}

/// Object layout of the banking schema.
#[derive(Clone, Debug)]
pub struct BankSchema {
    /// The BALANCES fragment.
    pub balances: FragmentId,
    /// Balance object per account.
    pub bal_objs: Vec<ObjectId>,
    /// ACTIVITY(i) fragment per account.
    pub activity: Vec<FragmentId>,
    /// ACTIVITY slots per account.
    pub act_objs: Vec<Vec<ObjectId>>,
    /// RECORDED(i) fragment per account.
    pub recorded: Vec<FragmentId>,
    /// RECORDED slots per account.
    pub rec_objs: Vec<Vec<ObjectId>>,
}

impl BankSchema {
    /// Build the catalog and the agent assignment from a config.
    pub fn build(
        cfg: &BankConfig,
    ) -> (
        FragmentCatalog,
        BankSchema,
        Vec<(FragmentId, AgentId, NodeId)>,
    ) {
        assert_eq!(
            cfg.account_homes.len(),
            cfg.accounts as usize,
            "one home per account"
        );
        let mut b = FragmentCatalog::builder();
        let (balances, bal_objs) = b.add_fragment("BALANCES", cfg.accounts as usize);
        let mut activity = Vec::new();
        let mut act_objs = Vec::new();
        let mut recorded = Vec::new();
        let mut rec_objs = Vec::new();
        for i in 0..cfg.accounts {
            let (f, objs) =
                b.add_fragment(format!("ACTIVITY({i:04})"), cfg.slots_per_account as usize);
            activity.push(f);
            act_objs.push(objs);
            let (f, objs) =
                b.add_fragment(format!("RECORDED({i:04})"), cfg.slots_per_account as usize);
            recorded.push(f);
            rec_objs.push(objs);
        }
        let catalog = b.build();
        let mut agents = vec![(balances, AgentId::Node(cfg.central), cfg.central)];
        for i in 0..cfg.accounts as usize {
            agents.push((
                activity[i],
                AgentId::User(UserId(i as u32)),
                cfg.account_homes[i],
            ));
            agents.push((recorded[i], AgentId::Node(cfg.central), cfg.central));
        }
        let schema = BankSchema {
            balances,
            bal_objs,
            activity,
            act_objs,
            recorded,
            rec_objs,
        };
        (catalog, schema, agents)
    }

    /// The §4.2 transaction-class declarations of the banking schema.
    /// Each ACTIVITY(i) class reads BALANCES and RECORDED(i); the central
    /// posting classes read nothing foreign. The undirected read-access
    /// graph is a forest (a star on BALANCES plus RECORDED leaves), so the
    /// banking design is admissible under §4.2 — a showcase of the
    /// paper's "good database design" claim.
    pub fn decls(&self) -> Vec<fragdb_model::AccessDecl> {
        use fragdb_model::AccessDecl;
        let mut decls = vec![AccessDecl::update(self.balances, [])];
        for i in 0..self.activity.len() {
            decls.push(AccessDecl::update(
                self.activity[i],
                [self.activity[i], self.balances, self.recorded[i]],
            ));
            decls.push(AccessDecl::update(self.recorded[i], []));
        }
        decls
    }

    /// The local view of `account`'s balance at `replica` (§2's formula).
    pub fn local_view(&self, replica: &Replica, account: usize) -> i64 {
        let balance = replica
            .read(self.bal_objs[account])
            .as_int_or(0)
            .expect("balance is an integer");
        let mut unrecorded = 0i64;
        for (k, &slot) in self.act_objs[account].iter().enumerate() {
            let amount = replica
                .read(slot)
                .as_int_or(0)
                .expect("amount is an integer");
            if amount == 0 {
                continue;
            }
            let posted = matches!(replica.read(self.rec_objs[account][k]), Value::Bool(true));
            if !posted {
                unrecorded += amount;
            }
        }
        balance + unrecorded
    }
}

/// One overdraft letter (corrective action evidence).
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Letter {
    /// Account concerned.
    pub account: u32,
    /// Balance after the offending posting (before the fine).
    pub balance_before_fine: i64,
    /// Fine charged.
    pub fine: i64,
    /// When the central office assessed it.
    pub at: SimTime,
}

/// The banking driver: submission builders plus the central-office trigger.
pub struct BankDriver {
    /// The schema (public for experiment code).
    pub schema: BankSchema,
    cfg: BankConfig,
    next_slot: Vec<u32>,
    processed: BTreeSet<(u32, u32)>,
    letters: Rc<RefCell<Vec<Letter>>>,
    /// Count of withdrawals refused locally (insufficient local view).
    pub refused: u64,
    declare_reads: bool,
    atomic_posting: bool,
}

impl BankDriver {
    /// Create the driver for a schema built from `cfg`.
    pub fn new(schema: BankSchema, cfg: BankConfig) -> Self {
        let accounts = cfg.accounts as usize;
        BankDriver {
            schema,
            cfg,
            next_slot: vec![0; accounts],
            processed: BTreeSet::new(),
            letters: Rc::new(RefCell::new(Vec::new())),
            refused: 0,
            declare_reads: false,
            atomic_posting: false,
        }
    }

    /// Post BALANCES and RECORDED atomically as one multi-fragment
    /// transaction (the §3.2-footnote two-phase commit) instead of two
    /// sibling single-fragment transactions. Both fragments' agent is the
    /// central office, so the 2PC degenerates to a local atomic commit —
    /// eliminating the window where the balance reflects an operation that
    /// RECORDED does not yet mark.
    pub fn with_atomic_posting(mut self) -> Self {
        self.atomic_posting = true;
        self
    }

    /// Declare withdrawals' foreign reads up front, as §4.1 read locking
    /// requires (the declared set is the account's balance plus its
    /// RECORDED slots — everything a withdrawal reads outside its own
    /// ACTIVITY fragment).
    pub fn with_declared_reads(mut self) -> Self {
        self.declare_reads = true;
        self
    }

    /// Letters the central office has sent so far.
    pub fn letters(&self) -> Vec<Letter> {
        self.letters.borrow().clone()
    }

    fn alloc_slot(&mut self, account: u32) -> Option<ObjectId> {
        let k = self.next_slot[account as usize];
        if k >= self.cfg.slots_per_account {
            return None;
        }
        self.next_slot[account as usize] = k + 1;
        Some(self.schema.act_objs[account as usize][k as usize])
    }

    /// A deposit: writes `+amount` into the account's next ACTIVITY slot.
    /// Returns `None` when the account ran out of pre-allocated slots.
    pub fn deposit(&mut self, account: u32, amount: i64) -> Option<Submission> {
        assert!(amount > 0, "deposits are positive");
        let slot = self.alloc_slot(account)?;
        let fragment = self.schema.activity[account as usize];
        Some(Submission::update(
            fragment,
            Box::new(move |ctx| {
                ctx.write(slot, amount)?;
                Ok(())
            }),
        ))
    }

    /// A withdrawal: checks the *local view* at the executing node and, if
    /// sufficient, writes `-amount` into the next ACTIVITY slot. With
    /// `strict`, insufficient local funds abort the transaction; otherwise
    /// the withdrawal is always recorded (the §2 semantics, where the
    /// central office fines overdrafts after the fact).
    pub fn withdraw(&mut self, account: u32, amount: i64, strict: bool) -> Option<Submission> {
        assert!(amount > 0, "withdrawals are positive");
        let slot = self.alloc_slot(account)?;
        let schema = self.schema.clone();
        let fragment = self.schema.activity[account as usize];
        let acct = account as usize;
        let foreign: Vec<fragdb_model::ObjectId> = if self.declare_reads {
            std::iter::once(self.schema.bal_objs[acct])
                .chain(self.schema.rec_objs[acct].iter().copied())
                .collect()
        } else {
            Vec::new()
        };
        Some(
            Submission::update(
                fragment,
                Box::new(move |ctx| {
                    // Compute the local view from this node's replica through
                    // transactional reads (so they enter the history).
                    let balance = ctx.read_int(schema.bal_objs[acct], 0);
                    let mut unrecorded = 0i64;
                    for (k, &s) in schema.act_objs[acct].iter().enumerate() {
                        if s == slot {
                            continue;
                        }
                        let a = ctx.read_int(s, 0);
                        if a == 0 {
                            continue;
                        }
                        let posted =
                            matches!(ctx.read(schema.rec_objs[acct][k]), Value::Bool(true));
                        if !posted {
                            unrecorded += a;
                        }
                    }
                    let view = balance + unrecorded;
                    if strict && view < amount {
                        return Err(
                            ctx.abort(format!("insufficient funds: local view {view} < {amount}"))
                        );
                    }
                    ctx.write(slot, -amount)?;
                    Ok(())
                }),
            )
            .with_foreign_reads(foreign),
        )
    }

    /// The central-office trigger. Call for every notification the system
    /// produces; reacts to ACTIVITY updates becoming visible at the
    /// central node by posting them to BALANCES and RECORDED.
    pub fn react(&mut self, sys: &mut System, at: SimTime, note: &Notification) {
        let account = match note {
            Notification::Installed { node, quasi, .. } if *node == self.cfg.central => {
                self.account_of_activity(quasi.fragment)
            }
            Notification::Committed { node, fragment, .. } if *node == self.cfg.central => {
                self.account_of_activity(*fragment)
            }
            _ => None,
        };
        let Some(account) = account else { return };
        self.post_visible_activity(sys, at, account);
    }

    fn account_of_activity(&self, fragment: FragmentId) -> Option<u32> {
        self.schema
            .activity
            .iter()
            .position(|&f| f == fragment)
            .map(|i| i as u32)
    }

    /// Post every visible-but-unprocessed ACTIVITY entry of `account`.
    fn post_visible_activity(&mut self, sys: &mut System, at: SimTime, account: u32) {
        let acct = account as usize;
        let central = self.cfg.central;
        let mut to_post = Vec::new();
        {
            let replica = sys.replica(central);
            for (k, &slot) in self.schema.act_objs[acct].iter().enumerate() {
                let amount = replica.read(slot).as_int_or(0).expect("amount is integer");
                if amount == 0 || self.processed.contains(&(account, k as u32)) {
                    continue;
                }
                to_post.push((k as u32, amount));
            }
        }
        for (k, amount) in to_post {
            self.processed.insert((account, k));
            let bal_obj = self.schema.bal_objs[acct];
            let rec_obj = self.schema.rec_objs[acct][k as usize];
            let fine = self.cfg.overdraft_fine;
            let letters = Rc::clone(&self.letters);
            let post =
                move |ctx: &mut fragdb_core::TxnCtx<'_>| -> Result<(), fragdb_core::ProgramError> {
                    let bal = ctx.read_int(bal_obj, 0);
                    let mut new = bal + amount;
                    if new < 0 {
                        letters.borrow_mut().push(Letter {
                            account,
                            balance_before_fine: new,
                            fine,
                            at: ctx.now(),
                        });
                        new -= fine;
                    }
                    ctx.write(bal_obj, new)?;
                    Ok(())
                };
            if self.atomic_posting {
                // One atomic posting across BALANCES and RECORDED(i).
                sys.submit_at(
                    at + SimDuration(1),
                    Submission::multi_update(
                        vec![self.schema.balances, self.schema.recorded[acct]],
                        Box::new(move |ctx| {
                            post(ctx)?;
                            ctx.write(rec_obj, true)?;
                            Ok(())
                        }),
                    ),
                );
            } else {
                // Posting transaction on BALANCES (single-fragment, per the
                // initiation requirement; RECORDED is flipped by a sibling
                // transaction — the paper's multi-fragment workaround).
                sys.submit_at(
                    at + SimDuration(1),
                    Submission::update(self.schema.balances, Box::new(post)),
                );
                sys.submit_at(
                    at + SimDuration(2),
                    Submission::update(
                        self.schema.recorded[acct],
                        Box::new(move |ctx| {
                            ctx.write(rec_obj, true)?;
                            Ok(())
                        }),
                    ),
                );
            }
        }
    }

    /// Pump the system to `limit`, running the trigger on every
    /// notification. Returns all notifications seen.
    pub fn run(&mut self, sys: &mut System, limit: SimTime) -> Vec<Notification> {
        let mut all = Vec::new();
        while let Some((at, notes)) = sys.step_until(limit) {
            for n in &notes {
                self.react(sys, at, n);
            }
            all.extend(notes);
        }
        all
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fragdb_core::SystemConfig;
    use fragdb_net::{NetworkChange, Topology};

    fn secs(s: u64) -> SimTime {
        SimTime::from_secs(s)
    }

    fn two_node_bank(seed: u64) -> (System, BankDriver) {
        let cfg = BankConfig {
            accounts: 1,
            slots_per_account: 8,
            central: NodeId(0),
            account_homes: vec![NodeId(1)],
            overdraft_fine: 50,
        };
        let (catalog, schema, agents) = BankSchema::build(&cfg);
        let sys = System::build(
            Topology::full_mesh(2, SimDuration::from_millis(10)),
            catalog,
            agents,
            SystemConfig::unrestricted(seed),
        )
        .unwrap();
        (sys, BankDriver::new(schema, cfg))
    }

    #[test]
    fn deposit_is_posted_by_central_office() {
        let (mut sys, mut bank) = two_node_bank(1);
        let dep = bank.deposit(0, 300).unwrap();
        sys.submit_at(secs(1), dep);
        bank.run(&mut sys, secs(30));
        // Balance posted at the central office and propagated back.
        for n in 0..2u32 {
            assert_eq!(
                sys.replica(NodeId(n)).read(bank.schema.bal_objs[0]),
                &Value::Int(300)
            );
        }
        // Once recorded, the local view equals the balance.
        assert_eq!(bank.schema.local_view(sys.replica(NodeId(1)), 0), 300);
        assert!(bank.letters().is_empty());
    }

    #[test]
    fn local_view_counts_unrecorded_activity() {
        let (mut sys, mut bank) = two_node_bank(2);
        // Cut the network: the deposit commits at node 1 but never reaches
        // the central office.
        sys.net_change_at(SimTime::ZERO, NetworkChange::LinkDown(NodeId(0), NodeId(1)));
        let dep = bank.deposit(0, 200).unwrap();
        sys.submit_at(secs(1), dep);
        bank.run(&mut sys, secs(30));
        assert_eq!(
            bank.schema.local_view(sys.replica(NodeId(1)), 0),
            200,
            "node 1 sees its own unrecorded deposit"
        );
        assert_eq!(
            bank.schema.local_view(sys.replica(NodeId(0)), 0),
            0,
            "central office hasn't seen it"
        );
    }

    #[test]
    fn paper_scenario_two_200_withdrawals_fined_once_centrally() {
        // §2: balance $300; two withdrawals of $200 during a partition.
        // Both are granted (availability); on heal the central office
        // discovers the overdraft and fines it exactly once.
        let cfg = BankConfig {
            accounts: 1,
            slots_per_account: 8,
            central: NodeId(0),
            account_homes: vec![NodeId(0)], // customer banks at A first
            overdraft_fine: 50,
        };
        let (catalog, schema, agents) = BankSchema::build(&cfg);
        let mut sys = System::build(
            Topology::full_mesh(2, SimDuration::from_millis(10)),
            catalog,
            agents,
            SystemConfig::unrestricted(3).with_move_policy(fragdb_core::MovePolicy::NoPrep),
        )
        .unwrap();
        let mut bank = BankDriver::new(schema, cfg);

        // Fund the account, fully posted.
        let dep = bank.deposit(0, 300).unwrap();
        sys.submit_at(secs(1), dep);
        bank.run(&mut sys, secs(10));

        // Partition; withdrawal at A (the customer is at node 0).
        sys.net_change_at(secs(10), NetworkChange::LinkDown(NodeId(0), NodeId(1)));
        let w1 = bank.withdraw(0, 200, false).unwrap();
        sys.submit_at(secs(11), w1);
        bank.run(&mut sys, secs(15));
        // The customer (token holder) goes to node B and withdraws again.
        sys.move_agent_at(secs(16), bank.schema.activity[0], NodeId(1));
        let w2 = bank.withdraw(0, 200, false).unwrap();
        sys.submit_at(secs(17), w2);
        bank.run(&mut sys, secs(20));

        // Both withdrawals were served: availability.
        assert!(sys.engine.metrics.counter("txn.committed") >= 3);

        // Heal: the second withdrawal reaches the central office, which
        // posts it, discovers the overdraft, and fines it.
        sys.net_change_at(secs(30), NetworkChange::HealAll);
        bank.run(&mut sys, secs(120));
        let letters = bank.letters();
        assert_eq!(letters.len(), 1, "exactly one centralized fine");
        assert_eq!(letters[0].balance_before_fine, -100);
        // Final balance: 300 - 200 - 200 - 50 = -150, identical everywhere.
        for n in 0..2u32 {
            assert_eq!(
                sys.replica(NodeId(n)).read(bank.schema.bal_objs[0]),
                &Value::Int(-150)
            );
        }
        assert!(sys.divergent_fragments().is_empty());
    }

    #[test]
    fn strict_withdrawal_refused_when_local_view_insufficient() {
        let (mut sys, mut bank) = two_node_bank(4);
        let w = bank.withdraw(0, 100, true).unwrap();
        sys.submit_at(secs(1), w);
        let notes = bank.run(&mut sys, secs(10));
        assert!(notes.iter().any(|n| matches!(
            n,
            Notification::Aborted {
                reason: fragdb_core::AbortReason::Logic(_),
                ..
            }
        )));
        assert_eq!(bank.schema.local_view(sys.replica(NodeId(1)), 0), 0);
    }

    #[test]
    fn slots_exhaust_gracefully() {
        let cfg = BankConfig {
            accounts: 1,
            slots_per_account: 2,
            central: NodeId(0),
            account_homes: vec![NodeId(1)],
            overdraft_fine: 0,
        };
        let (_, schema, _) = BankSchema::build(&cfg);
        let mut bank = BankDriver::new(schema, cfg);
        assert!(bank.deposit(0, 1).is_some());
        assert!(bank.deposit(0, 1).is_some());
        assert!(bank.deposit(0, 1).is_none());
    }
}

#[cfg(test)]
mod atomic_posting_tests {
    use super::*;
    use fragdb_core::SystemConfig;
    use fragdb_net::Topology;

    fn secs(s: u64) -> SimTime {
        SimTime::from_secs(s)
    }

    #[test]
    fn atomic_posting_reaches_the_same_state() {
        let mut finals = Vec::new();
        for atomic in [false, true] {
            let cfg = BankConfig {
                accounts: 1,
                slots_per_account: 8,
                central: NodeId(0),
                account_homes: vec![NodeId(1)],
                overdraft_fine: 50,
            };
            let (catalog, schema, agents) = BankSchema::build(&cfg);
            let mut sys = System::build(
                Topology::full_mesh(2, SimDuration::from_millis(10)),
                catalog,
                agents,
                SystemConfig::unrestricted(9),
            )
            .unwrap();
            let mut bank = BankDriver::new(schema, cfg);
            if atomic {
                bank = bank.with_atomic_posting();
            }
            let d = bank.deposit(0, 300).unwrap();
            sys.submit_at(secs(1), d);
            let w = bank.withdraw(0, 400, false).unwrap();
            sys.submit_at(secs(5), w);
            bank.run(&mut sys, secs(120));
            let bal = sys
                .replica(NodeId(0))
                .read(bank.schema.bal_objs[0])
                .as_int_or(0)
                .unwrap();
            // 300 - 400 = -100, fined 50 => -150.
            assert_eq!(bal, -150, "atomic={atomic}");
            assert_eq!(bank.letters().len(), 1, "atomic={atomic}");
            assert!(sys.divergent_fragments().is_empty());
            // Fully recorded: local view equals balance everywhere.
            assert_eq!(bank.schema.local_view(sys.replica(NodeId(1)), 0), bal);
            finals.push(bal);
        }
        assert_eq!(finals[0], finals[1]);
    }

    #[test]
    fn atomic_posting_leaves_no_posted_but_unrecorded_window() {
        let cfg = BankConfig {
            accounts: 1,
            slots_per_account: 8,
            central: NodeId(0),
            account_homes: vec![NodeId(0)],
            overdraft_fine: 0,
        };
        let (catalog, schema, agents) = BankSchema::build(&cfg);
        let mut sys = System::build(
            Topology::full_mesh(2, SimDuration::from_millis(10)),
            catalog,
            agents,
            SystemConfig::unrestricted(10),
        )
        .unwrap();
        let mut bank = BankDriver::new(schema, cfg).with_atomic_posting();
        let d = bank.deposit(0, 100).unwrap();
        sys.submit_at(secs(1), d);
        // Step the system one event at a time: whenever the balance shows
        // the deposit, RECORDED must already show it too (same-event
        // atomicity at the central office).
        let bal_obj = bank.schema.bal_objs[0];
        let rec_obj = bank.schema.rec_objs[0][0];
        while let Some((at, notes)) = sys.step_until(secs(60)) {
            for n in &notes {
                bank.react(&mut sys, at, n);
            }
            let central = sys.replica(NodeId(0));
            let posted = central.read(bal_obj).as_int_or(0).unwrap() == 100;
            if posted {
                assert_eq!(
                    central.read(rec_obj),
                    &Value::Bool(true),
                    "posted balance without RECORDED mark at {at}"
                );
            }
        }
    }
}
