//! Newtype identifiers.
//!
//! Every entity in the system is addressed by a small copyable ID. Newtypes
//! (rather than bare integers) make it impossible to, say, index a node
//! table with a fragment number — the kind of mix-up that silently corrupts
//! a simulation.

use std::fmt;

macro_rules! id_type {
    ($(#[$doc:meta])* $name:ident, $prefix:literal, $repr:ty) => {
        $(#[$doc])*
        #[derive(
            Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash,
        )]
        pub struct $name(pub $repr);

        impl $name {
            /// Raw numeric value.
            #[inline]
            pub fn raw(self) -> $repr {
                self.0
            }
        }

        impl fmt::Debug for $name {
            fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
                write!(f, concat!($prefix, "{}"), self.0)
            }
        }

        impl fmt::Display for $name {
            fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
                write!(f, concat!($prefix, "{}"), self.0)
            }
        }

        impl From<$repr> for $name {
            fn from(v: $repr) -> Self {
                $name(v)
            }
        }
    };
}

id_type!(
    /// A computer site in the network (§3.1: one of the `n` nodes).
    NodeId,
    "N",
    u32
);

id_type!(
    /// A human user external to the system (§3.1).
    UserId,
    "U",
    u32
);

id_type!(
    /// One of the `k` disjoint fragments the database is divided into.
    FragmentId,
    "F",
    u32
);

id_type!(
    /// A replicated data object. Object-to-fragment assignment lives in the
    /// [`crate::fragment::FragmentCatalog`].
    ObjectId,
    "x",
    u64
);

/// A transaction identifier: unique as `(home node, per-node sequence)`.
///
/// The paper's broadcast requirement (§3.2) orders messages *per sender*, so
/// identifying transactions by their home node plus a local counter gives a
/// total order per origin for free.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct TxnId {
    /// Home node of the transaction (where it was initiated and executed).
    pub origin: NodeId,
    /// Position in the origin node's local sequence of transactions.
    pub seq: u64,
}

impl TxnId {
    /// Construct from parts.
    pub fn new(origin: NodeId, seq: u64) -> Self {
        TxnId { origin, seq }
    }
}

impl fmt::Debug for TxnId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "T{}.{}", self.origin.0, self.seq)
    }
}

impl fmt::Display for TxnId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "T{}.{}", self.origin.0, self.seq)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::BTreeSet;

    #[test]
    fn ids_display_with_prefixes() {
        assert_eq!(NodeId(3).to_string(), "N3");
        assert_eq!(UserId(1).to_string(), "U1");
        assert_eq!(FragmentId(2).to_string(), "F2");
        assert_eq!(ObjectId(99).to_string(), "x99");
        assert_eq!(TxnId::new(NodeId(1), 7).to_string(), "T1.7");
    }

    #[test]
    fn ids_are_distinct_types() {
        // This is a compile-time property; here we just confirm raw access.
        assert_eq!(NodeId(5).raw(), 5u32);
        assert_eq!(ObjectId(5).raw(), 5u64);
    }

    #[test]
    fn from_integer_conversion() {
        let n: NodeId = 4u32.into();
        assert_eq!(n, NodeId(4));
    }

    #[test]
    fn txn_ids_order_by_origin_then_seq() {
        let a = TxnId::new(NodeId(1), 5);
        let b = TxnId::new(NodeId(1), 6);
        let c = TxnId::new(NodeId(2), 0);
        assert!(a < b);
        assert!(b < c);
    }

    #[test]
    fn txn_ids_hash_distinctly() {
        let mut set = BTreeSet::new();
        for origin in 0..4u32 {
            for seq in 0..4u64 {
                set.insert(TxnId::new(NodeId(origin), seq));
            }
        }
        assert_eq!(set.len(), 16);
    }
}
