//! Shared error type for model-level violations.

use std::fmt;

use crate::ids::{FragmentId, NodeId, ObjectId, TxnId};

/// Errors raised by model-level validation.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum ModelError {
    /// A value was read with the wrong type.
    TypeMismatch {
        /// Expected variant name.
        expected: &'static str,
        /// Found variant name.
        found: &'static str,
    },
    /// An object was assigned to two fragments (fragments must be disjoint, §3.1).
    OverlappingFragments {
        /// The doubly-assigned object.
        object: ObjectId,
        /// First fragment claiming it.
        first: FragmentId,
        /// Second fragment claiming it.
        second: FragmentId,
    },
    /// An object referenced by a transaction is in no fragment.
    UnknownObject(ObjectId),
    /// A fragment id was referenced but never declared.
    UnknownFragment(FragmentId),
    /// A node id was referenced but does not exist.
    UnknownNode(NodeId),
    /// The initiation requirement (§3.2) was violated: an update transaction
    /// wrote outside the initiating agent's fragment.
    InitiationViolation {
        /// Offending transaction.
        txn: TxnId,
        /// Fragment the initiating agent controls.
        agent_fragment: FragmentId,
        /// Object written outside that fragment.
        object: ObjectId,
    },
    /// A write carried no value or a read carried one.
    MalformedOp(&'static str),
}

impl fmt::Display for ModelError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ModelError::TypeMismatch { expected, found } => {
                write!(f, "type mismatch: expected {expected}, found {found}")
            }
            ModelError::OverlappingFragments {
                object,
                first,
                second,
            } => write!(
                f,
                "object {object} assigned to both fragment {first} and fragment {second}"
            ),
            ModelError::UnknownObject(o) => write!(f, "object {o} is in no fragment"),
            ModelError::UnknownFragment(fr) => write!(f, "fragment {fr} not declared"),
            ModelError::UnknownNode(n) => write!(f, "node {n} does not exist"),
            ModelError::InitiationViolation {
                txn,
                agent_fragment,
                object,
            } => write!(
                f,
                "initiation requirement violated: {txn} (agent of {agent_fragment}) writes {object}"
            ),
            ModelError::MalformedOp(msg) => write!(f, "malformed operation: {msg}"),
        }
    }
}

impl std::error::Error for ModelError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_covers_all_variants() {
        let cases: Vec<ModelError> = vec![
            ModelError::TypeMismatch {
                expected: "Int",
                found: "Bool",
            },
            ModelError::OverlappingFragments {
                object: ObjectId(1),
                first: FragmentId(0),
                second: FragmentId(1),
            },
            ModelError::UnknownObject(ObjectId(2)),
            ModelError::UnknownFragment(FragmentId(3)),
            ModelError::UnknownNode(NodeId(4)),
            ModelError::InitiationViolation {
                txn: TxnId::new(NodeId(0), 1),
                agent_fragment: FragmentId(0),
                object: ObjectId(9),
            },
            ModelError::MalformedOp("write without value"),
        ];
        for c in cases {
            assert!(!c.to_string().is_empty());
        }
    }

    #[test]
    fn is_std_error() {
        fn takes_err(_: &dyn std::error::Error) {}
        takes_err(&ModelError::UnknownObject(ObjectId(0)));
    }
}
