//! Transactions, operations, and quasi-transactions.
//!
//! §3.2 distinguishes **update** transactions (initiated only by the
//! fragment's agent, writes confined to that fragment) from **read-only**
//! transactions (initiated by any agent). A committed update transaction is
//! propagated to the other replicas as a **quasi-transaction**: a write-only
//! batch `(T; d1,v1; …; dn,vn)` that is installed atomically, never re-run.
//!
//! Two representations coexist:
//!
//! * [`TxnSpec`] — a literal sequence of [`Op`]s, used to replay the exact
//!   schedules printed in the paper (§4.3's airline schedule, the Appendix
//!   example) and by generated workloads.
//! * [`AccessDecl`] — a transaction *class* declaration (which fragments it
//!   reads, which it writes). Classes are what the read-access graph of
//!   §4.2 is built from.

use std::collections::BTreeSet;
use std::sync::Arc;

use crate::error::ModelError;
use crate::fragment::FragmentCatalog;
use crate::ids::{FragmentId, NodeId, ObjectId, TxnId};
use crate::value::Value;

/// The immutable `(d_i, v_i)` payload of a quasi-transaction, shared by
/// reference count.
///
/// A committed update's write batch is broadcast to every other replica,
/// buffered for retransmission, held back for ordered installation, staged
/// for majority commit, and logged in each WAL — all as *copies of the same
/// immutable data*. Sharing one allocation makes each of those copies an
/// O(1) reference-count bump instead of an O(payload) deep clone, so a
/// commit materializes its payload exactly once regardless of the replica
/// count (the paper's r−1 messages stay r−1 *pointers*, §6).
///
/// Cloning an `Updates` is always cheap; building one from a `Vec` is the
/// single per-commit materialization.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Updates(Arc<[(ObjectId, Value)]>);

impl Updates {
    /// Materialize a payload from owned pairs. This is the one deep copy a
    /// commit performs; every subsequent [`Clone`] shares it.
    pub fn new(pairs: Vec<(ObjectId, Value)>) -> Self {
        Updates(pairs.into())
    }

    /// An empty payload.
    pub fn empty() -> Self {
        Updates(Arc::from(Vec::new()))
    }

    /// Approximate in-memory size of the payload in bytes (pairs plus text
    /// heap) — the quantity a deep clone would copy. Used by the payload
    /// cost-model metrics.
    pub fn approx_bytes(&self) -> u64 {
        let inline = std::mem::size_of::<(ObjectId, Value)>() * self.0.len();
        let heap: usize = self
            .0
            .iter()
            .map(|(_, v)| match v {
                Value::Text(s) => s.len(),
                _ => 0,
            })
            .sum();
        (inline + heap) as u64
    }

    /// Copy the payload out into an owned `Vec` (a deliberate deep copy,
    /// e.g. for a driver-facing notification).
    pub fn to_vec(&self) -> Vec<(ObjectId, Value)> {
        self.0.to_vec()
    }
}

impl std::ops::Deref for Updates {
    type Target = [(ObjectId, Value)];
    fn deref(&self) -> &Self::Target {
        &self.0
    }
}

impl From<Vec<(ObjectId, Value)>> for Updates {
    fn from(pairs: Vec<(ObjectId, Value)>) -> Self {
        Updates::new(pairs)
    }
}

impl FromIterator<(ObjectId, Value)> for Updates {
    fn from_iter<I: IntoIterator<Item = (ObjectId, Value)>>(iter: I) -> Self {
        Updates(iter.into_iter().collect())
    }
}

impl<'a> IntoIterator for &'a Updates {
    type Item = &'a (ObjectId, Value);
    type IntoIter = std::slice::Iter<'a, (ObjectId, Value)>;
    fn into_iter(self) -> Self::IntoIter {
        self.0.iter()
    }
}

/// Read or write.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum OpKind {
    /// Read a data object.
    Read,
    /// Write a data object.
    Write,
}

/// One atomic action, the paper's `(T, r|w, d)` triplet (plus the written
/// value for writes).
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Op {
    /// Read or write.
    pub kind: OpKind,
    /// Target data object.
    pub object: ObjectId,
    /// `Some` for writes, `None` for reads.
    pub value: Option<Value>,
}

impl Op {
    /// A read action.
    pub fn read(object: ObjectId) -> Op {
        Op {
            kind: OpKind::Read,
            object,
            value: None,
        }
    }

    /// A write action with its new value.
    pub fn write(object: ObjectId, value: impl Into<Value>) -> Op {
        Op {
            kind: OpKind::Write,
            object,
            value: Some(value.into()),
        }
    }

    /// Check the read/value invariant.
    pub fn validate(&self) -> Result<(), ModelError> {
        match (self.kind, &self.value) {
            (OpKind::Read, Some(_)) => Err(ModelError::MalformedOp("read carries a value")),
            (OpKind::Write, None) => Err(ModelError::MalformedOp("write carries no value")),
            _ => Ok(()),
        }
    }
}

/// A literal transaction: an ordered sequence of operations.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct TxnSpec {
    /// The actions, in program order.
    pub ops: Vec<Op>,
}

impl TxnSpec {
    /// Build from a list of operations.
    pub fn new(ops: Vec<Op>) -> TxnSpec {
        TxnSpec { ops }
    }

    /// Objects read, in first-read order (deduplicated).
    pub fn read_set(&self) -> Vec<ObjectId> {
        let mut seen = BTreeSet::new();
        self.ops
            .iter()
            .filter(|op| op.kind == OpKind::Read && seen.insert(op.object))
            .map(|op| op.object)
            .collect()
    }

    /// Objects written, in first-write order (deduplicated).
    pub fn write_set(&self) -> Vec<ObjectId> {
        let mut seen = BTreeSet::new();
        self.ops
            .iter()
            .filter(|op| op.kind == OpKind::Write && seen.insert(op.object))
            .map(|op| op.object)
            .collect()
    }

    /// True if the transaction performs no writes.
    pub fn is_read_only(&self) -> bool {
        self.ops.iter().all(|op| op.kind == OpKind::Read)
    }

    /// Validate each op's shape.
    pub fn validate(&self) -> Result<(), ModelError> {
        self.ops.iter().try_for_each(Op::validate)
    }

    /// Enforce the **initiation requirement** (§3.2): every object written
    /// must lie in `agent_fragment`. `txn` is used only for error reporting.
    pub fn check_initiation(
        &self,
        catalog: &FragmentCatalog,
        agent_fragment: FragmentId,
        txn: TxnId,
    ) -> Result<(), ModelError> {
        for obj in self.write_set() {
            let frag = catalog.fragment_of(obj)?;
            if frag != agent_fragment {
                return Err(ModelError::InitiationViolation {
                    txn,
                    agent_fragment,
                    object: obj,
                });
            }
        }
        Ok(())
    }

    /// The fragments this transaction reads from, given the catalog.
    pub fn fragments_read(
        &self,
        catalog: &FragmentCatalog,
    ) -> Result<BTreeSet<FragmentId>, ModelError> {
        self.read_set()
            .into_iter()
            .map(|o| catalog.fragment_of(o))
            .collect()
    }
}

/// A transaction *class* declaration: which fragments instances read and
/// (for update classes) the single fragment they write. The read-access
/// graph of §4.2 has an edge `(F_i, F_j)` whenever a class initiated by
/// `A(F_i)` reads from `F_j`.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct AccessDecl {
    /// Fragment whose agent initiates this class.
    pub initiator: FragmentId,
    /// Fragments read by instances of the class (may include `initiator`).
    pub reads: BTreeSet<FragmentId>,
    /// `true` if instances update the initiator's fragment.
    pub updates: bool,
}

impl AccessDecl {
    /// Declare an update class: initiated by `A(initiator)`, writes
    /// `initiator`, reads `reads`.
    pub fn update(initiator: FragmentId, reads: impl IntoIterator<Item = FragmentId>) -> Self {
        AccessDecl {
            initiator,
            reads: reads.into_iter().collect(),
            updates: true,
        }
    }

    /// Declare a read-only class.
    pub fn read_only(initiator: FragmentId, reads: impl IntoIterator<Item = FragmentId>) -> Self {
        AccessDecl {
            initiator,
            reads: reads.into_iter().collect(),
            updates: false,
        }
    }

    /// Fragments read *outside* the initiator's own fragment — exactly the
    /// edges this class contributes to the read-access graph.
    pub fn foreign_reads(&self) -> impl Iterator<Item = FragmentId> + '_ {
        let own = self.initiator;
        self.reads.iter().copied().filter(move |f| *f != own)
    }
}

/// The propagated form of a committed update transaction (§3.2): a
/// write-only batch installed atomically and in per-origin order at every
/// other replica.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct QuasiTransaction {
    /// Identifier of the originating update transaction.
    pub txn: TxnId,
    /// Fragment the updates belong to (single-fragment transactions only,
    /// per the paper's simplification).
    pub fragment: FragmentId,
    /// Position of this transaction in the fragment's single uninterrupted
    /// update sequence (§4.4.1: "a single, uninterrupted sequence of
    /// transactions"). Starts at 0 for each fragment.
    pub frag_seq: u64,
    /// Token epoch under which the update was issued (which ownership
    /// regime); used by the movement protocols.
    pub epoch: u64,
    /// The unconditional updates `(d_i, v_i)` to install, shared (not
    /// copied) across every in-flight and logged copy of this
    /// quasi-transaction.
    pub updates: Updates,
}

impl QuasiTransaction {
    /// Home node of the originating transaction.
    pub fn origin(&self) -> NodeId {
        self.txn.origin
    }

    /// Check the quasi-transaction is well-formed with respect to
    /// `catalog`: every update targets a known object, and every object
    /// lies in [`QuasiTransaction::fragment`] (the §3.2 initiation
    /// requirement, re-checked at the installation boundary so a malformed
    /// envelope is a typed error, not a corrupted replica).
    pub fn validate_against(&self, catalog: &FragmentCatalog) -> Result<(), ModelError> {
        for (object, _) in &self.updates {
            let frag = catalog.fragment_of(*object)?;
            if frag != self.fragment {
                return Err(ModelError::InitiationViolation {
                    txn: self.txn,
                    agent_fragment: self.fragment,
                    object: *object,
                });
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fragment::FragmentCatalog;

    fn catalog() -> (FragmentCatalog, Vec<ObjectId>, Vec<ObjectId>) {
        let mut b = FragmentCatalog::builder();
        let (_, a) = b.add_fragment("A", 2);
        let (_, c) = b.add_fragment("B", 2);
        (b.build(), a, c)
    }

    #[test]
    fn read_and_write_sets_dedupe_in_order() {
        let o = |i| ObjectId(i);
        let t = TxnSpec::new(vec![
            Op::read(o(3)),
            Op::read(o(1)),
            Op::read(o(3)),
            Op::write(o(2), 5i64),
            Op::write(o(2), 6i64),
            Op::write(o(0), 7i64),
        ]);
        assert_eq!(t.read_set(), vec![o(3), o(1)]);
        assert_eq!(t.write_set(), vec![o(2), o(0)]);
        assert!(!t.is_read_only());
    }

    #[test]
    fn read_only_detection() {
        let t = TxnSpec::new(vec![Op::read(ObjectId(0))]);
        assert!(t.is_read_only());
        let empty = TxnSpec::new(vec![]);
        assert!(empty.is_read_only());
    }

    #[test]
    fn op_validation_catches_malformed_ops() {
        let bad_read = Op {
            kind: OpKind::Read,
            object: ObjectId(0),
            value: Some(Value::Int(1)),
        };
        assert!(bad_read.validate().is_err());
        let bad_write = Op {
            kind: OpKind::Write,
            object: ObjectId(0),
            value: None,
        };
        assert!(bad_write.validate().is_err());
        assert!(Op::read(ObjectId(0)).validate().is_ok());
        assert!(Op::write(ObjectId(0), 1i64).validate().is_ok());
    }

    #[test]
    fn txn_spec_validate_checks_all_ops() {
        let t = TxnSpec::new(vec![
            Op::read(ObjectId(0)),
            Op {
                kind: OpKind::Write,
                object: ObjectId(1),
                value: None,
            },
        ]);
        assert!(t.validate().is_err());
    }

    #[test]
    fn initiation_requirement_enforced() {
        let (cat, a_objs, b_objs) = catalog();
        let txn = TxnId::new(NodeId(0), 0);
        // Writing inside own fragment: OK.
        let ok = TxnSpec::new(vec![Op::write(a_objs[0], 1i64)]);
        assert!(ok.check_initiation(&cat, FragmentId(0), txn).is_ok());
        // Writing a foreign fragment: violation.
        let bad = TxnSpec::new(vec![Op::write(b_objs[0], 1i64)]);
        let err = bad.check_initiation(&cat, FragmentId(0), txn).unwrap_err();
        assert!(matches!(err, ModelError::InitiationViolation { .. }));
        // Reads of foreign fragments are always allowed.
        let read_foreign = TxnSpec::new(vec![Op::read(b_objs[1]), Op::write(a_objs[1], 2i64)]);
        assert!(read_foreign
            .check_initiation(&cat, FragmentId(0), txn)
            .is_ok());
    }

    #[test]
    fn fragments_read_maps_through_catalog() {
        let (cat, a_objs, b_objs) = catalog();
        let t = TxnSpec::new(vec![Op::read(a_objs[0]), Op::read(b_objs[0])]);
        let frags = t.fragments_read(&cat).unwrap();
        assert_eq!(
            frags.into_iter().collect::<Vec<_>>(),
            vec![FragmentId(0), FragmentId(1)]
        );
    }

    #[test]
    fn fragments_read_unknown_object_errors() {
        let (cat, _, _) = catalog();
        let t = TxnSpec::new(vec![Op::read(ObjectId(999))]);
        assert!(t.fragments_read(&cat).is_err());
    }

    #[test]
    fn access_decl_foreign_reads_exclude_own_fragment() {
        let d = AccessDecl::update(FragmentId(0), [FragmentId(0), FragmentId(1), FragmentId(2)]);
        let foreign: Vec<FragmentId> = d.foreign_reads().collect();
        assert_eq!(foreign, vec![FragmentId(1), FragmentId(2)]);
        assert!(d.updates);
        let r = AccessDecl::read_only(FragmentId(1), [FragmentId(0)]);
        assert!(!r.updates);
    }

    #[test]
    fn quasi_validate_against_catches_foreign_and_unknown_objects() {
        let (cat, a_objs, b_objs) = catalog();
        let mut q = QuasiTransaction {
            txn: TxnId::new(NodeId(0), 0),
            fragment: FragmentId(0),
            frag_seq: 0,
            epoch: 0,
            updates: vec![(a_objs[0], Value::Int(1))].into(),
        };
        assert!(q.validate_against(&cat).is_ok());
        q.updates = vec![(a_objs[0], Value::Int(1)), (b_objs[0], Value::Int(2))].into();
        assert!(matches!(
            q.validate_against(&cat),
            Err(ModelError::InitiationViolation { .. })
        ));
        q.updates = vec![(ObjectId(999), Value::Int(3))].into();
        assert!(matches!(
            q.validate_against(&cat),
            Err(ModelError::UnknownObject(_))
        ));
    }

    #[test]
    fn quasi_transaction_origin() {
        let q = QuasiTransaction {
            txn: TxnId::new(NodeId(3), 9),
            fragment: FragmentId(1),
            frag_seq: 4,
            epoch: 0,
            updates: vec![(ObjectId(0), Value::Int(10))].into(),
        };
        assert_eq!(q.origin(), NodeId(3));
    }

    #[test]
    fn updates_clone_shares_the_allocation() {
        let u = Updates::new(vec![
            (ObjectId(0), Value::Int(1)),
            (ObjectId(1), Value::Text("x".into())),
        ]);
        let copies: Vec<Updates> = (0..64).map(|_| u.clone()).collect();
        for c in &copies {
            // Same allocation, not an equal copy.
            assert!(std::ptr::eq(c.as_ptr(), u.as_ptr()));
        }
        assert_eq!(u.len(), 2);
        assert_eq!(u.to_vec().len(), 2);
        assert!(u.approx_bytes() >= 1);
        assert!(Updates::empty().is_empty());
    }
}
