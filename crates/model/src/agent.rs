//! Agents and tokens.
//!
//! §3.1: for every fragment there is *exactly one token*, owned by either a
//! user or a node; the owner is the fragment's **agent** and is the only
//! principal allowed to initiate updates to the fragment. Tokens "have
//! existence outside of the computer system and can be passed by means other
//! than electronic messages" — so a [`Token`] transfer is a simulation event
//! that does *not* require network connectivity.
//!
//! Tokens carry an **epoch** that increments on every transfer. Epochs let
//! the movement protocols of §4.4 distinguish updates issued under an old
//! ownership from those issued after a move.

use std::fmt;

use crate::ids::{FragmentId, NodeId, UserId};

/// The principal holding a fragment's token.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum AgentId {
    /// The agent is a computer node (e.g. the bank's central office machine).
    Node(NodeId),
    /// The agent is a human user (e.g. the owner of account 0001).
    User(UserId),
}

impl AgentId {
    /// If the agent is itself a node, that node is always its own home.
    pub fn as_node(self) -> Option<NodeId> {
        match self {
            AgentId::Node(n) => Some(n),
            AgentId::User(_) => None,
        }
    }

    /// True if the agent is a user (whose home node changes as they move).
    pub fn is_user(self) -> bool {
        matches!(self, AgentId::User(_))
    }
}

impl fmt::Debug for AgentId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            AgentId::Node(n) => write!(f, "agent:{n}"),
            AgentId::User(u) => write!(f, "agent:{u}"),
        }
    }
}

impl fmt::Display for AgentId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::Debug::fmt(self, f)
    }
}

/// The unique token for one fragment.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Token {
    /// The fragment this token controls.
    pub fragment: FragmentId,
    /// Current owner (the fragment's agent).
    pub owner: AgentId,
    /// Home node of the owner: where update transactions on this fragment
    /// execute. For a node agent this equals the node itself; for a user
    /// agent it is the node the user last attached to (§3.1).
    pub home: NodeId,
    /// Transfer count. Incremented every time the token changes owner or
    /// home; used by movement protocols to order ownership regimes.
    pub epoch: u64,
}

impl Token {
    /// Mint the initial token for `fragment`.
    pub fn new(fragment: FragmentId, owner: AgentId, home: NodeId) -> Self {
        if let AgentId::Node(n) = owner {
            debug_assert_eq!(n, home, "a node agent is always its own home");
        }
        Token {
            fragment,
            owner,
            home,
            epoch: 0,
        }
    }

    /// Move the token to a new owner and/or home, bumping the epoch.
    pub fn transfer(&mut self, owner: AgentId, home: NodeId) {
        self.owner = owner;
        self.home = home;
        self.epoch += 1;
    }

    /// Re-attach the same user agent to a different home node (a "move" in
    /// the §4.4 sense), bumping the epoch.
    pub fn reattach(&mut self, home: NodeId) {
        self.home = home;
        self.epoch += 1;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn node_agent_home_is_itself() {
        let t = Token::new(FragmentId(0), AgentId::Node(NodeId(2)), NodeId(2));
        assert_eq!(t.home, NodeId(2));
        assert_eq!(t.epoch, 0);
        assert_eq!(t.owner.as_node(), Some(NodeId(2)));
    }

    #[test]
    fn user_agent_has_no_node() {
        let a = AgentId::User(UserId(7));
        assert!(a.is_user());
        assert_eq!(a.as_node(), None);
    }

    #[test]
    fn transfer_bumps_epoch() {
        let mut t = Token::new(FragmentId(1), AgentId::User(UserId(0)), NodeId(0));
        t.transfer(AgentId::User(UserId(1)), NodeId(3));
        assert_eq!(t.owner, AgentId::User(UserId(1)));
        assert_eq!(t.home, NodeId(3));
        assert_eq!(t.epoch, 1);
    }

    #[test]
    fn reattach_keeps_owner() {
        let mut t = Token::new(FragmentId(1), AgentId::User(UserId(5)), NodeId(0));
        t.reattach(NodeId(4));
        assert_eq!(t.owner, AgentId::User(UserId(5)));
        assert_eq!(t.home, NodeId(4));
        assert_eq!(t.epoch, 1);
        t.reattach(NodeId(0));
        assert_eq!(t.epoch, 2);
    }

    #[test]
    fn display_distinguishes_kinds() {
        assert_eq!(AgentId::Node(NodeId(1)).to_string(), "agent:N1");
        assert_eq!(AgentId::User(UserId(2)).to_string(), "agent:U2");
    }

    #[test]
    fn agent_ordering_is_total() {
        let mut v = vec![
            AgentId::User(UserId(1)),
            AgentId::Node(NodeId(9)),
            AgentId::Node(NodeId(1)),
            AgentId::User(UserId(0)),
        ];
        v.sort();
        assert_eq!(
            v,
            vec![
                AgentId::Node(NodeId(1)),
                AgentId::Node(NodeId(9)),
                AgentId::User(UserId(0)),
                AgentId::User(UserId(1)),
            ]
        );
    }
}
