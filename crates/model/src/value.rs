//! Dynamic values stored in data objects.
//!
//! The paper's examples store account balances (money), activity records,
//! seat counts, and booleans ("RECORDED: Y/N"). [`Value`] covers those with
//! exact integer arithmetic — money is modeled in integer cents so balance
//! predicates are exact, never floating point.

use std::fmt;

use crate::error::ModelError;

/// A value held by one data object replica.
#[derive(Clone, Debug, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub enum Value {
    /// Absent / never written.
    #[default]
    Null,
    /// Signed integer (counts, sequence numbers, money in cents).
    Int(i64),
    /// Boolean flag (e.g. a RECORDED(i) entry).
    Bool(bool),
    /// Free text (e.g. a letter of notification, an activity record tag).
    Text(String),
}

impl Value {
    /// Interpret as integer.
    pub fn as_int(&self) -> Result<i64, ModelError> {
        match self {
            Value::Int(i) => Ok(*i),
            other => Err(ModelError::TypeMismatch {
                expected: "Int",
                found: other.type_name(),
            }),
        }
    }

    /// Interpret as integer, mapping `Null` to a default (objects start
    /// `Null` before their first write; workloads treat that as zero).
    pub fn as_int_or(&self, default: i64) -> Result<i64, ModelError> {
        match self {
            Value::Null => Ok(default),
            other => other.as_int(),
        }
    }

    /// Interpret as boolean.
    pub fn as_bool(&self) -> Result<bool, ModelError> {
        match self {
            Value::Bool(b) => Ok(*b),
            other => Err(ModelError::TypeMismatch {
                expected: "Bool",
                found: other.type_name(),
            }),
        }
    }

    /// Interpret as text.
    pub fn as_text(&self) -> Result<&str, ModelError> {
        match self {
            Value::Text(s) => Ok(s),
            other => Err(ModelError::TypeMismatch {
                expected: "Text",
                found: other.type_name(),
            }),
        }
    }

    /// True if this value has never been written.
    pub fn is_null(&self) -> bool {
        matches!(self, Value::Null)
    }

    /// Static name of the variant, for error messages.
    pub fn type_name(&self) -> &'static str {
        match self {
            Value::Null => "Null",
            Value::Int(_) => "Int",
            Value::Bool(_) => "Bool",
            Value::Text(_) => "Text",
        }
    }
}

impl fmt::Display for Value {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Value::Null => write!(f, "null"),
            Value::Int(i) => write!(f, "{i}"),
            Value::Bool(b) => write!(f, "{b}"),
            Value::Text(s) => write!(f, "{s:?}"),
        }
    }
}

impl From<i64> for Value {
    fn from(v: i64) -> Self {
        Value::Int(v)
    }
}

impl From<bool> for Value {
    fn from(v: bool) -> Self {
        Value::Bool(v)
    }
}

impl From<&str> for Value {
    fn from(v: &str) -> Self {
        Value::Text(v.to_owned())
    }
}

impl From<String> for Value {
    fn from(v: String) -> Self {
        Value::Text(v)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn int_round_trip() {
        let v = Value::from(-250i64);
        assert_eq!(v.as_int().unwrap(), -250);
        assert!(!v.is_null());
    }

    #[test]
    fn null_defaults() {
        let v = Value::Null;
        assert!(v.is_null());
        assert_eq!(v.as_int_or(0).unwrap(), 0);
        assert!(v.as_int().is_err());
    }

    #[test]
    fn as_int_or_rejects_wrong_type() {
        let v = Value::from(true);
        assert!(v.as_int_or(0).is_err());
    }

    #[test]
    fn bool_round_trip() {
        assert!(Value::from(true).as_bool().unwrap());
        assert!(Value::Int(1).as_bool().is_err());
    }

    #[test]
    fn text_round_trip() {
        let v = Value::from("overdraft letter");
        assert_eq!(v.as_text().unwrap(), "overdraft letter");
        assert!(Value::Null.as_text().is_err());
    }

    #[test]
    fn type_mismatch_error_names_types() {
        let err = Value::from(true).as_int().unwrap_err();
        let msg = err.to_string();
        assert!(msg.contains("Int") && msg.contains("Bool"), "{msg}");
    }

    #[test]
    fn display_formats() {
        assert_eq!(Value::Null.to_string(), "null");
        assert_eq!(Value::Int(7).to_string(), "7");
        assert_eq!(Value::Bool(false).to_string(), "false");
        assert_eq!(Value::from("hi").to_string(), "\"hi\"");
    }

    #[test]
    fn default_is_null() {
        assert_eq!(Value::default(), Value::Null);
    }
}
