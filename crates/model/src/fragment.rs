//! Fragments and the fragment catalog.
//!
//! §3.1: *"The entire database is logically divided into k non-overlapping
//! subsets called fragments."* The [`FragmentCatalog`] is the authoritative
//! object→fragment mapping; it validates disjointness at construction and
//! answers the lookup every admission check needs (`fragment_of`).

use std::collections::BTreeMap;

use crate::error::ModelError;
use crate::ids::{FragmentId, ObjectId};

/// One fragment: a named, disjoint set of data objects.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Fragment {
    /// Identifier, dense from 0.
    pub id: FragmentId,
    /// Human-readable name, e.g. `"BALANCES"` or `"ACTIVITY(0001)"`.
    pub name: String,
    /// Objects contained in this fragment, sorted.
    pub objects: Vec<ObjectId>,
}

impl Fragment {
    /// Construct a fragment; objects are sorted and deduplicated.
    pub fn new(id: FragmentId, name: impl Into<String>, mut objects: Vec<ObjectId>) -> Self {
        objects.sort_unstable();
        objects.dedup();
        Fragment {
            id,
            name: name.into(),
            objects,
        }
    }

    /// Does this fragment contain `object`?
    pub fn contains(&self, object: ObjectId) -> bool {
        self.objects.binary_search(&object).is_ok()
    }

    /// Number of objects.
    pub fn len(&self) -> usize {
        self.objects.len()
    }

    /// True if the fragment has no objects (legal: §4.2's central fragment
    /// could start empty).
    pub fn is_empty(&self) -> bool {
        self.objects.is_empty()
    }
}

/// The validated set of all fragments: the database schema.
#[derive(Clone, Debug, Default)]
pub struct FragmentCatalog {
    fragments: Vec<Fragment>,
    object_to_fragment: BTreeMap<ObjectId, FragmentId>,
}

impl FragmentCatalog {
    /// Build a catalog, checking that fragments are pairwise disjoint.
    pub fn new(fragments: Vec<Fragment>) -> Result<Self, ModelError> {
        let mut object_to_fragment = BTreeMap::new();
        for frag in &fragments {
            for &obj in &frag.objects {
                if let Some(&prev) = object_to_fragment.get(&obj) {
                    return Err(ModelError::OverlappingFragments {
                        object: obj,
                        first: prev,
                        second: frag.id,
                    });
                }
                object_to_fragment.insert(obj, frag.id);
            }
        }
        Ok(FragmentCatalog {
            fragments,
            object_to_fragment,
        })
    }

    /// Incremental builder for workload setup code.
    pub fn builder() -> FragmentCatalogBuilder {
        FragmentCatalogBuilder::default()
    }

    /// The fragment containing `object`.
    pub fn fragment_of(&self, object: ObjectId) -> Result<FragmentId, ModelError> {
        self.object_to_fragment
            .get(&object)
            .copied()
            .ok_or(ModelError::UnknownObject(object))
    }

    /// Fragment metadata by id.
    pub fn fragment(&self, id: FragmentId) -> Result<&Fragment, ModelError> {
        self.fragments
            .iter()
            .find(|f| f.id == id)
            .ok_or(ModelError::UnknownFragment(id))
    }

    /// All fragments.
    pub fn fragments(&self) -> &[Fragment] {
        &self.fragments
    }

    /// Number of fragments (`k` in the paper).
    pub fn len(&self) -> usize {
        self.fragments.len()
    }

    /// True if no fragments are declared.
    pub fn is_empty(&self) -> bool {
        self.fragments.is_empty()
    }

    /// Every object in the database, in id order.
    pub fn all_objects(&self) -> impl Iterator<Item = ObjectId> + '_ {
        self.object_to_fragment.keys().copied()
    }

    /// Total number of objects across all fragments.
    pub fn object_count(&self) -> usize {
        self.object_to_fragment.len()
    }
}

/// Builder that allocates fragment ids densely and object ids on demand.
#[derive(Debug, Default)]
pub struct FragmentCatalogBuilder {
    fragments: Vec<Fragment>,
    next_object: u64,
}

impl FragmentCatalogBuilder {
    /// Add a fragment with `n_objects` freshly allocated objects. Returns
    /// the new fragment id and the allocated object ids.
    pub fn add_fragment(
        &mut self,
        name: impl Into<String>,
        n_objects: usize,
    ) -> (FragmentId, Vec<ObjectId>) {
        let id = FragmentId(self.fragments.len() as u32);
        let objects: Vec<ObjectId> = (0..n_objects)
            .map(|i| ObjectId(self.next_object + i as u64))
            .collect();
        self.next_object += n_objects as u64;
        self.fragments
            .push(Fragment::new(id, name, objects.clone()));
        (id, objects)
    }

    /// Finish building. Cannot fail: the builder allocates disjoint ids by
    /// construction, but we still run the validating constructor as a
    /// defense in depth.
    pub fn build(self) -> FragmentCatalog {
        FragmentCatalog::new(self.fragments)
            .expect("builder allocates disjoint object ids by construction")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn obj(i: u64) -> ObjectId {
        ObjectId(i)
    }

    #[test]
    fn catalog_maps_objects_to_fragments() {
        let cat = FragmentCatalog::new(vec![
            Fragment::new(FragmentId(0), "A", vec![obj(0), obj(1)]),
            Fragment::new(FragmentId(1), "B", vec![obj(2)]),
        ])
        .unwrap();
        assert_eq!(cat.fragment_of(obj(0)).unwrap(), FragmentId(0));
        assert_eq!(cat.fragment_of(obj(2)).unwrap(), FragmentId(1));
        assert_eq!(cat.len(), 2);
        assert_eq!(cat.object_count(), 3);
    }

    #[test]
    fn overlap_is_rejected() {
        let err = FragmentCatalog::new(vec![
            Fragment::new(FragmentId(0), "A", vec![obj(0)]),
            Fragment::new(FragmentId(1), "B", vec![obj(0)]),
        ])
        .unwrap_err();
        assert!(matches!(err, ModelError::OverlappingFragments { .. }));
    }

    #[test]
    fn unknown_object_is_reported() {
        let cat = FragmentCatalog::new(vec![]).unwrap();
        assert_eq!(
            cat.fragment_of(obj(5)).unwrap_err(),
            ModelError::UnknownObject(obj(5))
        );
    }

    #[test]
    fn unknown_fragment_is_reported() {
        let cat = FragmentCatalog::new(vec![]).unwrap();
        assert_eq!(
            cat.fragment(FragmentId(9)).unwrap_err(),
            ModelError::UnknownFragment(FragmentId(9))
        );
    }

    #[test]
    fn fragment_contains_uses_sorted_lookup() {
        let f = Fragment::new(FragmentId(0), "A", vec![obj(5), obj(1), obj(3), obj(1)]);
        assert_eq!(f.len(), 3); // deduped
        assert!(f.contains(obj(3)));
        assert!(!f.contains(obj(2)));
    }

    #[test]
    fn empty_fragment_is_legal() {
        let f = Fragment::new(FragmentId(0), "C", vec![]);
        assert!(f.is_empty());
        let cat = FragmentCatalog::new(vec![f]).unwrap();
        assert_eq!(cat.len(), 1);
        assert_eq!(cat.object_count(), 0);
    }

    #[test]
    fn builder_allocates_dense_ids() {
        let mut b = FragmentCatalog::builder();
        let (f0, objs0) = b.add_fragment("BALANCES", 2);
        let (f1, objs1) = b.add_fragment("ACTIVITY(1)", 3);
        assert_eq!(f0, FragmentId(0));
        assert_eq!(f1, FragmentId(1));
        assert_eq!(objs0, vec![obj(0), obj(1)]);
        assert_eq!(objs1, vec![obj(2), obj(3), obj(4)]);
        let cat = b.build();
        assert_eq!(cat.fragment_of(obj(4)).unwrap(), f1);
        assert_eq!(cat.fragment(f0).unwrap().name, "BALANCES");
    }

    #[test]
    fn all_objects_iterates_in_order() {
        let mut b = FragmentCatalog::builder();
        b.add_fragment("A", 2);
        b.add_fragment("B", 2);
        let cat = b.build();
        let objs: Vec<ObjectId> = cat.all_objects().collect();
        assert_eq!(objs, vec![obj(0), obj(1), obj(2), obj(3)]);
    }
}
