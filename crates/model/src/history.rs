//! Executed histories.
//!
//! The Appendix's graph constructions (global and local serialization
//! graphs, Definitions 8.2/8.3) are defined over *what actually happened*:
//! which transaction read or wrote which object, at which node, and — for
//! propagated updates — when each update was *installed* in each remote
//! copy. [`History`] is that record.
//!
//! Every op gets a globally monotone sequence number when recorded. Within
//! one node the sequence order is the node's local-schedule order; across
//! nodes it is the (deterministic) simulation event order. The graph
//! builders only ever compare sequence numbers of ops *at the same node on
//! the same object*, which is exactly the order the paper's definitions
//! need.

use std::collections::{BTreeMap, BTreeSet};

use fragdb_sim::SimTime;

use crate::ids::{FragmentId, NodeId, ObjectId, TxnId};
use crate::txn::OpKind;

/// Type of a transaction in the sense of Definition 8.1: the fragment whose
/// agent initiated it.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum TxnType {
    /// An update transaction on the given fragment.
    Update(FragmentId),
    /// A read-only transaction initiated by the given fragment's agent.
    ReadOnly(FragmentId),
}

impl TxnType {
    /// The initiating agent's fragment (`tp(T)` in Definition 8.1).
    pub fn fragment(self) -> FragmentId {
        match self {
            TxnType::Update(f) | TxnType::ReadOnly(f) => f,
        }
    }

    /// True for update transactions.
    pub fn is_update(self) -> bool {
        matches!(self, TxnType::Update(_))
    }
}

/// One recorded atomic action.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct HistoryOp {
    /// Node at which the action physically took place.
    pub node: NodeId,
    /// The transaction the action belongs to. For an installed update this
    /// is the *originating* transaction's id, even though the install runs
    /// at a remote node as part of a quasi-transaction.
    pub txn: TxnId,
    /// Type of the owning transaction (Definition 8.1).
    pub ttype: TxnType,
    /// Read or write.
    pub kind: OpKind,
    /// The object acted on.
    pub object: ObjectId,
    /// Virtual time of the action.
    pub at: SimTime,
    /// Globally monotone recording sequence (total order, ties impossible).
    pub seq: u64,
    /// `true` when this write is the installation of a propagated update at
    /// a node other than the transaction's home.
    pub is_install: bool,
}

/// The executed history of one simulation run.
#[derive(Clone, Debug, Default)]
pub struct History {
    ops: Vec<HistoryOp>,
    next_seq: u64,
}

impl History {
    /// Empty history.
    pub fn new() -> Self {
        History::default()
    }

    /// Record an action performed by a transaction at its home node.
    pub fn record_local(
        &mut self,
        node: NodeId,
        txn: TxnId,
        ttype: TxnType,
        kind: OpKind,
        object: ObjectId,
        at: SimTime,
    ) -> u64 {
        self.push(HistoryOp {
            node,
            txn,
            ttype,
            kind,
            object,
            at,
            seq: 0,
            is_install: false,
        })
    }

    /// Record the installation of a propagated update at a remote node.
    pub fn record_install(
        &mut self,
        node: NodeId,
        txn: TxnId,
        ttype: TxnType,
        object: ObjectId,
        at: SimTime,
    ) -> u64 {
        self.push(HistoryOp {
            node,
            txn,
            ttype,
            kind: OpKind::Write,
            object,
            at,
            seq: 0,
            is_install: true,
        })
    }

    fn push(&mut self, mut op: HistoryOp) -> u64 {
        op.seq = self.next_seq;
        self.next_seq += 1;
        let seq = op.seq;
        self.ops.push(op);
        seq
    }

    /// All ops in recording order.
    pub fn ops(&self) -> &[HistoryOp] {
        &self.ops
    }

    /// Number of recorded ops.
    pub fn len(&self) -> usize {
        self.ops.len()
    }

    /// True if nothing was recorded.
    pub fn is_empty(&self) -> bool {
        self.ops.is_empty()
    }

    /// Distinct transactions appearing in the history, with their types.
    ///
    /// A transaction appears with one consistent type; if a bug recorded two
    /// types the first wins and downstream checkers will surface the
    /// inconsistency.
    pub fn transactions(&self) -> BTreeMap<TxnId, TxnType> {
        let mut out = BTreeMap::new();
        for op in &self.ops {
            out.entry(op.txn).or_insert(op.ttype);
        }
        out
    }

    /// Ops that happened at `node`, in sequence order (recording order is
    /// already per-node chronological).
    pub fn ops_at(&self, node: NodeId) -> impl Iterator<Item = &HistoryOp> {
        self.ops.iter().filter(move |op| op.node == node)
    }

    /// Ops at `node` touching `object`, in sequence order.
    pub fn ops_at_on(&self, node: NodeId, object: ObjectId) -> Vec<&HistoryOp> {
        self.ops
            .iter()
            .filter(|op| op.node == node && op.object == object)
            .collect()
    }

    /// The set of objects mentioned anywhere.
    pub fn objects(&self) -> BTreeSet<ObjectId> {
        self.ops.iter().map(|op| op.object).collect()
    }

    /// The set of nodes mentioned anywhere.
    pub fn nodes(&self) -> BTreeSet<NodeId> {
        self.ops.iter().map(|op| op.node).collect()
    }

    /// Restrict to ops of transactions satisfying `pred` (used for the
    /// `U(F_i)` projections of §4.3's Property 1).
    pub fn filter_txns(&self, mut pred: impl FnMut(TxnId, TxnType) -> bool) -> History {
        History {
            ops: self
                .ops
                .iter()
                .filter(|op| pred(op.txn, op.ttype))
                .cloned()
                .collect(),
            next_seq: self.next_seq,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn t(i: u64) -> TxnId {
        TxnId::new(NodeId(0), i)
    }

    #[test]
    fn sequence_numbers_are_monotone() {
        let mut h = History::new();
        let s1 = h.record_local(
            NodeId(0),
            t(0),
            TxnType::Update(FragmentId(0)),
            OpKind::Read,
            ObjectId(1),
            SimTime(5),
        );
        let s2 = h.record_install(
            NodeId(1),
            t(0),
            TxnType::Update(FragmentId(0)),
            ObjectId(1),
            SimTime(9),
        );
        assert!(s2 > s1);
        assert_eq!(h.len(), 2);
    }

    #[test]
    fn installs_are_writes() {
        let mut h = History::new();
        h.record_install(
            NodeId(1),
            t(0),
            TxnType::Update(FragmentId(0)),
            ObjectId(0),
            SimTime(1),
        );
        let op = &h.ops()[0];
        assert_eq!(op.kind, OpKind::Write);
        assert!(op.is_install);
    }

    #[test]
    fn transactions_collects_types() {
        let mut h = History::new();
        h.record_local(
            NodeId(0),
            t(0),
            TxnType::Update(FragmentId(0)),
            OpKind::Write,
            ObjectId(0),
            SimTime(1),
        );
        h.record_local(
            NodeId(0),
            t(1),
            TxnType::ReadOnly(FragmentId(1)),
            OpKind::Read,
            ObjectId(0),
            SimTime(2),
        );
        let txns = h.transactions();
        assert_eq!(txns.len(), 2);
        assert_eq!(txns[&t(0)], TxnType::Update(FragmentId(0)));
        assert_eq!(txns[&t(1)], TxnType::ReadOnly(FragmentId(1)));
    }

    #[test]
    fn per_node_per_object_filtering() {
        let mut h = History::new();
        for (node, obj) in [(0u32, 0u64), (0, 1), (1, 0), (0, 0)] {
            h.record_local(
                NodeId(node),
                t(obj),
                TxnType::Update(FragmentId(0)),
                OpKind::Write,
                ObjectId(obj),
                SimTime(1),
            );
        }
        assert_eq!(h.ops_at(NodeId(0)).count(), 3);
        assert_eq!(h.ops_at_on(NodeId(0), ObjectId(0)).len(), 2);
        assert_eq!(h.ops_at_on(NodeId(1), ObjectId(1)).len(), 0);
    }

    #[test]
    fn objects_and_nodes_sets() {
        let mut h = History::new();
        h.record_local(
            NodeId(2),
            t(0),
            TxnType::Update(FragmentId(0)),
            OpKind::Write,
            ObjectId(7),
            SimTime(1),
        );
        assert_eq!(
            h.objects().into_iter().collect::<Vec<_>>(),
            vec![ObjectId(7)]
        );
        assert_eq!(h.nodes().into_iter().collect::<Vec<_>>(), vec![NodeId(2)]);
    }

    #[test]
    fn filter_txns_projects() {
        let mut h = History::new();
        h.record_local(
            NodeId(0),
            t(0),
            TxnType::Update(FragmentId(0)),
            OpKind::Write,
            ObjectId(0),
            SimTime(1),
        );
        h.record_local(
            NodeId(0),
            t(1),
            TxnType::Update(FragmentId(1)),
            OpKind::Write,
            ObjectId(1),
            SimTime(2),
        );
        let only_f0 = h.filter_txns(|_, ty| ty.fragment() == FragmentId(0));
        assert_eq!(only_f0.len(), 1);
        assert_eq!(only_f0.ops()[0].txn, t(0));
    }

    #[test]
    fn txn_type_accessors() {
        assert_eq!(TxnType::Update(FragmentId(3)).fragment(), FragmentId(3));
        assert_eq!(TxnType::ReadOnly(FragmentId(2)).fragment(), FragmentId(2));
        assert!(TxnType::Update(FragmentId(0)).is_update());
        assert!(!TxnType::ReadOnly(FragmentId(0)).is_update());
    }
}
