#![forbid(unsafe_code)]
#![warn(missing_docs)]

//! Data model shared by every fragdb crate.
//!
//! This crate defines the paper's vocabulary as Rust types:
//!
//! * [`ids`] — newtype identifiers for nodes, users, fragments, objects, and
//!   transactions.
//! * [`value`] — the dynamic value type stored in data objects.
//! * [`fragment`] — fragments (§3.1: disjoint subsets of the database) and
//!   the [`fragment::FragmentCatalog`] that enforces non-overlap.
//! * [`agent`] — agents and tokens (§3.1: one token per fragment, owned by a
//!   user or a node, transferable out of band).
//! * [`txn`] — transactions, operations, and quasi-transactions (§3.2).
//! * [`history`] — executed histories: the per-node, per-object timelines
//!   that the serialization-graph constructions of the Appendix consume.
//! * [`error`] — shared error type.

pub mod agent;
pub mod error;
pub mod fragment;
pub mod history;
pub mod ids;
pub mod txn;
pub mod value;

pub use agent::{AgentId, Token};
pub use error::ModelError;
pub use fragment::{Fragment, FragmentCatalog};
pub use history::{History, HistoryOp, TxnType};
pub use ids::{FragmentId, NodeId, ObjectId, TxnId, UserId};
pub use txn::{AccessDecl, Op, OpKind, QuasiTransaction, TxnSpec, Updates};
pub use value::Value;
