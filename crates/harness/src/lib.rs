#![forbid(unsafe_code)]
#![warn(missing_docs)]

//! Experiment harness: regenerates every figure/scenario of the paper.
//!
//! Each `experiments::eN_*` module exposes a `run(...)` function returning
//! a typed report with a `Display` impl that prints the table/series the
//! corresponding binary emits. The binaries (`e1_spectrum` …
//! `e12_partial_replication`) are thin wrappers; tests assert the reports'
//! qualitative claims, so `cargo test` *is* the reproduction check.
//!
//! | binary | paper artifact |
//! |--------|----------------|
//! | `e1_spectrum` | Figure 1.1 — the correctness/availability spectrum |
//! | `e2_banking_scenarios` | §1 scenarios 1–2 (Figure 1.2) |
//! | `e3_local_view` | Figures 2.1–2.2 — local-view staleness |
//! | `e4_warehouse` | Figure 4.2.1 — acyclic-RAG warehouse |
//! | `e5_gsg_cycle` | Figures 4.3.1–4.3.2 — the three-fragment cycle |
//! | `e6_airline` | Figure 4.3.3 + schedule — airline reservations |
//! | `e7_movement` | Figure 4.4.1 + §4.4.1–3 — movement protocols |
//! | `e8_theorem` | §4.2 theorem — Monte-Carlo validation |
//! | `e9_fragmentwise` | §4.3 Properties 1–2 — Monte-Carlo validation |
//! | `e10_broadcast` | §3.2 — drop/duplicate/reorder/crash sweep of the full system |
//! | `e11_mixed` | §6 — three strategy groups in one system |
//! | `e12_partial_replication` | §6 — partial replication |

pub mod configs;
pub mod experiments;
pub mod partial;
pub mod scale;
pub mod table;
pub mod trace;

pub use table::Table;
