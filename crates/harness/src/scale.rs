//! Open-loop Zipf scale runner: the million-user / 1k-node harness.
//!
//! Closed-loop drivers (submit, wait for the commit, submit again) hide
//! overload: the offered rate collapses to whatever the system sustains,
//! so saturation never shows up in the numbers. The scale runner is
//! *open-loop* — arrivals are drawn from a Poisson process at a fixed
//! offered rate and submitted at their arrival instants regardless of
//! completions — so queue growth and commit→install lag remain visible.
//!
//! Keys are chosen by a Zipf(θ) sampler over a large user population
//! (millions of users are fine: the rejection-inversion sampler is O(1)
//! per draw and nothing per-user is materialized). User ranks fold onto
//! the fragment/object space with the hottest ranks spread round-robin
//! across fragments, so every fragment sees a skewed key distribution.
//!
//! [`run`] drives a full-mesh [`System`] under this workload and returns
//! [`ScaleStats`]: engine events, wire messages, peak pending-event depth,
//! allocation-pool reuse, p50/p99 commit→install lag from the streaming
//! quantile sketch (exact past telemetry-ring eviction), and the span-level
//! phase decomposition (net / hold-back / queue / exec percentiles) from
//! `fragdb-obs` reconstruction. `fragdb-bench`'s `scale` section is a thin
//! wrapper that adds wall-clock timing.

use fragdb_check::ClassDecl;
use fragdb_core::{Notification, Submission, System, SystemConfig};
use fragdb_model::{AgentId, FragmentCatalog, FragmentId, NodeId, ObjectId};
use fragdb_net::Topology;
use fragdb_sim::metrics::keys;
use fragdb_sim::{SimDuration, SimRng, SimTime, Telemetry};
use fragdb_workloads::{OpenLoop, OpenLoopConfig};

/// Parameters of one open-loop scale run.
#[derive(Clone, Debug)]
pub struct ScaleSpec {
    /// Node count of the full-mesh topology.
    pub nodes: u32,
    /// Number of independent fragments (each homed at `f % nodes`).
    pub fragments: u32,
    /// Objects per fragment; user ranks fold onto this space.
    pub objects_per_fragment: u32,
    /// Zipf population — the "million users".
    pub users: u64,
    /// Zipf skew θ (0.99 is the YCSB-style default).
    pub theta: f64,
    /// Offered arrival rate, transactions per simulated second.
    pub rate_per_sec: f64,
    /// Arrival horizon: arrivals stop here; the run then drains.
    pub horizon: SimDuration,
    /// Per-link delay jitter: each mesh link's delay is drawn uniformly
    /// from `10ms ± link_jitter` (seeded, deterministic). Zero restores
    /// the fixed 10 ms mesh — which collapses every commit's propagation
    /// lag onto one value and degenerates the percentiles (p50 == p99).
    pub link_jitter: SimDuration,
    /// Engine / workload RNG seed.
    pub seed: u64,
}

impl ScaleSpec {
    /// A small smoke-test shape: quick to run, still multi-fragment.
    pub fn smoke(nodes: u32, seed: u64) -> Self {
        ScaleSpec {
            nodes,
            fragments: 4,
            objects_per_fragment: 32,
            users: 1_000_000,
            theta: 0.99,
            rate_per_sec: 40.0,
            horizon: SimDuration::from_secs(5),
            link_jitter: SimDuration::from_millis(1),
            seed,
        }
    }
}

/// What one scale run observed.
#[derive(Clone, Copy, Debug, Default)]
pub struct ScaleStats {
    /// Open-loop arrivals submitted.
    pub arrivals: u64,
    /// Transactions committed by the drain deadline.
    pub commits: u64,
    /// Engine events popped (`sim.events`).
    pub events: u64,
    /// Data packets put on the wire (transmissions, incl. retransmits).
    pub messages: u64,
    /// High-water mark of pending engine events.
    pub peak_queue_depth: u64,
    /// Slab/buffer reuse hits in the engine hot path.
    pub pool_reuse: u64,
    /// Offered rate as recorded under `workload.offered_rate` (tx/s).
    pub offered_rate: u64,
    /// Median commit→install propagation lag in µs.
    pub lag_p50_us: u64,
    /// 99th-percentile commit→install propagation lag in µs.
    pub lag_p99_us: u64,
    /// Per-commit spans reconstructed from the retained telemetry.
    pub spans: u64,
    /// Spans whose commit-side events were ring-evicted.
    pub spans_truncated: u64,
    /// Median network leg (commit→arrival) in µs.
    pub net_p50_us: u64,
    /// p99 network leg (commit→arrival) in µs.
    pub net_p99_us: u64,
    /// Median hold-back (arrival→install) in µs.
    pub holdback_p50_us: u64,
    /// p99 hold-back (arrival→install) in µs.
    pub holdback_p99_us: u64,
    /// p99 submission-queue wait in µs (0 when no commit ever queued).
    pub queue_p99_us: u64,
    /// p99 initiation→commit execution phase in µs.
    pub exec_p99_us: u64,
}

/// Build the system under test: `fragments` unrestricted fragments over
/// an `n`-node full mesh (10 ms links, jittered per `link_jitter`),
/// fragment `f` homed at `f % n`.
pub fn build_system(spec: &ScaleSpec) -> (System, Vec<(FragmentId, Vec<ObjectId>)>) {
    assert!(spec.nodes >= 2, "scale runs need at least two nodes");
    assert!(spec.fragments >= 1, "scale runs need at least one fragment");
    let mut b = FragmentCatalog::builder();
    let frags: Vec<(FragmentId, Vec<ObjectId>)> = (0..spec.fragments)
        .map(|f| b.add_fragment(format!("S{f}"), spec.objects_per_fragment as usize))
        .collect();
    let agents = frags
        .iter()
        .map(|(f, _)| {
            let home = NodeId(f.0 % spec.nodes);
            (*f, AgentId::Node(home), home)
        })
        .collect();
    // The link layout draws from its own forked stream so topology jitter
    // never perturbs the engine or workload RNG sequences.
    let topo = Topology::jittered_mesh(
        spec.nodes,
        SimDuration::from_millis(10),
        spec.link_jitter,
        spec.seed ^ 0x11_77_e7_ed,
    );
    let sys = System::build(
        topo,
        b.build(),
        agents,
        SystemConfig::unrestricted(spec.seed),
    )
    .expect("scale system must build");
    (sys, frags)
}

/// Fold a Zipf user rank onto `(fragment, object)`.
///
/// Round-robin over fragments first, so rank 0..F-1 — the hottest users —
/// land on distinct fragments and every fragment gets a skewed keyspace.
fn place(rank: u64, fragments: u32, objects: u32) -> (usize, usize) {
    let f = (rank % fragments as u64) as usize;
    let o = ((rank / fragments as u64) % objects as u64) as usize;
    (f, o)
}

/// Drive one open-loop run to quiescence and collect [`ScaleStats`].
pub fn run(spec: &ScaleSpec) -> (System, ScaleStats) {
    let (mut sys, frags) = build_system(spec);
    // Size the telemetry ring from the workload so span reconstruction
    // sees every commit: each commit fans out to ~2 events per replica
    // (broadcast arrival + install) plus a handful of lifecycle events,
    // and the open-loop offers ~rate*horizon arrivals. 2x headroom covers
    // Poisson variance and retransmissions; the floor keeps small smoke
    // shapes on the old fixed cap.
    let expected_arrivals = (spec.rate_per_sec * spec.horizon.micros() as f64 / 1e6).ceil() as u64;
    let cap = (expected_arrivals * (2 * spec.nodes as u64 + 16) * 2).max(200_000);
    sys.engine.telemetry = Telemetry::bounded(cap as usize);
    let mut wl_rng = SimRng::new(spec.seed ^ 0x5ca1_ab1e);
    let mut open = OpenLoop::new(
        OpenLoopConfig {
            users: spec.users,
            theta: spec.theta,
            rate_per_sec: spec.rate_per_sec,
            start: SimTime::ZERO,
            horizon: SimTime::ZERO + spec.horizon,
        },
        &mut wl_rng,
    );
    let mut arrivals = 0u64;
    while let Some(a) = open.next_arrival(&mut wl_rng) {
        arrivals += 1;
        let (fi, oi) = place(a.user, spec.fragments, spec.objects_per_fragment);
        let (frag, ref objs) = frags[fi];
        let obj = objs[oi];
        sys.submit_at(
            a.at,
            Submission::update(
                frag,
                Box::new(move |ctx| {
                    let v = ctx.read_int(obj, 0);
                    ctx.write(obj, v + 1)?;
                    Ok(())
                }),
            ),
        );
    }
    // Drain window: enough for broadcasts and retransmissions to settle.
    let limit = SimTime::ZERO + spec.horizon + SimDuration::from_secs(60);
    let mut commits = 0u64;
    while let Some((_, notes)) = sys.step_until(limit) {
        for note in notes {
            if matches!(note, Notification::Committed { .. }) {
                commits += 1;
            }
        }
    }
    let offered = spec.rate_per_sec.round() as u64;
    sys.engine.metrics.set(keys::WORKLOAD_OFFERED_RATE, offered);
    sys.engine.publish_kernel_stats();
    // Headline lag comes from the streaming sketch: unlike the per-probe
    // fixed-bucket histograms it ingests every install (exact past ring
    // eviction) and its mergeable quantiles carry ≤3.125% relative error
    // at any scale.
    let lag = sys.engine.telemetry.probes().lag_sketch();
    let lag_p50_us = lag.quantile(50.0).unwrap_or(0);
    let lag_p99_us = lag.quantile(99.0).unwrap_or(0);
    // Phase decomposition from the span reconstruction over the retained
    // event window; publish the derived keys so downstream strict checks
    // see them.
    let report = fragdb_obs::SpanReport::from_records(sys.engine.telemetry.events());
    report.publish(&mut sys.engine.metrics);
    let stats = ScaleStats {
        arrivals,
        commits,
        events: sys.engine.metrics.counter(keys::SIM_EVENTS),
        messages: sys.net_stats().transmissions,
        peak_queue_depth: sys.engine.peak_queue_depth() as u64,
        pool_reuse: sys.engine.pool_reuse(),
        offered_rate: offered,
        lag_p50_us,
        lag_p99_us,
        spans: report.len() as u64,
        spans_truncated: report.truncated,
        net_p50_us: report.phase_quantile("net", 50.0),
        net_p99_us: report.phase_quantile("net", 99.0),
        holdback_p50_us: report.phase_quantile("holdback", 50.0),
        holdback_p99_us: report.phase_quantile("holdback", 99.0),
        queue_p99_us: report.phase_quantile("queue", 99.0),
        exec_p99_us: report.phase_quantile("exec", 99.0),
    };
    (sys, stats)
}

/// The transaction classes a scale shape declares (one updater per
/// fragment) — used by the registry entry so admission covers the shape.
pub fn classes(frags: &[(FragmentId, Vec<ObjectId>)]) -> Vec<ClassDecl> {
    frags
        .iter()
        .map(|(f, _)| ClassDecl::update(format!("scale-bump({})", f.0), *f, [*f]))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn spec() -> ScaleSpec {
        ScaleSpec {
            nodes: 4,
            fragments: 4,
            objects_per_fragment: 16,
            users: 100_000,
            theta: 0.99,
            rate_per_sec: 30.0,
            horizon: SimDuration::from_secs(4),
            link_jitter: SimDuration::from_millis(1),
            seed: 42,
        }
    }

    #[test]
    fn open_loop_run_commits_and_reports_kernel_stats() {
        let (sys, stats) = run(&spec());
        assert!(stats.arrivals > 50, "open loop must offer real load");
        assert!(stats.commits > 0, "some transactions must commit");
        assert!(stats.commits <= stats.arrivals);
        assert!(stats.events > stats.arrivals, "each txn costs >1 event");
        assert!(stats.messages > 0, "commits broadcast over the wire");
        assert!(stats.peak_queue_depth > 0);
        assert!(
            stats.lag_p99_us > stats.lag_p50_us,
            "jittered links must spread the lag distribution \
             (p50={} p99={})",
            stats.lag_p50_us,
            stats.lag_p99_us
        );
        assert!(stats.lag_p50_us > 0, "remote installs lag the commit");
        assert!(stats.spans >= stats.commits, "every commit yields a span");
        assert_eq!(stats.spans_truncated, 0, "smoke run fits the ring");
        assert!(stats.net_p50_us > 0, "remote legs cross 10ms links");
        assert!(stats.net_p99_us >= stats.net_p50_us);
        // Unrestricted commits execute at the initiation instant, so the
        // exec phase is legitimately zero in virtual time here; the field
        // still has to be populated deterministically (checked in the
        // replay test below).
        assert!(
            sys.engine.metrics.histogram("span.phase.net").is_some(),
            "span phases must be published under registered keys"
        );
        assert_eq!(sys.engine.metrics.counter("telemetry.spans_truncated"), 0);
        assert_eq!(stats.offered_rate, 30);
        assert_eq!(
            sys.engine.metrics.counter(keys::WORKLOAD_OFFERED_RATE),
            30,
            "offered rate must be published under the registered key"
        );
        assert!(
            sys.engine.metrics.counter(keys::ENGINE_QUEUE_DEPTH) > 0,
            "publish_kernel_stats must surface the queue depth"
        );
        assert!(
            sys.divergent_fragments().is_empty(),
            "must quiesce consistent"
        );
    }

    #[test]
    fn scale_run_is_deterministic_across_replays() {
        let (_, a) = run(&spec());
        let (_, b) = run(&spec());
        assert_eq!(a.arrivals, b.arrivals);
        assert_eq!(a.commits, b.commits);
        assert_eq!(a.events, b.events);
        assert_eq!(a.messages, b.messages);
        assert_eq!(a.lag_p50_us, b.lag_p50_us);
        assert_eq!(a.lag_p99_us, b.lag_p99_us);
        assert_eq!(a.spans, b.spans);
        assert_eq!(a.net_p50_us, b.net_p50_us);
        assert_eq!(a.net_p99_us, b.net_p99_us);
        assert_eq!(a.holdback_p50_us, b.holdback_p50_us);
        assert_eq!(a.holdback_p99_us, b.holdback_p99_us);
        assert_eq!(a.queue_p99_us, b.queue_p99_us);
        assert_eq!(a.exec_p99_us, b.exec_p99_us);
    }

    #[test]
    fn hot_ranks_spread_across_fragments() {
        let f = 4;
        let o = 16;
        assert_eq!(place(0, f, o), (0, 0));
        assert_eq!(place(1, f, o), (1, 0));
        assert_eq!(place(2, f, o), (2, 0));
        assert_eq!(place(3, f, o), (3, 0));
        assert_eq!(place(4, f, o), (0, 1));
        // Ranks past the keyspace wrap instead of overflowing.
        assert_eq!(place(4 * 16, f, o), (0, 0));
    }
}
