//! Minimal aligned ASCII tables for experiment reports.

use std::fmt;

/// A simple column-aligned table.
#[derive(Clone, Debug)]
pub struct Table {
    headers: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl Table {
    /// Create with column headers.
    pub fn new<S: Into<String>>(headers: impl IntoIterator<Item = S>) -> Self {
        Table {
            headers: headers.into_iter().map(Into::into).collect(),
            rows: Vec::new(),
        }
    }

    /// Append a row; must match the header count.
    pub fn row<S: Into<String>>(&mut self, cells: impl IntoIterator<Item = S>) -> &mut Self {
        let cells: Vec<String> = cells.into_iter().map(Into::into).collect();
        assert_eq!(
            cells.len(),
            self.headers.len(),
            "row width must match header width"
        );
        self.rows.push(cells);
        self
    }

    /// Number of data rows.
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// True if no data rows.
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    fn widths(&self) -> Vec<usize> {
        let mut w: Vec<usize> = self.headers.iter().map(String::len).collect();
        for row in &self.rows {
            for (i, cell) in row.iter().enumerate() {
                w[i] = w[i].max(cell.len());
            }
        }
        w
    }
}

impl fmt::Display for Table {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let widths = self.widths();
        let line = |f: &mut fmt::Formatter<'_>, cells: &[String]| -> fmt::Result {
            write!(f, "|")?;
            for (i, c) in cells.iter().enumerate() {
                write!(f, " {:<width$} |", c, width = widths[i])?;
            }
            writeln!(f)
        };
        line(f, &self.headers)?;
        write!(f, "|")?;
        for w in &widths {
            write!(f, "{:-<width$}|", "", width = w + 2)?;
        }
        writeln!(f)?;
        for row in &self.rows {
            line(f, row)?;
        }
        Ok(())
    }
}

/// Format a fraction as a percentage with one decimal.
pub fn pct(num: u64, den: u64) -> String {
    if den == 0 {
        "n/a".to_string()
    } else {
        format!("{:.1}%", 100.0 * num as f64 / den as f64)
    }
}

/// Format microseconds as human milliseconds/seconds.
pub fn dur(micros: u64) -> String {
    if micros >= 1_000_000 {
        format!("{:.2}s", micros as f64 / 1e6)
    } else if micros >= 1_000 {
        format!("{:.1}ms", micros as f64 / 1e3)
    } else {
        format!("{micros}us")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_aligned() {
        let mut t = Table::new(["name", "value"]);
        t.row(["a", "1"]);
        t.row(["longer-name", "22"]);
        let s = t.to_string();
        let lines: Vec<&str> = s.lines().collect();
        assert_eq!(lines.len(), 4);
        assert!(lines[0].contains("| name "));
        assert!(lines[2].contains("| a "));
        // All lines same width.
        let w = lines[0].len();
        assert!(lines.iter().all(|l| l.len() == w));
    }

    #[test]
    #[should_panic(expected = "row width")]
    fn mismatched_row_panics() {
        Table::new(["a", "b"]).row(["only-one"]);
    }

    #[test]
    fn pct_and_dur_format() {
        assert_eq!(pct(1, 2), "50.0%");
        assert_eq!(pct(0, 0), "n/a");
        assert_eq!(dur(500), "500us");
        assert_eq!(dur(2_500), "2.5ms");
        assert_eq!(dur(3_000_000), "3.00s");
    }

    #[test]
    fn empty_table() {
        let t = Table::new(["x"]);
        assert!(t.is_empty());
        assert_eq!(t.len(), 0);
    }
}
