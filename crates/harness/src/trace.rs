//! Telemetry trace scenarios and renderers behind the `fragdb-trace`
//! explorer.
//!
//! Three shipped scenarios exercise the three regimes the paper contrasts:
//!
//! * [`READ_LOCKS_FIXED`] — §4.1 read locks with fixed agents, fault-free:
//!   the globally-serializable end of the spectrum. Expected telemetry:
//!   **zero** network drops and **zero** read staleness (every read runs
//!   under locks at the lock site, which is the agent home).
//! * [`UNRESTRICTED_FAULTS`] — §4.3 unrestricted reads over lossy links
//!   with a crash/recovery cycle: reads at non-home nodes observe the
//!   mutual-consistency window directly (nonzero `node.<n>.staleness`),
//!   and commit→install lag (`frag.<f>.lag`) widens under retransmission.
//! * [`MAJORITY_MOVEMENT`] — §4.4.1 majority commit with token moves under
//!   faults: `frag.<f>.move_stall` measures the §5 unavailability window
//!   between `MoveRequested` and `TokenArrived`.
//! * [`ALLOC`] — §6 partial replication: the telemetry-driven allocator
//!   shrinks fully replicated fragments to replication factor 3 around
//!   their reader clusters (`replica_set_changed`, the
//!   `frag.<f>.replica_count` gauge) and migrates each token to its heavy
//!   writer via §4.4.2B moves.
//!
//! A [`TraceRun`] captures the full structured event log plus the derived
//! probe metrics; the renderers turn it into a per-fragment causality
//! timeline, a lag/staleness summary table, and a JSON-lines export with a
//! hand-rolled schema validator (no serde in this offline build).

use std::collections::BTreeMap;

use fragdb_alloc::{AccessStats, AllocConfig, Allocator, Placement};
use fragdb_core::{MovePolicy, Submission, System, SystemConfig};
use fragdb_model::{AgentId, FragmentCatalog, FragmentId, NodeId, ObjectId};
use fragdb_net::{FaultConfig, FaultPlan, Topology};
use fragdb_sim::metrics::{keys, Metrics};
use fragdb_sim::{CausalId, SimDuration, SimTime, Telemetry, TelemetryEvent, TelemetryRecord};

use crate::configs;
use crate::table::Table;

/// §4.1 scenario name: read locks, fixed agents, fault-free.
pub const READ_LOCKS_FIXED: &str = "read-locks-fixed";
/// §4.3 scenario name: unrestricted reads under injected faults.
pub const UNRESTRICTED_FAULTS: &str = "unrestricted-faults";
/// §4.4.1 scenario name: majority commit with token movement under faults.
pub const MAJORITY_MOVEMENT: &str = "majority-movement";
/// §5 scenario name: failure detector + quorum election re-homing the
/// token after the home crashes, without an operator in the loop.
pub const SELF_HEAL: &str = "self-heal";
/// §6 scenario name: the telemetry-driven allocator shrinking a fully
/// replicated fragment to its replication factor and migrating the token
/// to the heavy writer.
pub const ALLOC: &str = "alloc";

/// Every shipped scenario name, in a stable order.
pub const SCENARIOS: [&str; 5] = [
    READ_LOCKS_FIXED,
    UNRESTRICTED_FAULTS,
    MAJORITY_MOVEMENT,
    SELF_HEAL,
    ALLOC,
];

/// Cap on retained telemetry events per run (probes stay exact past it).
const TELEMETRY_CAP: usize = 200_000;

/// A completed scenario run: the retained event log plus derived metrics.
pub struct TraceRun {
    /// Scenario name (one of [`SCENARIOS`]).
    pub scenario: &'static str,
    /// Paper section the scenario reproduces.
    pub section: &'static str,
    /// Retained telemetry records, oldest first.
    pub records: Vec<TelemetryRecord>,
    /// Events evicted from the bounded buffer.
    pub dropped: u64,
    /// Final metrics (counters + probe histograms).
    pub metrics: Metrics,
    /// Reliable-layer totals (transmissions, acks, retransmissions).
    pub net: fragdb_net::ReliableStats,
    /// `(fragment id, name, replica count R)` per fragment.
    pub fragments: Vec<(u32, String, u32)>,
}

fn secs(s: u64) -> SimTime {
    SimTime::from_secs(s)
}

fn ms(v: u64) -> SimDuration {
    SimDuration::from_millis(v)
}

/// Increment the first object of `objects` by one.
fn bump(objects: &[ObjectId]) -> fragdb_core::UpdateFn {
    let obj = objects[0];
    Box::new(move |ctx| {
        let v = ctx.read_int(obj, 0);
        ctx.write(obj, v + 1)?;
        Ok(())
    })
}

/// Read every object of `objects`.
fn scan(objects: &[ObjectId]) -> fragdb_core::UpdateFn {
    let objs = objects.to_vec();
    Box::new(move |ctx| {
        for &o in &objs {
            ctx.read(o);
        }
        Ok(())
    })
}

fn drive(
    mut sys: System,
    limit: SimTime,
    scenario: &'static str,
    section: &'static str,
) -> TraceRun {
    sys.engine.telemetry = Telemetry::bounded(TELEMETRY_CAP);
    while sys.step_until(limit).is_some() {}
    sys.engine.sync_drop_metrics();
    sys.publish_net_metrics();
    // Reconstruct per-commit spans and publish the derived keys
    // (`telemetry.spans_truncated`, `obs.critical_path.len`,
    // `span.phase.<p>`) so the strict registry check covers them too.
    let spans = fragdb_obs::SpanReport::from_records(sys.engine.telemetry.events());
    spans.publish(&mut sys.engine.metrics);
    let fragments = sys
        .catalog()
        .fragments()
        .iter()
        .map(|f| {
            let replicas = sys
                .replicas_of(f.id)
                .map_or(sys.node_count() as usize, |set| set.len());
            (f.id.0, f.name.clone(), replicas as u32)
        })
        .collect();
    TraceRun {
        scenario,
        section,
        records: sys.engine.telemetry.events().cloned().collect(),
        dropped: sys.engine.telemetry.dropped(),
        metrics: std::mem::take(&mut sys.engine.metrics),
        net: sys.net_stats(),
        fragments,
    }
}

/// §4.1: the two-ledger read-lock configuration, fault-free. Transfers
/// read the foreign ledger under remote read locks; read-only scans run
/// at the lock site (the home), so every read is fresh.
fn read_locks_fixed(seed: u64, quick: bool) -> TraceRun {
    let named = configs::by_name("ledger-read-locks", seed).expect("registered");
    let objects: Vec<Vec<ObjectId>> = named
        .catalog
        .fragments()
        .iter()
        .map(|f| f.objects.clone())
        .collect();
    let mut sys = System::build(named.topology, named.catalog, named.agents, named.config)
        .expect("admissible config");
    let rounds = if quick { 4 } else { 12 };
    for k in 0..rounds {
        // Alternating transfers, each reading the other ledger.
        for (own, other) in [(0usize, 1usize), (1, 0)] {
            let own_obj = objects[own][0];
            let other_obj = objects[other][0];
            sys.submit_at(
                secs(4 * k + 1 + own as u64),
                Submission::update_reading(
                    FragmentId(own as u32),
                    vec![other_obj],
                    Box::new(move |ctx| {
                        let funds = ctx.read_int(other_obj, 0);
                        let v = ctx.read_int(own_obj, 0);
                        ctx.write(own_obj, v + 1 + funds % 2)?;
                        Ok(())
                    }),
                ),
            );
        }
        // Read-only audits at each ledger's home.
        for f in 0..2u32 {
            sys.submit_at(
                secs(4 * k + 3),
                Submission::read_only(FragmentId(f), scan(&objects[f as usize])).at(NodeId(f)),
            );
        }
    }
    drive(sys, secs(4 * rounds + 30), READ_LOCKS_FIXED, "4.1")
}

/// §4.3: the chaos mesh under lossy links with a crash/recovery cycle.
/// Reads run unrestricted at node 4 (which homes no agent) shortly after
/// each commit, so they observe the propagation window as staleness.
fn unrestricted_faults(seed: u64, quick: bool) -> TraceRun {
    let mut named = configs::by_name("chaos-mesh", seed).expect("registered");
    let mut plan_rng = fragdb_sim::SimRng::new(seed ^ 0xC4A0_5000);
    let plan = FaultPlan::new(
        plan_rng.gen_range(0..30u64) as f64 / 100.0,
        plan_rng.gen_range(0..30u64) as f64 / 100.0,
        ms(plan_rng.gen_range(0..50u64)),
    );
    named.config = named.config.with_faults(FaultConfig::uniform(plan));
    let objects: Vec<Vec<ObjectId>> = named
        .catalog
        .fragments()
        .iter()
        .map(|f| f.objects.clone())
        .collect();
    let mut sys = System::build(named.topology, named.catalog, named.agents, named.config)
        .expect("admissible config");
    let updates = if quick { 6 } else { 20 };
    for (fi, objs) in objects.iter().enumerate() {
        for k in 0..updates {
            let at = secs(3 * k + fi as u64 + 1);
            sys.submit_at(at, Submission::update(FragmentId(fi as u32), bump(objs)));
            // 5ms after the commit the broadcast (10ms links) is still in
            // flight: a read at agent-free node 4 is provably stale.
            sys.submit_at(
                at + ms(5),
                Submission::read_only(FragmentId(fi as u32), scan(objs)).at(NodeId(4)),
            );
        }
    }
    sys.crash_at(secs(40), NodeId(4));
    sys.recover_at(secs(70), NodeId(4));
    drive(
        sys,
        secs(if quick { 200 } else { 500 }),
        UNRESTRICTED_FAULTS,
        "4.3",
    )
}

/// §4.4.1: a movable fragment under majority commit, with moves, mild
/// packet loss, and a crash of one acknowledging replica.
fn majority_movement(seed: u64, quick: bool) -> TraceRun {
    let mut named = configs::by_name("movement-majority", seed).expect("registered");
    named.config = named
        .config
        .with_faults(FaultConfig::uniform(FaultPlan::new(0.10, 0.05, ms(20))));
    let objects: Vec<ObjectId> = named.catalog.fragments()[0].objects.clone();
    let fragment = named.catalog.fragments()[0].id;
    let mut sys = System::build(named.topology, named.catalog, named.agents, named.config)
        .expect("admissible config");
    let horizon = if quick { 20 } else { 40 };
    for k in 0..horizon / 2 {
        sys.submit_at(
            secs(2 * k + 1),
            Submission::update(fragment, bump(&objects)),
        );
    }
    sys.submit_at(
        secs(3),
        Submission::read_only(fragment, scan(&objects)).at(NodeId(3)),
    );
    sys.move_agent_at(secs(8), fragment, NodeId(1));
    sys.crash_at(secs(10), NodeId(3));
    if !quick {
        sys.move_agent_at(secs(18), fragment, NodeId(2));
        sys.recover_at(secs(25), NodeId(3));
        sys.move_agent_at(secs(30), fragment, NodeId(4));
    } else {
        sys.recover_at(secs(15), NodeId(3));
    }
    drive(sys, secs(horizon + 80), MAJORITY_MOVEMENT, "4.4.1")
}

/// §5: the self-healing configuration. The token home crashes mid-stream;
/// the failure detector suspects it, the surviving replicas elect a new
/// home under a bumped epoch, and the §4.4.1 recovery re-seats the token.
/// The crashed home later recovers into the new regime (the epoch fence
/// keeps its stale state harmless). Probes: `frag.<f>.unavail_window`
/// (election start → token recovered), `detector.suspicions`,
/// `election.rounds`, and `batch.discarded` for the open batch that died
/// with the home.
fn self_heal(seed: u64, quick: bool) -> TraceRun {
    let named = configs::by_name("self-heal", seed).expect("registered");
    let objects: Vec<ObjectId> = named.catalog.fragments()[0].objects.clone();
    let fragment = named.catalog.fragments()[0].id;
    let mut sys = System::build(named.topology, named.catalog, named.agents, named.config)
        .expect("admissible config");
    let rounds = if quick { 10 } else { 24 };
    for k in 0..rounds {
        sys.submit_at(secs(k + 1), Submission::update(fragment, bump(&objects)));
    }
    // Kill the home mid-stream: detection bound is 2s (500ms × (3+1)),
    // election timeout 2s, so the token re-seats well before the
    // submissions run out.
    sys.crash_at(secs(4), NodeId(0));
    sys.recover_at(secs(rounds / 2 + 4), NodeId(0));
    drive(sys, secs(rounds + 60), SELF_HEAL, "5")
}

/// §6: the allocator timeline. Two fragments start fully replicated on an
/// 8-node mesh (the registry shapes are all 5-node full replication, so
/// this one is built inline); each fragment's heavy writer is *not* its
/// initial home and a two-node reader cluster sits next to the writer.
/// After a warm-up burst the recorded access counts drive allocator
/// epochs: each shrinks the replica set (a `replica_set_changed` event)
/// and moves the token toward the writer (§4.4.2B `move_requested` /
/// `token_arrived`), converging at replication factor 3. A second burst
/// then commits into the narrowed sets.
fn alloc_scenario(seed: u64, quick: bool) -> TraceRun {
    let nodes = 8u32;
    let rf = 3u32;
    let mut b = FragmentCatalog::builder();
    let frags: Vec<(FragmentId, Vec<ObjectId>)> =
        (0..2).map(|i| b.add_fragment(format!("A{i}"), 3)).collect();
    let agents = frags
        .iter()
        .map(|&(f, _)| (f, AgentId::Node(NodeId(f.0 % nodes)), NodeId(f.0 % nodes)))
        .collect();
    let mut sys = System::build(
        Topology::full_mesh(nodes, ms(10)),
        b.build(),
        agents,
        SystemConfig::unrestricted(seed).with_move_policy(MovePolicy::WithSeqNo),
    )
    .expect("admissible config");

    let writer_of = |f: u32| NodeId((f * 3 + 1) % nodes);
    let rounds = if quick { 6 } else { 16 };
    // Warm-up burst: every update submitted from the fragment's heavy
    // writer, reads from the two nodes next to it.
    let mut stats = AccessStats::new();
    for (fi, (f, objs)) in frags.iter().enumerate() {
        let writer = writer_of(fi as u32);
        for k in 0..rounds {
            sys.submit_at(
                secs(k + 1) + ms(fi as u64),
                Submission::update(*f, bump(objs)).at(writer),
            );
            stats.record_write(*f, writer);
        }
        for r in 1..=2u32 {
            let reader = NodeId((writer.0 + r) % nodes);
            sys.submit_at(
                secs(rounds / 2) + ms(50 * u64::from(r)),
                Submission::read_only(*f, scan(objs)).at(reader),
            );
            for _ in 0..rounds / 2 {
                stats.record_read(*f, reader);
            }
        }
    }

    // Allocator epochs over the recorded counts: shrink, then move the
    // token inside the narrowed set, until the plan is a no-op.
    let mut placement =
        Placement::fully_replicated(nodes, frags.iter().map(|&(f, _)| (f, NodeId(f.0 % nodes))));
    let mut allocator = Allocator::new(AllocConfig {
        replication_factor: rf,
        seed,
    });
    let mut t = secs(rounds + 5);
    for _ in 0..4 {
        let plan = allocator.plan(&placement, &stats);
        let done = plan.migrations() + plan.shrinks() == 0;
        for d in &plan.decisions {
            if d.shrink {
                sys.shrink_replica_set_at(t, d.fragment, d.replica_set.clone());
            }
            if d.migrate {
                sys.move_agent_at(t + ms(500), d.fragment, d.target_home);
            }
        }
        plan.publish(&stats, &mut sys.engine.metrics);
        placement = placement.after(&plan);
        if done {
            break;
        }
        t += SimDuration::from_secs(1);
    }

    // Post-convergence burst: commits now broadcast to RF−1 peers only.
    for (fi, (f, objs)) in frags.iter().enumerate() {
        for k in 0..rounds {
            sys.submit_at(
                t + SimDuration::from_secs(2 + k) + ms(fi as u64),
                Submission::update(*f, bump(objs)).at(writer_of(fi as u32)),
            );
        }
    }
    drive(sys, t + SimDuration::from_secs(2 + rounds + 60), ALLOC, "6")
}

/// Run a scenario by name. `quick` scales the workload down for CI smoke.
pub fn run_scenario(name: &str, seed: u64, quick: bool) -> Option<TraceRun> {
    match name {
        READ_LOCKS_FIXED => Some(read_locks_fixed(seed, quick)),
        UNRESTRICTED_FAULTS => Some(unrestricted_faults(seed, quick)),
        MAJORITY_MOVEMENT => Some(majority_movement(seed, quick)),
        SELF_HEAL => Some(self_heal(seed, quick)),
        ALLOC => Some(alloc_scenario(seed, quick)),
        _ => None,
    }
}

// ---- renderers -----------------------------------------------------------

fn fmt_micros(us: u64) -> String {
    if us >= 1_000_000 {
        format!("{:.3}s", us as f64 / 1e6)
    } else {
        format!("{:.1}ms", us as f64 / 1e3)
    }
}

/// Per-cause join of the commit to its downstream installs.
struct CauseRow {
    committed: Option<(SimTime, u32)>,
    installs: Vec<(u32, SimTime)>,
    recipients: Option<u32>,
    /// The home crashed with this quasi still in an open batch: the join
    /// is closed (no installs will ever arrive), not incomplete.
    discarded: Option<u32>,
}

impl CauseRow {
    fn empty() -> Self {
        CauseRow {
            committed: None,
            installs: Vec::new(),
            recipients: None,
            discarded: None,
        }
    }
}

/// Render the per-fragment ASCII timeline: each committed quasi-transaction
/// with its commit site and the lag of every install it caused, flagging
/// incomplete R-joins (installs still missing at the end of the run).
pub fn render_timeline(run: &TraceRun, max_rows_per_fragment: usize) -> String {
    let mut by_cause: BTreeMap<CausalId, CauseRow> = BTreeMap::new();
    for r in &run.records {
        match &r.event {
            TelemetryEvent::Committed { cause, node, .. } => {
                let row = by_cause.entry(*cause).or_insert_with(CauseRow::empty);
                row.committed = Some((r.at, *node));
            }
            TelemetryEvent::Installed { cause, node } => {
                by_cause
                    .entry(*cause)
                    .or_insert_with(CauseRow::empty)
                    .installs
                    .push((*node, r.at));
            }
            TelemetryEvent::BroadcastSent {
                cause, recipients, ..
            } => {
                by_cause
                    .entry(*cause)
                    .or_insert_with(CauseRow::empty)
                    .recipients = Some(*recipients);
            }
            TelemetryEvent::BatchDiscarded { cause, node } => {
                by_cause
                    .entry(*cause)
                    .or_insert_with(CauseRow::empty)
                    .discarded = Some(*node);
            }
            _ => {}
        }
    }

    let mut out = String::new();
    out.push_str(&format!(
        "timeline: {} (§{}) — {} events retained, {} dropped\n",
        run.scenario,
        run.section,
        run.records.len(),
        run.dropped
    ));
    for &(fid, ref name, replicas) in &run.fragments {
        let causes: Vec<(&CausalId, &CauseRow)> =
            by_cause.iter().filter(|(c, _)| c.fragment == fid).collect();
        out.push_str(&format!(
            "\nfragment {fid} ({name}) — {} commits, R={replicas}\n",
            causes
                .iter()
                .filter(|(_, row)| row.committed.is_some())
                .count(),
        ));
        if causes.is_empty() {
            out.push_str("  (no committed updates)\n");
            continue;
        }
        for (c, row) in causes.iter().take(max_rows_per_fragment) {
            let (commit_str, t0) = match row.committed {
                Some((at, node)) => (format!("{} @n{node}", fmt_micros(at.micros())), Some(at)),
                None => ("(commit evicted)".to_string(), None),
            };
            let mut installs = row.installs.clone();
            installs.sort();
            let install_str: Vec<String> = installs
                .iter()
                .map(|&(node, at)| match t0 {
                    Some(t0) => format!(
                        "n{node}+{}",
                        fmt_micros(at.micros().saturating_sub(t0.micros()))
                    ),
                    None => format!("n{node}@{}", fmt_micros(at.micros())),
                })
                .collect();
            let join = if let Some(node) = row.discarded {
                // The open batch died with its home: the join is closed,
                // not pending — downstream installs can never arrive.
                format!("  [batch DISCARDED @n{node}]")
            } else if installs.len() as u32 >= replicas {
                String::new()
            } else {
                format!("  [join {}/{replicas} INCOMPLETE]", installs.len())
            };
            out.push_str(&format!(
                "  e{}#{:<4} committed {commit_str:<14} installs: {}{join}\n",
                c.epoch,
                c.frag_seq,
                if install_str.is_empty() {
                    "-".to_string()
                } else {
                    install_str.join(" ")
                },
            ));
        }
        if causes.len() > max_rows_per_fragment {
            out.push_str(&format!(
                "  … {} more commits elided\n",
                causes.len() - max_rows_per_fragment
            ));
        }
    }
    out
}

/// Render the lag/staleness/stall summary table from the probe histograms.
pub fn render_summary(run: &TraceRun) -> String {
    let mut t = Table::new(["probe", "n", "min", "mean", "p99", "max"]);
    for (key, h) in run.metrics.histograms() {
        let dimensioned = keys::dim_matches(key, "frag.", keys::FRAG_PROBES)
            || keys::dim_matches(key, "node.", keys::NODE_PROBES);
        if !dimensioned {
            continue;
        }
        let time_valued = key.ends_with(".lag")
            || key.ends_with(".move_stall")
            || key.ends_with(".unavail_window");
        let fmt = |v: u64| {
            if time_valued {
                fmt_micros(v)
            } else {
                v.to_string()
            }
        };
        t.row([
            key.to_string(),
            h.count().to_string(),
            h.min().map_or("-".into(), &fmt),
            h.mean().map_or("-".into(), |m| fmt(m.round() as u64)),
            h.percentile(99.0).map_or("-".into(), &fmt),
            h.max().map_or("-".into(), &fmt),
        ]);
    }
    let mut out = format!("probes: {} (§{})\n", run.scenario, run.section);
    if t.is_empty() {
        out.push_str("  (no probe observations)\n");
    } else {
        out.push_str(&t.to_string());
    }
    let drops: u64 = run
        .records
        .iter()
        .map(|r| match r.event {
            TelemetryEvent::Dropped { count, .. } => count,
            _ => 0,
        })
        .sum();
    let stale_reads = run
        .records
        .iter()
        .filter(|r| {
            matches!(
                r.event,
                TelemetryEvent::ReadObserved { seen_seq, agent_seq, .. } if agent_seq > seen_seq
            )
        })
        .count();
    out.push_str(&format!(
        "network drops: {drops}   stale reads: {stale_reads}   telemetry dropped: {}\n",
        run.dropped
    ));
    out.push_str(&format!(
        "acks: {} standalone, {} piggybacked, {} suppressed ({} cumulative applications)   retransmissions: {}\n",
        run.net.acks_sent,
        run.net.acks_piggybacked,
        run.net.acks_suppressed,
        run.net.cumulative_acks,
        run.net.retransmissions,
    ));
    out
}

/// Render the run as JSON lines (scenario header comment, drop marker when
/// the buffer wrapped, then one flat object per event).
pub fn render_jsonl(run: &TraceRun) -> String {
    let mut out = format!("# scenario: {} section: {}\n", run.scenario, run.section);
    if run.dropped > 0 {
        out.push_str(&format!("# {} earlier events dropped\n", run.dropped));
    }
    for r in &run.records {
        out.push_str(&r.to_json_line());
        out.push('\n');
    }
    out
}

/// Metric keys present in `metrics` that the registry does not know.
pub fn unregistered_metric_keys(metrics: &Metrics) -> Vec<String> {
    let mut bad: Vec<String> = metrics
        .counters()
        .map(|(k, _)| k)
        .chain(metrics.histograms().map(|(k, _)| k))
        .filter(|k| !keys::is_registered(k))
        .map(str::to_string)
        .collect();
    bad.dedup();
    bad
}

// ---- JSONL validation ----------------------------------------------------

/// Every event name the exporter can emit, with the fields each requires
/// (beyond `at_micros` and `event`). The schema is flat by construction.
const EVENT_SCHEMA: &[(&str, &[&str])] = &[
    ("initiated", &["node", "fragment", "txn_seq"]),
    (
        "lock_wait_started",
        &["node", "fragment", "txn_seq", "sites"],
    ),
    ("lock_granted", &["node", "fragment", "txn_seq"]),
    (
        "committed",
        &["fragment", "epoch", "frag_seq", "node", "txn_seq"],
    ),
    (
        "broadcast_sent",
        &["fragment", "epoch", "frag_seq", "node", "recipients"],
    ),
    ("installed", &["fragment", "epoch", "frag_seq", "node"]),
    ("aborted", &["node", "fragment", "txn_seq", "reason"]),
    (
        "read_observed",
        &["node", "fragment", "seen_seq", "agent_seq"],
    ),
    (
        "held_back",
        &["fragment", "epoch", "frag_seq", "node", "depth"],
    ),
    ("submission_queued", &["fragment", "depth"]),
    ("move_requested", &["fragment", "from", "to"]),
    ("token_arrived", &["fragment", "node"]),
    ("move_aborted", &["fragment", "from", "to"]),
    ("dropped", &["from", "to", "count"]),
    ("retransmit", &["from", "to", "count"]),
    ("delivered", &["from", "to", "kind"]),
    ("crash", &["node"]),
    ("recover", &["node", "behind_fragments"]),
    ("catchup_complete", &["node"]),
    ("suspect_raised", &["node", "suspect"]),
    ("election_started", &["fragment", "epoch", "candidate"]),
    ("election_won", &["fragment", "epoch", "node"]),
    ("election_aborted", &["fragment", "epoch", "reason"]),
    ("token_recovered", &["fragment", "epoch", "node"]),
    (
        "batch_discarded",
        &["fragment", "epoch", "frag_seq", "node"],
    ),
    (
        "replica_set_changed",
        &["fragment", "from_count", "to_count"],
    ),
];

/// Summary statistics from a validated JSONL export.
pub struct JsonlStats {
    /// Event lines (comments excluded).
    pub events: usize,
    /// Count per event name.
    pub by_event: BTreeMap<String, usize>,
}

/// Parse one flat JSON object of string/number fields. Hand-rolled: the
/// exporter only ever writes `{"k":123,"k":"str",…}` with no nesting.
fn parse_flat_object(line: &str) -> Result<BTreeMap<String, String>, String> {
    let inner = line
        .strip_prefix('{')
        .and_then(|s| s.strip_suffix('}'))
        .ok_or_else(|| "line is not a {...} object".to_string())?;
    let mut fields = BTreeMap::new();
    let mut rest = inner;
    while !rest.is_empty() {
        let key_start = rest
            .strip_prefix('"')
            .ok_or_else(|| format!("expected quoted key at: {rest}"))?;
        let key_end = key_start
            .find('"')
            .ok_or_else(|| "unterminated key".to_string())?;
        let key = &key_start[..key_end];
        let after_key = key_start[key_end + 1..]
            .strip_prefix(':')
            .ok_or_else(|| format!("missing ':' after key {key}"))?;
        let (value, remainder) = if let Some(sq) = after_key.strip_prefix('"') {
            // String value; exporter escapes only '"' and '\'.
            let mut end = None;
            let mut prev_backslash = false;
            for (i, c) in sq.char_indices() {
                if prev_backslash {
                    prev_backslash = false;
                } else if c == '\\' {
                    prev_backslash = true;
                } else if c == '"' {
                    end = Some(i);
                    break;
                }
            }
            let end = end.ok_or_else(|| format!("unterminated string for key {key}"))?;
            (sq[..end].to_string(), &sq[end + 1..])
        } else {
            let end = after_key.find(',').unwrap_or(after_key.len());
            let raw = &after_key[..end];
            if raw.is_empty() || !raw.bytes().all(|b| b.is_ascii_digit()) {
                return Err(format!(
                    "field {key} is neither a string nor a number: {raw}"
                ));
            }
            (raw.to_string(), &after_key[end..])
        };
        if fields.insert(key.to_string(), value).is_some() {
            return Err(format!("duplicate field {key}"));
        }
        rest = match remainder.strip_prefix(',') {
            Some(r) => r,
            None if remainder.is_empty() => remainder,
            None => return Err(format!("trailing garbage after field {key}: {remainder}")),
        };
    }
    Ok(fields)
}

/// Validate a JSONL export against the hand-rolled event schema: every
/// non-comment line must be a flat object with `at_micros` (numeric,
/// non-decreasing) and a known `event` carrying exactly its schema fields.
pub fn validate_jsonl(text: &str) -> Result<JsonlStats, String> {
    let schema: BTreeMap<&str, &[&str]> = EVENT_SCHEMA.iter().copied().collect();
    let mut stats = JsonlStats {
        events: 0,
        by_event: BTreeMap::new(),
    };
    let mut last_at: u64 = 0;
    for (lineno, line) in text.lines().enumerate() {
        let n = lineno + 1;
        if line.starts_with('#') || line.is_empty() {
            // A new scenario segment restarts virtual time.
            if line.starts_with("# scenario:") {
                last_at = 0;
            }
            continue;
        }
        let fields = parse_flat_object(line).map_err(|e| format!("line {n}: {e}"))?;
        let at: u64 = fields
            .get("at_micros")
            .ok_or_else(|| format!("line {n}: missing at_micros"))?
            .parse()
            .map_err(|_| format!("line {n}: at_micros is not numeric"))?;
        if at < last_at {
            return Err(format!(
                "line {n}: at_micros {at} decreases (previous {last_at})"
            ));
        }
        last_at = at;
        let event = fields
            .get("event")
            .ok_or_else(|| format!("line {n}: missing event"))?;
        let required = schema
            .get(event.as_str())
            .ok_or_else(|| format!("line {n}: unknown event {event:?}"))?;
        for &f in *required {
            if !fields.contains_key(f) {
                return Err(format!("line {n}: event {event:?} missing field {f:?}"));
            }
        }
        let expected = required.len() + 2; // + at_micros + event
        if fields.len() != expected {
            return Err(format!(
                "line {n}: event {event:?} has {} fields, schema says {expected}",
                fields.len()
            ));
        }
        stats.events += 1;
        *stats.by_event.entry(event.clone()).or_insert(0) += 1;
    }
    if stats.events == 0 {
        return Err("no event lines".to_string());
    }
    Ok(stats)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scenario_names_resolve() {
        for name in SCENARIOS {
            assert!(run_scenario(name, 7, true).is_some(), "{name} must resolve");
        }
        assert!(run_scenario("nope", 7, true).is_none());
    }

    #[test]
    fn fault_free_locks_run_is_clean() {
        let run = read_locks_fixed(42, true);
        assert!(!run.records.is_empty());
        let drops = run
            .records
            .iter()
            .filter(|r| matches!(r.event, TelemetryEvent::Dropped { .. }))
            .count();
        assert_eq!(drops, 0, "fault-free run must not drop packets");
        for r in &run.records {
            if let TelemetryEvent::ReadObserved {
                seen_seq,
                agent_seq,
                ..
            } = r.event
            {
                assert_eq!(seen_seq, agent_seq, "§4.1 locked reads must never be stale");
            }
        }
        assert_eq!(run.dropped, 0);
    }

    #[test]
    fn jsonl_roundtrip_validates() {
        let run = read_locks_fixed(42, true);
        let text = render_jsonl(&run);
        let stats = validate_jsonl(&text).expect("export must satisfy its own schema");
        assert_eq!(stats.events, run.records.len());
        assert!(stats.by_event.contains_key("committed"));
    }

    #[test]
    fn validator_rejects_malformed_lines() {
        assert!(validate_jsonl("").is_err());
        assert!(validate_jsonl("{\"event\":\"committed\"}").is_err());
        assert!(validate_jsonl("{\"at_micros\":1,\"event\":\"mystery\"}").is_err());
        // Missing a schema field.
        assert!(validate_jsonl("{\"at_micros\":1,\"event\":\"crash\"}").is_err());
        // Extra field not in the schema.
        assert!(
            validate_jsonl("{\"at_micros\":1,\"event\":\"crash\",\"node\":2,\"x\":3}").is_err()
        );
        // Time going backwards.
        let two = "{\"at_micros\":5,\"event\":\"crash\",\"node\":1}\n{\"at_micros\":4,\"event\":\"crash\",\"node\":1}";
        assert!(validate_jsonl(two).is_err());
        // A valid line passes.
        let ok = "{\"at_micros\":5,\"event\":\"crash\",\"node\":1}";
        assert_eq!(validate_jsonl(ok).unwrap().events, 1);
    }

    #[test]
    fn renderers_mention_fragments_and_probes() {
        let run = unrestricted_faults(42, true);
        let timeline = render_timeline(&run, 5);
        assert!(timeline.contains("fragment 0"));
        assert!(timeline.contains("committed"));
        let summary = render_summary(&run);
        assert!(
            summary.contains(".lag"),
            "summary must show lag probes:\n{summary}"
        );
        assert!(
            summary.contains(".staleness"),
            "summary must show staleness probes:\n{summary}"
        );
    }

    #[test]
    fn self_heal_scenario_recovers_the_token() {
        let run = self_heal(42, true);
        let recovered = run
            .records
            .iter()
            .any(|r| matches!(r.event, TelemetryEvent::TokenRecovered { .. }));
        assert!(recovered, "the election must re-home the crashed token");
        let h = run
            .metrics
            .histograms()
            .find(|(k, _)| k.ends_with(".unavail_window"))
            .map(|(_, h)| h)
            .expect("unavailability window observed");
        assert!(h.count() >= 1);
        // The export (including the six §5 events) satisfies its schema.
        let stats = validate_jsonl(&render_jsonl(&run)).expect("schema-valid");
        assert!(stats.by_event.contains_key("election_started"));
        assert!(stats.by_event.contains_key("token_recovered"));
        let summary = render_summary(&run);
        assert!(
            summary.contains(".unavail_window"),
            "summary must show the §5 probe:\n{summary}"
        );
    }

    #[test]
    fn alloc_scenario_shrinks_and_migrates() {
        let run = alloc_scenario(42, true);
        let shrinks: Vec<(u32, u32)> = run
            .records
            .iter()
            .filter_map(|r| match r.event {
                TelemetryEvent::ReplicaSetChanged {
                    from_count,
                    to_count,
                    ..
                } => Some((from_count, to_count)),
                _ => None,
            })
            .collect();
        assert!(!shrinks.is_empty(), "allocator must shrink a replica set");
        assert!(
            shrinks.iter().all(|&(from, to)| to < from),
            "shrinks must be monotone: {shrinks:?}"
        );
        assert!(
            shrinks.iter().any(|&(_, to)| to == 3),
            "some fragment must land at the replication factor: {shrinks:?}"
        );
        let moved = run
            .records
            .iter()
            .any(|r| matches!(r.event, TelemetryEvent::TokenArrived { .. }));
        assert!(moved, "the token must migrate to the heavy writer");
        for &(fid, _, replicas) in &run.fragments {
            assert_eq!(replicas, 3, "fragment {fid} must converge at RF 3");
            assert_eq!(
                run.metrics.counter(&format!("frag.{fid}.replica_count")),
                3,
                "replica-count gauge must track the converged set"
            );
        }
        assert!(run.metrics.counter(keys::ALLOC_MIGRATIONS) > 0);
        // The export (including replica_set_changed) satisfies its schema.
        let stats = validate_jsonl(&render_jsonl(&run)).expect("schema-valid");
        assert!(stats.by_event.contains_key("replica_set_changed"));
        assert!(stats.by_event.contains_key("token_arrived"));
    }

    #[test]
    fn all_scenario_metric_keys_are_registered() {
        for name in SCENARIOS {
            let run = run_scenario(name, 42, true).unwrap();
            let bad = unregistered_metric_keys(&run.metrics);
            assert!(bad.is_empty(), "{name}: unregistered metric keys: {bad:?}");
        }
    }
}
