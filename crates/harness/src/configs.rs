//! The registry of shipped configurations, in the form the static
//! admission analyzer consumes.
//!
//! Every example and experiment in this workspace boils down to a
//! `(topology, catalog, agents, classes, config)` tuple. This module
//! names each one so `fragdb-check` can certify them all — the
//! `examples/check.rs` CLI iterates [`all`] and CI fails if any shipped
//! configuration stops passing admission.

use fragdb_check::{admit, AdmissionError, AdmissionPolicy, CheckInput, ClassDecl, Report};
use fragdb_core::{DetectorConfig, MovePolicy, StrategyKind, SystemConfig};
use fragdb_model::{AgentId, FragmentCatalog, FragmentId, NodeId, UserId};
use fragdb_net::Topology;
use fragdb_sim::SimDuration;
use fragdb_workloads::{AirlineSchema, BankConfig, BankSchema, WarehouseConfig, WarehouseSchema};

/// A shipped configuration under a stable name, ready for admission.
pub struct NamedConfig {
    /// Registry name (stable; used by the `check` CLI and CI logs).
    pub name: &'static str,
    /// Where the configuration comes from.
    pub source: &'static str,
    /// Node graph.
    pub topology: Topology,
    /// Fragment → object map.
    pub catalog: FragmentCatalog,
    /// `(fragment, agent, home)` token assignment.
    pub agents: Vec<(FragmentId, AgentId, NodeId)>,
    /// Named transaction classes.
    pub classes: Vec<ClassDecl>,
    /// Strategy/movement/replication choices.
    pub config: SystemConfig,
}

impl NamedConfig {
    /// Borrow the fields as a [`CheckInput`].
    pub fn input(&self) -> CheckInput<'_> {
        CheckInput {
            topology: &self.topology,
            catalog: &self.catalog,
            agents: &self.agents,
            classes: &self.classes,
            config: &self.config,
        }
    }

    /// Run admission over this configuration.
    pub fn admit(&self, policy: AdmissionPolicy) -> Result<Report, AdmissionError> {
        admit(&self.input(), policy)
    }
}

fn ms(v: u64) -> SimDuration {
    SimDuration::from_millis(v)
}

/// `examples/quickstart.rs`: one fragment, three nodes, unrestricted.
fn quickstart(seed: u64) -> NamedConfig {
    let mut b = FragmentCatalog::builder();
    let (counters, _) = b.add_fragment("COUNTERS", 2);
    NamedConfig {
        name: "quickstart",
        source: "examples/quickstart.rs",
        topology: Topology::full_mesh(3, ms(10)),
        catalog: b.build(),
        agents: vec![(counters, AgentId::Node(NodeId(0)), NodeId(0))],
        classes: vec![ClassDecl::update("bump-counter", counters, [counters])],
        config: SystemConfig::unrestricted(seed),
    }
}

/// The §1 banking design under §4.2: a star RAG on BALANCES —
/// the paper's showcase of an admissible schema (e1/e2/e3).
fn banking(seed: u64) -> NamedConfig {
    let accounts = 4u32;
    let cfg = BankConfig {
        accounts,
        slots_per_account: 8,
        central: NodeId(0),
        account_homes: (1..=accounts).map(NodeId).collect(),
        overdraft_fine: 50,
    };
    let (catalog, schema, agents) = BankSchema::build(&cfg);
    let mut classes = vec![ClassDecl::update(
        "apply-postings",
        schema.balances,
        [schema.balances],
    )];
    for i in 0..accounts as usize {
        classes.push(ClassDecl::update(
            format!("post({i})"),
            schema.activity[i],
            [schema.activity[i], schema.balances, schema.recorded[i]],
        ));
        classes.push(ClassDecl::update(
            format!("record({i})"),
            schema.recorded[i],
            [schema.recorded[i]],
        ));
    }
    let strategy = StrategyKind::AcyclicRag {
        decls: schema.decls(),
        allow_violating_read_only: true,
    };
    NamedConfig {
        name: "banking-acyclic-rag",
        source: "e1_spectrum / e2_banking_scenarios / e3_local_view",
        topology: Topology::full_mesh(accounts + 1, ms(10)),
        catalog,
        agents,
        classes,
        config: SystemConfig::unrestricted(seed).with_strategy(strategy),
    }
}

/// Figure 4.2.1's warehouse schema: central scan reads every warehouse
/// (a star — elementarily acyclic), warehouses touch only themselves.
fn warehouse(seed: u64) -> NamedConfig {
    let k = 4u32;
    let cfg = WarehouseConfig {
        warehouses: k,
        products: 3,
        central: NodeId(0),
        warehouse_homes: (1..=k).map(NodeId).collect(),
        reorder_below: 20,
    };
    let (catalog, schema, agents) = WarehouseSchema::build(&cfg);
    let mut classes = vec![ClassDecl::update(
        "central-scan",
        schema.central,
        schema.warehouse.iter().copied().chain([schema.central]),
    )];
    for (w, &frag) in schema.warehouse.iter().enumerate() {
        classes.push(ClassDecl::update(format!("sale(W{w})"), frag, [frag]));
    }
    let strategy = schema.strategy();
    NamedConfig {
        name: "warehouse-star",
        source: "e4_warehouse",
        topology: Topology::full_mesh(k + 1, ms(10)),
        catalog,
        agents,
        classes,
        config: SystemConfig::unrestricted(seed).with_strategy(strategy),
    }
}

/// §4.3's airline reservations: flight scans read every customer
/// fragment, so the RAG is cyclic *by design* and the system runs
/// unrestricted — admissible because no §4.2 strategy is declared.
fn airline(seed: u64) -> NamedConfig {
    let (customers, flights) = (3u32, 2u32);
    let customer_homes: Vec<_> = (0..customers).map(NodeId).collect();
    let flight_homes: Vec<_> = (0..flights).map(|j| NodeId(customers + j)).collect();
    let (catalog, schema, agents) =
        AirlineSchema::build(customers, flights, 10, &customer_homes, &flight_homes);
    let mut classes = Vec::new();
    for (i, &c) in schema.customer.iter().enumerate() {
        classes.push(ClassDecl::update(format!("request(C{})", i + 1), c, [c]));
    }
    for (j, &f) in schema.flight.iter().enumerate() {
        classes.push(ClassDecl::update(
            format!("grant(F{})", j + 1),
            f,
            schema.customer.iter().copied().chain([f]),
        ));
    }
    NamedConfig {
        name: "airline-unrestricted",
        source: "e6_airline",
        topology: Topology::full_mesh(customers + flights, ms(10)),
        catalog,
        agents,
        classes,
        config: SystemConfig::unrestricted(seed),
    }
}

/// A two-ledger §4.1 configuration: transfers read the other ledger
/// under remote read locks, fixed agents, no movement. (The mutual read
/// is a lock-order *warning* — deadlocks resolve by timeout — not an
/// admission error.)
fn ledger_read_locks(seed: u64) -> NamedConfig {
    let mut b = FragmentCatalog::builder();
    let (l1, _) = b.add_fragment("L1", 2);
    let (l2, _) = b.add_fragment("L2", 2);
    NamedConfig {
        name: "ledger-read-locks",
        source: "e1_spectrum (read-locks row)",
        topology: Topology::full_mesh(2, ms(10)),
        catalog: b.build(),
        agents: vec![
            (l1, AgentId::Node(NodeId(0)), NodeId(0)),
            (l2, AgentId::Node(NodeId(1)), NodeId(1)),
        ],
        classes: vec![
            ClassDecl::update("transfer(L1->L2)", l1, [l1, l2]),
            ClassDecl::update("transfer(L2->L1)", l2, [l2, l1]),
        ],
        config: SystemConfig::read_locks(seed),
    }
}

/// §6's mixed system (e11): two ledgers under locks, a warehouse trio
/// under §4.2, and a movable personal fragment under NoPrep.
fn mixed(seed: u64) -> NamedConfig {
    let mut b = FragmentCatalog::builder();
    let (l1, _) = b.add_fragment("L1", 2);
    let (l2, _) = b.add_fragment("L2", 2);
    let (w1, _) = b.add_fragment("W1", 2);
    let (w2, _) = b.add_fragment("W2", 2);
    let (c, _) = b.add_fragment("C", 2);
    let (m, _) = b.add_fragment("M", 2);
    let catalog = b.build();
    let rag_strategy = StrategyKind::AcyclicRag {
        decls: vec![
            fragdb_model::AccessDecl::update(c, [w1, w2]),
            fragdb_model::AccessDecl::update(w1, [w1]),
            fragdb_model::AccessDecl::update(w2, [w2]),
        ],
        allow_violating_read_only: true,
    };
    let lock_strategy = StrategyKind::ReadLocks {
        timeout: SimDuration::from_secs(8),
    };
    NamedConfig {
        name: "mixed-strategies",
        source: "e11_mixed",
        topology: Topology::full_mesh(5, ms(10)),
        catalog,
        agents: vec![
            (l1, AgentId::Node(NodeId(0)), NodeId(0)),
            (l2, AgentId::Node(NodeId(1)), NodeId(1)),
            (w1, AgentId::Node(NodeId(2)), NodeId(2)),
            (w2, AgentId::Node(NodeId(3)), NodeId(3)),
            (c, AgentId::Node(NodeId(4)), NodeId(4)),
            (m, AgentId::User(UserId(0)), NodeId(0)),
        ],
        classes: vec![
            ClassDecl::update("ledger-transfer(L1)", l1, [l1, l2]),
            ClassDecl::update("ledger-transfer(L2)", l2, [l2, l1]),
            ClassDecl::update("sale(W1)", w1, [w1]),
            ClassDecl::update("sale(W2)", w2, [w2]),
            ClassDecl::update("central-scan", c, [c, w1, w2]),
            ClassDecl::update("personal-note", m, [m]),
        ],
        config: SystemConfig::unrestricted(seed)
            .with_fragment_strategy(l1, lock_strategy.clone())
            .with_fragment_strategy(l2, lock_strategy)
            .with_fragment_strategy(w1, rag_strategy.clone())
            .with_fragment_strategy(w2, rag_strategy.clone())
            .with_fragment_strategy(c, rag_strategy)
            .with_fragment_move_policy(m, MovePolicy::NoPrep),
    }
}

/// §6 partial replication (e12): one fragment on 5 of 8 nodes under
/// majority-commit movement.
fn partial_replication(seed: u64) -> NamedConfig {
    let mut b = FragmentCatalog::builder();
    let (p, _) = b.add_fragment("P", 2);
    NamedConfig {
        name: "partial-replication-majority",
        source: "e12_partial_replication",
        topology: Topology::full_mesh(8, ms(10)),
        catalog: b.build(),
        agents: vec![(p, AgentId::Node(NodeId(0)), NodeId(0))],
        classes: vec![ClassDecl::update("bump", p, [p])],
        config: SystemConfig::unrestricted(seed)
            .with_replica_set(p, (0..5).map(NodeId))
            .with_move_policy(MovePolicy::MajorityCommit {
                timeout: SimDuration::from_secs(5),
            }),
    }
}

/// §4.4.1 movement (e7): a movable user fragment under majority commit.
fn movement(seed: u64) -> NamedConfig {
    let mut b = FragmentCatalog::builder();
    let (p, _) = b.add_fragment("PERSONAL", 2);
    NamedConfig {
        name: "movement-majority",
        source: "e7_movement",
        topology: Topology::full_mesh(5, ms(10)),
        catalog: b.build(),
        agents: vec![(p, AgentId::User(UserId(0)), NodeId(0))],
        classes: vec![ClassDecl::update("edit", p, [p])],
        config: SystemConfig::unrestricted(seed).with_move_policy(MovePolicy::MajorityCommit {
            timeout: SimDuration::from_secs(5),
        }),
    }
}

/// §5 self-healing (tests/self_heal.rs): a majority-commit fragment over
/// five nodes with the failure detector on, so a crash of the token home
/// is detected, voted on, and repaired without an operator.
fn self_heal(seed: u64) -> NamedConfig {
    let mut b = FragmentCatalog::builder();
    let (p, _) = b.add_fragment("PROTECTED", 2);
    NamedConfig {
        name: "self-heal",
        source: "tests/self_heal.rs",
        topology: Topology::full_mesh(5, ms(10)),
        catalog: b.build(),
        agents: vec![(p, AgentId::User(UserId(0)), NodeId(0))],
        classes: vec![ClassDecl::update("bump", p, [p])],
        config: SystemConfig::unrestricted(seed)
            .with_move_policy(MovePolicy::MajorityCommit {
                timeout: SimDuration::from_secs(5),
            })
            .with_detector(
                DetectorConfig::period(ms(500)).with_election_timeout(SimDuration::from_secs(2)),
            ),
    }
}

/// `tests/chaos.rs`: four user fragments over five nodes, unrestricted.
fn chaos(seed: u64) -> NamedConfig {
    let mut b = FragmentCatalog::builder();
    let frags: Vec<_> = (0..4)
        .map(|i| b.add_fragment(format!("F{i}"), 3).0)
        .collect();
    let catalog = b.build();
    let agents = frags
        .iter()
        .enumerate()
        .map(|(i, &f)| (f, AgentId::User(UserId(i as u32)), NodeId(i as u32)))
        .collect();
    let classes = frags
        .iter()
        .enumerate()
        .map(|(i, &f)| ClassDecl::update(format!("chaos-bump({i})"), f, [f]))
        .collect();
    NamedConfig {
        name: "chaos-mesh",
        source: "tests/chaos.rs",
        topology: Topology::full_mesh(5, ms(10)),
        catalog,
        agents,
        classes,
        config: SystemConfig::unrestricted(seed),
    }
}

/// The open-loop Zipf scale shape (`scale::run`, `fragdb-bench` scale
/// section): independent unrestricted fragments striped over a full
/// mesh, one updater class per fragment. Registered at a modest node
/// count so admission certifies the shape without analyzing a thousand
/// replicas; the bench scales only the mesh size, not the schema.
fn scale_zipf(seed: u64) -> NamedConfig {
    let spec = crate::scale::ScaleSpec::smoke(6, seed);
    let mut b = FragmentCatalog::builder();
    let frags: Vec<_> = (0..spec.fragments)
        .map(|f| b.add_fragment(format!("S{f}"), spec.objects_per_fragment as usize))
        .collect();
    let classes = crate::scale::classes(&frags);
    let frags: Vec<FragmentId> = frags.into_iter().map(|(f, _)| f).collect();
    NamedConfig {
        name: "scale-zipf-open-loop",
        source: "harness::scale / fragdb-bench scale section",
        topology: Topology::full_mesh(spec.nodes, ms(10)),
        catalog: b.build(),
        agents: frags
            .iter()
            .map(|&f| {
                let home = NodeId(f.0 % spec.nodes);
                (f, AgentId::Node(home), home)
            })
            .collect(),
        classes,
        config: SystemConfig::unrestricted(seed),
    }
}

/// Every shipped configuration, in a stable order.
pub fn all(seed: u64) -> Vec<NamedConfig> {
    vec![
        quickstart(seed),
        banking(seed),
        warehouse(seed),
        airline(seed),
        ledger_read_locks(seed),
        mixed(seed),
        partial_replication(seed),
        movement(seed),
        self_heal(seed),
        chaos(seed),
        scale_zipf(seed),
    ]
}

/// Look up a configuration by registry name.
pub fn by_name(name: &str, seed: u64) -> Option<NamedConfig> {
    all(seed).into_iter().find(|c| c.name == name)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn every_shipped_config_passes_admission() {
        for cfg in all(42) {
            match cfg.admit(AdmissionPolicy::Enforce) {
                Ok(report) => assert!(report.is_admissible(), "{}: {report}", cfg.name),
                Err(e) => panic!("{} refused admission:\n{e}", cfg.name),
            }
        }
    }

    #[test]
    fn registry_names_are_unique_and_resolvable() {
        let configs = all(1);
        let names: std::collections::BTreeSet<_> = configs.iter().map(|c| c.name).collect();
        assert_eq!(names.len(), configs.len());
        for name in names {
            assert!(by_name(name, 1).is_some());
        }
    }
}
