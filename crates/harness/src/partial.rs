//! Partial-replication proof harness: full fan-out vs allocator-converged
//! replica sets under the open-loop Zipf workload.
//!
//! One [`PartialSpec`] describes a skewed workload with a distinct access
//! pattern per fragment: updates arrive open-loop (Zipf over the user
//! population) but are *submitted* from a designated heavy-writer node,
//! and a small reader cluster issues periodic read-only transactions.
//! [`run`] drives the workload through two arms over identical arrival
//! sequences:
//!
//! * **full** — every fragment fully replicated, the pre-§6 default: each
//!   commit broadcasts to all `n − 1` peers;
//! * **allocated** — the [`fragdb_alloc::Allocator`] consumes the
//!   driver-recorded access counts and converges the placement before the
//!   measurement window opens: tokens migrate to the heavy writers
//!   (§4.4.2 moves), replica sets shrink to the replication factor around
//!   the reader clusters (§6), and only then do arrivals start.
//!
//! The returned [`PartialStats`] carries messages/commit, commit→install
//! lag p50/p99, and read staleness for both arms — the evidence that
//! partial replication buys its fan-out reduction without giving up the
//! workload: `fragdb-bench`'s `partial_replication` section asserts the
//! ≥4× messages/commit reduction at scale, and the equivalence tests
//! assert both arms agree on serializability and surviving-replica
//! convergence.

use fragdb_alloc::{AccessStats, AllocConfig, Allocator, Placement, Plan};
use fragdb_check::{check, CheckInput, ClassDecl, Report};
use fragdb_core::{MovePolicy, Notification, Submission, System, SystemConfig};
use fragdb_model::{AgentId, FragmentCatalog, FragmentId, NodeId, ObjectId};
use fragdb_net::Topology;
use fragdb_sim::{SimDuration, SimRng, SimTime, Telemetry};
use fragdb_workloads::{OpenLoop, OpenLoopConfig};

/// Parameters of one partial-replication comparison.
#[derive(Clone, Debug)]
pub struct PartialSpec {
    /// Node count of the (jittered) full-mesh topology.
    pub nodes: u32,
    /// Independent fragments; fragment `f` starts homed at `f % nodes`.
    pub fragments: u32,
    /// Objects per fragment.
    pub objects_per_fragment: u32,
    /// Zipf population.
    pub users: u64,
    /// Zipf skew θ.
    pub theta: f64,
    /// Offered update arrival rate, transactions per simulated second.
    pub rate_per_sec: f64,
    /// Length of the measured arrival window.
    pub phase: SimDuration,
    /// Per-link delay jitter around the 10 ms mesh base.
    pub link_jitter: SimDuration,
    /// Replica-set size the allocator shrinks toward in the allocated arm.
    pub replication_factor: u32,
    /// Reader-cluster size per fragment (readers issue one read-only
    /// transaction per simulated second each).
    pub readers_per_fragment: u32,
    /// Engine / workload / allocator seed.
    pub seed: u64,
}

impl PartialSpec {
    /// A small smoke shape: quick, still skewed and multi-fragment.
    pub fn smoke(nodes: u32, seed: u64) -> Self {
        PartialSpec {
            nodes,
            fragments: 4,
            objects_per_fragment: 16,
            users: 1_000_000,
            theta: 0.99,
            rate_per_sec: 30.0,
            phase: SimDuration::from_secs(4),
            link_jitter: SimDuration::from_millis(1),
            replication_factor: 3,
            readers_per_fragment: 2,
            seed,
        }
    }

    /// The designated heavy writer of `fragment` — deliberately *not* the
    /// initial home, so the allocator has a migration to find.
    pub fn writer_of(&self, fragment: u32) -> NodeId {
        NodeId((fragment * 3 + 1) % self.nodes)
    }

    /// The reader cluster of `fragment`: `readers_per_fragment` nodes
    /// adjacent to the heavy writer.
    pub fn readers_of(&self, fragment: u32) -> Vec<NodeId> {
        let w = self.writer_of(fragment).0;
        (1..=self.readers_per_fragment)
            .map(|k| NodeId((w + k) % self.nodes))
            .collect()
    }
}

/// Which placement regime an arm runs under.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Arm {
    /// Full replication: the pre-§6 default, broadcast to everyone.
    Full,
    /// Allocator-converged placement at the configured replication factor.
    Allocated,
}

/// What one arm observed over the measurement window.
#[derive(Clone, Copy, Debug, Default)]
pub struct ArmStats {
    /// Open-loop update arrivals submitted.
    pub arrivals: u64,
    /// Update transactions committed.
    pub commits: u64,
    /// Read-only transactions finished.
    pub reads: u64,
    /// Data packets put on the wire during the window.
    pub messages: u64,
    /// Broadcast messages per committed update, in milli-messages
    /// (`2000` = 2.0): `messages / commits` over the window.
    pub msgs_per_commit_milli: u64,
    /// Median commit→install propagation lag in µs.
    pub lag_p50_us: u64,
    /// 99th-percentile commit→install propagation lag in µs.
    pub lag_p99_us: u64,
    /// Worst staleness any read observed (updates behind the agent).
    pub staleness_max: u64,
    /// Token migrations the allocator ordered (0 in the full arm).
    pub migrations: u64,
    /// Replica-set shrinks the allocator ordered (0 in the full arm).
    pub shrinks: u64,
    /// Replica count of fragment 0 after convergence (`n` in the full arm).
    pub replica_count: u64,
}

/// Both arms of one comparison.
#[derive(Clone, Copy, Debug, Default)]
pub struct PartialStats {
    /// Full replication.
    pub full: ArmStats,
    /// Allocator-converged placement.
    pub allocated: ArmStats,
}

impl PartialStats {
    /// Fan-out reduction: full-arm messages/commit over allocated-arm
    /// messages/commit, in milli (`4000` = 4.0×).
    pub fn msgs_reduction_milli(&self) -> u64 {
        if self.allocated.msgs_per_commit_milli == 0 {
            return 0;
        }
        self.full.msgs_per_commit_milli * 1000 / self.allocated.msgs_per_commit_milli
    }
}

/// The access profile the workload will exhibit, as the driver records it:
/// every update is submitted from the fragment's heavy writer, every
/// reader in the cluster reads once per second of the phase.
pub fn access_profile(spec: &PartialSpec) -> AccessStats {
    let mut stats = AccessStats::new();
    let secs = (spec.phase.micros() / 1_000_000).max(1);
    for f in 0..spec.fragments {
        let frag = FragmentId(f);
        // Weight writes by the offered share so the counts mirror what the
        // open loop will deliver; the exact magnitude is irrelevant to the
        // argmax, only the per-node ordering matters.
        let writes = ((spec.rate_per_sec * secs as f64) / spec.fragments as f64).ceil() as u64;
        for _ in 0..writes.max(1) {
            stats.record_write(frag, spec.writer_of(f));
        }
        for reader in spec.readers_of(f) {
            for _ in 0..secs {
                stats.record_read(frag, reader);
            }
        }
    }
    stats
}

/// Build the system under test for one arm: same shape as the scale
/// runner (jittered 10 ms mesh, fragment `f` homed at `f % n`).
pub fn build_system(spec: &PartialSpec) -> (System, Vec<(FragmentId, Vec<ObjectId>)>) {
    assert!(spec.nodes >= 4, "partial-replication runs need ≥4 nodes");
    assert!(spec.fragments >= 1);
    assert!(
        spec.replication_factor >= 1 && spec.replication_factor <= spec.nodes,
        "replication factor must fit the cluster"
    );
    let mut b = FragmentCatalog::builder();
    let frags: Vec<(FragmentId, Vec<ObjectId>)> = (0..spec.fragments)
        .map(|f| b.add_fragment(format!("P{f}"), spec.objects_per_fragment as usize))
        .collect();
    let agents = frags
        .iter()
        .map(|(f, _)| {
            let home = NodeId(f.0 % spec.nodes);
            (*f, AgentId::Node(home), home)
        })
        .collect();
    let topo = Topology::jittered_mesh(
        spec.nodes,
        SimDuration::from_millis(10),
        spec.link_jitter,
        spec.seed ^ 0x11_77_e7_ed,
    );
    // §4.4.2B moves: only the last sequence number travels with the token,
    // which is all the allocator's migrations need.
    let config = SystemConfig::unrestricted(spec.seed).with_move_policy(MovePolicy::WithSeqNo);
    let sys = System::build(topo, b.build(), agents, config)
        .expect("partial-replication system must build");
    (sys, frags)
}

/// Converge the allocator against the recorded access profile and apply
/// every decision through the ordinary driver API, all before `ready`.
/// Returns the epoch plans, for fingerprinting and counting.
///
/// Per epoch the sequence is shrink-then-move: the epoch's replica set
/// always contains both the current and the target home, so the shrink is
/// valid immediately, the move lands inside the narrowed set, and the
/// next epoch's shrink (a subset, post-move) drops the old home.
pub fn converge(sys: &mut System, spec: &PartialSpec, stats: &AccessStats) -> Vec<Plan> {
    let mut placement = Placement::fully_replicated(
        spec.nodes,
        (0..spec.fragments).map(|f| (FragmentId(f), NodeId(f % spec.nodes))),
    );
    let mut allocator = Allocator::new(AllocConfig {
        replication_factor: spec.replication_factor,
        seed: spec.seed,
    });
    let mut plans = Vec::new();
    let mut t = SimTime::ZERO + SimDuration::from_millis(100);
    // Two epochs converge a migrating fragment (shrink+move, then drop the
    // old home); extra rounds are no-ops that prove quiescence.
    for _ in 0..4 {
        let plan = allocator.plan(&placement, stats);
        let done = plan.migrations() + plan.shrinks() == 0;
        for d in &plan.decisions {
            if d.shrink {
                sys.shrink_replica_set_at(t, d.fragment, d.replica_set.clone());
            }
            if d.migrate {
                sys.move_agent_at(t + SimDuration::from_millis(500), d.fragment, d.target_home);
            }
        }
        plan.publish(stats, &mut sys.engine.metrics);
        placement = placement.after(&plan);
        plans.push(plan);
        if done {
            break;
        }
        t += SimDuration::from_secs(1);
    }
    plans
}

/// Drive one arm to quiescence and collect [`ArmStats`].
pub fn run_arm(spec: &PartialSpec, arm: Arm) -> (System, ArmStats) {
    let (mut sys, frags) = build_system(spec);
    let expected = (spec.rate_per_sec * spec.phase.micros() as f64 / 1e6).ceil() as u64;
    let cap = (expected * (2 * spec.nodes as u64 + 16) * 2).max(200_000);
    sys.engine.telemetry = Telemetry::bounded(cap as usize);

    let mut migrations = 0;
    let mut shrinks = 0;
    if arm == Arm::Allocated {
        let profile = access_profile(spec);
        for plan in converge(&mut sys, spec, &profile) {
            migrations += plan.migrations();
            shrinks += plan.shrinks();
        }
    }
    // Both arms open the measurement window at the same instant, after the
    // allocated arm's convergence dance has settled.
    let ready = SimTime::ZERO + SimDuration::from_secs(5);
    let mut stale = sys.step_until(ready);
    while stale.is_some() {
        stale = sys.step_until(ready);
    }
    let messages_before = sys.net_stats().transmissions;

    // Update arrivals: open-loop Zipf over the object space, every update
    // submitted from its fragment's heavy-writer node.
    let mut wl_rng = SimRng::new(spec.seed ^ 0x5ca1_ab1e);
    let mut open = OpenLoop::new(
        OpenLoopConfig {
            users: spec.users,
            theta: spec.theta,
            rate_per_sec: spec.rate_per_sec,
            start: ready,
            horizon: ready + spec.phase,
        },
        &mut wl_rng,
    );
    let mut arrivals = 0u64;
    while let Some(a) = open.next_arrival(&mut wl_rng) {
        arrivals += 1;
        let fi = (a.user % spec.fragments as u64) as usize;
        let oi = ((a.user / spec.fragments as u64) % spec.objects_per_fragment as u64) as usize;
        let (frag, ref objs) = frags[fi];
        let obj = objs[oi];
        sys.submit_at(
            a.at,
            Submission::update(
                frag,
                Box::new(move |ctx| {
                    let v = ctx.read_int(obj, 0);
                    ctx.write(obj, v + 1)?;
                    Ok(())
                }),
            )
            .at(spec.writer_of(frag.0)),
        );
    }
    // Reader clusters: one read-only transaction per reader per second of
    // the phase, served from the reader's own replica.
    let secs = spec.phase.micros() / 1_000_000;
    for f in 0..spec.fragments {
        let (frag, ref objs) = frags[f as usize];
        let obj = objs[0];
        for (k, reader) in spec.readers_of(f).into_iter().enumerate() {
            for s in 0..secs {
                let at =
                    ready + SimDuration::from_millis(s * 1000 + 199 + 7 * (k as u64 + f as u64));
                sys.submit_at(
                    at,
                    Submission::read_only(
                        frag,
                        Box::new(move |ctx| {
                            ctx.read_int(obj, 0);
                            Ok(())
                        }),
                    )
                    .at(reader),
                );
            }
        }
    }

    let limit = ready + spec.phase + SimDuration::from_secs(60);
    let mut commits = 0u64;
    let mut reads = 0u64;
    while let Some((_, notes)) = sys.step_until(limit) {
        for note in notes {
            match note {
                Notification::Committed { .. } => commits += 1,
                Notification::ReadFinished { .. } => reads += 1,
                _ => {}
            }
        }
    }
    let messages = sys.net_stats().transmissions - messages_before;
    let lag = sys.engine.telemetry.probes().lag_sketch();
    let staleness_max = (0..spec.nodes)
        .filter_map(|n| {
            sys.engine
                .metrics
                .histogram(&format!("node.{n}.staleness"))
                .and_then(|h| h.max())
        })
        .max()
        .unwrap_or(0);
    let replica_count = match sys.replicas_of(FragmentId(0)) {
        Some(set) => set.len() as u64,
        None => u64::from(spec.nodes),
    };
    let stats = ArmStats {
        arrivals,
        commits,
        reads,
        messages,
        msgs_per_commit_milli: (messages * 1000).checked_div(commits).unwrap_or(0),
        lag_p50_us: lag.quantile(50.0).unwrap_or(0),
        lag_p99_us: lag.quantile(99.0).unwrap_or(0),
        staleness_max,
        migrations,
        shrinks,
        replica_count,
    };
    (sys, stats)
}

/// Run both arms over the same spec.
pub fn run(spec: &PartialSpec) -> PartialStats {
    let (_, full) = run_arm(spec, Arm::Full);
    let (_, allocated) = run_arm(spec, Arm::Allocated);
    PartialStats { full, allocated }
}

/// Static admission over the system's *current* (possibly evolved)
/// placement: reconstruct a `CheckInput`-shaped configuration from the
/// live token homes and replica sets and run every `FDB0xx` check. The
/// allocator must never steer the system into a placement the admission
/// analyzer would refuse.
pub fn admission_report(sys: &System, spec: &PartialSpec) -> Report {
    let mut b = FragmentCatalog::builder();
    let frags: Vec<FragmentId> = (0..spec.fragments)
        .map(|f| {
            b.add_fragment(format!("P{f}"), spec.objects_per_fragment as usize)
                .0
        })
        .collect();
    let catalog = b.build();
    let agents: Vec<(FragmentId, AgentId, NodeId)> = frags
        .iter()
        .map(|&f| {
            let home = sys.tokens().home(f);
            (f, AgentId::Node(home), home)
        })
        .collect();
    let mut config = SystemConfig::unrestricted(spec.seed).with_move_policy(MovePolicy::WithSeqNo);
    for &f in &frags {
        if let Some(set) = sys.replicas_of(f) {
            config = config.with_replica_set(f, set.iter().copied().collect::<Vec<_>>());
        }
    }
    let classes: Vec<ClassDecl> = frags
        .iter()
        .map(|&f| ClassDecl::update(format!("partial-bump({})", f.0), f, [f]))
        .collect();
    let topo = Topology::jittered_mesh(
        spec.nodes,
        SimDuration::from_millis(10),
        spec.link_jitter,
        spec.seed ^ 0x11_77_e7_ed,
    );
    check(&CheckInput {
        topology: &topo,
        catalog: &catalog,
        agents: &agents,
        classes: &classes,
        config: &config,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use fragdb_sim::metrics::keys;

    fn spec() -> PartialSpec {
        PartialSpec::smoke(8, 42)
    }

    #[test]
    fn allocated_arm_converges_and_cuts_fan_out() {
        let (sys, full) = run_arm(&spec(), Arm::Full);
        assert!(full.commits > 20, "full arm must commit real load");
        assert!(full.reads > 0, "readers must be served");
        assert_eq!(full.migrations, 0);
        assert_eq!(full.replica_count, 8);
        assert!(sys.divergent_fragments().is_empty());

        let (sys, alloc) = run_arm(&spec(), Arm::Allocated);
        assert_eq!(alloc.arrivals, full.arrivals, "same arrival sequence");
        assert_eq!(alloc.commits, full.commits, "same commits both arms");
        assert_eq!(alloc.reads, full.reads, "readers live inside the sets");
        assert!(alloc.migrations > 0, "heavy writers differ from homes");
        assert!(alloc.shrinks > 0);
        assert_eq!(alloc.replica_count, 3, "converged at the RF");
        assert!(
            alloc.msgs_per_commit_milli * 2 < full.msgs_per_commit_milli,
            "RF3 on 8 nodes must at least halve the fan-out \
             (full={} alloc={})",
            full.msgs_per_commit_milli,
            alloc.msgs_per_commit_milli
        );
        assert!(alloc.lag_p99_us > alloc.lag_p50_us);
        assert!(sys.divergent_fragments().is_empty(), "replicas converge");
        assert!(
            sys.engine.metrics.counter(keys::ALLOC_MIGRATIONS) > 0,
            "allocator publishes its migrations"
        );
        assert!(
            sys.engine.metrics.counter(keys::ALLOC_MSGS_PER_COMMIT) > 0,
            "allocator publishes its cost model"
        );
        // Fragment 0's converged placement: token at the heavy writer,
        // replicas on the reader cluster.
        let w = spec().writer_of(0);
        assert_eq!(sys.tokens().home(FragmentId(0)), w);
        let set = sys.replicas_of(FragmentId(0)).expect("shrunk");
        for r in spec().readers_of(0) {
            assert!(set.contains(&r), "reader {r} must keep a replica");
        }
    }

    #[test]
    fn evolved_placement_passes_admission() {
        let (sys, _) = run_arm(&spec(), Arm::Allocated);
        let report = admission_report(&sys, &spec());
        assert!(
            report.is_admissible(),
            "allocator steered into an inadmissible placement:\n{report}"
        );
    }

    #[test]
    fn arms_are_deterministic() {
        let (_, a) = run_arm(&spec(), Arm::Allocated);
        let (_, b) = run_arm(&spec(), Arm::Allocated);
        assert_eq!(a.commits, b.commits);
        assert_eq!(a.messages, b.messages);
        assert_eq!(a.lag_p50_us, b.lag_p50_us);
        assert_eq!(a.lag_p99_us, b.lag_p99_us);
        assert_eq!(a.staleness_max, b.staleness_max);
    }
}
