//! Regenerates the Figure 4.3.2 serialization-graph cycle, live.
use fragdb_harness::experiments::e5_gsg_cycle;

fn main() {
    let seed = std::env::args()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or(42);
    println!("{}", e5_gsg_cycle::run(seed));
}
