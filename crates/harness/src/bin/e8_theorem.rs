//! Monte-Carlo validation of the §4.2 theorem.
use fragdb_harness::experiments::e8_theorem;

fn main() {
    let seed = std::env::args()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or(42);
    let trials = std::env::args()
        .nth(2)
        .and_then(|s| s.parse().ok())
        .unwrap_or(50);
    println!("{}", e8_theorem::run(seed, trials));
}
