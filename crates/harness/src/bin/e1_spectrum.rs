//! Regenerates the Figure 1.1 spectrum table.
use fragdb_harness::experiments::{e1_spectrum, scenario::ScenarioParams};

fn main() {
    let seed = std::env::args()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or(42);
    println!(
        "{}",
        e1_spectrum::run(seed, ScenarioParams::default_spectrum())
    );
}
