//! Regenerates the §4.3 airline example (Figure 4.3.3).
use fragdb_harness::experiments::e6_airline;

fn main() {
    let seed = std::env::args()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or(42);
    println!("{}", e6_airline::run(seed));
}
