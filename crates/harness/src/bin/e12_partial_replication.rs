//! Regenerates the §6 partial-replication table.
use fragdb_harness::experiments::e12_partial_replication;

fn main() {
    let seed = std::env::args()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or(42);
    println!("{}", e12_partial_replication::run(seed));
}
