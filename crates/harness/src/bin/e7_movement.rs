//! Regenerates the §4.4 movement-protocol comparison (Figure 4.4.1).
use fragdb_harness::experiments::e7_movement;

fn main() {
    let seed = std::env::args()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or(42);
    println!("{}", e7_movement::run(seed));
}
