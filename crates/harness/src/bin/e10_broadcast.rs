//! Fault-injection sweep of the reliable FIFO broadcast (§3.2).
use fragdb_harness::experiments::e10_broadcast;

fn main() {
    let seed = std::env::args()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or(42);
    println!(
        "{}",
        e10_broadcast::run(seed, &e10_broadcast::default_levels())
    );
}
