//! Regenerates the warehouse availability/serializability table (Figure 4.2.1).
use fragdb_harness::experiments::e4_warehouse;

fn main() {
    let seed = std::env::args()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or(42);
    println!(
        "{}",
        e4_warehouse::run(seed, &e4_warehouse::default_levels())
    );
}
