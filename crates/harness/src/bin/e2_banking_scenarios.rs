//! Regenerates the §1 banking scenario outcome matrix.
use fragdb_harness::experiments::e2_banking_scenarios;

fn main() {
    let seed = std::env::args()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or(42);
    println!("{}", e2_banking_scenarios::run(seed));
}
