//! Regenerates the local-view discrepancy series (Figures 2.1/2.2).
use fragdb_harness::experiments::e3_local_view;

fn main() {
    let seed = std::env::args()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or(42);
    println!(
        "{}",
        e3_local_view::run(seed, &e3_local_view::default_durations())
    );
}
