//! Regenerates the §6 mixed-strategy demonstration.
use fragdb_harness::experiments::e11_mixed;

fn main() {
    let seed = std::env::args()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or(42);
    println!("{}", e11_mixed::run(seed));
}
