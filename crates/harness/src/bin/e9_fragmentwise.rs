//! Monte-Carlo validation of §4.3 Properties 1 and 2.
use fragdb_harness::experiments::e9_fragmentwise;

fn main() {
    let seed = std::env::args()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or(42);
    let trials = std::env::args()
        .nth(2)
        .and_then(|s| s.parse().ok())
        .unwrap_or(50);
    println!("{}", e9_fragmentwise::run(seed, trials));
}
