//! `fragdb-trace` — the structured-telemetry explorer.
//!
//! Runs one or more telemetry scenarios (§4.1 read locks fault-free,
//! §4.3 unrestricted under faults, §4.4.1 majority movement, §5
//! self-healing token recovery) and renders:
//!
//! 1. a per-fragment ASCII timeline joining each commit to the installs it
//!    caused (flagging incomplete R-joins);
//! 2. a lag/staleness/stall summary table from the derived probes;
//! 3. optionally a JSON-lines export of the raw event log (hand-rolled,
//!    no serde), which `--validate` schema-checks.
//!
//! The run fails (exit 1) if any emitted metric key is missing from the
//! `fragdb_sim::metrics::keys` registry — CI uses this as the telemetry
//! smoke check.
//!
//! Usage:
//!   fragdb-trace [--scenario NAME]... [--seed N] [--quick]
//!                [--out PATH] [--rows N]
//!   fragdb-trace --list
//!   fragdb-trace --validate PATH

use fragdb_harness::trace::{
    render_jsonl, render_summary, render_timeline, run_scenario, unregistered_metric_keys,
    validate_jsonl, SCENARIOS,
};

fn main() {
    let mut scenarios: Vec<String> = Vec::new();
    let mut seed: u64 = 42;
    let mut quick = false;
    let mut rows: usize = 10;
    let mut out: Option<String> = None;
    let mut validate: Option<String> = None;
    let mut args = std::env::args().skip(1);
    while let Some(a) = args.next() {
        match a.as_str() {
            "--scenario" => scenarios.push(args.next().expect("--scenario needs a name")),
            "--seed" => {
                seed = args
                    .next()
                    .expect("--seed needs a value")
                    .parse()
                    .expect("--seed must be an integer")
            }
            "--quick" => quick = true,
            "--rows" => {
                rows = args
                    .next()
                    .expect("--rows needs a value")
                    .parse()
                    .expect("--rows must be an integer")
            }
            "--out" => out = Some(args.next().expect("--out needs a path")),
            "--validate" => validate = Some(args.next().expect("--validate needs a path")),
            "--list" => {
                for s in SCENARIOS {
                    println!("{s}");
                }
                return;
            }
            "--help" | "-h" => {
                println!(
                    "fragdb-trace [--scenario NAME]... [--seed N] [--quick] \
                     [--out PATH] [--rows N] | --list | --validate PATH"
                );
                return;
            }
            other => {
                eprintln!("unknown argument: {other} (try --help)");
                std::process::exit(2);
            }
        }
    }

    if let Some(path) = validate {
        let text =
            std::fs::read_to_string(&path).unwrap_or_else(|e| panic!("cannot read {path}: {e}"));
        match validate_jsonl(&text) {
            Ok(stats) => {
                let kinds: Vec<String> = stats
                    .by_event
                    .iter()
                    .map(|(k, n)| format!("{k}:{n}"))
                    .collect();
                println!("{path}: OK — {} events ({})", stats.events, kinds.join(" "));
            }
            Err(msg) => {
                eprintln!("{path}: INVALID — {msg}");
                std::process::exit(1);
            }
        }
        return;
    }

    if scenarios.is_empty() {
        scenarios = SCENARIOS.iter().map(|s| s.to_string()).collect();
    }

    let mut export = String::new();
    let mut bad_keys: Vec<String> = Vec::new();
    for name in &scenarios {
        let Some(run) = run_scenario(name, seed, quick) else {
            eprintln!("unknown scenario: {name} (try --list)");
            std::process::exit(2);
        };
        println!("{}", render_timeline(&run, rows));
        println!("{}", render_summary(&run));
        for key in unregistered_metric_keys(&run.metrics) {
            bad_keys.push(format!("{name}: {key}"));
        }
        if out.is_some() {
            let text = render_jsonl(&run);
            validate_jsonl(&text).expect("export must satisfy its own schema");
            export.push_str(&text);
        }
    }

    if let Some(path) = out {
        std::fs::write(&path, &export).unwrap_or_else(|e| panic!("cannot write {path}: {e}"));
        println!("wrote {path} ({} bytes)", export.len());
    }

    if !bad_keys.is_empty() {
        eprintln!("unregistered metric keys emitted:");
        for k in &bad_keys {
            eprintln!("  {k}");
        }
        std::process::exit(1);
    }
}
