//! `fragdb-trace` — the structured-telemetry explorer.
//!
//! Runs one or more telemetry scenarios (§4.1 read locks fault-free,
//! §4.3 unrestricted under faults, §4.4.1 majority movement, §5
//! self-healing token recovery, §6 allocator-driven partial replication)
//! and renders:
//!
//! 1. a per-fragment ASCII timeline joining each commit to the installs it
//!    caused (flagging incomplete R-joins);
//! 2. a lag/staleness/stall summary table from the derived probes;
//! 3. optionally a JSON-lines export of the raw event log (hand-rolled,
//!    no serde), which `--validate` schema-checks.
//!
//! The run fails (exit 1) if any emitted metric key is missing from the
//! `fragdb_sim::metrics::keys` registry — CI uses this as the telemetry
//! smoke check.
//!
//! Two subcommands consume a saved JSONL export through the `fragdb-obs`
//! span reconstruction:
//!
//!   fragdb-trace spans FILE.jsonl          per-commit spans + critical paths
//!   fragdb-trace critical-path FILE.jsonl  attribution table + folded stacks
//!                [--out PATH]              (write the folded stacks to PATH)
//!
//! Usage:
//!   fragdb-trace [--scenario NAME]... [--seed N] [--quick]
//!                [--out PATH] [--rows N]
//!   fragdb-trace --list
//!   fragdb-trace --validate PATH
//!   fragdb-trace spans FILE.jsonl
//!   fragdb-trace critical-path FILE.jsonl [--out PATH]

use fragdb_harness::trace::{
    render_jsonl, render_summary, render_timeline, run_scenario, unregistered_metric_keys,
    validate_jsonl, SCENARIOS,
};
use fragdb_obs::{attribution_table, folded, span_lines, validate_folded, SpanReport};

/// Load and reconstruct a JSONL export, exiting with a message on error.
fn load_report(path: &str) -> SpanReport {
    let text = std::fs::read_to_string(path).unwrap_or_else(|e| panic!("cannot read {path}: {e}"));
    match SpanReport::from_jsonl(&text) {
        Ok(r) => r,
        Err(msg) => {
            eprintln!("{path}: cannot reconstruct spans — {msg}");
            std::process::exit(1);
        }
    }
}

/// `spans FILE`: one line per reconstructed span, then the status totals.
fn cmd_spans(path: &str) {
    let report = load_report(path);
    print!("{}", span_lines(&report));
    println!(
        "{} spans: {} complete, {} incomplete, {} truncated, {} discarded",
        report.len(),
        report.complete,
        report.incomplete,
        report.truncated,
        report.discarded
    );
}

/// `critical-path FILE [--out PATH]`: attribution table + folded stacks.
fn cmd_critical_path(path: &str, out: Option<&str>) {
    let report = load_report(path);
    print!("{}", attribution_table(&report));
    let stacks = folded(&report);
    if let Err(msg) = validate_folded(&stacks) {
        eprintln!("internal error: folded output invalid — {msg}");
        std::process::exit(1);
    }
    match out {
        Some(p) => {
            std::fs::write(p, &stacks).unwrap_or_else(|e| panic!("cannot write {p}: {e}"));
            println!("wrote {p} ({} bytes)", stacks.len());
        }
        None => print!("{stacks}"),
    }
}

fn main() {
    let mut scenarios: Vec<String> = Vec::new();
    let mut seed: u64 = 42;
    let mut quick = false;
    let mut rows: usize = 10;
    let mut out: Option<String> = None;
    let mut validate: Option<String> = None;
    let mut args = std::env::args().skip(1).peekable();
    // Subcommands first: `spans FILE` / `critical-path FILE [--out PATH]`.
    match args.peek().map(String::as_str) {
        Some("spans") => {
            args.next();
            let file = args.next().unwrap_or_else(|| {
                eprintln!("usage: fragdb-trace spans FILE.jsonl");
                std::process::exit(2);
            });
            cmd_spans(&file);
            return;
        }
        Some("critical-path") => {
            args.next();
            let mut file: Option<String> = None;
            let mut fold_out: Option<String> = None;
            while let Some(a) = args.next() {
                match a.as_str() {
                    "--out" => fold_out = Some(args.next().expect("--out needs a path")),
                    other if file.is_none() && !other.starts_with('-') => {
                        file = Some(other.to_string())
                    }
                    other => {
                        eprintln!("unknown argument: {other}");
                        std::process::exit(2);
                    }
                }
            }
            let Some(file) = file else {
                eprintln!("usage: fragdb-trace critical-path FILE.jsonl [--out PATH]");
                std::process::exit(2);
            };
            cmd_critical_path(&file, fold_out.as_deref());
            return;
        }
        _ => {}
    }
    while let Some(a) = args.next() {
        match a.as_str() {
            "--scenario" => scenarios.push(args.next().expect("--scenario needs a name")),
            "--seed" => {
                seed = args
                    .next()
                    .expect("--seed needs a value")
                    .parse()
                    .expect("--seed must be an integer")
            }
            "--quick" => quick = true,
            "--rows" => {
                rows = args
                    .next()
                    .expect("--rows needs a value")
                    .parse()
                    .expect("--rows must be an integer")
            }
            "--out" => out = Some(args.next().expect("--out needs a path")),
            "--validate" => validate = Some(args.next().expect("--validate needs a path")),
            "--list" => {
                for s in SCENARIOS {
                    println!("{s}");
                }
                return;
            }
            "--help" | "-h" => {
                println!(
                    "fragdb-trace [--scenario NAME]... [--seed N] [--quick] \
                     [--out PATH] [--rows N] | --list | --validate PATH | \
                     spans FILE.jsonl | critical-path FILE.jsonl [--out PATH]"
                );
                return;
            }
            other => {
                eprintln!("unknown argument: {other} (try --help)");
                std::process::exit(2);
            }
        }
    }

    if let Some(path) = validate {
        let text =
            std::fs::read_to_string(&path).unwrap_or_else(|e| panic!("cannot read {path}: {e}"));
        match validate_jsonl(&text) {
            Ok(stats) => {
                let kinds: Vec<String> = stats
                    .by_event
                    .iter()
                    .map(|(k, n)| format!("{k}:{n}"))
                    .collect();
                println!("{path}: OK — {} events ({})", stats.events, kinds.join(" "));
            }
            Err(msg) => {
                eprintln!("{path}: INVALID — {msg}");
                std::process::exit(1);
            }
        }
        return;
    }

    if scenarios.is_empty() {
        scenarios = SCENARIOS.iter().map(|s| s.to_string()).collect();
    }

    let mut export = String::new();
    let mut bad_keys: Vec<String> = Vec::new();
    for name in &scenarios {
        let Some(run) = run_scenario(name, seed, quick) else {
            eprintln!("unknown scenario: {name} (try --list)");
            std::process::exit(2);
        };
        println!("{}", render_timeline(&run, rows));
        println!("{}", render_summary(&run));
        for key in unregistered_metric_keys(&run.metrics) {
            bad_keys.push(format!("{name}: {key}"));
        }
        if out.is_some() {
            let text = render_jsonl(&run);
            validate_jsonl(&text).expect("export must satisfy its own schema");
            export.push_str(&text);
        }
    }

    if let Some(path) = out {
        std::fs::write(&path, &export).unwrap_or_else(|e| panic!("cannot write {path}: {e}"));
        println!("wrote {path} ({} bytes)", export.len());
    }

    if !bad_keys.is_empty() {
        eprintln!("unregistered metric keys emitted:");
        for k in &bad_keys {
            eprintln!("  {k}");
        }
        std::process::exit(1);
    }
}
