//! One module per reproduced figure/scenario. See the crate docs for the
//! mapping to the paper's artifacts.

pub mod e10_broadcast;
pub mod e11_mixed;
pub mod e12_partial_replication;
pub mod e1_spectrum;
pub mod e2_banking_scenarios;
pub mod e3_local_view;
pub mod e4_warehouse;
pub mod e5_gsg_cycle;
pub mod e6_airline;
pub mod e7_movement;
pub mod e8_theorem;
pub mod e9_fragmentwise;
pub mod scenario;
