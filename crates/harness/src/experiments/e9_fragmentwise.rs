//! E9 — Monte-Carlo validation of §4.3's Properties 1 and 2
//! (fragmentwise serializability) and of mutual consistency.
//!
//! Under the *unrestricted* option, with arbitrary cross-fragment read
//! patterns and adversarial random partitions:
//!
//! * Property 1 — the projection of the schedule onto each fragment's
//!   update transactions is serializable;
//! * Property 2 — no reader ever observes a partial quasi-transaction;
//! * at quiescence, all replicas of every fragment are identical.
//!
//! Each trial uses multi-object update transactions (so Property 2 has
//! something to tear) and readers that scan several fragments at once.

use std::fmt;

use fragdb_core::{Submission, System, SystemConfig};
use fragdb_model::{AgentId, FragmentCatalog, FragmentId, NodeId, ObjectId};
use fragdb_net::Topology;
use fragdb_sim::{SimDuration, SimRng, SimTime};
use fragdb_workloads::{arrivals, partitions};

use crate::table::{pct, Table};

/// The report.
#[derive(Clone, Debug)]
pub struct E9Report {
    /// Number of trials.
    pub trials: u32,
    /// Trials violating Property 1.
    pub p1_violations: u32,
    /// Trials violating Property 2.
    pub p2_violations: u32,
    /// Trials ending with divergent replicas.
    pub divergent: u32,
    /// Trials that were *not* globally serializable (expected > 0: that is
    /// the price §4.3 pays, and it shows the workload is adversarial).
    pub non_global: u32,
    /// Total transactions executed.
    pub total_txns: u64,
}

impl fmt::Display for E9Report {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "E9 — fragmentwise serializability (Properties 1 & 2), Monte-Carlo"
        )?;
        let mut t = Table::new(["check", "violations", "rate"]);
        let n = self.trials as u64;
        t.row([
            "Property 1 (per-fragment serializable)".to_string(),
            self.p1_violations.to_string(),
            pct(self.p1_violations as u64, n),
        ]);
        t.row([
            "Property 2 (no partial quasi-transactions)".to_string(),
            self.p2_violations.to_string(),
            pct(self.p2_violations as u64, n),
        ]);
        t.row([
            "mutual consistency at quiescence".to_string(),
            self.divergent.to_string(),
            pct(self.divergent as u64, n),
        ]);
        t.row([
            "global serializability (expected to fail sometimes)".to_string(),
            self.non_global.to_string(),
            pct(self.non_global as u64, n),
        ]);
        writeln!(f, "{t}")?;
        writeln!(f, "total transactions executed: {}", self.total_txns)
    }
}

fn one_trial(seed: u64) -> (bool, bool, bool, bool, u64) {
    let mut rng = SimRng::new(seed);
    let k = rng.gen_range(3..6usize);
    let mut b = FragmentCatalog::builder();
    let mut objects = Vec::new();
    for i in 0..k {
        let (_, objs) = b.add_fragment(format!("F{i}"), 3);
        objects.push(objs);
    }
    let catalog = b.build();
    let n = k as u32;
    let agents: Vec<(FragmentId, AgentId, NodeId)> = (0..k)
        .map(|i| {
            (
                FragmentId(i as u32),
                AgentId::Node(NodeId(i as u32)),
                NodeId(i as u32),
            )
        })
        .collect();
    let mut sys = System::build(
        Topology::full_mesh(n, SimDuration::from_millis(10)),
        catalog,
        agents,
        SystemConfig::unrestricted(seed),
    )
    .unwrap();

    let horizon = SimTime::from_secs(120);
    let sched =
        partitions::random_alternating(&mut rng, n, SimDuration::from_secs(12), 0.5, horizon);
    sys.schedule_partitions(&sched);

    let mut txns = 0u64;
    for i in 0..k {
        // Multi-object updates: write ALL of the fragment's objects after
        // reading a random foreign fragment entirely.
        let times = arrivals::poisson(&mut rng, 0.5, SimTime::ZERO, horizon);
        for t in times {
            let own = objects[i].clone();
            let j = rng.gen_range(0..k);
            let foreign: Vec<ObjectId> = if j == i {
                Vec::new()
            } else {
                objects[j].clone()
            };
            sys.submit_at(
                t,
                Submission::update(
                    FragmentId(i as u32),
                    Box::new(move |ctx| {
                        let mut acc = 1i64;
                        for &o in &foreign {
                            acc = acc.wrapping_add(ctx.read_int(o, 0));
                        }
                        for &o in &own {
                            let v = ctx.read_int(o, 0);
                            ctx.write(o, v.wrapping_add(acc) % 1_000_003)?;
                        }
                        Ok(())
                    }),
                ),
            );
            txns += 1;
        }
        // Cross-fragment readers at random nodes.
        let times = arrivals::poisson(&mut rng, 0.3, SimTime::ZERO, horizon);
        for t in times {
            let all: Vec<ObjectId> = objects.iter().flatten().copied().collect();
            let at_node = NodeId(rng.gen_range(0..n));
            sys.submit_at(
                t,
                Submission::read_only(
                    FragmentId(i as u32),
                    Box::new(move |ctx| {
                        for &o in &all {
                            ctx.read(o);
                        }
                        Ok(())
                    }),
                )
                .at(at_node),
            );
            txns += 1;
        }
    }
    sys.run_until(horizon + SimDuration::from_secs(300));
    let verdict = fragdb_graphs::analyze(&sys.history);
    debug_assert!(
        fragdb_graphs::IncrementalAnalyzer::from_history(&sys.history)
            .verdict()
            .agrees_with(&verdict),
        "incremental checker diverged from the batch oracle"
    );
    (
        verdict.fragmentwise.property1_violations.is_empty(),
        verdict.fragmentwise.property2_violations.is_empty(),
        sys.divergent_fragments().is_empty(),
        verdict.globally_serializable,
        txns,
    )
}

/// Run E9 with `trials` trials.
pub fn run(seed: u64, trials: u32) -> E9Report {
    let mut report = E9Report {
        trials,
        p1_violations: 0,
        p2_violations: 0,
        divergent: 0,
        non_global: 0,
        total_txns: 0,
    };
    for t in 0..trials {
        let (p1, p2, converged, global, txns) = one_trial(seed.wrapping_add(t as u64));
        report.total_txns += txns;
        if !p1 {
            report.p1_violations += 1;
        }
        if !p2 {
            report.p2_violations += 1;
        }
        if !converged {
            report.divergent += 1;
        }
        if !global {
            report.non_global += 1;
        }
    }
    report
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn properties_hold_in_every_trial() {
        let r = run(0xE9, 25);
        assert_eq!(r.p1_violations, 0, "Property 1 must always hold");
        assert_eq!(r.p2_violations, 0, "Property 2 must always hold");
        assert_eq!(r.divergent, 0, "mutual consistency must always hold");
        assert!(r.total_txns > 500);
    }

    #[test]
    fn global_serializability_does_fail_sometimes() {
        let r = run(0xE99, 25);
        assert!(
            r.non_global > 0,
            "an adversarial unrestricted workload should exhibit at least \
             one global anomaly — otherwise §4.3 would be free"
        );
    }

    #[test]
    fn report_renders() {
        let r = run(2, 2);
        assert!(r.to_string().contains("Property 1"));
    }
}
