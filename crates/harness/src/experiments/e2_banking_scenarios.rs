//! E2 — the §1 banking scenarios (Figure 1.2), replayed under all three
//! approaches.
//!
//! Balance $300; during a partition between node A and node B the same
//! customer withdraws at both nodes:
//!
//! * scenario 1 — $100 each (consistent: ends at $100);
//! * scenario 2 — $200 each (inconsistent: overdrawn by $100).
//!
//! Systems: mutual exclusion (primary at A), log transformation (with the
//! per-node corrective-fine hook — exhibiting the paper's divergent-fines
//! chaos), and fragments-and-agents (§2 design, NoPrep token movement —
//! one centralized fine).

use std::fmt;

use fragdb_baselines::{
    mutex::MxOutcome, LogTransformConfig, LogTransformSystem, LoggedOp, MutexConfig, MutexSystem,
};
use fragdb_core::{MovePolicy, System, SystemConfig};
use fragdb_model::{NodeId, ObjectId};
use fragdb_net::{NetworkChange, Topology};
use fragdb_sim::{SimDuration, SimTime};
use fragdb_workloads::{BankConfig, BankDriver, BankSchema};

use crate::table::Table;

fn secs(s: u64) -> SimTime {
    SimTime::from_secs(s)
}

const FINE: i64 = 50;

/// Outcome of one (system, scenario) cell.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ScenarioOutcome {
    /// System label.
    pub system: String,
    /// Withdrawal amount per request ($100 or $200).
    pub amount: i64,
    /// Was the customer served at node A?
    pub served_a: bool,
    /// Was the customer served at node B?
    pub served_b: bool,
    /// Final balance at node A after everything heals and drains.
    pub final_balance_a: i64,
    /// Final balance at node B.
    pub final_balance_b: i64,
    /// Number of overdraft fines assessed (and by whom).
    pub fines: u32,
}

/// The report: six cells.
#[derive(Clone, Debug)]
pub struct E2Report {
    /// All outcomes.
    pub outcomes: Vec<ScenarioOutcome>,
}

impl fmt::Display for E2Report {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "E2 — §1 scenarios: balance $300, two withdrawals of $X during a partition"
        )?;
        let mut t = Table::new([
            "system",
            "X",
            "served@A",
            "served@B",
            "balance@A",
            "balance@B",
            "fines",
        ]);
        for o in &self.outcomes {
            t.row([
                o.system.clone(),
                format!("${}", o.amount),
                yn(o.served_a),
                yn(o.served_b),
                format!("${}", o.final_balance_a),
                format!("${}", o.final_balance_b),
                o.fines.to_string(),
            ]);
        }
        write!(f, "{t}")
    }
}

fn yn(b: bool) -> String {
    if b { "yes" } else { "NO" }.to_string()
}

/// Mutual exclusion: primary at A (node 0).
fn mutex_scenario(amount: i64, seed: u64) -> ScenarioOutcome {
    let mut sys = MutexSystem::build(
        Topology::full_mesh(2, SimDuration::from_millis(10)),
        MutexConfig {
            primary: NodeId(0),
            seed,
        },
    );
    let bal = ObjectId(0);
    // Fund the account.
    sys.submit_at(
        secs(1),
        NodeId(0),
        false,
        Box::new(move |ctx| {
            ctx.write(bal, 300i64);
            Ok(())
        }),
    );
    sys.net_change_at(secs(5), NetworkChange::LinkDown(NodeId(0), NodeId(1)));
    let withdraw = move |ctx: &mut fragdb_baselines::mutex::MxCtx<'_>| {
        let cur = ctx.read_int(bal, 0);
        if cur < amount {
            return Err("insufficient".to_string());
        }
        ctx.write(bal, cur - amount);
        Ok(())
    };
    sys.submit_at(secs(10), NodeId(0), false, Box::new(withdraw));
    sys.submit_at(secs(10), NodeId(1), false, Box::new(withdraw));
    let outcomes = sys.run_until(secs(30));
    sys.net_change_at(secs(40), NetworkChange::HealAll);
    let outcomes2 = sys.run_until(secs(120));
    let all: Vec<&MxOutcome> = outcomes
        .iter()
        .chain(outcomes2.iter())
        .map(|(_, o)| o)
        .collect();
    let served = all
        .iter()
        .filter(|o| matches!(o, MxOutcome::Committed(_)))
        .count();
    let unavailable = all
        .iter()
        .filter(|o| ***o == MxOutcome::Unavailable)
        .count();
    ScenarioOutcome {
        system: "mutual exclusion".into(),
        amount,
        served_a: served >= 2, // the funding commit + A's withdrawal
        served_b: unavailable == 0,
        final_balance_a: sys.replica(NodeId(0)).read(bal).as_int_or(0).unwrap(),
        final_balance_b: sys.replica(NodeId(1)).read(bal).as_int_or(0).unwrap(),
        fines: 0,
    }
}

/// Log-transformation op with a per-node corrective-fine hook.
#[derive(Clone, Debug, PartialEq)]
pub enum LtOp {
    /// Deposit/withdrawal (signed).
    Post(i64),
    /// A fine assessed by some node's corrective logic.
    Fine(i64),
}

impl LoggedOp for LtOp {
    type State = i64;
    fn apply(&self, state: &mut i64) {
        match self {
            LtOp::Post(x) => *state += x,
            LtOp::Fine(x) => *state -= x,
        }
    }
}

/// Log transformation: both nodes serve; on merging a remote entry that
/// drives the local view negative, *each node* assesses a fine — the
/// paper's decentralised corrective-action chaos.
fn logtransform_scenario(amount: i64, seed: u64) -> ScenarioOutcome {
    let mut sys: LogTransformSystem<LtOp> = LogTransformSystem::build(
        Topology::full_mesh(2, SimDuration::from_millis(10)),
        LogTransformConfig { seed },
    );
    sys.submit_at(secs(1), NodeId(0), LtOp::Post(300));
    sys.net_change_at(secs(5), NetworkChange::LinkDown(NodeId(0), NodeId(1)));
    // Locally both look fine ($300 on hand), so both withdrawals proceed.
    sys.submit_at(secs(10), NodeId(0), LtOp::Post(-amount));
    sys.submit_at(secs(10), NodeId(1), LtOp::Post(-amount));
    sys.run_until(secs(30));
    let served_a = *sys.state(NodeId(0)) == 300 - amount;
    let served_b = *sys.state(NodeId(1)) == 300 - amount;
    sys.net_change_at(secs(40), NetworkChange::HealAll);

    // Reconciliation with per-node corrective hook: when a *merged remote*
    // entry exposes a negative balance, that node issues a fine. Both
    // nodes run the same policy independently.
    let mut fines = 0u32;
    let mut fined_at: Vec<NodeId> = Vec::new();
    let limit = secs(300);
    while let Some((at, merges)) = sys.step_until(limit) {
        for m in merges {
            let node = m.node;
            if matches!(m.entry.op, LtOp::Post(x) if x < 0)
                && *sys.state(node) < 0
                && !fined_at.contains(&node)
            {
                fined_at.push(node);
                fines += 1;
                sys.submit_at(at + SimDuration(1), node, LtOp::Fine(FINE));
            }
        }
    }
    ScenarioOutcome {
        system: "log transformation".into(),
        amount,
        served_a,
        served_b,
        final_balance_a: *sys.state(NodeId(0)),
        final_balance_b: *sys.state(NodeId(1)),
        fines,
    }
}

/// Fragments and agents (§2 design): both withdrawals served, one
/// centralized fine.
fn fragdb_scenario(amount: i64, seed: u64) -> ScenarioOutcome {
    let cfg = BankConfig {
        accounts: 1,
        slots_per_account: 8,
        central: NodeId(0),
        account_homes: vec![NodeId(0)],
        overdraft_fine: FINE,
    };
    let (catalog, schema, agents) = BankSchema::build(&cfg);
    let mut sys = System::build(
        Topology::full_mesh(2, SimDuration::from_millis(10)),
        catalog,
        agents,
        SystemConfig::unrestricted(seed).with_move_policy(MovePolicy::NoPrep),
    )
    .unwrap();
    let mut bank = BankDriver::new(schema, cfg);

    let dep = bank.deposit(0, 300).unwrap();
    sys.submit_at(secs(1), dep);
    bank.run(&mut sys, secs(5));

    sys.net_change_at(secs(5), NetworkChange::LinkDown(NodeId(0), NodeId(1)));
    let w1 = bank.withdraw(0, amount, false).unwrap();
    sys.submit_at(secs(10), w1);
    bank.run(&mut sys, secs(12));
    let served_a = sys.engine.metrics.counter("abort.logic") == 0;

    // The customer carries the token (card) to node B.
    sys.move_agent_at(secs(13), bank.schema.activity[0], NodeId(1));
    let w2 = bank.withdraw(0, amount, false).unwrap();
    sys.submit_at(secs(14), w2);
    bank.run(&mut sys, secs(20));
    let served_b = sys.engine.metrics.counter("abort.logic") == 0;

    sys.net_change_at(secs(40), NetworkChange::HealAll);
    bank.run(&mut sys, secs(600));

    let bal = bank.schema.bal_objs[0];
    ScenarioOutcome {
        system: "fragments+agents".into(),
        amount,
        served_a,
        served_b,
        final_balance_a: sys.replica(NodeId(0)).read(bal).as_int_or(0).unwrap(),
        final_balance_b: sys.replica(NodeId(1)).read(bal).as_int_or(0).unwrap(),
        fines: bank.letters().len() as u32,
    }
}

/// Run E2: all systems on both scenarios.
pub fn run(seed: u64) -> E2Report {
    let mut outcomes = Vec::new();
    for amount in [100i64, 200] {
        outcomes.push(mutex_scenario(amount, seed));
        outcomes.push(logtransform_scenario(amount, seed));
        outcomes.push(fragdb_scenario(amount, seed));
    }
    E2Report { outcomes }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn find<'a>(r: &'a E2Report, system: &str, amount: i64) -> &'a ScenarioOutcome {
        r.outcomes
            .iter()
            .find(|o| o.system == system && o.amount == amount)
            .expect("cell exists")
    }

    #[test]
    fn mutex_serves_a_denies_b() {
        let r = run(1);
        for amount in [100, 200] {
            let o = find(&r, "mutual exclusion", amount);
            assert!(o.served_a, "customer at the primary is served");
            assert!(!o.served_b, "customer at B goes home empty-handed");
            assert_eq!(o.final_balance_a, 300 - amount);
            assert_eq!(o.final_balance_a, o.final_balance_b, "replicas converge");
            assert_eq!(o.fines, 0);
        }
    }

    #[test]
    fn logtransform_serves_both_and_scenario1_is_consistent() {
        let r = run(2);
        let o = find(&r, "log transformation", 100);
        assert!(o.served_a && o.served_b);
        assert_eq!(o.final_balance_a, 100);
        assert_eq!(o.final_balance_b, 100);
        assert_eq!(o.fines, 0, "no corrective action needed");
    }

    #[test]
    fn logtransform_scenario2_exhibits_decentralized_fine_chaos() {
        let r = run(3);
        let o = find(&r, "log transformation", 200);
        assert!(o.served_a && o.served_b, "free-for-all serves everyone");
        // Both nodes independently discovered the overdraft and fined it:
        // the customer is charged twice — the paper's §1 chaos.
        assert_eq!(o.fines, 2);
        assert_eq!(o.final_balance_a, -100 - 2 * FINE);
        assert_eq!(o.final_balance_a, o.final_balance_b);
    }

    #[test]
    fn fragdb_serves_both_with_one_centralized_fine() {
        let r = run(4);
        let o1 = find(&r, "fragments+agents", 100);
        assert!(o1.served_a && o1.served_b);
        assert_eq!(o1.final_balance_a, 100);
        assert_eq!(o1.fines, 0);

        let o2 = find(&r, "fragments+agents", 200);
        assert!(o2.served_a && o2.served_b, "availability like free-for-all");
        assert_eq!(o2.fines, 1, "exactly one fine, decided at the agent");
        assert_eq!(o2.final_balance_a, -100 - FINE);
        assert_eq!(o2.final_balance_a, o2.final_balance_b, "no chaos");
    }

    #[test]
    fn report_renders() {
        let r = run(5);
        let s = r.to_string();
        assert!(s.contains("served@A"));
        assert_eq!(r.outcomes.len(), 6);
    }
}
