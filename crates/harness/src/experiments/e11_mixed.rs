//! E11 — §6: several strategies combined in a single system.
//!
//! *"it is possible to combine several of our strategies in a single
//! system … guarantee mutual consistency for some fragments (with the
//! mechanism of Section 4.4.3, say), fragmentwise serializability for a
//! set of other fragments (with any of several techniques), and
//! conventional serializability within another group (by having
//! read-access restrictions, say)."*
//!
//! One system, seven fragments, three groups:
//!
//! * **Group A (conventional serializability)** — ledgers `L1`, `L2` under
//!   §4.1 read locks; their transactions read each other's fragment under
//!   remote locks.
//! * **Group B (serializable by schema)** — warehouse star `W1, W2 → C`
//!   under §4.2 (elementarily acyclic read-access graph).
//! * **Group C (mutual consistency only)** — a mobile fragment `M` under
//!   unrestricted reads with §4.4.3 no-prep movement; its agent wanders
//!   across the partition.
//!
//! The per-group guarantees must hold *simultaneously*: the sub-histories
//! of groups A and B are globally serializable, group C converges after
//! repackaging, and the whole database is mutually consistent at
//! quiescence. Availability degrades only where the paper says it must:
//! group A's cross-reads during the partition.

use std::collections::BTreeSet;
use std::fmt;

use fragdb_core::{MovePolicy, Notification, StrategyKind, Submission, System, SystemConfig};
use fragdb_model::{AccessDecl, AgentId, FragmentCatalog, FragmentId, NodeId, ObjectId, UserId};
use fragdb_net::{NetworkChange, Topology};
use fragdb_sim::{SimDuration, SimTime};

use crate::table::Table;

/// The report.
#[derive(Clone, Debug)]
pub struct E11Report {
    /// Group A sub-history globally serializable?
    pub group_a_serializable: bool,
    /// Group B sub-history globally serializable?
    pub group_b_serializable: bool,
    /// Whole-system fragmentwise violations confined to the mobile fragment?
    pub violations_confined_to_group_c: bool,
    /// Mobile fragment's late transactions repackaged.
    pub repackaged: u64,
    /// Group A operations aborted as unavailable (expected > 0: the §4.1
    /// price, paid only by group A).
    pub group_a_unavailable: u64,
    /// Group B+C operations aborted as unavailable (expected 0).
    pub group_bc_unavailable: u64,
    /// All replicas identical at quiescence?
    pub converged: bool,
}

impl fmt::Display for E11Report {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "E11 — §6: three strategy groups in one system")?;
        let mut t = Table::new(["claim", "expected", "observed"]);
        let yn = |b: bool| if b { "yes" } else { "no" };
        t.row([
            "group A (4.1 locks): sub-history serializable",
            "yes",
            yn(self.group_a_serializable),
        ]);
        t.row([
            "group B (4.2 star RAG): sub-history serializable",
            "yes",
            yn(self.group_b_serializable),
        ]);
        t.row([
            "anomalies confined to group C (no-prep)",
            "yes",
            yn(self.violations_confined_to_group_c),
        ]);
        let rep = self.repackaged.to_string();
        t.row(["group C late txns repackaged", ">= 1", &rep]);
        let ua = self.group_a_unavailable.to_string();
        t.row(["group A unavailability (the 4.1 price)", ">= 1", &ua]);
        let ubc = self.group_bc_unavailable.to_string();
        t.row(["group B/C unavailability", "0", &ubc]);
        t.row([
            "mutual consistency at quiescence",
            "yes",
            yn(self.converged),
        ]);
        write!(f, "{t}")
    }
}

fn secs(s: u64) -> SimTime {
    SimTime::from_secs(s)
}

/// Run E11.
pub fn run(seed: u64) -> E11Report {
    // Fragments: L1 L2 | W1 W2 C | M.
    let mut b = FragmentCatalog::builder();
    let (l1, l1_objs) = b.add_fragment("L1", 2);
    let (l2, l2_objs) = b.add_fragment("L2", 2);
    let (w1, w1_objs) = b.add_fragment("W1", 2);
    let (w2, w2_objs) = b.add_fragment("W2", 2);
    let (c, c_objs) = b.add_fragment("C", 2);
    let (m, m_objs) = b.add_fragment("M", 2);
    let catalog = b.build();

    let agents = vec![
        (l1, AgentId::Node(NodeId(0)), NodeId(0)),
        (l2, AgentId::Node(NodeId(1)), NodeId(1)),
        (w1, AgentId::Node(NodeId(2)), NodeId(2)),
        (w2, AgentId::Node(NodeId(3)), NodeId(3)),
        (c, AgentId::Node(NodeId(4)), NodeId(4)),
        (m, AgentId::User(UserId(0)), NodeId(0)),
    ];

    let rag_strategy = StrategyKind::AcyclicRag {
        decls: vec![
            AccessDecl::update(c, [w1, w2]),
            AccessDecl::update(w1, [w1]),
            AccessDecl::update(w2, [w2]),
        ],
        allow_violating_read_only: true,
    };
    let lock_strategy = StrategyKind::ReadLocks {
        timeout: SimDuration::from_secs(8),
    };
    let config = SystemConfig::unrestricted(seed)
        .with_fragment_strategy(l1, lock_strategy.clone())
        .with_fragment_strategy(l2, lock_strategy)
        .with_fragment_strategy(w1, rag_strategy.clone())
        .with_fragment_strategy(w2, rag_strategy.clone())
        .with_fragment_strategy(c, rag_strategy)
        .with_fragment_move_policy(m, MovePolicy::NoPrep);
    let mut sys = System::build(
        Topology::full_mesh(5, SimDuration::from_millis(10)),
        catalog,
        agents,
        config,
    )
    .expect("mixed configuration validates");

    // Partition t=40..80: node 0 (L1's home, and M's current home) isolated.
    sys.net_change_at(
        secs(40),
        NetworkChange::Split(vec![
            vec![NodeId(0)],
            vec![NodeId(1), NodeId(2), NodeId(3), NodeId(4)],
        ]),
    );
    sys.net_change_at(secs(80), NetworkChange::HealAll);

    // Group A: ledger transfers every 10s, each reading the other ledger
    // under remote locks.
    let transfer = |own: ObjectId, other: ObjectId, frag: FragmentId| {
        Submission::update_reading(
            frag,
            vec![other],
            Box::new(move |ctx| {
                let seen = ctx.read_int(other, 0);
                let v = ctx.read_int(own, 0);
                ctx.write(own, v + seen + 1)?;
                Ok(())
            }),
        )
    };
    for i in 0..12u64 {
        sys.submit_at(secs(5 + i * 10), transfer(l1_objs[0], l2_objs[0], l1));
        sys.submit_at(secs(6 + i * 10), transfer(l2_objs[0], l1_objs[0], l2));
    }
    // Group B: warehouse sales + central scans.
    let bump = |obj: ObjectId, frag: FragmentId| {
        Submission::update(
            frag,
            Box::new(move |ctx| {
                let v = ctx.read_int(obj, 0);
                ctx.write(obj, v + 1)?;
                Ok(())
            }),
        )
    };
    for i in 0..12u64 {
        sys.submit_at(secs(4 + i * 10), bump(w1_objs[0], w1));
        sys.submit_at(secs(7 + i * 10), bump(w2_objs[0], w2));
    }
    let scan_objs = (w1_objs[0], w2_objs[0], c_objs[0]);
    for i in 0..6u64 {
        let (a, bb, t) = scan_objs;
        sys.submit_at(
            secs(15 + i * 20),
            Submission::update(
                c,
                Box::new(move |ctx| {
                    let total = ctx.read_int(a, 0) + ctx.read_int(bb, 0);
                    ctx.write(t, total)?;
                    Ok(())
                }),
            ),
        );
    }
    // Group C: the mobile fragment updates constantly; its agent walks to
    // node 2 mid-partition with no preparation.
    for i in 0..24u64 {
        sys.submit_at(secs(3 + i * 5), bump(m_objs[(i % 2) as usize], m));
    }
    sys.move_agent_at(secs(50), m, NodeId(2));

    let group_a: BTreeSet<FragmentId> = [l1, l2].into();
    let group_b: BTreeSet<FragmentId> = [w1, w2, c].into();
    let mut group_a_unavailable = 0u64;
    let mut group_bc_unavailable = 0u64;
    let mut repackaged = 0u64;
    while let Some((_, notes)) = sys.step_until(secs(1200)) {
        for n in notes {
            match n {
                Notification::Aborted { fragment, .. } => {
                    if group_a.contains(&fragment) {
                        group_a_unavailable += 1;
                    } else {
                        group_bc_unavailable += 1;
                    }
                }
                Notification::MissingRepackaged { .. } => repackaged += 1,
                _ => {}
            }
        }
    }

    // Per-group verdicts from the projected histories.
    let hist_a = sys
        .history
        .filter_txns(|_, ty| group_a.contains(&ty.fragment()));
    let hist_b = sys
        .history
        .filter_txns(|_, ty| group_b.contains(&ty.fragment()));
    let verdict_all = fragdb_graphs::analyze(&sys.history);
    let confined = verdict_all
        .fragmentwise
        .property1_violations
        .iter()
        .all(|(f, _)| *f == m)
        && verdict_all.fragmentwise.property2_violations.is_empty();

    E11Report {
        group_a_serializable: fragdb_graphs::analyze(&hist_a).globally_serializable,
        group_b_serializable: fragdb_graphs::analyze(&hist_b).globally_serializable,
        violations_confined_to_group_c: confined,
        repackaged,
        group_a_unavailable,
        group_bc_unavailable,
        converged: sys.divergent_fragments().is_empty(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn each_group_keeps_its_own_guarantee() {
        let r = run(0x11);
        assert!(r.group_a_serializable, "4.1 group must stay serializable");
        assert!(r.group_b_serializable, "4.2 group must stay serializable");
        assert!(r.violations_confined_to_group_c);
        assert!(r.converged, "mutual consistency holds for everything");
    }

    #[test]
    fn only_the_lock_group_pays_availability() {
        let r = run(0x12);
        assert!(
            r.group_a_unavailable > 0,
            "ledger cross-reads must block during the partition"
        );
        assert_eq!(r.group_bc_unavailable, 0, "groups B and C never block");
    }

    #[test]
    fn noprep_repackaging_happened() {
        let r = run(0x13);
        assert!(
            r.repackaged > 0,
            "the mobile agent moved mid-partition, so late txns must exist"
        );
    }

    #[test]
    fn report_renders() {
        let r = run(0x14);
        assert!(r.to_string().contains("three strategy groups"));
    }
}
