//! E12 — §6: partial replication.
//!
//! *"Our approach can be generalized for dealing with … databases that are
//! not fully replicated."* One fragment on an 8-node network, replicated
//! at 2, 4, or all 8 nodes. Two effects are measured:
//!
//! * **propagation cost** — each commit fans out to `r − 1` replicas, so
//!   messages per transaction shrink linearly with the replica set;
//! * **quorum availability** — under §4.4.1 majority commit, the quorum is
//!   a majority *of the replica set*. With the network split in half, a
//!   fragment whose replicas all sit in the agent's half keeps committing,
//!   while a fully replicated fragment cannot reach ⌈(n+1)/2⌉ nodes and
//!   stalls. Fewer copies buys availability (and risks durability — the
//!   trade the paper leaves to the database designer).

use std::fmt;

use fragdb_core::{MovePolicy, Notification, Submission, System, SystemConfig};
use fragdb_model::{AgentId, FragmentCatalog, NodeId, ObjectId};
use fragdb_net::{NetworkChange, Topology};
use fragdb_sim::{SimDuration, SimTime};

use crate::table::{pct, Table};

/// One replica-set-size sample.
#[derive(Clone, Debug)]
pub struct PartialSample {
    /// Number of replicas (`r`).
    pub replicas: u32,
    /// Messages sent per committed update (fixed-agent run).
    pub msgs_per_commit: f64,
    /// Updates committed under majority commit while the network was split
    /// in half (agent's half holds the first 4 nodes).
    pub majority_committed: u64,
    /// Updates submitted in the majority run.
    pub majority_submitted: u64,
    /// Replica set converged after the heal?
    pub converged: bool,
}

/// The report.
#[derive(Clone, Debug)]
pub struct E12Report {
    /// One sample per replica-set size.
    pub samples: Vec<PartialSample>,
}

impl fmt::Display for E12Report {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "E12 — §6 partial replication on 8 nodes (half-split partition)"
        )?;
        let mut t = Table::new([
            "replicas",
            "msgs/commit",
            "majority availability",
            "converged",
        ]);
        for s in &self.samples {
            t.row([
                s.replicas.to_string(),
                format!("{:.1}", s.msgs_per_commit),
                pct(s.majority_committed, s.majority_submitted),
                if s.converged { "yes" } else { "NO" }.to_string(),
            ]);
        }
        write!(f, "{t}")
    }
}

fn secs(s: u64) -> SimTime {
    SimTime::from_secs(s)
}

fn build(seed: u64, replicas: u32, policy: MovePolicy) -> (System, Vec<ObjectId>) {
    let n = 8u32;
    let mut b = FragmentCatalog::builder();
    let (frag, objs) = b.add_fragment("P", 2);
    let catalog = b.build();
    let mut config = SystemConfig::unrestricted(seed).with_move_policy(policy);
    if replicas < n {
        config = config.with_replica_set(frag, (0..replicas).map(NodeId));
    }
    let sys = System::build(
        Topology::full_mesh(n, SimDuration::from_millis(10)),
        catalog,
        vec![(frag, AgentId::Node(NodeId(0)), NodeId(0))],
        config,
    )
    .unwrap();
    (sys, objs)
}

fn bump(obj: ObjectId) -> Submission {
    Submission::update(
        fragdb_model::FragmentId(0),
        Box::new(move |ctx| {
            let v = ctx.read_int(obj, 0);
            ctx.write(obj, v + 1)?;
            Ok(())
        }),
    )
}

fn one_size(seed: u64, replicas: u32) -> PartialSample {
    // Run A: fixed agents, measure fan-out cost.
    let (mut sys, objs) = build(seed, replicas, MovePolicy::Fixed);
    let updates = 30u64;
    for i in 0..updates {
        sys.submit_at(secs(1 + i), bump(objs[0]));
    }
    sys.run_until(secs(300));
    let committed = sys.engine.metrics.counter("txn.committed");
    let msgs_per_commit = sys.net_stats().sent as f64 / committed.max(1) as f64;

    // Run B: majority commit under a half-split (nodes 0..3 | 4..7).
    let (mut sys, objs) = build(
        seed ^ 0xB,
        replicas,
        MovePolicy::MajorityCommit {
            timeout: SimDuration::from_secs(5),
        },
    );
    sys.net_change_at(
        SimTime::ZERO,
        NetworkChange::Split(vec![
            (0..4).map(NodeId).collect(),
            (4..8).map(NodeId).collect(),
        ]),
    );
    let majority_submitted = 10u64;
    for i in 0..majority_submitted {
        sys.submit_at(secs(1 + i * 10), bump(objs[0]));
    }
    let notes = sys.run_until(secs(200));
    let majority_committed = notes
        .iter()
        .filter(|n| matches!(n, Notification::Committed { .. }))
        .count() as u64;
    sys.net_change_at(secs(250), NetworkChange::HealAll);
    sys.run_until(secs(900));
    PartialSample {
        replicas,
        msgs_per_commit,
        majority_committed,
        majority_submitted,
        converged: sys.divergent_fragments().is_empty(),
    }
}

/// Run E12 over replica-set sizes.
pub fn run(seed: u64) -> E12Report {
    E12Report {
        samples: [2u32, 4, 8].iter().map(|&r| one_size(seed, r)).collect(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fan_out_cost_scales_with_replica_count() {
        let r = run(1);
        let m: Vec<f64> = r.samples.iter().map(|s| s.msgs_per_commit).collect();
        assert!(
            m[0] < m[1] && m[1] < m[2],
            "messages must grow with replicas: {m:?}"
        );
        // Fixed-agent fan-out is exactly r-1 messages per commit.
        assert!((m[0] - 1.0).abs() < 0.01);
        assert!((m[2] - 7.0).abs() < 0.01);
    }

    #[test]
    fn small_replica_sets_survive_the_half_split_under_majority_commit() {
        let r = run(2);
        let by_size = |n: u32| r.samples.iter().find(|s| s.replicas == n).unwrap();
        assert_eq!(
            by_size(2).majority_committed,
            by_size(2).majority_submitted,
            "replica set {{0,1}}: quorum of 2 is reachable"
        );
        assert_eq!(
            by_size(4).majority_committed,
            by_size(4).majority_submitted,
            "replica set {{0..3}}: quorum of 3 is reachable"
        );
        assert_eq!(
            by_size(8).majority_committed,
            0,
            "full replication: quorum of 5 is unreachable in a half-split"
        );
    }

    #[test]
    fn every_size_converges_after_heal() {
        let r = run(3);
        assert!(r.samples.iter().all(|s| s.converged));
    }

    #[test]
    fn report_renders() {
        let r = run(4);
        assert!(r.to_string().contains("msgs/commit"));
    }
}
