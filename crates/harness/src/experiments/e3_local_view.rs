//! E3 — Figures 2.1/2.2: the local view of the balance and its
//! divergence from the central balance during partitions.
//!
//! A customer at node 1 deposits every 5 seconds while a partition of
//! duration `D` separates them from the central office (node 0). The
//! paper: "in the face of communication delays and partitions, the local
//! view of balance may not correspond exactly to the actual balance. The
//! longer a partition lasts, the greater this discrepancy can become."
//! The series below measures exactly that, plus the time to reconverge
//! once the partition heals.

use std::fmt;

use fragdb_core::{System, SystemConfig};
use fragdb_model::NodeId;
use fragdb_net::{NetworkChange, Topology};
use fragdb_sim::{SimDuration, SimTime};
use fragdb_workloads::{BankConfig, BankDriver, BankSchema};

use crate::table::Table;

/// One partition-duration sample.
#[derive(Clone, Debug)]
pub struct LocalViewSample {
    /// Partition duration (seconds).
    pub partition_secs: u64,
    /// Deposits made during the partition.
    pub deposits_during: u32,
    /// `local_view(customer) - central_balance` at heal time.
    pub discrepancy_at_heal: i64,
    /// Customer's local view at heal time (always correct logically).
    pub local_view_at_heal: i64,
    /// Virtual time from heal until every replica agreed again (µs).
    pub reconverge_us: u64,
}

/// The report: a series over partition durations.
#[derive(Clone, Debug)]
pub struct E3Report {
    /// Samples, one per duration.
    pub samples: Vec<LocalViewSample>,
}

impl fmt::Display for E3Report {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "E3 — local view vs central balance ($50 deposit every 5s during a partition)"
        )?;
        let mut t = Table::new([
            "partition",
            "deposits during",
            "central misses",
            "local view",
            "reconverge",
        ]);
        for s in &self.samples {
            t.row([
                format!("{}s", s.partition_secs),
                s.deposits_during.to_string(),
                format!("${}", s.discrepancy_at_heal),
                format!("${}", s.local_view_at_heal),
                crate::table::dur(s.reconverge_us),
            ]);
        }
        write!(f, "{t}")
    }
}

fn one_duration(seed: u64, partition_secs: u64) -> LocalViewSample {
    let cfg = BankConfig {
        accounts: 1,
        slots_per_account: 256,
        central: NodeId(0),
        account_homes: vec![NodeId(1)],
        overdraft_fine: 0,
    };
    let (catalog, schema, agents) = BankSchema::build(&cfg);
    let mut sys = System::build(
        Topology::full_mesh(2, SimDuration::from_millis(10)),
        catalog,
        agents,
        SystemConfig::unrestricted(seed),
    )
    .unwrap();
    let mut bank = BankDriver::new(schema, cfg);

    let part_start = SimTime::from_secs(10);
    let part_end = part_start + SimDuration::from_secs(partition_secs);
    sys.net_change_at(part_start, NetworkChange::LinkDown(NodeId(0), NodeId(1)));
    sys.net_change_at(part_end, NetworkChange::HealAll);

    // Deposits every 5s from t=12 until the heal.
    let mut deposits_during = 0u32;
    let mut t = part_start + SimDuration::from_secs(2);
    while t < part_end {
        let dep = bank.deposit(0, 50).expect("slots");
        sys.submit_at(t, dep);
        deposits_during += 1;
        t += SimDuration::from_secs(5);
    }

    // Run exactly to the heal instant and measure the discrepancy.
    while let Some((at, notes)) = sys.step_until(part_end) {
        for n in &notes {
            bank.react(&mut sys, at, n);
        }
    }
    let local_view_at_heal = bank.schema.local_view(sys.replica(NodeId(1)), 0);
    let central_balance = sys
        .replica(NodeId(0))
        .read(bank.schema.bal_objs[0])
        .as_int_or(0)
        .unwrap();
    let discrepancy_at_heal = local_view_at_heal - central_balance;

    // Continue until replicas agree again; record the reconvergence time.
    let mut reconverged_at = part_end;
    let limit = part_end + SimDuration::from_secs(600);
    loop {
        let step = sys.step_until(limit);
        let Some((at, notes)) = step else { break };
        for n in &notes {
            bank.react(&mut sys, at, n);
        }
        if sys.divergent_fragments().is_empty() && sys.queued_submissions() == 0 {
            reconverged_at = at;
            if sys.engine.peek_time().is_none() {
                break;
            }
        }
    }
    LocalViewSample {
        partition_secs,
        deposits_during,
        discrepancy_at_heal,
        local_view_at_heal,
        reconverge_us: (reconverged_at - part_end).micros(),
    }
}

/// Run E3 over a sweep of partition durations.
pub fn run(seed: u64, durations: &[u64]) -> E3Report {
    E3Report {
        samples: durations.iter().map(|&d| one_duration(seed, d)).collect(),
    }
}

/// The default duration sweep.
pub fn default_durations() -> Vec<u64> {
    vec![10, 30, 60, 120]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn discrepancy_grows_with_partition_duration() {
        let r = run(7, &[10, 60, 120]);
        assert_eq!(r.samples.len(), 3);
        let d: Vec<i64> = r.samples.iter().map(|s| s.discrepancy_at_heal).collect();
        assert!(d[0] < d[1] && d[1] < d[2], "discrepancy must grow: {d:?}");
        // Each deposit of $50 the central office missed is discrepancy.
        for s in &r.samples {
            assert_eq!(s.discrepancy_at_heal, 50 * s.deposits_during as i64);
        }
    }

    #[test]
    fn local_view_is_logically_correct_throughout() {
        let r = run(8, &[30]);
        let s = &r.samples[0];
        assert_eq!(s.local_view_at_heal, 50 * s.deposits_during as i64);
    }

    #[test]
    fn replicas_reconverge_after_heal() {
        let r = run(9, &[30]);
        let s = &r.samples[0];
        assert!(s.reconverge_us > 0, "reconvergence takes nonzero time");
        assert!(
            s.reconverge_us < 10_000_000,
            "but finishes quickly: {}us",
            s.reconverge_us
        );
    }

    #[test]
    fn report_renders() {
        let r = run(10, &[10]);
        assert!(r.to_string().contains("central misses"));
    }
}
