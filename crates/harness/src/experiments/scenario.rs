//! Shared scenario generation: a common banking workload (operations +
//! partition schedule) that every system under comparison replays, so
//! E1/E2 comparisons are apples-to-apples.

use fragdb_model::NodeId;
use fragdb_net::PartitionSchedule;
use fragdb_sim::{SimDuration, SimRng, SimTime};
use fragdb_workloads::{arrivals, partitions};

/// One customer operation: positive `amount` deposits, negative withdraws.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct BankOp {
    /// When the customer walks up.
    pub at: SimTime,
    /// Which account.
    pub account: u32,
    /// Signed amount in cents.
    pub amount: i64,
    /// The node the customer is at (the account's home branch).
    pub node: NodeId,
}

/// Scenario parameters.
#[derive(Clone, Debug)]
pub struct ScenarioParams {
    /// Number of nodes (node 0 is the central office / primary).
    pub nodes: u32,
    /// Number of accounts.
    pub accounts: u32,
    /// Customer operations per second (whole system).
    pub ops_per_sec: f64,
    /// Workload horizon; partitions all heal by this time.
    pub horizon: SimTime,
    /// Fraction of time the network is partitioned.
    pub disruption: f64,
    /// Mean partition length.
    pub mean_partition: SimDuration,
}

impl ScenarioParams {
    /// The E1 defaults: 4 nodes, 6 accounts, 2 ops/s over 300 virtual
    /// seconds, 30% of it partitioned in ~20s episodes.
    pub fn default_spectrum() -> Self {
        ScenarioParams {
            nodes: 4,
            accounts: 6,
            ops_per_sec: 2.0,
            horizon: SimTime::from_secs(600),
            disruption: 0.4,
            mean_partition: SimDuration::from_secs(30),
        }
    }
}

/// A generated scenario: deterministic in the seed.
#[derive(Clone, Debug)]
pub struct Scenario {
    /// Parameters it was built from.
    pub params: ScenarioParams,
    /// Customer operations, time-ordered.
    pub ops: Vec<BankOp>,
    /// Partition schedule (fully healed before `params.horizon`).
    pub partitions: PartitionSchedule,
    /// Home branch per account.
    pub account_homes: Vec<NodeId>,
}

impl Scenario {
    /// Generate from a seed.
    pub fn generate(seed: u64, params: ScenarioParams) -> Scenario {
        let mut rng = SimRng::new(seed);
        // Accounts homed round-robin on the non-central nodes (or node 0
        // too when there is only one node).
        let account_homes: Vec<NodeId> = (0..params.accounts)
            .map(|i| {
                if params.nodes == 1 {
                    NodeId(0)
                } else {
                    NodeId(1 + (i % (params.nodes - 1)))
                }
            })
            .collect();
        let times = arrivals::poisson(&mut rng, params.ops_per_sec, SimTime::ZERO, params.horizon);
        let ops = times
            .into_iter()
            .map(|at| {
                let account = rng.gen_range(0..params.accounts);
                // 60% deposits, 40% withdrawals; amounts 10..200.
                let magnitude = rng.gen_range(10..200i64);
                let amount = if rng.chance(0.6) {
                    magnitude
                } else {
                    -magnitude
                };
                BankOp {
                    at,
                    account,
                    amount,
                    node: account_homes[account as usize],
                }
            })
            .collect();
        let partitions = partitions::random_alternating(
            &mut rng,
            params.nodes,
            params.mean_partition,
            params.disruption,
            params.horizon,
        );
        Scenario {
            params,
            ops,
            partitions,
            account_homes,
        }
    }

    /// Deposits in the scenario.
    pub fn deposits(&self) -> usize {
        self.ops.iter().filter(|o| o.amount > 0).count()
    }

    /// Withdrawals in the scenario.
    pub fn withdrawals(&self) -> usize {
        self.ops.iter().filter(|o| o.amount < 0).count()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn generation_is_deterministic() {
        let a = Scenario::generate(5, ScenarioParams::default_spectrum());
        let b = Scenario::generate(5, ScenarioParams::default_spectrum());
        assert_eq!(a.ops, b.ops);
        assert_eq!(a.partitions, b.partitions);
    }

    #[test]
    fn scenario_has_both_op_kinds_and_partitions() {
        let s = Scenario::generate(1, ScenarioParams::default_spectrum());
        assert!(s.deposits() > 0);
        assert!(s.withdrawals() > 0);
        assert!(!s.partitions.is_empty());
        assert_eq!(s.ops.len(), s.deposits() + s.withdrawals());
        // Accounts homed away from the central node.
        assert!(s.account_homes.iter().all(|n| n.0 != 0));
    }

    #[test]
    fn ops_are_time_ordered_within_horizon() {
        let s = Scenario::generate(2, ScenarioParams::default_spectrum());
        for w in s.ops.windows(2) {
            assert!(w[0].at <= w[1].at);
        }
        assert!(s.ops.iter().all(|o| o.at < s.params.horizon));
    }
}
