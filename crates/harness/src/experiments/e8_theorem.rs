//! E8 — Monte-Carlo validation of the §4.2 theorem.
//!
//! *Theorem: the transaction execution schedule is globally serializable
//! if the corresponding read-access graph is elementarily acyclic.*
//!
//! We generate random schemas, random **elementarily acyclic** read-access
//! graphs (random forests with random edge orientations), workloads whose
//! classes follow the graph, and random partition schedules — and verify
//! the global serialization graph is acyclic in *every* trial. As a
//! control, the same generator with one extra cycle-closing edge must
//! produce non-serializable executions in a measurable fraction of trials
//! (showing the experiment has teeth).

use std::fmt;

use fragdb_core::{Submission, System, SystemConfig};
use fragdb_model::{AgentId, FragmentCatalog, FragmentId, NodeId, ObjectId};
use fragdb_net::Topology;
use fragdb_sim::{SimDuration, SimRng, SimTime};
use fragdb_workloads::{arrivals, partitions};

use crate::table::{pct, Table};

/// The report.
#[derive(Clone, Debug)]
pub struct E8Report {
    /// Trials per arm.
    pub trials: u32,
    /// Serializability violations with elementarily acyclic RAGs
    /// (theorem says: must be 0).
    pub acyclic_violations: u32,
    /// Trials in the cyclic-RAG control arm with GSG cycles (must be > 0
    /// for the experiment to have discriminating power).
    pub cyclic_violations: u32,
    /// Total transactions executed across all trials.
    pub total_txns: u64,
}

impl fmt::Display for E8Report {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "E8 — §4.2 theorem, Monte-Carlo over random schemas/partitions"
        )?;
        let mut t = Table::new(["arm", "trials", "GSG cycles found", "violation rate"]);
        t.row([
            "elementarily acyclic RAG".to_string(),
            self.trials.to_string(),
            self.acyclic_violations.to_string(),
            pct(self.acyclic_violations as u64, self.trials as u64),
        ]);
        t.row([
            "cyclic RAG (control)".to_string(),
            self.trials.to_string(),
            self.cyclic_violations.to_string(),
            pct(self.cyclic_violations as u64, self.trials as u64),
        ]);
        writeln!(f, "{t}")?;
        writeln!(f, "total transactions executed: {}", self.total_txns)
    }
}

/// A generated schema: k fragments, each with a couple of objects, and a
/// directed read set per fragment.
struct TrialSchema {
    catalog: FragmentCatalog,
    objects: Vec<Vec<ObjectId>>,
    reads_of: Vec<Vec<usize>>, // fragment index -> foreign fragments it reads
    k: usize,
}

/// Generate a random forest RAG (elementarily acyclic by construction),
/// optionally closing one undirected cycle for the control arm.
fn generate_schema(rng: &mut SimRng, close_cycle: bool) -> TrialSchema {
    let k = rng.gen_range(3..6usize);
    let mut b = FragmentCatalog::builder();
    let mut objects = Vec::new();
    for i in 0..k {
        let (_, objs) = b.add_fragment(format!("F{i}"), 2);
        objects.push(objs);
    }
    let catalog = b.build();
    let mut reads_of: Vec<Vec<usize>> = vec![Vec::new(); k];
    // Random forest: attach each fragment i>0 to a random earlier one,
    // with random orientation (who reads whom).
    let mut undirected: Vec<(usize, usize)> = Vec::new();
    for i in 1..k {
        if rng.chance(0.85) {
            let j = rng.gen_range(0..i);
            undirected.push((i, j));
            if rng.chance(0.5) {
                reads_of[i].push(j);
            } else {
                reads_of[j].push(i);
            }
        }
    }
    if close_cycle {
        // Add an edge between two fragments already connected (or any two
        // distinct ones if the forest is edgeless): with the existing path
        // this closes an undirected cycle — or creates an antiparallel
        // pair, also a cycle.
        let (a, bb) = if let Some(&(x, y)) = undirected.first() {
            (x, y)
        } else {
            (0, 1)
        };
        // Orient opposite to any existing edge to guarantee a cycle.
        if reads_of[a].contains(&bb) {
            reads_of[bb].push(a);
        } else {
            reads_of[a].push(bb);
        }
    }
    TrialSchema {
        catalog,
        objects,
        reads_of,
        k,
    }
}

/// Run one trial; returns (serializable?, txn count).
fn one_trial(seed: u64, close_cycle: bool) -> (bool, u64) {
    let mut rng = SimRng::new(seed);
    let schema = generate_schema(&mut rng, close_cycle);
    let k = schema.k;
    let n = k as u32; // one node per fragment agent
    let agents: Vec<(FragmentId, AgentId, NodeId)> = (0..k)
        .map(|i| {
            (
                FragmentId(i as u32),
                AgentId::Node(NodeId(i as u32)),
                NodeId(i as u32),
            )
        })
        .collect();
    let mut sys = System::build(
        Topology::full_mesh(n.max(2), SimDuration::from_millis(10)),
        schema.catalog.clone(),
        agents,
        SystemConfig::unrestricted(seed),
    )
    .unwrap();

    let horizon = SimTime::from_secs(120);
    let sched = partitions::random_alternating(
        &mut rng,
        n.max(2),
        SimDuration::from_secs(15),
        0.4,
        horizon,
    );
    sys.schedule_partitions(&sched);

    // Each fragment's agent fires updates that read its declared foreign
    // fragments and write its own objects.
    let mut txns = 0u64;
    for i in 0..k {
        let times = arrivals::poisson(&mut rng, 0.4, SimTime::ZERO, horizon);
        for t in times {
            let own: Vec<ObjectId> = schema.objects[i].clone();
            let foreign: Vec<ObjectId> = schema.reads_of[i]
                .iter()
                .flat_map(|&j| schema.objects[j].iter().copied())
                .collect();
            let target = own[rng.gen_range(0..own.len())];
            sys.submit_at(
                t,
                Submission::update(
                    FragmentId(i as u32),
                    Box::new(move |ctx| {
                        let mut acc = 0i64;
                        for &o in &foreign {
                            acc = acc.wrapping_add(ctx.read_int(o, 0));
                        }
                        for &o in &own {
                            acc = acc.wrapping_add(ctx.read_int(o, 0));
                        }
                        ctx.write(target, acc.wrapping_add(1) % 1_000_003)?;
                        Ok(())
                    }),
                ),
            );
            txns += 1;
        }
    }
    sys.run_until(horizon + SimDuration::from_secs(300));
    let verdict = fragdb_graphs::analyze(&sys.history);
    debug_assert!(verdict.fragmentwise_serializable());
    debug_assert!(
        fragdb_graphs::IncrementalAnalyzer::from_history(&sys.history)
            .verdict()
            .agrees_with(&verdict),
        "incremental checker diverged from the batch oracle"
    );
    (verdict.globally_serializable, txns)
}

/// Run E8 with `trials` trials per arm.
pub fn run(seed: u64, trials: u32) -> E8Report {
    let mut acyclic_violations = 0u32;
    let mut cyclic_violations = 0u32;
    let mut total_txns = 0u64;
    for t in 0..trials {
        let (ok, txns) = one_trial(seed.wrapping_add(t as u64), false);
        total_txns += txns;
        if !ok {
            acyclic_violations += 1;
        }
        let (ok, txns) = one_trial(seed.wrapping_add(1_000_003 + t as u64), true);
        total_txns += txns;
        if !ok {
            cyclic_violations += 1;
        }
    }
    E8Report {
        trials,
        acyclic_violations,
        cyclic_violations,
        total_txns,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn theorem_holds_over_many_random_trials() {
        let r = run(0xE8, 30);
        assert_eq!(
            r.acyclic_violations, 0,
            "the §4.2 theorem must hold in every elementarily-acyclic trial"
        );
        assert!(r.total_txns > 500, "trials actually executed work");
    }

    #[test]
    fn control_arm_finds_cycles() {
        let r = run(0xE8F, 30);
        assert!(
            r.cyclic_violations > 0,
            "cyclic RAGs must produce at least one non-serializable run — \
             otherwise the experiment can't distinguish anything"
        );
    }

    #[test]
    fn report_renders() {
        let r = run(1, 2);
        assert!(r.to_string().contains("elementarily acyclic"));
    }
}
