//! E1 — Figure 1.1: the correctness/availability spectrum, measured.
//!
//! One shared banking workload (deposits and withdrawals with random
//! partitions) is replayed under five systems spanning the spectrum:
//!
//! 1. mutual exclusion (primary copy) — baseline, conservative end;
//! 2. §4.1 fixed agents + read locks;
//! 3. §4.2 fixed agents + elementarily acyclic read-access graph;
//! 4. §4.3 fixed agents, unrestricted reads;
//! 5. log transformation — baseline, "free-for-all" end.
//!
//! The paper's qualitative claim — availability increases left to right
//! while the correctness guarantee weakens — becomes a measured table.

use std::fmt;

use fragdb_baselines::{
    mutex::MxOutcome, LogTransformConfig, LogTransformSystem, LoggedOp, MutexConfig, MutexSystem,
};
use fragdb_core::{Notification, StrategyKind, System, SystemConfig};
use fragdb_model::{NodeId, ObjectId};
use fragdb_net::Topology;
use fragdb_sim::{SimDuration, SimTime};
use fragdb_workloads::{BankConfig, BankDriver, BankSchema};

use crate::experiments::scenario::{Scenario, ScenarioParams};
use crate::table::{dur, pct, Table};

/// Measured outcome of one system on the shared scenario.
#[derive(Clone, Debug)]
pub struct SpectrumRow {
    /// System label (Figure 1.1 position).
    pub system: String,
    /// Customer operations submitted.
    pub submitted: u64,
    /// Customer operations served.
    pub served: u64,
    /// Operations refused/timed out for availability reasons.
    pub unavailable: u64,
    /// Mean commit latency (µs) of served operations.
    pub mean_latency_us: u64,
    /// Messages sent on the network.
    pub messages: u64,
    /// Reconciliation/replay work (log transformation only).
    pub replay_ops: u64,
    /// Correctness verdict on the executed history.
    pub guarantee: String,
    /// All replicas identical after the run drained?
    pub converged: bool,
}

/// The full report.
#[derive(Clone, Debug)]
pub struct E1Report {
    /// One row per system, spectrum order.
    pub rows: Vec<SpectrumRow>,
    /// The scenario's operation count.
    pub total_ops: usize,
    /// Fraction of the horizon that was partitioned.
    pub disrupted_frac: f64,
}

impl fmt::Display for E1Report {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "E1 — Figure 1.1 spectrum: {} customer ops, {:.0}% of time partitioned",
            self.total_ops,
            self.disrupted_frac * 100.0
        )?;
        let mut t = Table::new([
            "system",
            "availability",
            "served",
            "unavailable",
            "mean latency",
            "messages",
            "replay ops",
            "guarantee",
            "converged",
        ]);
        for r in &self.rows {
            t.row([
                r.system.clone(),
                pct(r.served, r.submitted),
                r.served.to_string(),
                r.unavailable.to_string(),
                dur(r.mean_latency_us),
                r.messages.to_string(),
                if r.replay_ops == 0 {
                    "-".into()
                } else {
                    r.replay_ops.to_string()
                },
                r.guarantee.clone(),
                if r.converged { "yes" } else { "NO" }.to_string(),
            ]);
        }
        write!(f, "{t}")
    }
}

/// Drain time after the last heal, for propagation to finish.
fn drain_until(horizon: SimTime) -> SimTime {
    horizon + SimDuration::from_secs(600)
}

/// Run the fragments-and-agents system under `strategy` on the scenario.
fn run_fragdb(label: &str, strategy: StrategyKind, seed: u64, sc: &Scenario) -> SpectrumRow {
    let cfg = BankConfig {
        accounts: sc.params.accounts,
        slots_per_account: (sc.ops.len() + 8) as u32,
        central: NodeId(0),
        account_homes: sc.account_homes.clone(),
        overdraft_fine: 50,
    };
    let (catalog, schema, agents) = BankSchema::build(&cfg);
    let declare = matches!(strategy, StrategyKind::ReadLocks { .. });
    let mut sys = System::build(
        Topology::full_mesh(sc.params.nodes, SimDuration::from_millis(10)),
        catalog,
        agents,
        SystemConfig::unrestricted(seed).with_strategy(strategy),
    )
    .expect("strategy validates");
    let mut bank = BankDriver::new(schema, cfg);
    if declare {
        bank = bank.with_declared_reads();
    }

    let activity: std::collections::BTreeSet<_> = bank.schema.activity.iter().copied().collect();
    sys.schedule_partitions(&sc.partitions);
    for op in &sc.ops {
        let sub = if op.amount > 0 {
            bank.deposit(op.account, op.amount)
        } else {
            bank.withdraw(op.account, -op.amount, false)
        }
        .expect("enough slots");
        sys.submit_at(op.at, sub);
    }

    let mut served = 0u64;
    let mut unavailable = 0u64;
    let limit = drain_until(sc.params.horizon);
    while let Some((at, notes)) = sys.step_until(limit) {
        for n in &notes {
            match n {
                Notification::Committed { fragment, .. } if activity.contains(fragment) => {
                    served += 1;
                }
                Notification::Aborted { fragment, .. } if activity.contains(fragment) => {
                    unavailable += 1;
                }
                _ => {}
            }
            bank.react(&mut sys, at, n);
        }
    }

    let verdict = fragdb_graphs::analyze(&sys.history);
    let mean_latency = sys
        .engine
        .metrics
        .histogram("latency.commit")
        .and_then(|h| h.mean())
        .unwrap_or(0.0) as u64;
    SpectrumRow {
        system: label.to_string(),
        submitted: sc.ops.len() as u64,
        served,
        unavailable,
        mean_latency_us: mean_latency,
        messages: sys.net_stats().sent,
        replay_ops: 0,
        guarantee: verdict.spectrum_label().to_string(),
        converged: sys.divergent_fragments().is_empty(),
    }
}

/// Run the mutual-exclusion baseline.
fn run_mutex(seed: u64, sc: &Scenario) -> SpectrumRow {
    let mut sys = MutexSystem::build(
        Topology::full_mesh(sc.params.nodes, SimDuration::from_millis(10)),
        MutexConfig {
            primary: NodeId(0),
            seed,
        },
    );
    for (at, change) in sc.partitions.events() {
        sys.net_change_at(*at, change.clone());
    }
    for op in &sc.ops {
        let account = op.account as usize;
        let amount = op.amount;
        let bal = ObjectId(account as u64);
        sys.submit_at(
            op.at,
            op.node,
            false,
            Box::new(move |ctx| {
                let cur = ctx.read_int(bal, 0);
                ctx.write(bal, cur + amount);
                Ok(())
            }),
        );
    }
    let outcomes = sys.run_until(drain_until(sc.params.horizon));
    let served = outcomes
        .iter()
        .filter(|(_, o)| matches!(o, MxOutcome::Committed(_)))
        .count() as u64;
    let unavailable = outcomes
        .iter()
        .filter(|(_, o)| matches!(o, MxOutcome::Unavailable))
        .count() as u64;
    let objects: Vec<ObjectId> = (0..sc.params.accounts as u64).map(ObjectId).collect();
    let verdict = fragdb_graphs::analyze(&sys.history);
    SpectrumRow {
        system: "mutual exclusion".into(),
        submitted: sc.ops.len() as u64,
        served,
        unavailable,
        mean_latency_us: sys
            .engine
            .metrics
            .histogram("latency.commit")
            .and_then(|h| h.mean())
            .unwrap_or(0.0) as u64,
        messages: sys.transport_stats().sent,
        replay_ops: 0,
        guarantee: if verdict.globally_serializable {
            "globally serializable".into()
        } else {
            "UNEXPECTED".into()
        },
        converged: sys.converged(&objects),
    }
}

/// The log-transformation op for the banking scenario.
#[derive(Clone, Debug)]
pub struct LtBankOp {
    /// Account index.
    pub account: u32,
    /// Signed amount.
    pub amount: i64,
}

impl LoggedOp for LtBankOp {
    type State = Vec<i64>;
    fn apply(&self, state: &mut Vec<i64>) {
        if state.len() <= self.account as usize {
            state.resize(self.account as usize + 1, 0);
        }
        state[self.account as usize] += self.amount;
    }
}

/// Run the log-transformation baseline.
fn run_logtransform(seed: u64, sc: &Scenario) -> SpectrumRow {
    let mut sys: LogTransformSystem<LtBankOp> = LogTransformSystem::build(
        Topology::full_mesh(sc.params.nodes, SimDuration::from_millis(10)),
        LogTransformConfig { seed },
    );
    for (at, change) in sc.partitions.events() {
        sys.net_change_at(*at, change.clone());
    }
    for op in &sc.ops {
        sys.submit_at(
            op.at,
            op.node,
            LtBankOp {
                account: op.account,
                amount: op.amount,
            },
        );
    }
    sys.run_until(drain_until(sc.params.horizon));
    SpectrumRow {
        system: "log transformation".into(),
        submitted: sc.ops.len() as u64,
        served: sc.ops.len() as u64, // free-for-all: everything is served
        unavailable: 0,
        mean_latency_us: 0, // local application is instantaneous
        messages: sys.transport_stats().sent,
        replay_ops: sys.engine.metrics.counter("replay.ops"),
        guarantee: "eventual convergence only".into(),
        converged: sys.converged(),
    }
}

/// Run E1.
pub fn run(seed: u64, params: ScenarioParams) -> E1Report {
    let sc = Scenario::generate(seed, params);
    let disrupted_frac = sc
        .partitions
        .disrupted_time(sc.params.horizon)
        .as_secs_f64()
        / sc.params.horizon.as_secs_f64();

    let mut rows = Vec::new();
    rows.push(run_mutex(seed, &sc));
    rows.push(run_fragdb(
        "4.1 read-locks",
        StrategyKind::ReadLocks {
            timeout: SimDuration::from_secs(10),
        },
        seed,
        &sc,
    ));
    // §4.2 with the banking class declarations (elementarily acyclic).
    let cfg = BankConfig {
        accounts: sc.params.accounts,
        slots_per_account: 1,
        central: NodeId(0),
        account_homes: sc.account_homes.clone(),
        overdraft_fine: 0,
    };
    let (_, schema_for_decls, _) = BankSchema::build(&cfg);
    rows.push(run_fragdb(
        "4.2 acyclic-RAG",
        StrategyKind::AcyclicRag {
            decls: schema_for_decls.decls(),
            allow_violating_read_only: true,
        },
        seed,
        &sc,
    ));
    rows.push(run_fragdb(
        "4.3 unrestricted",
        StrategyKind::Unrestricted,
        seed,
        &sc,
    ));
    rows.push(run_logtransform(seed, &sc));

    E1Report {
        total_ops: sc.ops.len(),
        disrupted_frac,
        rows,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small_params() -> ScenarioParams {
        ScenarioParams {
            nodes: 4,
            accounts: 4,
            ops_per_sec: 1.0,
            horizon: SimTime::from_secs(120),
            disruption: 0.3,
            mean_partition: SimDuration::from_secs(15),
        }
    }

    #[test]
    fn spectrum_orders_availability_as_the_paper_claims() {
        let report = run(42, small_params());
        let avail: Vec<f64> = report
            .rows
            .iter()
            .map(|r| r.served as f64 / r.submitted as f64)
            .collect();
        let [mutex, locks, rag, unrestricted, lt] = avail[..] else {
            panic!("expected five rows");
        };
        // Left-to-right availability is non-decreasing (Figure 1.1).
        assert!(mutex <= locks + 1e-9, "mutex {mutex} vs locks {locks}");
        assert!(locks <= rag + 1e-9, "locks {locks} vs rag {rag}");
        assert!(rag <= unrestricted + 1e-9);
        assert!(
            (unrestricted - 1.0).abs() < 1e-9,
            "fragdb serves everything"
        );
        assert!((lt - 1.0).abs() < 1e-9, "free-for-all serves everything");
        // The conservative end lost real availability in this scenario.
        assert!(mutex < 1.0, "partitions must hurt the mutex baseline");
    }

    #[test]
    fn guarantees_weaken_left_to_right() {
        let report = run(43, small_params());
        assert_eq!(report.rows[0].guarantee, "globally serializable");
        assert_eq!(report.rows[1].guarantee, "globally serializable");
        assert_eq!(report.rows[2].guarantee, "globally serializable");
        // §4.3 may or may not produce a global anomaly in a given run, but
        // it must at least be fragmentwise serializable.
        assert!(
            report.rows[3].guarantee == "globally serializable"
                || report.rows[3].guarantee == "fragmentwise serializable",
            "got {}",
            report.rows[3].guarantee
        );
        assert_eq!(report.rows[4].guarantee, "eventual convergence only");
    }

    #[test]
    fn every_system_converges_after_heal() {
        let report = run(44, small_params());
        for r in &report.rows {
            assert!(r.converged, "{} did not converge", r.system);
        }
    }

    #[test]
    fn log_transformation_pays_replay_overhead() {
        let report = run(45, small_params());
        let lt = &report.rows[4];
        assert!(
            lt.replay_ops > lt.submitted,
            "replay work {} should exceed op count {}",
            lt.replay_ops,
            lt.submitted
        );
    }

    #[test]
    fn report_renders() {
        let report = run(46, small_params());
        let s = report.to_string();
        assert!(s.contains("availability"));
        assert!(s.contains("mutual exclusion"));
        assert!(s.contains("4.3 unrestricted"));
    }
}
