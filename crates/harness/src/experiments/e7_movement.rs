//! E7 — §4.4 / Figure 4.4.1: the agent-movement protocols compared.
//!
//! One fragment's agent moves twice, each time while its *old* home is
//! partitioned away — the exact "missing transactions" hazard of
//! Figure 4.4.1 (`T_1` cannot reach the new home before `T_2` starts).
//! Updates flow continuously. Per protocol we measure what the paper
//! predicts qualitatively:
//!
//! * §4.4.1 majority — isolated-side updates become unavailable; the move
//!   itself completes against a majority.
//! * §4.4.2A with-data — moves complete after the courier delay even
//!   across the partition; ordered installs preserve fragmentwise
//!   serializability.
//! * §4.4.2B with-seqno — the new home *waits* for the old updates: the
//!   move completes only after the heal (the measured availability cost).
//! * §4.4.3 no-prep — the move completes instantly; late transactions are
//!   repackaged; only mutual consistency is promised.

use std::fmt;

use fragdb_core::{MovePolicy, Notification, Submission, System, SystemConfig};
use fragdb_model::{AgentId, FragmentCatalog, NodeId, UserId};
use fragdb_net::{NetworkChange, Topology};
use fragdb_sim::{SimDuration, SimTime};

use crate::table::{dur, pct, Table};

/// Measured outcome for one movement policy.
#[derive(Clone, Debug)]
pub struct MovementRow {
    /// Policy label.
    pub policy: String,
    /// Updates submitted.
    pub submitted: u64,
    /// Updates committed.
    pub committed: u64,
    /// Updates aborted as unavailable.
    pub unavailable: u64,
    /// Mean delay from move request to `MoveCompleted` (µs).
    pub mean_move_delay_us: u64,
    /// §4.4.3 repackaged late transactions.
    pub repackaged: u64,
    /// Messages sent.
    pub messages: u64,
    /// Fragmentwise serializability verdict on the history.
    pub fragmentwise: bool,
    /// Replicas converged after drain?
    pub converged: bool,
}

/// The report.
#[derive(Clone, Debug)]
pub struct E7Report {
    /// One row per policy.
    pub rows: Vec<MovementRow>,
}

impl fmt::Display for E7Report {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "E7 — agent movement protocols (two moves, each across a partition)"
        )?;
        let mut t = Table::new([
            "protocol",
            "availability",
            "unavailable",
            "mean move delay",
            "repackaged",
            "messages",
            "fragmentwise",
            "converged",
        ]);
        for r in &self.rows {
            t.row([
                r.policy.clone(),
                pct(r.committed, r.submitted),
                r.unavailable.to_string(),
                dur(r.mean_move_delay_us),
                r.repackaged.to_string(),
                r.messages.to_string(),
                if r.fragmentwise { "yes" } else { "no" }.to_string(),
                if r.converged { "yes" } else { "NO" }.to_string(),
            ]);
        }
        write!(f, "{t}")
    }
}

fn secs(s: u64) -> SimTime {
    SimTime::from_secs(s)
}

fn one_policy(seed: u64, policy: MovePolicy) -> MovementRow {
    let label = policy.label().to_string();
    let mut b = FragmentCatalog::builder();
    let (frag, objs) = b.add_fragment("MOBILE", 4);
    let catalog = b.build();
    let n = 5u32;
    let agents = vec![(frag, AgentId::User(UserId(0)), NodeId(1))];
    let mut sys = System::build(
        Topology::full_mesh(n, SimDuration::from_millis(10)),
        catalog,
        agents,
        SystemConfig::unrestricted(seed).with_move_policy(policy),
    )
    .unwrap();

    // Updates every 2 seconds for 200s (counter increments round-robin
    // over the fragment's objects).
    let mut submitted = 0u64;
    for i in 0..100u64 {
        let obj = objs[(i % objs.len() as u64) as usize];
        sys.submit_at(
            secs(2 * i + 1),
            Submission::update(
                frag,
                Box::new(move |ctx| {
                    let v = ctx.read_int(obj, 0);
                    ctx.write(obj, v + 1)?;
                    Ok(())
                }),
            ),
        );
        submitted += 1;
    }

    // Move 1 at t=45 to node 2, while node 1 (old home) is isolated 40-70.
    sys.net_change_at(
        secs(40),
        NetworkChange::Split(vec![
            vec![NodeId(1)],
            vec![NodeId(0), NodeId(2), NodeId(3), NodeId(4)],
        ]),
    );
    let mut move_requests = vec![secs(45)];
    sys.move_agent_at(secs(45), frag, NodeId(2));
    sys.net_change_at(secs(70), NetworkChange::HealAll);

    // Move 2 at t=125 to node 3, while node 2 is isolated 120-150.
    sys.net_change_at(
        secs(120),
        NetworkChange::Split(vec![
            vec![NodeId(2)],
            vec![NodeId(0), NodeId(1), NodeId(3), NodeId(4)],
        ]),
    );
    move_requests.push(secs(125));
    sys.move_agent_at(secs(125), frag, NodeId(3));
    sys.net_change_at(secs(150), NetworkChange::HealAll);

    let mut committed = 0u64;
    let mut unavailable = 0u64;
    let mut repackaged = 0u64;
    let mut move_delays: Vec<u64> = Vec::new();
    let mut next_move = 0usize;
    let limit = secs(1200);
    while let Some((at, notes)) = sys.step_until(limit) {
        for note in notes {
            match note {
                Notification::Committed { .. } => committed += 1,
                Notification::Aborted { .. } => unavailable += 1,
                Notification::MoveCompleted { .. } if next_move < move_requests.len() => {
                    move_delays.push((at - move_requests[next_move]).micros());
                    next_move += 1;
                }
                Notification::MissingRepackaged { .. } => repackaged += 1,
                _ => {}
            }
        }
    }
    // Repackaged commits are internal, not workload service.
    committed = committed.min(submitted);

    let verdict = fragdb_graphs::analyze(&sys.history);
    MovementRow {
        policy: label,
        submitted,
        committed,
        unavailable,
        mean_move_delay_us: if move_delays.is_empty() {
            0
        } else {
            move_delays.iter().sum::<u64>() / move_delays.len() as u64
        },
        repackaged,
        messages: sys.net_stats().sent,
        fragmentwise: verdict.fragmentwise_serializable(),
        converged: sys.divergent_fragments().is_empty(),
    }
}

/// Run E7 across all four §4.4 protocols.
pub fn run(seed: u64) -> E7Report {
    E7Report {
        rows: vec![
            one_policy(
                seed,
                MovePolicy::MajorityCommit {
                    timeout: SimDuration::from_secs(8),
                },
            ),
            one_policy(
                seed,
                MovePolicy::WithData {
                    transfer_delay: SimDuration::from_secs(2),
                },
            ),
            one_policy(seed, MovePolicy::WithSeqNo),
            one_policy(seed, MovePolicy::NoPrep),
        ],
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn row<'a>(r: &'a E7Report, label: &str) -> &'a MovementRow {
        r.rows
            .iter()
            .find(|x| x.policy == label)
            .expect("policy row")
    }

    #[test]
    fn all_policies_converge() {
        let r = run(21);
        for row in &r.rows {
            assert!(row.converged, "{} diverged", row.policy);
        }
    }

    #[test]
    fn majority_loses_availability_on_the_isolated_side() {
        let r = run(22);
        let m = row(&r, "4.4.1 majority");
        assert!(
            m.unavailable > 0,
            "updates at the isolated old home must time out"
        );
        assert_eq!(m.submitted, m.committed + m.unavailable);
    }

    #[test]
    fn prepared_protocols_preserve_fragmentwise_serializability() {
        let r = run(23);
        for label in ["4.4.1 majority", "4.4.2A with-data", "4.4.2B with-seqno"] {
            assert!(
                row(&r, label).fragmentwise,
                "{label} must stay fragmentwise"
            );
        }
    }

    #[test]
    fn noprep_is_fully_available_and_repackages() {
        let r = run(24);
        let n = row(&r, "4.4.3 no-prep");
        assert_eq!(n.unavailable, 0, "no-prep never blocks");
        assert_eq!(n.committed, n.submitted);
        assert!(
            n.repackaged > 0,
            "late transactions were found and repackaged"
        );
    }

    #[test]
    fn with_seqno_waits_longer_than_with_data() {
        let r = run(25);
        let wd = row(&r, "4.4.2A with-data").mean_move_delay_us;
        let ws = row(&r, "4.4.2B with-seqno").mean_move_delay_us;
        let np = row(&r, "4.4.3 no-prep").mean_move_delay_us;
        assert!(
            ws > wd,
            "seqno waits for the heal ({ws}us) vs courier delay ({wd}us)"
        );
        assert_eq!(np, 0, "no-prep completes instantly");
    }

    #[test]
    fn report_renders() {
        let r = run(26);
        assert!(r.to_string().contains("mean move delay"));
        assert_eq!(r.rows.len(), 4);
    }
}
