//! E5 — Figures 4.3.1/4.3.2: reproducing the paper's non-serializable
//! execution with three fragments, live.
//!
//! Fragments `F1 = {a}`, `F2 = {b}`, `F3 = {c}` homed at nodes 0, 1, 2.
//! Transactions (§4.3):
//!
//! * `T1 = [(r c)(r b)(w a)]` at `A(F1)`,
//! * `T2 = [(r c)(w b)]` at `A(F2)`,
//! * `T3 = [(r c)(w c)]` at `A(F3)`,
//!
//! with the interleaving: `T2`'s write of `b` reaches node 0 before `T1`
//! reads `b` (⇒ `T2 → T1`); `T1` reads `c` before `T3`'s update arrives
//! (⇒ `T1 → T3`); `T3`'s update reaches node 1 before `T2` reads `c`
//! (⇒ `T3 → T2`). The global serialization graph has the cycle
//! `T1 → T3 → T2 → T1` (Figure 4.3.2) — yet the execution is fragmentwise
//! serializable and the replicas end mutually consistent.
//!
//! Staging: phase 1 isolates node 0 (so `T3` then `T2` run and exchange on
//! the {1,2} side); phase 2 reconnects 0–1 only while isolating node 2
//! (so `b` reaches node 0 but `c` does not); then everything heals.

use std::fmt;

use fragdb_core::{StrategyKind, Submission, System, SystemConfig};
use fragdb_model::{AgentId, FragmentCatalog, NodeId, TxnId};
use fragdb_net::{NetworkChange, Topology};
use fragdb_sim::{SimDuration, SimTime};

use crate::table::Table;

/// The report.
#[derive(Clone, Debug)]
pub struct E5Report {
    /// The three transactions' ids.
    pub t1: TxnId,
    /// T2.
    pub t2: TxnId,
    /// T3.
    pub t3: TxnId,
    /// The witness cycle found in the GSG.
    pub cycle: Option<Vec<TxnId>>,
    /// The individual paper edges.
    pub edge_t2_t1: bool,
    /// `T1 → T3`.
    pub edge_t1_t3: bool,
    /// `T3 → T2`.
    pub edge_t3_t2: bool,
    /// Fragmentwise serializability held?
    pub fragmentwise: bool,
    /// Replicas converged at the end?
    pub converged: bool,
}

impl fmt::Display for E5Report {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "E5 — the Figure 4.3.2 cycle, produced by a live execution"
        )?;
        let mut t = Table::new(["claim", "expected", "observed"]);
        t.row([
            "edge T2 -> T1".to_string(),
            "present".into(),
            yn(self.edge_t2_t1),
        ]);
        t.row([
            "edge T1 -> T3".to_string(),
            "present".into(),
            yn(self.edge_t1_t3),
        ]);
        t.row([
            "edge T3 -> T2".to_string(),
            "present".into(),
            yn(self.edge_t3_t2),
        ]);
        t.row([
            "GSG cycle".to_string(),
            "T1,T2,T3".into(),
            match &self.cycle {
                Some(c) => c
                    .iter()
                    .map(|t| t.to_string())
                    .collect::<Vec<_>>()
                    .join(" -> "),
                None => "none".into(),
            },
        ]);
        t.row([
            "fragmentwise serializable".to_string(),
            "yes".into(),
            yn(self.fragmentwise),
        ]);
        t.row([
            "mutually consistent".to_string(),
            "yes".into(),
            yn(self.converged),
        ]);
        write!(f, "{t}")
    }
}

fn yn(b: bool) -> String {
    if b { "yes" } else { "no" }.to_string()
}

fn secs(s: u64) -> SimTime {
    SimTime::from_secs(s)
}

/// Run E5.
pub fn run(seed: u64) -> E5Report {
    let mut b = FragmentCatalog::builder();
    let (f1, a_objs) = b.add_fragment("F1", 1);
    let (f2, b_objs) = b.add_fragment("F2", 1);
    let (f3, c_objs) = b.add_fragment("F3", 1);
    let catalog = b.build();
    let (a, bb, c) = (a_objs[0], b_objs[0], c_objs[0]);
    let agents = vec![
        (f1, AgentId::Node(NodeId(0)), NodeId(0)),
        (f2, AgentId::Node(NodeId(1)), NodeId(1)),
        (f3, AgentId::Node(NodeId(2)), NodeId(2)),
    ];
    let mut sys = System::build(
        Topology::full_mesh(3, SimDuration::from_millis(10)),
        catalog,
        agents,
        SystemConfig::unrestricted(seed).with_strategy(StrategyKind::Unrestricted),
    )
    .unwrap();

    // Phase 1: node 0 isolated; T3 then T2 run on the {1,2} side.
    sys.net_change_at(
        SimTime::ZERO,
        NetworkChange::Split(vec![vec![NodeId(0)], vec![NodeId(1), NodeId(2)]]),
    );
    // T3 = [(r c)(w c)] at node 2.
    sys.submit_at(
        secs(5),
        Submission::update(
            f3,
            Box::new(move |ctx| {
                let v = ctx.read_int(c, 0);
                ctx.write(c, v + 1)?;
                Ok(())
            }),
        ),
    );
    // T2 = [(r c)(w b)] at node 1, after T3's update arrived there.
    sys.submit_at(
        secs(6),
        Submission::update(
            f2,
            Box::new(move |ctx| {
                let v = ctx.read_int(c, 0);
                ctx.write(bb, v + 10)?;
                Ok(())
            }),
        ),
    );
    // Phase 2: isolate node 2 FIRST (otherwise reconnecting 0-1 would give
    // node 2 a multi-hop route to node 0 and release c), then reconnect
    // 0-1 so b reaches node 0 while c cannot.
    sys.net_change_at(secs(9), NetworkChange::LinkDown(NodeId(1), NodeId(2)));
    sys.net_change_at(secs(10), NetworkChange::LinkUp(NodeId(0), NodeId(1)));
    // T1 = [(r c)(r b)(w a)] at node 0, after b arrived (the reliable
    // layer redelivers it within one retransmission interval of the 0-1
    // link coming up), before c can (node 2 stays cut off until t=20).
    sys.submit_at(
        secs(15),
        Submission::update(
            f1,
            Box::new(move |ctx| {
                let vc = ctx.read_int(c, 0);
                let vb = ctx.read_int(bb, 0);
                ctx.write(a, vc + vb)?;
                Ok(())
            }),
        ),
    );
    // Phase 3: heal everything and drain.
    sys.net_change_at(secs(20), NetworkChange::HealAll);
    sys.run_until(secs(300));

    let t3 = TxnId::new(NodeId(2), 0);
    let t2 = TxnId::new(NodeId(1), 0);
    let t1 = TxnId::new(NodeId(0), 0);
    let gsg = fragdb_graphs::GlobalSerializationGraph::build(&sys.history);
    let verdict = fragdb_graphs::analyze(&sys.history);
    E5Report {
        t1,
        t2,
        t3,
        cycle: gsg.cycle(),
        edge_t2_t1: gsg.graph().has_edge(t2, t1),
        edge_t1_t3: gsg.graph().has_edge(t1, t3),
        edge_t3_t2: gsg.graph().has_edge(t3, t2),
        fragmentwise: verdict.fragmentwise_serializable(),
        converged: sys.divergent_fragments().is_empty(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn reproduces_the_figure_4_3_2_cycle() {
        let r = run(1);
        assert!(r.edge_t2_t1, "T2 -> T1 (b installed before T1 read it)");
        assert!(r.edge_t1_t3, "T1 -> T3 (T1 read c before T3's install)");
        assert!(r.edge_t3_t2, "T3 -> T2 (c installed before T2 read it)");
        let cycle = r.cycle.expect("the GSG must be cyclic");
        assert_eq!(cycle.len(), 3);
        for t in [r.t1, r.t2, r.t3] {
            assert!(cycle.contains(&t), "{t} missing from cycle {cycle:?}");
        }
    }

    #[test]
    fn execution_is_still_fragmentwise_serializable_and_consistent() {
        let r = run(2);
        assert!(r.fragmentwise, "§4.3's guarantee");
        assert!(r.converged, "mutual consistency");
    }

    #[test]
    fn report_renders() {
        let r = run(3);
        let s = r.to_string();
        assert!(s.contains("GSG cycle"));
        assert!(s.contains("fragmentwise"));
    }
}
