//! E4 — Figure 4.2.1: the warehouse database with an elementarily acyclic
//! read-access graph.
//!
//! The §4.2 claim: with the star-shaped RAG, warehouses keep entering
//! sales and shipments *even during communication failures*, and global
//! serializability is never violated — the central site always gets a
//! consistent view. We sweep the disruption level and verify both halves
//! of the claim at every level.

use std::fmt;

use fragdb_core::{Notification, System, SystemConfig};
use fragdb_model::NodeId;
use fragdb_net::Topology;
use fragdb_sim::{SimDuration, SimRng, SimTime};
use fragdb_workloads::{arrivals, partitions, WarehouseConfig, WarehouseDriver, WarehouseSchema};

use crate::table::{pct, Table};

/// Measured outcome at one disruption level.
#[derive(Clone, Debug)]
pub struct WarehouseSample {
    /// Fraction of time partitioned.
    pub disruption: f64,
    /// Warehouse operations (sales + shipments) submitted.
    pub submitted: u64,
    /// Warehouse operations served.
    pub served: u64,
    /// Central scans run.
    pub scans: u64,
    /// Read-access graph elementarily acyclic? (schema property)
    pub rag_ok: bool,
    /// History globally serializable? (§4.2 theorem)
    pub serializable: bool,
    /// Replicas converged after drain?
    pub converged: bool,
}

/// The report.
#[derive(Clone, Debug)]
pub struct E4Report {
    /// One sample per disruption level.
    pub samples: Vec<WarehouseSample>,
}

impl fmt::Display for E4Report {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "E4 — warehouse (Figure 4.2.1): star RAG, availability + global serializability"
        )?;
        let mut t = Table::new([
            "disruption",
            "warehouse availability",
            "scans",
            "RAG elem. acyclic",
            "globally serializable",
            "converged",
        ]);
        for s in &self.samples {
            t.row([
                format!("{:.0}%", s.disruption * 100.0),
                pct(s.served, s.submitted),
                s.scans.to_string(),
                yn(s.rag_ok),
                yn(s.serializable),
                yn(s.converged),
            ]);
        }
        write!(f, "{t}")
    }
}

fn yn(b: bool) -> String {
    if b { "yes" } else { "NO" }.to_string()
}

fn one_level(seed: u64, disruption: f64) -> WarehouseSample {
    let k = 4u32;
    let horizon = SimTime::from_secs(300);
    let cfg = WarehouseConfig {
        warehouses: k,
        products: 3,
        central: NodeId(0),
        warehouse_homes: (1..=k).map(NodeId).collect(),
        reorder_below: 20,
    };
    let (catalog, schema, agents) = WarehouseSchema::build(&cfg);
    let rag_ok =
        fragdb_graphs::ReadAccessGraph::from_decls(&schema.decls()).is_elementarily_acyclic();
    let strategy = schema.strategy();
    let mut sys = System::build(
        Topology::full_mesh(k + 1, SimDuration::from_millis(10)),
        catalog,
        agents,
        SystemConfig::unrestricted(seed).with_strategy(strategy),
    )
    .unwrap();
    let wh = WarehouseDriver::new(schema, cfg);

    let mut rng = SimRng::new(seed ^ 0xE4);
    let sched = partitions::random_alternating(
        &mut rng,
        k + 1,
        SimDuration::from_secs(20),
        disruption,
        horizon,
    );
    sys.schedule_partitions(&sched);

    // Initial stock.
    let mut submitted = 0u64;
    for w in 0..k {
        for p in 0..3 {
            sys.submit_at(SimTime::from_secs(1), wh.shipment(w, p, 500));
            submitted += 1;
        }
    }
    // Poisson sales at each warehouse.
    for w in 0..k {
        let times = arrivals::poisson(&mut rng, 0.5, SimTime::from_secs(2), horizon);
        for t in times {
            let p = rng.gen_range(0..3u32);
            sys.submit_at(t, wh.sale(w, p, 1));
            submitted += 1;
        }
    }
    // Periodic central scans.
    let mut scans = 0u64;
    for t in arrivals::periodic(SimDuration::from_secs(30), SimTime::ZERO, horizon) {
        sys.submit_at(t, wh.central_scan());
        scans += 1;
    }

    let notes = sys.run_until(horizon + SimDuration::from_secs(300));
    let committed = notes
        .iter()
        .filter(|n| matches!(n, Notification::Committed { .. }))
        .count() as u64;
    let served = committed - scans.min(committed);
    let verdict = fragdb_graphs::analyze(&sys.history);
    WarehouseSample {
        disruption,
        submitted,
        served,
        scans,
        rag_ok,
        serializable: verdict.globally_serializable,
        converged: sys.divergent_fragments().is_empty(),
    }
}

/// Run E4 over a disruption sweep.
pub fn run(seed: u64, levels: &[f64]) -> E4Report {
    E4Report {
        samples: levels.iter().map(|&d| one_level(seed, d)).collect(),
    }
}

/// Default disruption levels.
pub fn default_levels() -> Vec<f64> {
    vec![0.0, 0.25, 0.5]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn warehouses_fully_available_and_serializable_at_every_level() {
        let r = run(11, &[0.0, 0.4]);
        for s in &r.samples {
            assert!(s.rag_ok, "Figure 4.2.1 star is elementarily acyclic");
            assert_eq!(
                s.served, s.submitted,
                "warehouse ops are never refused (disruption {})",
                s.disruption
            );
            assert!(
                s.serializable,
                "§4.2 theorem must hold (disruption {})",
                s.disruption
            );
            assert!(s.converged);
        }
    }

    #[test]
    fn report_renders() {
        let r = run(12, &[0.2]);
        assert!(r.to_string().contains("globally serializable"));
    }
}
