//! E10 — §3.2: reliable delivery *earned* under faults and crashes.
//!
//! The paper requires: (1) all messages are eventually delivered; (2)
//! messages broadcast by one node are processed at all other nodes in the
//! order sent. The seed experiment checked this against partitions only;
//! here the full system runs over links that **drop**, **duplicate**, and
//! **reorder** packets (per-link fault plans sampled from the seeded RNG),
//! and one level adds a **crash/recovery cycle**: a node loses all
//! volatile state mid-run, replays its WAL, and catches up by anti-entropy.
//!
//! Per fault level we report what the reliable layer had to do to make
//! §3.2 true — retransmissions, receiver-side duplicate drops — plus the
//! measured recovery latency and the two end-to-end verdicts: replicas
//! mutually consistent at quiescence, history fragmentwise serializable.

use std::fmt;

use fragdb_core::{Notification, Submission, System, SystemConfig};
use fragdb_model::{AgentId, FragmentCatalog, FragmentId, NodeId, ObjectId, UserId};
use fragdb_net::{FaultConfig, FaultPlan, Topology};
use fragdb_sim::{SimDuration, SimTime};
use fragdb_workloads::arrivals;

use crate::table::{dur, Table};

/// One fault-level sample.
#[derive(Clone, Debug)]
pub struct FaultSample {
    /// Level label ("clean", "drop 20%", …).
    pub label: String,
    /// Drop probability per transmission attempt.
    pub drop: f64,
    /// Duplication probability per transmission attempt.
    pub dup: f64,
    /// Reordering jitter bound (ms).
    pub jitter_ms: u64,
    /// Crash/recovery cycles injected.
    pub crashes: u64,
    /// Updates committed.
    pub committed: u64,
    /// Updates aborted (home down).
    pub unavailable: u64,
    /// Data-packet retransmissions the reliable layer needed.
    pub retransmissions: u64,
    /// Duplicate/stale data packets dropped at receivers.
    pub dup_drops: u64,
    /// Transmission attempts lost to injected faults.
    pub fault_dropped: u64,
    /// Median crash-recovery latency (µs); 0 when no crash was injected.
    pub recovery_p50_us: u64,
    /// Replicas mutually consistent at quiescence?
    pub converged: bool,
    /// History fragmentwise serializable?
    pub fragmentwise: bool,
}

/// The report.
#[derive(Clone, Debug)]
pub struct E10Report {
    /// One sample per fault level.
    pub samples: Vec<FaultSample>,
}

impl fmt::Display for E10Report {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "E10 — reliable broadcast under drop/duplicate/reorder/crash (§3.2)"
        )?;
        let mut t = Table::new([
            "faults",
            "committed",
            "unavailable",
            "retransmits",
            "dup drops",
            "recovery p50",
            "converged",
            "fragmentwise",
        ]);
        for s in &self.samples {
            t.row([
                s.label.clone(),
                s.committed.to_string(),
                s.unavailable.to_string(),
                s.retransmissions.to_string(),
                s.dup_drops.to_string(),
                if s.crashes > 0 {
                    dur(s.recovery_p50_us)
                } else {
                    "-".to_string()
                },
                if s.converged { "yes" } else { "NO" }.to_string(),
                if s.fragmentwise { "yes" } else { "NO" }.to_string(),
            ]);
        }
        write!(f, "{t}")
    }
}

/// One fault level to sweep.
#[derive(Clone, Debug)]
pub struct FaultLevel {
    /// Display label.
    pub label: &'static str,
    /// The per-link plan, applied uniformly.
    pub plan: FaultPlan,
    /// Inject a crash/recovery cycle on a non-agent node?
    pub crash: bool,
}

/// The default sweep: clean, loss, duplication, reorder, everything+crash.
pub fn default_levels() -> Vec<FaultLevel> {
    vec![
        FaultLevel {
            label: "clean",
            plan: FaultPlan::NONE,
            crash: false,
        },
        FaultLevel {
            label: "drop 20%",
            plan: FaultPlan::lossy(0.2),
            crash: false,
        },
        FaultLevel {
            label: "dup 20%",
            plan: FaultPlan::new(0.0, 0.2, SimDuration::ZERO),
            crash: false,
        },
        FaultLevel {
            label: "jitter 50ms",
            plan: FaultPlan::new(0.0, 0.0, SimDuration::from_millis(50)),
            crash: false,
        },
        FaultLevel {
            label: "all + crash",
            plan: FaultPlan::new(0.15, 0.15, SimDuration::from_millis(30)),
            crash: true,
        },
    ]
}

fn secs(s: u64) -> SimTime {
    SimTime::from_secs(s)
}

fn one_level(seed: u64, level: &FaultLevel) -> FaultSample {
    let n = 5u32;
    let horizon = secs(120);

    // One fragment per node 0..4; node 4 is nobody's home so a crash there
    // exercises pure replica recovery (the agent side is covered by E7).
    let mut b = FragmentCatalog::builder();
    let frags: Vec<(FragmentId, Vec<ObjectId>)> = (0..4)
        .map(|i| {
            let (f, objs) = b.add_fragment(format!("F{i}"), 3);
            (f, objs)
        })
        .collect();
    let catalog = b.build();
    let agents = frags
        .iter()
        .enumerate()
        .map(|(i, &(f, _))| (f, AgentId::User(UserId(i as u32)), NodeId(i as u32)))
        .collect();

    let mut sys = System::build(
        Topology::full_mesh(n, SimDuration::from_millis(10)),
        catalog,
        agents,
        SystemConfig::unrestricted(seed).with_faults(FaultConfig::uniform(level.plan)),
    )
    .unwrap();

    // Poisson update streams on every fragment (counter increments).
    let mut submitted = 0u64;
    {
        let mut rng = sys.engine.rng.fork(0xE10);
        for (f, objs) in &frags {
            let (f, objs) = (*f, objs.clone());
            for (k, at) in arrivals::poisson(&mut rng, 0.5, SimTime::ZERO, horizon)
                .into_iter()
                .enumerate()
            {
                let obj = objs[k % objs.len()];
                sys.submit_at(
                    at,
                    Submission::update(
                        f,
                        Box::new(move |ctx| {
                            let v = ctx.read_int(obj, 0);
                            ctx.write(obj, v + 1)?;
                            Ok(())
                        }),
                    ),
                );
                submitted += 1;
            }
        }
    }

    let mut crashes = 0u64;
    if level.crash {
        // Node 4 (no agent) dies mid-run and restarts 30s later.
        sys.crash_at(secs(40), NodeId(4));
        sys.recover_at(secs(70), NodeId(4));
        crashes = 1;
    }

    let mut committed = 0u64;
    let mut unavailable = 0u64;
    let limit = horizon + SimDuration::from_secs(300);
    while let Some((_, notes)) = sys.step_until(limit) {
        for note in notes {
            match note {
                Notification::Committed { .. } => committed += 1,
                Notification::Aborted { .. } => unavailable += 1,
                _ => {}
            }
        }
    }
    debug_assert_eq!(submitted, committed + unavailable);

    let stats = sys.net_stats();
    let verdict = fragdb_graphs::analyze(&sys.history);
    FaultSample {
        label: level.label.to_string(),
        drop: level.plan.drop,
        dup: level.plan.dup,
        jitter_ms: level.plan.jitter.micros() / 1_000,
        crashes,
        committed,
        unavailable,
        retransmissions: stats.retransmissions,
        dup_drops: stats.dup_dropped,
        fault_dropped: stats.fault_dropped,
        recovery_p50_us: sys
            .engine
            .metrics
            .histogram("latency.recovery")
            .and_then(|h| h.percentile(50.0))
            .unwrap_or(0),
        converged: sys.divergent_fragments().is_empty(),
        fragmentwise: verdict.fragmentwise_serializable(),
    }
}

/// Run E10 over the given fault levels.
pub fn run(seed: u64, levels: &[FaultLevel]) -> E10Report {
    E10Report {
        samples: levels.iter().map(|l| one_level(seed, l)).collect(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn every_level_converges_and_stays_fragmentwise() {
        let r = run(0x10, &default_levels());
        for s in &r.samples {
            assert!(s.converged, "{}: replicas diverged", s.label);
            assert!(s.fragmentwise, "{}: history not fragmentwise", s.label);
            assert!(s.committed > 0, "{}: nothing committed", s.label);
        }
    }

    #[test]
    fn loss_forces_retransmissions_and_dup_faults_are_absorbed() {
        let r = run(0x11, &default_levels());
        let by = |l: &str| {
            r.samples
                .iter()
                .find(|s| s.label == l)
                .expect("level present")
                .clone()
        };
        let clean = by("clean");
        assert_eq!(clean.retransmissions, 0, "clean links never retransmit");
        assert_eq!(clean.fault_dropped, 0);
        let lossy = by("drop 20%");
        assert!(lossy.retransmissions > 0, "loss must cause retries");
        assert!(lossy.fault_dropped > 0);
        let dups = by("dup 20%");
        assert!(dups.dup_drops > 0, "duplicate copies must be dropped");
    }

    #[test]
    fn crash_level_measures_recovery_and_still_converges() {
        let r = run(0x12, &default_levels());
        let s = r
            .samples
            .iter()
            .find(|s| s.crashes > 0)
            .expect("a crash level");
        assert!(s.converged, "crashed node must catch back up");
        assert!(
            s.unavailable == 0,
            "node 4 homes no agent; no submission should abort"
        );
    }

    #[test]
    fn same_seed_same_sample() {
        let a = run(0x13, &default_levels()[4..5]);
        let b = run(0x13, &default_levels()[4..5]);
        assert_eq!(a.samples[0].committed, b.samples[0].committed);
        assert_eq!(a.samples[0].retransmissions, b.samples[0].retransmissions);
        assert_eq!(a.samples[0].dup_drops, b.samples[0].dup_drops);
        assert_eq!(a.samples[0].recovery_p50_us, b.samples[0].recovery_p50_us);
    }

    #[test]
    fn report_renders() {
        let r = run(0x14, &default_levels()[0..1]);
        assert!(r.to_string().contains("retransmits"));
    }
}
