//! E10 — §3.2: the reliable FIFO broadcast under fault injection.
//!
//! The paper requires: (1) all messages are eventually delivered; (2)
//! messages broadcast by one node are processed at all other nodes in the
//! order sent. We broadcast continuously while randomly partitioning the
//! network, then verify both requirements exactly and measure how the
//! delivery latency distribution stretches with the disruption level.

use std::collections::BTreeMap;
use std::fmt;

use fragdb_model::NodeId;
use fragdb_net::{BroadcastLayer, Delivery, NetworkChange, Topology, Transport};
use fragdb_sim::{Engine, SimDuration, SimRng, SimTime};
use fragdb_workloads::{arrivals, partitions};

use crate::table::{dur, Table};

/// One disruption-level sample.
#[derive(Clone, Debug)]
pub struct BroadcastSample {
    /// Fraction of time partitioned.
    pub disruption: f64,
    /// Broadcasts sent.
    pub sent: u64,
    /// `(receiver, message)` deliveries expected (`sent × (n-1)`).
    pub expected_deliveries: u64,
    /// Deliveries that arrived.
    pub delivered: u64,
    /// FIFO violations observed (must be 0).
    pub fifo_violations: u64,
    /// Median delivery latency (µs).
    pub p50_us: u64,
    /// 99th-percentile delivery latency (µs).
    pub p99_us: u64,
}

/// The report.
#[derive(Clone, Debug)]
pub struct E10Report {
    /// One sample per disruption level.
    pub samples: Vec<BroadcastSample>,
}

impl fmt::Display for E10Report {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "E10 — reliable FIFO broadcast under partitions (§3.2)")?;
        let mut t = Table::new([
            "disruption",
            "sent",
            "delivered",
            "lost",
            "FIFO violations",
            "p50 latency",
            "p99 latency",
        ]);
        for s in &self.samples {
            t.row([
                format!("{:.0}%", s.disruption * 100.0),
                s.sent.to_string(),
                format!("{}/{}", s.delivered, s.expected_deliveries),
                (s.expected_deliveries - s.delivered).to_string(),
                s.fifo_violations.to_string(),
                dur(s.p50_us),
                dur(s.p99_us),
            ]);
        }
        write!(f, "{t}")
    }
}

/// Events of the bespoke broadcast simulation.
enum Bev {
    Send { from: NodeId, msg_id: u64 },
    Deliver(Delivery<(u64, u64, SimTime)>), // (bseq, msg_id, sent_at)
    Net(NetworkChange),
}

fn one_level(seed: u64, disruption: f64) -> BroadcastSample {
    let n = 5u32;
    let horizon = SimTime::from_secs(200);
    let mut rng = SimRng::new(seed);
    let mut engine: Engine<Bev> = Engine::new(seed);
    let mut transport: Transport<(u64, u64, SimTime)> =
        Transport::new(Topology::full_mesh(n, SimDuration::from_millis(10)));
    let mut bcast: BroadcastLayer<(u64, SimTime)> = BroadcastLayer::new();

    let sched = partitions::random_alternating(
        &mut rng,
        n,
        SimDuration::from_secs(15),
        disruption,
        horizon,
    );
    for (at, change) in sched.events() {
        engine.schedule_at(*at, Bev::Net(change.clone()));
    }
    let mut sent = 0u64;
    let mut msg_id = 0u64;
    for node in 0..n {
        for t in arrivals::poisson(&mut rng, 1.0, SimTime::ZERO, horizon) {
            engine.schedule_at(
                t,
                Bev::Send {
                    from: NodeId(node),
                    msg_id,
                },
            );
            msg_id += 1;
            sent += 1;
        }
    }

    // Per (receiver, sender): the sequence of processed message ids, to
    // check FIFO; plus per-message send times for latency.
    let mut processed: BTreeMap<(NodeId, NodeId), Vec<u64>> = BTreeMap::new();
    let mut sent_order: BTreeMap<NodeId, Vec<u64>> = BTreeMap::new();
    let mut latencies = fragdb_sim::Histogram::new();
    let mut delivered = 0u64;

    while let Some((now, ev)) = engine.pop() {
        match ev {
            Bev::Send { from, msg_id } => {
                let bseq = bcast.stamp(from);
                sent_order.entry(from).or_default().push(msg_id);
                for i in 0..n {
                    let to = NodeId(i);
                    if to == from {
                        continue;
                    }
                    if let Some((at, d)) = transport.send(now, from, to, (bseq, msg_id, now)) {
                        engine.schedule_at(at, Bev::Deliver(d));
                    }
                }
            }
            Bev::Deliver(d) => {
                let (bseq, msg_id, sent_at) = d.msg;
                for (_, (mid, s_at)) in bcast.accept(d.to, d.from, bseq, (msg_id, sent_at)) {
                    processed.entry((d.to, d.from)).or_default().push(mid);
                    latencies.record((now - s_at).micros());
                    delivered += 1;
                }
            }
            Bev::Net(change) => {
                for (at, d) in transport.apply_change(now, &change) {
                    engine.schedule_at(at, Bev::Deliver(d));
                }
            }
        }
    }

    // FIFO check: at every receiver, the processed ids from each sender
    // must be exactly the sender's send order.
    let mut fifo_violations = 0u64;
    for ((_, sender), ids) in &processed {
        let expected = &sent_order[sender];
        if ids != expected {
            fifo_violations += 1;
        }
    }

    BroadcastSample {
        disruption,
        sent,
        expected_deliveries: sent * (n as u64 - 1),
        delivered,
        fifo_violations,
        p50_us: latencies.percentile(50.0).unwrap_or(0),
        p99_us: latencies.percentile(99.0).unwrap_or(0),
    }
}

/// Run E10 over disruption levels.
pub fn run(seed: u64, levels: &[f64]) -> E10Report {
    E10Report {
        samples: levels.iter().map(|&d| one_level(seed, d)).collect(),
    }
}

/// Default levels.
pub fn default_levels() -> Vec<f64> {
    vec![0.0, 0.25, 0.5, 0.75]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn all_messages_delivered_in_fifo_order_at_every_level() {
        let r = run(0x10, &[0.0, 0.5]);
        for s in &r.samples {
            assert_eq!(
                s.delivered, s.expected_deliveries,
                "eventual delivery must be total at disruption {}",
                s.disruption
            );
            assert_eq!(s.fifo_violations, 0, "per-sender FIFO must hold");
        }
    }

    #[test]
    fn latency_tail_grows_with_disruption() {
        let r = run(0x11, &[0.0, 0.6]);
        let calm = &r.samples[0];
        let stormy = &r.samples[1];
        assert!(
            stormy.p99_us > calm.p99_us * 10,
            "partitions must stretch the tail: calm p99={} stormy p99={}",
            calm.p99_us,
            stormy.p99_us
        );
        // The median under no disruption is the one-hop link delay.
        assert!(calm.p50_us >= 9_000 && calm.p50_us <= 12_000);
    }

    #[test]
    fn report_renders() {
        let r = run(0x12, &[0.2]);
        assert!(r.to_string().contains("FIFO violations"));
    }
}
