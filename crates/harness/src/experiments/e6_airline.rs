//! E6 — Figure 4.3.3 and the §4.3 airline schedule.
//!
//! Two parts:
//!
//! 1. **Literal replay**: the paper's 10-action schedule is reconstructed
//!    as an executed history and fed to the checkers — it must come out
//!    fragmentwise serializable.
//! 2. **Live run**: customers request seats during a partition split so
//!    that each flight agent's scan sees one customer's request "early"
//!    and the other's "late" — producing a genuine global serialization
//!    cycle `C1 → F1 → C2 → F2 → C1` — while overbooking remains
//!    impossible and availability for request entry is total.

use std::fmt;

use fragdb_core::{Notification, System, SystemConfig};
use fragdb_model::{History, NodeId, OpKind, TxnId, TxnType};
use fragdb_net::{NetworkChange, Topology};
use fragdb_sim::{SimDuration, SimTime};
use fragdb_workloads::{AirlineDriver, AirlineSchema};

use crate::table::Table;

/// The report.
#[derive(Clone, Debug)]
pub struct E6Report {
    /// Literal replay: globally serializable? (paper: no)
    pub replay_globally_serializable: bool,
    /// Literal replay: fragmentwise serializable? (paper: yes)
    pub replay_fragmentwise: bool,
    /// Live run: requests served during the partition.
    pub live_requests_served: u64,
    /// Live run: total requests submitted.
    pub live_requests_submitted: u64,
    /// Live run: GSG cyclic (the availability price §4.3 accepts)?
    pub live_gsg_cyclic: bool,
    /// Live run: fragmentwise serializable?
    pub live_fragmentwise: bool,
    /// Live run: max seats ever granted on any flight.
    pub live_max_granted: i64,
    /// Flight capacity in the live run.
    pub capacity: i64,
    /// Live run converged?
    pub live_converged: bool,
}

impl fmt::Display for E6Report {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "E6 — airline reservations (Figure 4.3.3)")?;
        let mut t = Table::new(["claim", "expected", "observed"]);
        t.row([
            "paper schedule (completed): globally serializable",
            "no",
            if self.replay_globally_serializable {
                "yes"
            } else {
                "no"
            },
        ]);
        t.row([
            "paper schedule: fragmentwise serializable",
            "yes",
            if self.replay_fragmentwise {
                "yes"
            } else {
                "no"
            },
        ]);
        t.row([
            "live: request availability",
            "100%",
            if self.live_requests_served == self.live_requests_submitted {
                "100%"
            } else {
                "degraded"
            },
        ]);
        t.row([
            "live: GSG has a cycle",
            "yes",
            if self.live_gsg_cyclic { "yes" } else { "no" },
        ]);
        t.row([
            "live: fragmentwise serializable",
            "yes",
            if self.live_fragmentwise { "yes" } else { "no" },
        ]);
        let over = format!("{} / capacity {}", self.live_max_granted, self.capacity);
        t.row(["live: seats granted (no overbooking)", "<= capacity", &over]);
        t.row([
            "live: mutually consistent",
            "yes",
            if self.live_converged { "yes" } else { "no" },
        ]);
        write!(f, "{t}")
    }
}

/// Part 1: the paper's §4.3 schedule as a history.
///
/// Objects: `c11 c12 ∈ C1`, `c21 c22 ∈ C2`, `f11 f21 ∈ F1`, `f12 f22 ∈ F2`.
/// Agents at four different nodes. The paper prints:
///
/// ```text
/// (T_F2, r, c12) (T_F2, w, f12)
/// (T_C1, w, c11)
/// (T_F1, r, c11) (T_F1, w, f11) (T_F1, r, c21) (T_F1, w, f21)
/// (T_C2, w, c22)
/// (T_F2, r, c22) (T_F2, w, f22)
/// ```
///
/// **Reproduction note** (recorded in EXPERIMENTS.md): taken to the
/// letter, that sequence never writes `c12` or `c21`, and is then
/// conflict-*serializable* (order `T_C1, T_F1, T_C2, T_F2` works). The
/// paper's non-serializability claim — and its own Figure 4.3.3, where
/// each flight reads both customers — presumes each customer's request
/// transaction also sets the other flight's entry. We complete the
/// schedule that way (`T_C1` writes `c11, c12`; `T_C2` writes `c21, c22`)
/// while keeping the printed interleaving; the cycle
/// `T_F2 → T_C1 → T_F1 → T_C2 → T_F2` then appears exactly as claimed.
pub fn replay_paper_schedule() -> History {
    use fragdb_model::{FragmentId, ObjectId};
    let mut h = History::new();
    let (n_c1, n_c2, n_f1, n_f2) = (NodeId(0), NodeId(1), NodeId(2), NodeId(3));
    let (c1, c2, f1, f2) = (FragmentId(0), FragmentId(1), FragmentId(2), FragmentId(3));
    let (c11, c12, c21, c22) = (ObjectId(0), ObjectId(1), ObjectId(2), ObjectId(3));
    let (f11, f21, f12, f22) = (ObjectId(4), ObjectId(5), ObjectId(6), ObjectId(7));
    let t_c1 = TxnId::new(n_c1, 0);
    let t_c2 = TxnId::new(n_c2, 0);
    let t_f1 = TxnId::new(n_f1, 0);
    let t_f2 = TxnId::new(n_f2, 0);

    let mut t = 0u64;
    let mut at = || {
        t += 1;
        SimTime(t)
    };
    // (T_F2, r, c12): customer 1's request not yet visible at F2's node.
    h.record_local(n_f2, t_f2, TxnType::Update(f2), OpKind::Read, c12, at());
    h.record_local(n_f2, t_f2, TxnType::Update(f2), OpKind::Write, f12, at());
    // T_C1 writes c11 and c12 at customer 1's node; installed at F1's node.
    h.record_local(n_c1, t_c1, TxnType::Update(c1), OpKind::Write, c11, at());
    h.record_local(n_c1, t_c1, TxnType::Update(c1), OpKind::Write, c12, at());
    h.record_install(n_f1, t_c1, TxnType::Update(c1), c11, at());
    h.record_install(n_f1, t_c1, TxnType::Update(c1), c12, at());
    // T_F1 runs: sees c11, grants f11; c21 not yet visible.
    h.record_local(n_f1, t_f1, TxnType::Update(f1), OpKind::Read, c11, at());
    h.record_local(n_f1, t_f1, TxnType::Update(f1), OpKind::Write, f11, at());
    h.record_local(n_f1, t_f1, TxnType::Update(f1), OpKind::Read, c21, at());
    h.record_local(n_f1, t_f1, TxnType::Update(f1), OpKind::Write, f21, at());
    // T_C2 writes c21 and c22; installed at F2's node.
    h.record_local(n_c2, t_c2, TxnType::Update(c2), OpKind::Write, c21, at());
    h.record_local(n_c2, t_c2, TxnType::Update(c2), OpKind::Write, c22, at());
    h.record_install(n_f2, t_c2, TxnType::Update(c2), c21, at());
    h.record_install(n_f2, t_c2, TxnType::Update(c2), c22, at());
    // T_F2 resumes: sees c22, grants f22.
    h.record_local(n_f2, t_f2, TxnType::Update(f2), OpKind::Read, c22, at());
    h.record_local(n_f2, t_f2, TxnType::Update(f2), OpKind::Write, f22, at());
    // Remaining installs so every update reaches every interested node.
    h.record_install(n_f2, t_c1, TxnType::Update(c1), c11, at());
    h.record_install(n_f2, t_c1, TxnType::Update(c1), c12, at());
    h.record_install(n_f1, t_c2, TxnType::Update(c2), c21, at());
    h.record_install(n_f1, t_c2, TxnType::Update(c2), c22, at());
    h
}

/// Part 2: the live run that produces the four-transaction cycle.
fn live_run(seed: u64) -> (System, AirlineDriver, u64, u64) {
    let capacity = 10;
    let (catalog, schema, agents) = AirlineSchema::build(
        2,
        2,
        capacity,
        &[NodeId(0), NodeId(1)],
        &[NodeId(2), NodeId(3)],
    );
    let mut sys = System::build(
        Topology::full_mesh(4, SimDuration::from_millis(10)),
        catalog,
        agents,
        SystemConfig::unrestricted(seed),
    )
    .unwrap();
    let air = AirlineDriver::new(schema);

    // Split so each flight agent sees exactly one customer's requests:
    // {C1@0, F1@2} | {C2@1, F2@3}.
    sys.net_change_at(
        SimTime::ZERO,
        NetworkChange::Split(vec![vec![NodeId(0), NodeId(2)], vec![NodeId(1), NodeId(3)]]),
    );
    // Each customer requests seats on BOTH flights, in one transaction —
    // that is what threads the serialization cycle through the customers.
    sys.submit_at(
        SimTime::from_secs(1),
        air.request_many(0, vec![(0, 2), (1, 2)]),
    );
    sys.submit_at(
        SimTime::from_secs(1),
        air.request_many(1, vec![(0, 3), (1, 3)]),
    );
    // Scans during the partition: F1 sees only C1, F2 only C2.
    sys.submit_at(SimTime::from_secs(5), air.flight_scan(0));
    sys.submit_at(SimTime::from_secs(5), air.flight_scan(1));
    let notes = sys.run_until(SimTime::from_secs(20));
    let served = notes
        .iter()
        .filter(|n| {
            matches!(n, Notification::Committed { fragment, .. }
            if air.schema.customer.contains(fragment))
        })
        .count() as u64;
    // Heal; final scans grant the rest.
    sys.net_change_at(SimTime::from_secs(30), NetworkChange::HealAll);
    sys.submit_at(SimTime::from_secs(40), air.flight_scan(0));
    sys.submit_at(SimTime::from_secs(40), air.flight_scan(1));
    sys.run_until(SimTime::from_secs(300));
    (sys, air, served, 2)
}

/// Run E6.
pub fn run(seed: u64) -> E6Report {
    let replay = replay_paper_schedule();
    let replay_verdict = fragdb_graphs::analyze(&replay);

    let (sys, air, served, submitted) = live_run(seed);
    let live_verdict = fragdb_graphs::analyze(&sys.history);
    let capacity = air.schema.capacity;
    let max_granted = (0..2)
        .map(|j| air.seats_reserved(&sys, NodeId(2), j))
        .max()
        .unwrap_or(0);

    E6Report {
        replay_globally_serializable: replay_verdict.globally_serializable,
        replay_fragmentwise: replay_verdict.fragmentwise_serializable(),
        live_requests_served: served,
        live_requests_submitted: submitted,
        live_gsg_cyclic: !live_verdict.globally_serializable,
        live_fragmentwise: live_verdict.fragmentwise_serializable(),
        live_max_granted: max_granted,
        capacity,
        live_converged: sys.divergent_fragments().is_empty(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_schedule_is_fragmentwise_but_not_globally_serializable() {
        let r = run(1);
        assert!(r.replay_fragmentwise);
        assert!(
            !r.replay_globally_serializable,
            "the completed §4.3 schedule must be non-serializable"
        );
    }

    #[test]
    fn live_run_keeps_requests_available_and_never_overbooks() {
        let r = run(2);
        assert_eq!(
            r.live_requests_served, r.live_requests_submitted,
            "customers enter requests regardless of the partition"
        );
        assert!(r.live_max_granted <= r.capacity, "no overbooking, ever");
        assert!(r.live_max_granted > 0, "grants did happen");
        assert!(r.live_converged);
    }

    #[test]
    fn live_run_is_fragmentwise_but_not_globally_serializable() {
        let r = run(3);
        assert!(
            r.live_gsg_cyclic,
            "the partition timing creates the 4-cycle"
        );
        assert!(r.live_fragmentwise, "§4.3's guarantee still holds");
    }

    #[test]
    fn report_renders() {
        let r = run(4);
        assert!(r.to_string().contains("overbooking"));
    }
}
