//! Shared/exclusive lock manager.
//!
//! Used by the most conservative control option (§4.1: "fixed agents; read
//! locks"), where a transaction must hold read locks at the home nodes of
//! every fragment it reads. Grants are FIFO-fair: a request never overtakes
//! an earlier incompatible request, so writers cannot be starved by a
//! stream of readers.
//!
//! Deadlocks are detected eagerly: on every enqueue, a waits-for graph is
//! built (waiter → holders and waiter → queued-ahead conflicting requests)
//! and if the new request closes a cycle it is rejected with
//! [`LockOutcome::Deadlock`] — the caller aborts and retries that
//! transaction.

use std::collections::{BTreeMap, BTreeSet, VecDeque};

use fragdb_model::{ObjectId, TxnId};

/// Lock mode.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum LockMode {
    /// Shared (read) lock: compatible with other shared locks.
    Shared,
    /// Exclusive (write) lock: compatible with nothing.
    Exclusive,
}

impl LockMode {
    fn compatible(self, other: LockMode) -> bool {
        matches!((self, other), (LockMode::Shared, LockMode::Shared))
    }
}

/// Result of an acquire call.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum LockOutcome {
    /// The lock is held; proceed.
    Granted,
    /// The request is queued; the caller blocks until a release grants it.
    Waiting,
    /// Granting would (eventually) deadlock; the request was not enqueued.
    Deadlock,
}

#[derive(Debug, Default)]
struct LockSlot {
    holders: Vec<(TxnId, LockMode)>,
    queue: VecDeque<(TxnId, LockMode)>,
}

impl LockSlot {
    fn held_by(&self, txn: TxnId) -> Option<LockMode> {
        self.holders
            .iter()
            .find(|(t, _)| *t == txn)
            .map(|(_, m)| *m)
    }

    /// Can `(txn, mode)` be granted right now, respecting FIFO fairness?
    fn grantable(&self, txn: TxnId, mode: LockMode) -> bool {
        let conflicts_with_holders = self
            .holders
            .iter()
            .any(|(t, m)| *t != txn && !mode.compatible(*m));
        if conflicts_with_holders {
            return false;
        }
        // FIFO: an incompatible request queued ahead blocks us.
        let blocked_by_queue = self
            .queue
            .iter()
            .any(|(t, m)| *t != txn && (!mode.compatible(*m) || !m.compatible(mode)));
        !blocked_by_queue
    }
}

/// The lock table for one node (or, for §4.1, the logical global table).
#[derive(Debug, Default)]
pub struct LockManager {
    table: BTreeMap<ObjectId, LockSlot>,
    /// Objects held per transaction, for O(holdings) release.
    held: BTreeMap<TxnId, BTreeSet<ObjectId>>,
    /// Objects a transaction is queued on (at most one queued request per
    /// txn per object).
    waiting: BTreeMap<TxnId, BTreeSet<ObjectId>>,
}

impl LockManager {
    /// Empty lock table.
    pub fn new() -> Self {
        LockManager::default()
    }

    /// Request `mode` on `object` for `txn`.
    ///
    /// Re-requesting a lock already held in the same or a stronger mode is
    /// granted idempotently. An upgrade (`Shared` → `Exclusive`) is granted
    /// immediately iff `txn` is the sole holder; otherwise it queues like
    /// any other request (and may be refused as a deadlock).
    pub fn acquire(&mut self, txn: TxnId, object: ObjectId, mode: LockMode) -> LockOutcome {
        let slot = self.table.entry(object).or_default();
        if let Some(held) = slot.held_by(txn) {
            match (held, mode) {
                (LockMode::Exclusive, _) | (LockMode::Shared, LockMode::Shared) => {
                    return LockOutcome::Granted;
                }
                (LockMode::Shared, LockMode::Exclusive) => {
                    if slot.holders.len() == 1 {
                        slot.holders[0].1 = LockMode::Exclusive;
                        return LockOutcome::Granted;
                    }
                    // fall through to queueing the upgrade
                }
            }
        }
        if slot.grantable(txn, mode) {
            // Upgrades replace the existing holder entry.
            slot.holders.retain(|(t, _)| *t != txn);
            slot.holders.push((txn, mode));
            self.held.entry(txn).or_default().insert(object);
            return LockOutcome::Granted;
        }
        // Tentatively enqueue, then check for a deadlock cycle through txn.
        slot.queue.push_back((txn, mode));
        if self.creates_cycle(txn) {
            let slot = self.table.get_mut(&object).expect("slot exists");
            // Remove the request we just pushed (the last matching one).
            if let Some(pos) = slot.queue.iter().rposition(|(t, _)| *t == txn) {
                slot.queue.remove(pos);
            }
            return LockOutcome::Deadlock;
        }
        self.waiting.entry(txn).or_default().insert(object);
        LockOutcome::Waiting
    }

    /// Everything `txn` waits on: current holders of objects it is queued
    /// for, plus conflicting requests queued ahead of it.
    fn waits_for(&self, txn: TxnId) -> BTreeSet<TxnId> {
        let mut out = BTreeSet::new();
        for (_, slot) in self.table.iter() {
            let Some(pos) = slot.queue.iter().position(|(t, _)| *t == txn) else {
                continue;
            };
            let (_, my_mode) = slot.queue[pos];
            for (t, m) in &slot.holders {
                if *t != txn && !my_mode.compatible(*m) {
                    out.insert(*t);
                }
            }
            for (t, m) in slot.queue.iter().take(pos) {
                if *t != txn && (!my_mode.compatible(*m) || !m.compatible(my_mode)) {
                    out.insert(*t);
                }
            }
            // Upgrade case: we also wait for co-holders of our shared lock.
            if my_mode == LockMode::Exclusive {
                if let Some(LockMode::Shared) = slot.held_by(txn) {
                    for (t, _) in &slot.holders {
                        if *t != txn {
                            out.insert(*t);
                        }
                    }
                }
            }
        }
        out
    }

    /// DFS from `start` through the waits-for graph looking for a cycle
    /// that returns to `start`.
    fn creates_cycle(&self, start: TxnId) -> bool {
        let mut stack: Vec<TxnId> = self.waits_for(start).into_iter().collect();
        let mut seen: BTreeSet<TxnId> = stack.iter().copied().collect();
        while let Some(t) = stack.pop() {
            if t == start {
                return true;
            }
            for next in self.waits_for(t) {
                if next == start {
                    return true;
                }
                if seen.insert(next) {
                    stack.push(next);
                }
            }
        }
        false
    }

    /// Release every lock and queued request of `txn`. Returns the requests
    /// newly granted as a result, as `(txn, object)` pairs, so the caller
    /// can resume those waiters.
    pub fn release_all(&mut self, txn: TxnId) -> Vec<(TxnId, ObjectId)> {
        let mut touched: BTreeSet<ObjectId> = BTreeSet::new();
        if let Some(objs) = self.held.remove(&txn) {
            touched.extend(objs);
        }
        if let Some(objs) = self.waiting.remove(&txn) {
            touched.extend(objs);
        }
        let mut granted = Vec::new();
        for object in touched {
            let slot = self
                .table
                .get_mut(&object)
                .expect("tracked object has slot");
            slot.holders.retain(|(t, _)| *t != txn);
            slot.queue.retain(|(t, _)| *t != txn);
            granted.extend(Self::promote(slot, object).into_iter().map(|t| (t, object)));
            if slot.holders.is_empty() && slot.queue.is_empty() {
                self.table.remove(&object);
            }
        }
        for (t, object) in &granted {
            self.held.entry(*t).or_default().insert(*object);
            if let Some(w) = self.waiting.get_mut(t) {
                w.remove(object);
                if w.is_empty() {
                    self.waiting.remove(t);
                }
            }
        }
        granted
    }

    /// Grant from the front of the queue: one exclusive request, or the
    /// maximal prefix of shared requests. Returns the granted txns.
    fn promote(slot: &mut LockSlot, _object: ObjectId) -> Vec<TxnId> {
        let mut granted = Vec::new();
        while let Some(&(t, m)) = slot.queue.front() {
            let compatible = slot
                .holders
                .iter()
                .all(|(ht, hm)| *ht == t || m.compatible(*hm));
            if !compatible {
                break;
            }
            slot.queue.pop_front();
            slot.holders.retain(|(ht, _)| *ht != t);
            slot.holders.push((t, m));
            granted.push(t);
            if m == LockMode::Exclusive {
                break;
            }
        }
        granted
    }

    /// Does `txn` currently hold `object` (in any mode)?
    pub fn holds(&self, txn: TxnId, object: ObjectId) -> bool {
        self.held.get(&txn).is_some_and(|s| s.contains(&object))
    }

    /// Is `txn` blocked on any object?
    pub fn is_waiting(&self, txn: TxnId) -> bool {
        self.waiting.contains_key(&txn)
    }

    /// Number of objects with active lock state.
    pub fn active_objects(&self) -> usize {
        self.table.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fragdb_model::NodeId;

    fn t(i: u64) -> TxnId {
        TxnId::new(NodeId(0), i)
    }

    fn o(i: u64) -> ObjectId {
        ObjectId(i)
    }

    #[test]
    fn shared_locks_coexist() {
        let mut lm = LockManager::new();
        assert_eq!(
            lm.acquire(t(1), o(0), LockMode::Shared),
            LockOutcome::Granted
        );
        assert_eq!(
            lm.acquire(t(2), o(0), LockMode::Shared),
            LockOutcome::Granted
        );
        assert!(lm.holds(t(1), o(0)));
        assert!(lm.holds(t(2), o(0)));
    }

    #[test]
    fn exclusive_blocks_everyone() {
        let mut lm = LockManager::new();
        assert_eq!(
            lm.acquire(t(1), o(0), LockMode::Exclusive),
            LockOutcome::Granted
        );
        assert_eq!(
            lm.acquire(t(2), o(0), LockMode::Shared),
            LockOutcome::Waiting
        );
        assert_eq!(
            lm.acquire(t(3), o(0), LockMode::Exclusive),
            LockOutcome::Waiting
        );
        assert!(lm.is_waiting(t(2)));
    }

    #[test]
    fn reacquire_is_idempotent() {
        let mut lm = LockManager::new();
        lm.acquire(t(1), o(0), LockMode::Exclusive);
        assert_eq!(
            lm.acquire(t(1), o(0), LockMode::Exclusive),
            LockOutcome::Granted
        );
        assert_eq!(
            lm.acquire(t(1), o(0), LockMode::Shared),
            LockOutcome::Granted
        );
        lm.release_all(t(1));
        lm.acquire(t(1), o(0), LockMode::Shared);
        assert_eq!(
            lm.acquire(t(1), o(0), LockMode::Shared),
            LockOutcome::Granted
        );
    }

    #[test]
    fn sole_holder_upgrades_in_place() {
        let mut lm = LockManager::new();
        lm.acquire(t(1), o(0), LockMode::Shared);
        assert_eq!(
            lm.acquire(t(1), o(0), LockMode::Exclusive),
            LockOutcome::Granted
        );
        // Now exclusive: another shared must wait.
        assert_eq!(
            lm.acquire(t(2), o(0), LockMode::Shared),
            LockOutcome::Waiting
        );
    }

    #[test]
    fn release_grants_fifo() {
        let mut lm = LockManager::new();
        lm.acquire(t(1), o(0), LockMode::Exclusive);
        lm.acquire(t(2), o(0), LockMode::Exclusive);
        lm.acquire(t(3), o(0), LockMode::Shared);
        let granted = lm.release_all(t(1));
        // FIFO: t2 (exclusive) goes first; t3 keeps waiting.
        assert_eq!(granted, vec![(t(2), o(0))]);
        assert!(lm.holds(t(2), o(0)));
        assert!(lm.is_waiting(t(3)));
        let granted = lm.release_all(t(2));
        assert_eq!(granted, vec![(t(3), o(0))]);
    }

    #[test]
    fn release_grants_shared_batch() {
        let mut lm = LockManager::new();
        lm.acquire(t(1), o(0), LockMode::Exclusive);
        lm.acquire(t(2), o(0), LockMode::Shared);
        lm.acquire(t(3), o(0), LockMode::Shared);
        lm.acquire(t(4), o(0), LockMode::Exclusive);
        let granted = lm.release_all(t(1));
        assert_eq!(granted, vec![(t(2), o(0)), (t(3), o(0))]);
        assert!(lm.is_waiting(t(4)));
    }

    #[test]
    fn fifo_prevents_reader_overtaking_writer() {
        let mut lm = LockManager::new();
        lm.acquire(t(1), o(0), LockMode::Shared);
        lm.acquire(t(2), o(0), LockMode::Exclusive); // waits
                                                     // A new shared request must NOT jump the queued writer.
        assert_eq!(
            lm.acquire(t(3), o(0), LockMode::Shared),
            LockOutcome::Waiting
        );
    }

    #[test]
    fn two_txn_deadlock_detected() {
        let mut lm = LockManager::new();
        lm.acquire(t(1), o(0), LockMode::Exclusive);
        lm.acquire(t(2), o(1), LockMode::Exclusive);
        assert_eq!(
            lm.acquire(t(1), o(1), LockMode::Exclusive),
            LockOutcome::Waiting
        );
        // t2 -> o0 closes the cycle t1→t2→t1.
        assert_eq!(
            lm.acquire(t(2), o(0), LockMode::Exclusive),
            LockOutcome::Deadlock
        );
        // The refused request is not left queued: releasing t1 lets t2 be unaffected.
        assert!(!lm.is_waiting(t(2)));
    }

    #[test]
    fn three_txn_deadlock_detected() {
        let mut lm = LockManager::new();
        lm.acquire(t(1), o(0), LockMode::Exclusive);
        lm.acquire(t(2), o(1), LockMode::Exclusive);
        lm.acquire(t(3), o(2), LockMode::Exclusive);
        assert_eq!(
            lm.acquire(t(1), o(1), LockMode::Exclusive),
            LockOutcome::Waiting
        );
        assert_eq!(
            lm.acquire(t(2), o(2), LockMode::Exclusive),
            LockOutcome::Waiting
        );
        assert_eq!(
            lm.acquire(t(3), o(0), LockMode::Exclusive),
            LockOutcome::Deadlock
        );
    }

    #[test]
    fn upgrade_deadlock_between_two_readers() {
        let mut lm = LockManager::new();
        lm.acquire(t(1), o(0), LockMode::Shared);
        lm.acquire(t(2), o(0), LockMode::Shared);
        assert_eq!(
            lm.acquire(t(1), o(0), LockMode::Exclusive),
            LockOutcome::Waiting
        );
        // t2's upgrade closes the classic upgrade deadlock.
        assert_eq!(
            lm.acquire(t(2), o(0), LockMode::Exclusive),
            LockOutcome::Deadlock
        );
    }

    #[test]
    fn release_all_clears_waiting_requests_too() {
        let mut lm = LockManager::new();
        lm.acquire(t(1), o(0), LockMode::Exclusive);
        lm.acquire(t(2), o(0), LockMode::Exclusive);
        // t2 gives up while waiting.
        let granted = lm.release_all(t(2));
        assert!(granted.is_empty());
        assert!(!lm.is_waiting(t(2)));
        // Now releasing t1 grants nothing (queue is empty) and cleans the table.
        assert!(lm.release_all(t(1)).is_empty());
        assert_eq!(lm.active_objects(), 0);
    }

    #[test]
    fn waiter_granted_after_release_is_tracked_as_holder() {
        let mut lm = LockManager::new();
        lm.acquire(t(1), o(0), LockMode::Exclusive);
        lm.acquire(t(2), o(0), LockMode::Shared);
        lm.release_all(t(1));
        assert!(lm.holds(t(2), o(0)));
        assert!(!lm.is_waiting(t(2)));
        // And t2 can now release cleanly.
        lm.release_all(t(2));
        assert_eq!(lm.active_objects(), 0);
    }

    #[test]
    fn independent_objects_do_not_conflict() {
        let mut lm = LockManager::new();
        assert_eq!(
            lm.acquire(t(1), o(0), LockMode::Exclusive),
            LockOutcome::Granted
        );
        assert_eq!(
            lm.acquire(t(2), o(1), LockMode::Exclusive),
            LockOutcome::Granted
        );
        assert_eq!(lm.active_objects(), 2);
    }
}
