#![forbid(unsafe_code)]
#![warn(missing_docs)]

//! Per-node storage substrate.
//!
//! Each of the `n` sites keeps a complete copy of the database (§3.1:
//! "replication is complete"). This crate provides that copy and the local
//! machinery around it:
//!
//! * [`store`] — the versioned object store (one [`store::Store`] per node).
//! * [`wal`] — an append-only log of every installed transaction, with
//!   per-fragment indices. The movement protocols of §4.4 and the
//!   log-transformation baseline both recover from it.
//! * [`locks`] — a shared/exclusive lock manager with FIFO wait queues and
//!   waits-for deadlock detection. Strategy 4.1 ("fixed agents; read
//!   locks") acquires remote read locks through it.
//! * [`replica`] — the per-node facade combining store + WAL, exposing the
//!   operations the fragments-and-agents engine needs: apply a local
//!   commit, install a quasi-transaction, snapshot or overwrite a fragment
//!   (move-with-data, §4.4.2A), and compute content digests for the mutual
//!   consistency checker.

pub mod locks;
pub mod replica;
pub mod store;
pub mod wal;

pub use locks::{LockManager, LockMode, LockOutcome};
pub use replica::Replica;
pub use store::{BTreeStore, Store};
pub use wal::{Wal, WalEntry};
