//! The per-node replica facade: store + WAL, with the operations the
//! fragments-and-agents engine performs.

use fragdb_model::{FragmentId, NodeId, ObjectId, QuasiTransaction, TxnId, Updates, Value};
use fragdb_sim::SimTime;

use crate::store::Store;
use crate::wal::{Wal, WalEntry};

/// One node's complete database copy plus its installation log.
#[derive(Clone, Debug)]
pub struct Replica {
    /// The node this replica lives at.
    pub node: NodeId,
    store: Store,
    wal: Wal,
}

impl Replica {
    /// Fresh, empty replica for `node`.
    pub fn new(node: NodeId) -> Self {
        Replica {
            node,
            store: Store::new(),
            wal: Wal::new(),
        }
    }

    /// Read an object's current local value.
    pub fn read(&self, object: ObjectId) -> &Value {
        self.store.get(object)
    }

    /// Direct store access (read-only) for checkers and reports.
    pub fn store(&self) -> &Store {
        &self.store
    }

    /// Installation log (read-only).
    pub fn wal(&self) -> &Wal {
        &self.wal
    }

    /// Install a committed local transaction's writes: values hit the store
    /// and the WAL records the installation. This is the home-node half of
    /// §3.2; the same updates then travel to other replicas as a
    /// quasi-transaction.
    pub fn commit_local(
        &mut self,
        txn: TxnId,
        fragment: FragmentId,
        frag_seq: u64,
        epoch: u64,
        updates: Updates,
        at: SimTime,
    ) {
        for (o, v) in &updates {
            self.store.put(*o, v.clone(), txn, at);
        }
        self.wal.append(WalEntry {
            txn,
            fragment,
            frag_seq,
            epoch,
            updates,
            installed_at: at,
        });
    }

    /// Install a remote quasi-transaction: "a series of unconditional
    /// updates … reflecting the desired effects" (§3.2). Within the
    /// discrete-event simulation one install call is atomic, which realizes
    /// the paper's requirement that no reader ever sees a partial
    /// quasi-transaction (Property 2 of §4.3).
    pub fn install_quasi(&mut self, q: &QuasiTransaction, at: SimTime) {
        for (o, v) in &q.updates {
            self.store.put(*o, v.clone(), q.txn, at);
        }
        self.wal.append(WalEntry {
            txn: q.txn,
            fragment: q.fragment,
            frag_seq: q.frag_seq,
            epoch: q.epoch,
            updates: q.updates.clone(),
            installed_at: at,
        });
    }

    /// Install a group-commit batch of remote quasi-transactions: all
    /// values hit the store, then the WAL records the whole batch through
    /// one [`Wal::append_batch`] call (the storage half of group commit —
    /// one log reservation instead of one per transaction). Equivalent to
    /// calling [`Replica::install_quasi`] on each element in order.
    pub fn install_batch(&mut self, batch: &[QuasiTransaction], at: SimTime) {
        for q in batch {
            for (o, v) in &q.updates {
                self.store.put(*o, v.clone(), q.txn, at);
            }
        }
        self.wal.append_batch(batch.iter().map(|q| WalEntry {
            txn: q.txn,
            fragment: q.fragment,
            frag_seq: q.frag_seq,
            epoch: q.epoch,
            updates: q.updates.clone(),
            installed_at: at,
        }));
    }

    /// Highest fragment sequence number installed here for `fragment`.
    pub fn last_frag_seq(&self, fragment: FragmentId) -> Option<u64> {
        self.wal.last_frag_seq(fragment)
    }

    /// Snapshot the given objects (a fragment copy for §4.4.2A's
    /// move-with-data).
    pub fn snapshot(&self, objects: &[ObjectId]) -> Vec<(ObjectId, Value)> {
        self.store.snapshot(objects)
    }

    /// Overwrite the given objects from a transported snapshot
    /// (§4.4.2A: "store it in place of the copy of the fragment at site Y").
    pub fn restore(&mut self, snapshot: &[(ObjectId, Value)], writer: TxnId, at: SimTime) {
        self.store.restore(snapshot, writer, at);
    }

    /// Content digest over `objects` — used for mutual-consistency checks.
    pub fn digest(&self, objects: &[ObjectId]) -> u64 {
        self.store.digest(objects)
    }

    /// The node crashed: the in-memory store (volatile) is wiped; the WAL
    /// (durable) survives. [`Replica::recover`] rebuilds the store from it.
    pub fn crash(&mut self) {
        self.store = Store::new();
    }

    /// Crash recovery: replay the durable WAL in log order to rebuild the
    /// store. Entries are re-applied, not re-appended; `installed_at`
    /// provenance reflects the (local) recovery time. The log is borrowed
    /// in place (disjoint fields), never copied.
    pub fn recover(&mut self, at: SimTime) {
        for e in self.wal.entries() {
            for (o, v) in &e.updates {
                self.store.put(*o, v.clone(), e.txn, at);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn t(n: u32, s: u64) -> TxnId {
        TxnId::new(NodeId(n), s)
    }

    fn o(i: u64) -> ObjectId {
        ObjectId(i)
    }

    fn quasi(txn: TxnId, frag_seq: u64, updates: Vec<(ObjectId, Value)>) -> QuasiTransaction {
        QuasiTransaction {
            txn,
            fragment: FragmentId(0),
            frag_seq,
            epoch: 0,
            updates: updates.into(),
        }
    }

    #[test]
    fn commit_local_writes_store_and_wal() {
        let mut r = Replica::new(NodeId(0));
        r.commit_local(
            t(0, 0),
            FragmentId(0),
            0,
            0,
            vec![(o(1), Value::Int(100))].into(),
            SimTime(5),
        );
        assert_eq!(r.read(o(1)), &Value::Int(100));
        assert_eq!(r.wal().len(), 1);
        assert_eq!(r.last_frag_seq(FragmentId(0)), Some(0));
    }

    #[test]
    fn install_quasi_mirrors_origin() {
        let mut origin = Replica::new(NodeId(0));
        let mut remote = Replica::new(NodeId(1));
        let updates = vec![(o(0), Value::Int(1)), (o(1), Value::Int(2))];
        origin.commit_local(
            t(0, 0),
            FragmentId(0),
            0,
            0,
            updates.clone().into(),
            SimTime(1),
        );
        remote.install_quasi(&quasi(t(0, 0), 0, updates), SimTime(9));
        let objs = [o(0), o(1)];
        assert_eq!(origin.digest(&objs), remote.digest(&objs));
        assert_eq!(remote.wal().len(), 1);
        assert_eq!(
            remote.store().version(o(0)).unwrap().installed_at,
            SimTime(9),
            "install time is local to the node"
        );
    }

    #[test]
    fn commit_local_records_repackaged_subsets_too() {
        // §4.4.3 step A.2 repackaging commits the surviving subset through
        // commit_local, under a fresh epoch and sequence number.
        let mut r = Replica::new(NodeId(1));
        r.commit_local(
            t(1, 3),
            FragmentId(0),
            3,
            1,
            vec![(o(5), Value::Int(50))].into(),
            SimTime(2),
        );
        assert_eq!(r.read(o(5)), &Value::Int(50));
        let entry = &r.wal().entries()[0];
        assert_eq!(entry.updates.len(), 1);
        assert_eq!(entry.epoch, 1);
    }

    #[test]
    fn snapshot_restore_transfers_fragment_state() {
        let mut x = Replica::new(NodeId(0));
        let mut y = Replica::new(NodeId(1));
        x.commit_local(
            t(0, 0),
            FragmentId(0),
            0,
            0,
            vec![(o(0), Value::Int(10)), (o(1), Value::Int(20))].into(),
            SimTime(1),
        );
        // Y has stale state for o(0).
        y.install_quasi(&quasi(t(0, 9), 9, vec![(o(0), Value::Int(-1))]), SimTime(1));
        let objs = [o(0), o(1)];
        let snap = x.snapshot(&objs);
        y.restore(&snap, t(0, 0), SimTime(2));
        assert_eq!(x.digest(&objs), y.digest(&objs));
    }

    #[test]
    fn install_batch_equals_one_by_one_installs() {
        let mut batched = Replica::new(NodeId(1));
        let mut serial = Replica::new(NodeId(2));
        let batch: Vec<QuasiTransaction> = (0..4)
            .map(|i| {
                quasi(
                    t(0, i),
                    i,
                    vec![(o(i % 2), Value::Int(i as i64)), (o(9), Value::Int(-1))],
                )
            })
            .collect();
        batched.install_batch(&batch, SimTime(7));
        for q in &batch {
            serial.install_quasi(q, SimTime(7));
        }
        let objs = [o(0), o(1), o(9)];
        assert_eq!(batched.digest(&objs), serial.digest(&objs));
        assert_eq!(batched.wal().entries(), serial.wal().entries());
        assert_eq!(batched.last_frag_seq(FragmentId(0)), Some(3));
        // Index paths agree after a batched append too.
        assert_eq!(
            batched.wal().fragment_range(FragmentId(0), 1, 2),
            batched.wal().fragment_range_scan(FragmentId(0), 1, 2)
        );
    }

    #[test]
    fn crash_wipes_store_and_recover_replays_wal() {
        let mut r = Replica::new(NodeId(0));
        r.commit_local(
            t(0, 0),
            FragmentId(0),
            0,
            0,
            vec![(o(1), Value::Int(7))].into(),
            SimTime(1),
        );
        r.install_quasi(&quasi(t(1, 0), 1, vec![(o(1), Value::Int(8))]), SimTime(2));
        let before = r.digest(&[o(1)]);
        r.crash();
        assert!(r.read(o(1)).is_null(), "volatile store must be gone");
        assert_eq!(r.wal().len(), 2, "WAL is durable");
        r.recover(SimTime(10));
        assert_eq!(r.digest(&[o(1)]), before, "replay must rebuild the store");
        assert_eq!(r.wal().len(), 2, "replay must not re-append");
        assert_eq!(
            r.store().version(o(1)).unwrap().installed_at,
            SimTime(10),
            "provenance reflects recovery time"
        );
    }

    #[test]
    fn unwritten_reads_are_null() {
        let r = Replica::new(NodeId(2));
        assert!(r.read(o(42)).is_null());
        assert_eq!(r.last_frag_seq(FragmentId(0)), None);
    }
}
