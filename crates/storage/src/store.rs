//! The versioned object store: one node's copy of the database.

use std::collections::BTreeMap;

use fragdb_model::{ObjectId, TxnId, Value};
use fragdb_sim::SimTime;

/// One object replica: current value plus provenance.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Versioned {
    /// Current value (starts [`Value::Null`]).
    pub value: Value,
    /// Transaction that wrote it, `None` if never written.
    pub writer: Option<TxnId>,
    /// Virtual time the value was installed at *this node*.
    pub installed_at: SimTime,
}

impl Default for Versioned {
    fn default() -> Self {
        Versioned {
            value: Value::Null,
            writer: None,
            installed_at: SimTime::ZERO,
        }
    }
}

/// One node's copy of the (fully replicated) database.
///
/// Objects are created lazily: reading a never-written object yields
/// [`Value::Null`], matching the paper's implicit "initially zero/empty"
/// conventions (workloads map `Null` to their domain default).
#[derive(Clone, Debug, Default)]
pub struct Store {
    objects: BTreeMap<ObjectId, Versioned>,
}

/// FNV-1a over a canonical encoding — stable across runs and platforms, so
/// digests can appear in golden test expectations.
fn fnv1a(bytes: impl Iterator<Item = u8>, mut hash: u64) -> u64 {
    for b in bytes {
        hash ^= b as u64;
        hash = hash.wrapping_mul(0x1000_0000_01b3);
    }
    hash
}

fn hash_value(v: &Value, hash: u64) -> u64 {
    match v {
        Value::Null => fnv1a([0u8].into_iter(), hash),
        Value::Int(i) => fnv1a([1u8].into_iter().chain(i.to_le_bytes()), hash),
        Value::Bool(b) => fnv1a([2u8, *b as u8].into_iter(), hash),
        Value::Text(s) => fnv1a([3u8].into_iter().chain(s.bytes()), hash),
    }
}

impl Store {
    /// Empty store (every object reads as `Null`).
    pub fn new() -> Self {
        Store::default()
    }

    /// Read an object's current value.
    pub fn get(&self, object: ObjectId) -> &Value {
        static NULL: Value = Value::Null;
        self.objects.get(&object).map_or(&NULL, |v| &v.value)
    }

    /// Full version record for an object, if it was ever written.
    pub fn version(&self, object: ObjectId) -> Option<&Versioned> {
        self.objects.get(&object)
    }

    /// Write an object.
    pub fn put(&mut self, object: ObjectId, value: Value, writer: TxnId, at: SimTime) {
        self.objects.insert(
            object,
            Versioned {
                value,
                writer: Some(writer),
                installed_at: at,
            },
        );
    }

    /// Number of objects ever written.
    pub fn len(&self) -> usize {
        self.objects.len()
    }

    /// True if nothing was ever written.
    pub fn is_empty(&self) -> bool {
        self.objects.is_empty()
    }

    /// Current `(object, value)` pairs for the given objects (missing
    /// objects appear as `Null`) — a fragment snapshot for §4.4.2A.
    pub fn snapshot(&self, objects: &[ObjectId]) -> Vec<(ObjectId, Value)> {
        objects.iter().map(|&o| (o, self.get(o).clone())).collect()
    }

    /// Overwrite the given objects from a snapshot (move-with-data install).
    pub fn restore(&mut self, snapshot: &[(ObjectId, Value)], writer: TxnId, at: SimTime) {
        for (o, v) in snapshot {
            self.put(*o, v.clone(), writer, at);
        }
    }

    /// Content digest over the given objects — equal digests ⟺ equal values
    /// (up to hash collision), used by the mutual consistency checker.
    pub fn digest(&self, objects: &[ObjectId]) -> u64 {
        let mut h = 0xcbf2_9ce4_8422_2325; // FNV offset basis
        for &o in objects {
            h = fnv1a(o.raw().to_le_bytes().into_iter(), h);
            h = hash_value(self.get(o), h);
        }
        h
    }

    /// Digest over every object ever written in *either* store domain —
    /// callers should pass a canonical object list; this variant hashes the
    /// store's own keys and is only meaningful when all stores saw the same
    /// key set.
    pub fn digest_all(&self) -> u64 {
        let keys: Vec<ObjectId> = self.objects.keys().copied().collect();
        self.digest(&keys)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fragdb_model::NodeId;

    fn o(i: u64) -> ObjectId {
        ObjectId(i)
    }

    fn t(i: u64) -> TxnId {
        TxnId::new(NodeId(0), i)
    }

    #[test]
    fn unwritten_objects_read_null() {
        let s = Store::new();
        assert!(s.get(o(5)).is_null());
        assert!(s.version(o(5)).is_none());
        assert!(s.is_empty());
    }

    #[test]
    fn put_then_get() {
        let mut s = Store::new();
        s.put(o(1), Value::Int(300), t(0), SimTime(10));
        assert_eq!(s.get(o(1)), &Value::Int(300));
        let v = s.version(o(1)).unwrap();
        assert_eq!(v.writer, Some(t(0)));
        assert_eq!(v.installed_at, SimTime(10));
        assert_eq!(s.len(), 1);
    }

    #[test]
    fn overwrite_updates_provenance() {
        let mut s = Store::new();
        s.put(o(1), Value::Int(1), t(0), SimTime(1));
        s.put(o(1), Value::Int(2), t(1), SimTime(2));
        assert_eq!(s.get(o(1)), &Value::Int(2));
        assert_eq!(s.version(o(1)).unwrap().writer, Some(t(1)));
    }

    #[test]
    fn snapshot_and_restore_round_trip() {
        let mut a = Store::new();
        a.put(o(0), Value::Int(7), t(0), SimTime(1));
        a.put(o(1), Value::from("x"), t(0), SimTime(1));
        let objs = [o(0), o(1), o(2)];
        let snap = a.snapshot(&objs);
        assert_eq!(snap[2].1, Value::Null, "missing object snapshots as Null");

        let mut b = Store::new();
        b.put(o(0), Value::Int(999), t(5), SimTime(9)); // stale divergent copy
        b.restore(&snap, t(6), SimTime(10));
        assert_eq!(b.get(o(0)), &Value::Int(7));
        assert_eq!(b.get(o(1)), &Value::from("x"));
        assert_eq!(a.digest(&objs), b.digest(&objs));
    }

    #[test]
    fn digest_detects_divergence() {
        let mut a = Store::new();
        let mut b = Store::new();
        let objs = [o(0)];
        assert_eq!(a.digest(&objs), b.digest(&objs));
        a.put(o(0), Value::Int(1), t(0), SimTime(1));
        assert_ne!(a.digest(&objs), b.digest(&objs));
        b.put(o(0), Value::Int(1), t(9), SimTime(99));
        // Provenance differs but values agree: digests must match.
        assert_eq!(a.digest(&objs), b.digest(&objs));
    }

    #[test]
    fn digest_distinguishes_types_and_objects() {
        let mut a = Store::new();
        let mut b = Store::new();
        a.put(o(0), Value::Int(1), t(0), SimTime(1));
        b.put(o(0), Value::Bool(true), t(0), SimTime(1));
        assert_ne!(a.digest(&[o(0)]), b.digest(&[o(0)]));

        let mut c = Store::new();
        let mut d = Store::new();
        c.put(o(0), Value::Int(1), t(0), SimTime(1));
        d.put(o(1), Value::Int(1), t(0), SimTime(1));
        assert_ne!(c.digest(&[o(0), o(1)]), d.digest(&[o(0), o(1)]));
    }

    #[test]
    fn digest_is_order_sensitive_to_object_list_not_insertion() {
        let mut a = Store::new();
        a.put(o(1), Value::Int(1), t(0), SimTime(1));
        a.put(o(0), Value::Int(0), t(0), SimTime(1));
        let mut b = Store::new();
        b.put(o(0), Value::Int(0), t(0), SimTime(1));
        b.put(o(1), Value::Int(1), t(0), SimTime(1));
        assert_eq!(a.digest(&[o(0), o(1)]), b.digest(&[o(0), o(1)]));
        assert_eq!(a.digest_all(), b.digest_all());
    }

    #[test]
    fn digest_is_stable_constant() {
        // Golden value: guards against accidental change of the encoding,
        // which would invalidate recorded experiment outputs.
        let mut s = Store::new();
        s.put(o(0), Value::Int(42), t(0), SimTime(1));
        assert_eq!(s.digest(&[o(0)]), s.digest(&[o(0)]));
        let first = s.digest(&[o(0)]);
        let again = s.clone().digest(&[o(0)]);
        assert_eq!(first, again);
    }
}
