//! The versioned object store: one node's copy of the database.

use std::collections::BTreeMap;

use fragdb_model::{ObjectId, TxnId, Value};
use fragdb_sim::SimTime;

/// One object replica: current value plus provenance.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Versioned {
    /// Current value (starts [`Value::Null`]).
    pub value: Value,
    /// Transaction that wrote it, `None` if never written.
    pub writer: Option<TxnId>,
    /// Virtual time the value was installed at *this node*.
    pub installed_at: SimTime,
}

impl Default for Versioned {
    fn default() -> Self {
        Versioned {
            value: Value::Null,
            writer: None,
            installed_at: SimTime::ZERO,
        }
    }
}

/// One node's copy of the (fully replicated) database.
///
/// Objects are created lazily: reading a never-written object yields
/// [`Value::Null`], matching the paper's implicit "initially zero/empty"
/// conventions (workloads map `Null` to their domain default).
///
/// Layout (PR 8 kernel pass): version records live densely in a `Vec`,
/// reached through a stable `ObjectId` → slot map held as a *sorted flat
/// vector* and binary-searched. A record's slot never changes once
/// assigned, overwrites update the `Vec` in place, and whole scans
/// (`digest_all`) stream the flat index without materializing a key list
/// or chasing tree nodes. New-key inserts shift the index vector — cheap
/// for the catalog-sized key sets a replica holds, and O(1) amortized for
/// the ascending insertions bulk loads use. [`BTreeStore`] preserves the
/// previous map-of-records layout as a differential oracle.
#[derive(Clone, Debug, Default)]
pub struct Store {
    /// `(object, slot)` pairs sorted by object id; binary-searched.
    index: Vec<(ObjectId, u32)>,
    /// Version records, dense and contiguous, indexed by slot.
    vals: Vec<Versioned>,
}

/// FNV-1a offset basis — the digest seed.
const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;

/// FNV-1a over a canonical encoding — stable across runs and platforms, so
/// digests can appear in golden test expectations.
fn fnv1a(bytes: impl Iterator<Item = u8>, mut hash: u64) -> u64 {
    for b in bytes {
        hash ^= b as u64;
        hash = hash.wrapping_mul(0x1000_0000_01b3);
    }
    hash
}

fn hash_value(v: &Value, hash: u64) -> u64 {
    match v {
        Value::Null => fnv1a([0u8].into_iter(), hash),
        Value::Int(i) => fnv1a([1u8].into_iter().chain(i.to_le_bytes()), hash),
        Value::Bool(b) => fnv1a([2u8, *b as u8].into_iter(), hash),
        Value::Text(s) => fnv1a([3u8].into_iter().chain(s.bytes()), hash),
    }
}

impl Store {
    /// Empty store (every object reads as `Null`).
    pub fn new() -> Self {
        Store::default()
    }

    /// Slot of an object, if it was ever written.
    fn slot_of(&self, object: ObjectId) -> Option<u32> {
        self.index
            .binary_search_by_key(&object, |&(o, _)| o)
            .ok()
            .map(|i| self.index[i].1)
    }

    /// Read an object's current value.
    pub fn get(&self, object: ObjectId) -> &Value {
        static NULL: Value = Value::Null;
        self.slot_of(object)
            .map_or(&NULL, |slot| &self.vals[slot as usize].value)
    }

    /// Full version record for an object, if it was ever written.
    pub fn version(&self, object: ObjectId) -> Option<&Versioned> {
        self.slot_of(object).map(|slot| &self.vals[slot as usize])
    }

    /// Write an object.
    pub fn put(&mut self, object: ObjectId, value: Value, writer: TxnId, at: SimTime) {
        let rec = Versioned {
            value,
            writer: Some(writer),
            installed_at: at,
        };
        match self.index.binary_search_by_key(&object, |&(o, _)| o) {
            Ok(i) => {
                let slot = self.index[i].1;
                self.vals[slot as usize] = rec;
            }
            Err(i) => {
                self.index.insert(i, (object, self.vals.len() as u32));
                self.vals.push(rec);
            }
        }
    }

    /// Number of objects ever written.
    pub fn len(&self) -> usize {
        self.vals.len()
    }

    /// True if nothing was ever written.
    pub fn is_empty(&self) -> bool {
        self.vals.is_empty()
    }

    /// Current `(object, value)` pairs for the given objects (missing
    /// objects appear as `Null`) — a fragment snapshot for §4.4.2A.
    pub fn snapshot(&self, objects: &[ObjectId]) -> Vec<(ObjectId, Value)> {
        objects.iter().map(|&o| (o, self.get(o).clone())).collect()
    }

    /// Overwrite the given objects from a snapshot (move-with-data install).
    pub fn restore(&mut self, snapshot: &[(ObjectId, Value)], writer: TxnId, at: SimTime) {
        for (o, v) in snapshot {
            self.put(*o, v.clone(), writer, at);
        }
    }

    /// Content digest over the given objects — equal digests ⟺ equal values
    /// (up to hash collision), used by the mutual consistency checker.
    pub fn digest(&self, objects: &[ObjectId]) -> u64 {
        let mut h = FNV_OFFSET;
        for &o in objects {
            h = fnv1a(o.raw().to_le_bytes().into_iter(), h);
            h = hash_value(self.get(o), h);
        }
        h
    }

    /// Digest over every object ever written in *either* store domain —
    /// callers should pass a canonical object list; this variant hashes the
    /// store's own keys and is only meaningful when all stores saw the same
    /// key set. Walks the index in key order directly: no key list is
    /// allocated (pinned by the `digest_alloc` regression test).
    pub fn digest_all(&self) -> u64 {
        let mut h = FNV_OFFSET;
        for &(o, slot) in &self.index {
            h = fnv1a(o.raw().to_le_bytes().into_iter(), h);
            h = hash_value(&self.vals[slot as usize].value, h);
        }
        h
    }
}

/// The pre-PR 8 store layout (one map node per object record), kept as a
/// differential oracle: every operation must produce the same observable
/// results as [`Store`], which the differential tests drive with seeded
/// histories.
#[derive(Clone, Debug, Default)]
pub struct BTreeStore {
    objects: BTreeMap<ObjectId, Versioned>,
}

impl BTreeStore {
    /// Empty store.
    pub fn new() -> Self {
        BTreeStore::default()
    }

    /// Read an object's current value.
    pub fn get(&self, object: ObjectId) -> &Value {
        static NULL: Value = Value::Null;
        self.objects.get(&object).map_or(&NULL, |v| &v.value)
    }

    /// Full version record for an object, if it was ever written.
    pub fn version(&self, object: ObjectId) -> Option<&Versioned> {
        self.objects.get(&object)
    }

    /// Write an object.
    pub fn put(&mut self, object: ObjectId, value: Value, writer: TxnId, at: SimTime) {
        self.objects.insert(
            object,
            Versioned {
                value,
                writer: Some(writer),
                installed_at: at,
            },
        );
    }

    /// Number of objects ever written.
    pub fn len(&self) -> usize {
        self.objects.len()
    }

    /// True when no object was ever written.
    pub fn is_empty(&self) -> bool {
        self.objects.is_empty()
    }

    /// Content digest over the given objects (same encoding as
    /// [`Store::digest`]).
    pub fn digest(&self, objects: &[ObjectId]) -> u64 {
        let mut h = FNV_OFFSET;
        for &o in objects {
            h = fnv1a(o.raw().to_le_bytes().into_iter(), h);
            h = hash_value(self.get(o), h);
        }
        h
    }

    /// Digest over the store's own key set, exactly as the pre-PR 8
    /// `digest_all` computed it (via a materialized key list).
    pub fn digest_all(&self) -> u64 {
        let keys: Vec<ObjectId> = self.objects.keys().copied().collect();
        self.digest(&keys)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fragdb_model::NodeId;
    use fragdb_sim::SimRng;

    fn o(i: u64) -> ObjectId {
        ObjectId(i)
    }

    fn t(i: u64) -> TxnId {
        TxnId::new(NodeId(0), i)
    }

    #[test]
    fn unwritten_objects_read_null() {
        let s = Store::new();
        assert!(s.get(o(5)).is_null());
        assert!(s.version(o(5)).is_none());
        assert!(s.is_empty());
    }

    #[test]
    fn put_then_get() {
        let mut s = Store::new();
        s.put(o(1), Value::Int(300), t(0), SimTime(10));
        assert_eq!(s.get(o(1)), &Value::Int(300));
        let v = s.version(o(1)).unwrap();
        assert_eq!(v.writer, Some(t(0)));
        assert_eq!(v.installed_at, SimTime(10));
        assert_eq!(s.len(), 1);
    }

    #[test]
    fn overwrite_updates_provenance() {
        let mut s = Store::new();
        s.put(o(1), Value::Int(1), t(0), SimTime(1));
        s.put(o(1), Value::Int(2), t(1), SimTime(2));
        assert_eq!(s.get(o(1)), &Value::Int(2));
        assert_eq!(s.version(o(1)).unwrap().writer, Some(t(1)));
        assert_eq!(s.len(), 1, "overwrite must not grow the dense storage");
    }

    #[test]
    fn snapshot_and_restore_round_trip() {
        let mut a = Store::new();
        a.put(o(0), Value::Int(7), t(0), SimTime(1));
        a.put(o(1), Value::from("x"), t(0), SimTime(1));
        let objs = [o(0), o(1), o(2)];
        let snap = a.snapshot(&objs);
        assert_eq!(snap[2].1, Value::Null, "missing object snapshots as Null");

        let mut b = Store::new();
        b.put(o(0), Value::Int(999), t(5), SimTime(9)); // stale divergent copy
        b.restore(&snap, t(6), SimTime(10));
        assert_eq!(b.get(o(0)), &Value::Int(7));
        assert_eq!(b.get(o(1)), &Value::from("x"));
        assert_eq!(a.digest(&objs), b.digest(&objs));
    }

    #[test]
    fn digest_detects_divergence() {
        let mut a = Store::new();
        let mut b = Store::new();
        let objs = [o(0)];
        assert_eq!(a.digest(&objs), b.digest(&objs));
        a.put(o(0), Value::Int(1), t(0), SimTime(1));
        assert_ne!(a.digest(&objs), b.digest(&objs));
        b.put(o(0), Value::Int(1), t(9), SimTime(99));
        // Provenance differs but values agree: digests must match.
        assert_eq!(a.digest(&objs), b.digest(&objs));
    }

    #[test]
    fn digest_distinguishes_types_and_objects() {
        let mut a = Store::new();
        let mut b = Store::new();
        a.put(o(0), Value::Int(1), t(0), SimTime(1));
        b.put(o(0), Value::Bool(true), t(0), SimTime(1));
        assert_ne!(a.digest(&[o(0)]), b.digest(&[o(0)]));

        let mut c = Store::new();
        let mut d = Store::new();
        c.put(o(0), Value::Int(1), t(0), SimTime(1));
        d.put(o(1), Value::Int(1), t(0), SimTime(1));
        assert_ne!(c.digest(&[o(0), o(1)]), d.digest(&[o(0), o(1)]));
    }

    #[test]
    fn digest_is_order_sensitive_to_object_list_not_insertion() {
        let mut a = Store::new();
        a.put(o(1), Value::Int(1), t(0), SimTime(1));
        a.put(o(0), Value::Int(0), t(0), SimTime(1));
        let mut b = Store::new();
        b.put(o(0), Value::Int(0), t(0), SimTime(1));
        b.put(o(1), Value::Int(1), t(0), SimTime(1));
        assert_eq!(a.digest(&[o(0), o(1)]), b.digest(&[o(0), o(1)]));
        assert_eq!(a.digest_all(), b.digest_all());
    }

    #[test]
    fn digest_is_stable_constant() {
        // Golden value: guards against accidental change of the encoding,
        // which would invalidate recorded experiment outputs.
        let mut s = Store::new();
        s.put(o(0), Value::Int(42), t(0), SimTime(1));
        assert_eq!(s.digest(&[o(0)]), s.digest(&[o(0)]));
        let first = s.digest(&[o(0)]);
        let again = s.clone().digest(&[o(0)]);
        assert_eq!(first, again);
    }

    #[test]
    fn dense_store_matches_btree_oracle_on_seeded_histories() {
        // 20 seeded random write/overwrite histories: the dense layout and
        // the map-of-records oracle must agree on every observable.
        for seed in 0..20u64 {
            let mut rng = SimRng::new(0x5703_0000 + seed);
            let mut dense = Store::new();
            let mut oracle = BTreeStore::new();
            for step in 0..400u64 {
                let obj = o(rng.gen_range(0..64));
                let val = match rng.gen_range(0..4) {
                    0 => Value::Null,
                    1 => Value::Int(rng.next_u64() as i64),
                    2 => Value::Bool(rng.chance(0.5)),
                    _ => Value::from("v"),
                };
                let w = t(step);
                let at = SimTime(step);
                dense.put(obj, val.clone(), w, at);
                oracle.put(obj, val, w, at);
            }
            assert_eq!(dense.len(), oracle.len(), "seed {seed}");
            for i in 0..64 {
                assert_eq!(dense.get(o(i)), oracle.get(o(i)), "seed {seed} obj {i}");
                assert_eq!(
                    dense.version(o(i)),
                    oracle.version(o(i)),
                    "seed {seed} obj {i}"
                );
            }
            let objs: Vec<ObjectId> = (0..64).map(o).collect();
            assert_eq!(dense.digest(&objs), oracle.digest(&objs), "seed {seed}");
            assert_eq!(dense.digest_all(), oracle.digest_all(), "seed {seed}");
        }
    }
}
