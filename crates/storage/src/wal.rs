//! Per-node write-ahead log of installed transactions.
//!
//! Every update installed at a node — whether a local commit or a remote
//! quasi-transaction — is appended here. The log answers the questions the
//! §4.4 movement protocols ask during recovery:
//!
//! * "which transactions on fragment F have I seen?" (§4.4.1 majority
//!   recovery, §4.4.3's `M0` message),
//! * "give me transactions `j+1 ..= i` on F" (catch-up transfers),
//! * "has object x been overwritten since transaction q?" (§4.4.3's
//!   stale-update stripping),
//!
//! and it is what the log-transformation baseline exchanges after a
//! partition heals.

use std::collections::BTreeMap;

use fragdb_model::{FragmentId, ObjectId, TxnId, Value};
use fragdb_sim::SimTime;

/// One installed transaction.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct WalEntry {
    /// Originating transaction.
    pub txn: TxnId,
    /// Fragment the updates belong to.
    pub fragment: FragmentId,
    /// Position in the fragment's update sequence.
    pub frag_seq: u64,
    /// Token epoch under which the update was issued.
    pub epoch: u64,
    /// The installed `(object, value)` pairs.
    pub updates: Vec<(ObjectId, Value)>,
    /// Virtual time of installation at this node.
    pub installed_at: SimTime,
}

/// Append-only installation log with a per-fragment index.
#[derive(Clone, Debug, Default)]
pub struct Wal {
    entries: Vec<WalEntry>,
    /// `fragment -> indices into entries`, in installation order.
    by_fragment: BTreeMap<FragmentId, Vec<usize>>,
}

impl Wal {
    /// Empty log.
    pub fn new() -> Self {
        Wal::default()
    }

    /// Append an entry.
    pub fn append(&mut self, entry: WalEntry) {
        self.by_fragment
            .entry(entry.fragment)
            .or_default()
            .push(self.entries.len());
        self.entries.push(entry);
    }

    /// All entries, installation order.
    pub fn entries(&self) -> &[WalEntry] {
        &self.entries
    }

    /// Number of entries.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// True if the log is empty.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Entries for one fragment, installation order.
    pub fn fragment_entries(&self, fragment: FragmentId) -> impl Iterator<Item = &WalEntry> {
        self.by_fragment
            .get(&fragment)
            .into_iter()
            .flatten()
            .map(move |&i| &self.entries[i])
    }

    /// Highest `frag_seq` installed for `fragment`, or `None`.
    pub fn last_frag_seq(&self, fragment: FragmentId) -> Option<u64> {
        self.fragment_entries(fragment).map(|e| e.frag_seq).max()
    }

    /// Has a transaction with this `frag_seq` on `fragment` been installed?
    pub fn has_frag_seq(&self, fragment: FragmentId, frag_seq: u64) -> bool {
        self.fragment_entries(fragment)
            .any(|e| e.frag_seq == frag_seq)
    }

    /// Entries on `fragment` with `frag_seq` in the given inclusive range,
    /// ordered by `frag_seq` (catch-up transfer for §4.4.1 / §4.4.2B).
    pub fn fragment_range(&self, fragment: FragmentId, from: u64, to: u64) -> Vec<&WalEntry> {
        let mut out: Vec<&WalEntry> = self
            .fragment_entries(fragment)
            .filter(|e| (from..=to).contains(&e.frag_seq))
            .collect();
        out.sort_by_key(|e| e.frag_seq);
        out
    }

    /// The last transaction (by installation order at this node) that wrote
    /// `object`, if any — used by §4.4.3 to decide whether a late update has
    /// been overwritten.
    pub fn last_writer_of(&self, object: ObjectId) -> Option<&WalEntry> {
        self.entries
            .iter()
            .rev()
            .find(|e| e.updates.iter().any(|(o, _)| *o == object))
    }

    /// Entries installed strictly after virtual time `t` (log-transformation
    /// baseline: "transactions executed during the partition").
    pub fn entries_after(&self, t: SimTime) -> impl Iterator<Item = &WalEntry> {
        self.entries.iter().filter(move |e| e.installed_at > t)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fragdb_model::NodeId;

    fn entry(frag: u32, frag_seq: u64, obj: u64, at: u64) -> WalEntry {
        WalEntry {
            txn: TxnId::new(NodeId(0), frag_seq),
            fragment: FragmentId(frag),
            frag_seq,
            epoch: 0,
            updates: vec![(ObjectId(obj), Value::Int(frag_seq as i64))],
            installed_at: SimTime(at),
        }
    }

    #[test]
    fn append_preserves_order() {
        let mut w = Wal::new();
        w.append(entry(0, 0, 10, 1));
        w.append(entry(1, 0, 20, 2));
        w.append(entry(0, 1, 10, 3));
        assert_eq!(w.len(), 3);
        let f0: Vec<u64> = w
            .fragment_entries(FragmentId(0))
            .map(|e| e.frag_seq)
            .collect();
        assert_eq!(f0, vec![0, 1]);
        let f1: Vec<u64> = w
            .fragment_entries(FragmentId(1))
            .map(|e| e.frag_seq)
            .collect();
        assert_eq!(f1, vec![0]);
    }

    #[test]
    fn last_frag_seq_tracks_max() {
        let mut w = Wal::new();
        assert_eq!(w.last_frag_seq(FragmentId(0)), None);
        w.append(entry(0, 0, 10, 1));
        w.append(entry(0, 2, 10, 2)); // gap: seq 1 missing
        assert_eq!(w.last_frag_seq(FragmentId(0)), Some(2));
        assert!(w.has_frag_seq(FragmentId(0), 2));
        assert!(!w.has_frag_seq(FragmentId(0), 1));
    }

    #[test]
    fn fragment_range_is_sorted_and_bounded() {
        let mut w = Wal::new();
        // Install out of frag_seq order (possible under §4.4.3).
        w.append(entry(0, 3, 10, 1));
        w.append(entry(0, 1, 10, 2));
        w.append(entry(0, 2, 10, 3));
        w.append(entry(0, 5, 10, 4));
        let seqs: Vec<u64> = w
            .fragment_range(FragmentId(0), 1, 3)
            .iter()
            .map(|e| e.frag_seq)
            .collect();
        assert_eq!(seqs, vec![1, 2, 3]);
    }

    #[test]
    fn last_writer_of_finds_most_recent() {
        let mut w = Wal::new();
        w.append(entry(0, 0, 7, 1));
        w.append(entry(0, 1, 8, 2));
        w.append(entry(0, 2, 7, 3));
        assert_eq!(w.last_writer_of(ObjectId(7)).unwrap().frag_seq, 2);
        assert_eq!(w.last_writer_of(ObjectId(8)).unwrap().frag_seq, 1);
        assert!(w.last_writer_of(ObjectId(99)).is_none());
    }

    #[test]
    fn entries_after_filters_by_time() {
        let mut w = Wal::new();
        w.append(entry(0, 0, 1, 10));
        w.append(entry(0, 1, 1, 20));
        w.append(entry(0, 2, 1, 30));
        let after: Vec<u64> = w.entries_after(SimTime(15)).map(|e| e.frag_seq).collect();
        assert_eq!(after, vec![1, 2]);
        assert_eq!(w.entries_after(SimTime(30)).count(), 0);
    }

    #[test]
    fn empty_wal() {
        let w = Wal::new();
        assert!(w.is_empty());
        assert_eq!(w.fragment_entries(FragmentId(0)).count(), 0);
        assert!(w.fragment_range(FragmentId(0), 0, 10).is_empty());
    }
}
