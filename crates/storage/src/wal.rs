//! Per-node write-ahead log of installed transactions.
//!
//! Every update installed at a node — whether a local commit or a remote
//! quasi-transaction — is appended here. The log answers the questions the
//! §4.4 movement protocols ask during recovery:
//!
//! * "which transactions on fragment F have I seen?" (§4.4.1 majority
//!   recovery, §4.4.3's `M0` message),
//! * "give me transactions `j+1 ..= i` on F" (catch-up transfers),
//! * "has object x been overwritten since transaction q?" (§4.4.3's
//!   stale-update stripping),
//!
//! and it is what the log-transformation baseline exchanges after a
//! partition heals.

use std::collections::BTreeMap;

use fragdb_model::{FragmentId, ObjectId, TxnId, Updates};
use fragdb_sim::SimTime;

/// One installed transaction.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct WalEntry {
    /// Originating transaction.
    pub txn: TxnId,
    /// Fragment the updates belong to.
    pub fragment: FragmentId,
    /// Position in the fragment's update sequence.
    pub frag_seq: u64,
    /// Token epoch under which the update was issued.
    pub epoch: u64,
    /// The installed `(object, value)` pairs — shared with every other
    /// in-flight copy of the originating quasi-transaction, so logging (and
    /// shipping WAL entries during catch-up) never deep-copies the payload.
    pub updates: Updates,
    /// Virtual time of installation at this node.
    pub installed_at: SimTime,
}

/// Append-only installation log with a per-fragment index.
#[derive(Clone, Debug, Default)]
pub struct Wal {
    entries: Vec<WalEntry>,
    /// `fragment -> indices into entries`, in installation order.
    by_fragment: BTreeMap<FragmentId, Vec<usize>>,
    /// `fragment -> frag_seq -> indices into entries`. §4.4.3 installs out
    /// of `frag_seq` order, so an ordered map (not a sorted `Vec` + binary
    /// search over `by_fragment`) is what keeps range queries correct; the
    /// inner `Vec` preserves installation order for same-seq re-installs
    /// under different epochs.
    seq_index: BTreeMap<FragmentId, BTreeMap<u64, Vec<usize>>>,
    /// `object -> index of the last entry (installation order) writing it`.
    last_writer: BTreeMap<ObjectId, usize>,
}

impl Wal {
    /// Empty log.
    pub fn new() -> Self {
        Wal::default()
    }

    /// Append an entry.
    pub fn append(&mut self, entry: WalEntry) {
        let idx = self.entries.len();
        self.by_fragment
            .entry(entry.fragment)
            .or_default()
            .push(idx);
        self.seq_index
            .entry(entry.fragment)
            .or_default()
            .entry(entry.frag_seq)
            .or_default()
            .push(idx);
        for (o, _) in &entry.updates {
            self.last_writer.insert(*o, idx);
        }
        self.entries.push(entry);
    }

    /// Append a group-commit batch of entries in one call. One reservation
    /// covers the whole batch (a single "group fsync" in a disk-backed
    /// log); each entry is then indexed exactly as [`Wal::append`] would.
    pub fn append_batch(&mut self, batch: impl IntoIterator<Item = WalEntry>) {
        let batch = batch.into_iter();
        let (lo, _) = batch.size_hint();
        self.entries.reserve(lo);
        for entry in batch {
            self.append(entry);
        }
    }

    /// All entries, installation order.
    pub fn entries(&self) -> &[WalEntry] {
        &self.entries
    }

    /// Number of entries.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// True if the log is empty.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Entries for one fragment, installation order.
    pub fn fragment_entries(&self, fragment: FragmentId) -> impl Iterator<Item = &WalEntry> {
        self.by_fragment
            .get(&fragment)
            .into_iter()
            .flatten()
            .map(move |&i| &self.entries[i])
    }

    /// Highest `frag_seq` installed for `fragment`, or `None`.
    pub fn last_frag_seq(&self, fragment: FragmentId) -> Option<u64> {
        self.seq_index
            .get(&fragment)
            .and_then(|seqs| seqs.keys().next_back().copied())
    }

    /// Has a transaction with this `frag_seq` on `fragment` been installed?
    pub fn has_frag_seq(&self, fragment: FragmentId, frag_seq: u64) -> bool {
        self.seq_index
            .get(&fragment)
            .is_some_and(|seqs| seqs.contains_key(&frag_seq))
    }

    /// Entries on `fragment` with `frag_seq` in the given inclusive range,
    /// ordered by `frag_seq` (catch-up transfer for §4.4.1 / §4.4.2B).
    pub fn fragment_range(&self, fragment: FragmentId, from: u64, to: u64) -> Vec<&WalEntry> {
        if from > to {
            return Vec::new();
        }
        self.seq_index
            .get(&fragment)
            .into_iter()
            .flat_map(|seqs| seqs.range(from..=to))
            .flat_map(|(_, idxs)| idxs.iter().map(|&i| &self.entries[i]))
            .collect()
    }

    /// The last transaction (by installation order at this node) that wrote
    /// `object`, if any — used by §4.4.3 to decide whether a late update has
    /// been overwritten.
    pub fn last_writer_of(&self, object: ObjectId) -> Option<&WalEntry> {
        self.last_writer.get(&object).map(|&i| &self.entries[i])
    }

    /// Scan-based reference implementation of [`Wal::fragment_range`]: walk
    /// the whole log, filter, sort — touching no index at all. Retained as
    /// the oracle the indexed path is tested against and as the "before"
    /// arm of the bench runner; production code should use `fragment_range`.
    pub fn fragment_range_scan(&self, fragment: FragmentId, from: u64, to: u64) -> Vec<&WalEntry> {
        let mut out: Vec<&WalEntry> = self
            .entries
            .iter()
            .filter(|e| e.fragment == fragment && (from..=to).contains(&e.frag_seq))
            .collect();
        out.sort_by_key(|e| e.frag_seq);
        out
    }

    /// Scan-based reference implementation of [`Wal::last_writer_of`]
    /// (reverse scan over every entry) — oracle / bench "before" arm.
    pub fn last_writer_of_scan(&self, object: ObjectId) -> Option<&WalEntry> {
        self.entries
            .iter()
            .rev()
            .find(|e| e.updates.iter().any(|(o, _)| *o == object))
    }

    /// Entries installed strictly after virtual time `t` (log-transformation
    /// baseline: "transactions executed during the partition").
    pub fn entries_after(&self, t: SimTime) -> impl Iterator<Item = &WalEntry> {
        self.entries.iter().filter(move |e| e.installed_at > t)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fragdb_model::{NodeId, Value};

    fn entry(frag: u32, frag_seq: u64, obj: u64, at: u64) -> WalEntry {
        WalEntry {
            txn: TxnId::new(NodeId(0), frag_seq),
            fragment: FragmentId(frag),
            frag_seq,
            epoch: 0,
            updates: vec![(ObjectId(obj), Value::Int(frag_seq as i64))].into(),
            installed_at: SimTime(at),
        }
    }

    #[test]
    fn append_preserves_order() {
        let mut w = Wal::new();
        w.append(entry(0, 0, 10, 1));
        w.append(entry(1, 0, 20, 2));
        w.append(entry(0, 1, 10, 3));
        assert_eq!(w.len(), 3);
        let f0: Vec<u64> = w
            .fragment_entries(FragmentId(0))
            .map(|e| e.frag_seq)
            .collect();
        assert_eq!(f0, vec![0, 1]);
        let f1: Vec<u64> = w
            .fragment_entries(FragmentId(1))
            .map(|e| e.frag_seq)
            .collect();
        assert_eq!(f1, vec![0]);
    }

    #[test]
    fn last_frag_seq_tracks_max() {
        let mut w = Wal::new();
        assert_eq!(w.last_frag_seq(FragmentId(0)), None);
        w.append(entry(0, 0, 10, 1));
        w.append(entry(0, 2, 10, 2)); // gap: seq 1 missing
        assert_eq!(w.last_frag_seq(FragmentId(0)), Some(2));
        assert!(w.has_frag_seq(FragmentId(0), 2));
        assert!(!w.has_frag_seq(FragmentId(0), 1));
    }

    #[test]
    fn fragment_range_is_sorted_and_bounded() {
        let mut w = Wal::new();
        // Install out of frag_seq order (possible under §4.4.3).
        w.append(entry(0, 3, 10, 1));
        w.append(entry(0, 1, 10, 2));
        w.append(entry(0, 2, 10, 3));
        w.append(entry(0, 5, 10, 4));
        let seqs: Vec<u64> = w
            .fragment_range(FragmentId(0), 1, 3)
            .iter()
            .map(|e| e.frag_seq)
            .collect();
        assert_eq!(seqs, vec![1, 2, 3]);
    }

    #[test]
    fn last_writer_of_finds_most_recent() {
        let mut w = Wal::new();
        w.append(entry(0, 0, 7, 1));
        w.append(entry(0, 1, 8, 2));
        w.append(entry(0, 2, 7, 3));
        assert_eq!(w.last_writer_of(ObjectId(7)).unwrap().frag_seq, 2);
        assert_eq!(w.last_writer_of(ObjectId(8)).unwrap().frag_seq, 1);
        assert!(w.last_writer_of(ObjectId(99)).is_none());
    }

    #[test]
    fn entries_after_filters_by_time() {
        let mut w = Wal::new();
        w.append(entry(0, 0, 1, 10));
        w.append(entry(0, 1, 1, 20));
        w.append(entry(0, 2, 1, 30));
        let after: Vec<u64> = w.entries_after(SimTime(15)).map(|e| e.frag_seq).collect();
        assert_eq!(after, vec![1, 2]);
        assert_eq!(w.entries_after(SimTime(30)).count(), 0);
    }

    #[test]
    fn empty_wal() {
        let w = Wal::new();
        assert!(w.is_empty());
        assert_eq!(w.fragment_entries(FragmentId(0)).count(), 0);
        assert!(w.fragment_range(FragmentId(0), 0, 10).is_empty());
    }

    #[test]
    fn inverted_range_is_empty() {
        let mut w = Wal::new();
        w.append(entry(0, 2, 10, 1));
        assert!(w.fragment_range(FragmentId(0), 3, 1).is_empty());
        assert!(w.fragment_range_scan(FragmentId(0), 3, 1).is_empty());
    }

    /// Seeded pseudo-random log (out-of-order seqs, duplicate seqs across
    /// epochs, overlapping write sets): the indexed lookups must agree with
    /// the scan oracles on every query.
    #[test]
    fn indexed_lookups_agree_with_scan_oracles() {
        let mut state = 0x9E37_79B9_7F4A_7C15u64;
        let mut next = move || {
            // xorshift64* — deterministic, no external RNG needed here.
            state ^= state >> 12;
            state ^= state << 25;
            state ^= state >> 27;
            state = state.wrapping_mul(0x2545_F491_4F6C_DD1D);
            state
        };
        let mut w = Wal::new();
        for i in 0..400u64 {
            let frag = (next() % 3) as u32;
            let frag_seq = next() % 40;
            let nobj = 1 + next() % 3;
            let updates: Updates = (0..nobj)
                .map(|_| (ObjectId(next() % 20), Value::Int(next() as i64)))
                .collect();
            w.append(WalEntry {
                txn: TxnId::new(NodeId(frag), i),
                fragment: FragmentId(frag),
                frag_seq,
                epoch: next() % 4,
                updates,
                installed_at: SimTime(i),
            });
        }
        for frag in 0..4u32 {
            let f = FragmentId(frag);
            for from in 0..42u64 {
                for span in [0u64, 1, 5, 40] {
                    let to = from.saturating_add(span);
                    assert_eq!(
                        w.fragment_range(f, from, to),
                        w.fragment_range_scan(f, from, to),
                        "range mismatch frag={frag} from={from} to={to}"
                    );
                }
                assert_eq!(
                    w.has_frag_seq(f, from),
                    w.fragment_entries(f).any(|e| e.frag_seq == from),
                    "has_frag_seq mismatch frag={frag} seq={from}"
                );
            }
            assert_eq!(
                w.last_frag_seq(f),
                w.fragment_entries(f).map(|e| e.frag_seq).max(),
                "last_frag_seq mismatch frag={frag}"
            );
        }
        for obj in 0..22u64 {
            assert_eq!(
                w.last_writer_of(ObjectId(obj)),
                w.last_writer_of_scan(ObjectId(obj)),
                "last_writer mismatch obj={obj}"
            );
        }
    }
}
