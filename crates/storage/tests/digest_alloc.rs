//! No-alloc regression guard for `Store::digest_all`.
//!
//! The pre-PR 8 implementation materialized a `Vec<ObjectId>` of every key
//! on each call; the dense layout walks its index directly. The retained
//! [`BTreeStore`] oracle still allocates, which doubles as a self-test of
//! the probe.

use criterion::alloc_probe::{self, CountingAllocator};
use fragdb_model::{NodeId, ObjectId, TxnId, Value};
use fragdb_sim::SimTime;
use fragdb_storage::{BTreeStore, Store};

#[global_allocator]
static ALLOC: CountingAllocator = CountingAllocator::new();

#[test]
fn digest_all_performs_no_heap_allocation() {
    assert!(
        std::hint::black_box(Box::new(1u8)).as_ref() == &1u8,
        "touch the heap so the probe registers as installed"
    );
    assert!(alloc_probe::is_installed());

    let mut dense = Store::new();
    let mut oracle = BTreeStore::new();
    let writer = TxnId::new(NodeId(0), 0);
    for i in 0..512u64 {
        dense.put(ObjectId(i), Value::Int(i as i64 * 3), writer, SimTime(i));
        oracle.put(ObjectId(i), Value::Int(i as i64 * 3), writer, SimTime(i));
    }

    let (dense_allocs, dense_digest) = alloc_probe::count_allocs(|| dense.digest_all());
    assert_eq!(
        dense_allocs, 0,
        "digest_all must not allocate (got {dense_allocs} allocations)"
    );

    let (oracle_allocs, oracle_digest) = alloc_probe::count_allocs(|| oracle.digest_all());
    assert!(
        oracle_allocs >= 1,
        "the oracle's key-list allocation should be visible to the probe"
    );
    assert_eq!(dense_digest, oracle_digest, "layouts must agree on digests");
}
