//! Structured diagnostics: stable codes, severities, rustc-style rendering.
//!
//! Every check emits [`Diagnostic`]s carrying a stable [`Code`], so drivers
//! can match on outcomes programmatically while humans read the rendered
//! [`Report`]. Codes are never reused; retired codes stay reserved.

use std::fmt;

/// How bad a finding is.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord)]
pub enum Severity {
    /// Purely informational — explains a non-obvious consequence of the
    /// declarations (e.g. why an own-fragment read is not a RAG edge).
    Info,
    /// The configuration is admissible but smells — e.g. a lock-order
    /// cycle that *can* deadlock under §4.1.
    Warning,
    /// The configuration violates a precondition: the run would abort,
    /// wedge, or void a paper guarantee. Admission refuses it.
    Error,
}

impl fmt::Display for Severity {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Severity::Info => write!(f, "info"),
            Severity::Warning => write!(f, "warning"),
            Severity::Error => write!(f, "error"),
        }
    }
}

/// Stable diagnostic codes. The block structure mirrors the paper:
/// `FDB00x` schema (§3.1), `FDB01x` transaction classes (§3.2), `FDB02x`
/// read-access graph (§4.2), `FDB03x` strategy/topology compatibility
/// (§4.1, §4.4.1, §6), `FDB04x` lock analysis (§4.1), `FDB05x`
/// self-healing token recovery (§5).
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord)]
pub enum Code {
    /// Fragments are not disjoint (§3.1).
    Fdb001,
    /// Bad token/agent assignment or a reference to an undeclared
    /// fragment (§3.1: exactly one token per fragment).
    Fdb002,
    /// An agent's home node is invalid (out of range, or a node agent
    /// homed away from its own node) (§3.1).
    Fdb003,
    /// A class declares writes outside its initiator's fragment without
    /// opting into the §3.2-footnote multi-fragment protocol — the
    /// initiation requirement would be violated at run time (§3.2).
    Fdb010,
    /// A declared multi-fragment class: legal, but commits through the
    /// two-phase protocol among the written fragments' agents (§3.2
    /// footnote).
    Fdb011,
    /// The read-access graph is not elementarily acyclic (§4.2).
    Fdb020,
    /// A class reads its own fragment: by definition (`i ≠ j`) this is
    /// *not* a RAG edge and cannot create a cycle (§4.2).
    Fdb021,
    /// The §4.2 strategy is selected but no transaction classes are
    /// declared: every update would abort as an undeclared class.
    Fdb022,
    /// A §4.4.1 majority is unreachable from the fragment's home even
    /// with every link up (§4.4.1).
    Fdb030,
    /// A §4.1 lock site is unreachable from a class initiator's home even
    /// with every link up (§4.1).
    Fdb031,
    /// A declared read is not covered by a replica at the node that would
    /// perform it (§6 partial replication).
    Fdb032,
    /// §4.1 read locks combined with a movement policy — read locks are
    /// defined for fixed agents only (§4.1/§4.4).
    Fdb033,
    /// A fragment's agent home is outside its own replica set (§6).
    Fdb034,
    /// A malformed replica set: empty, an unknown node, or an unknown
    /// fragment (§6).
    Fdb035,
    /// Deadlock-prone cyclic lock acquisition across §4.1 classes.
    Fdb040,
    /// The failure detector is enabled but no fragment runs under the
    /// §4.4.1 majority-commit policy — elections can never act, so the
    /// self-healing configuration is inert (§5).
    Fdb050,
    /// A majority-commit fragment's population is smaller than 3 with the
    /// detector enabled: an election cannot out-vote the (dead) home, so
    /// self-healing cannot recover this fragment (§5).
    Fdb051,
    /// The election timeout is zero with the detector enabled: every round
    /// aborts before a single vote can arrive (§5).
    Fdb052,
    /// The election timeout is shorter than the detector's own detection
    /// bound: rounds abort and restart faster than a failure can even be
    /// confirmed, so elections livelock instead of converging (§5).
    Fdb053,
    /// A replica in a fragment's replica set is unreachable from the
    /// fragment's home even with every link up — the broadcast can never
    /// deliver updates to it, so the replica diverges by construction
    /// (§6).
    Fdb060,
    /// An even-sized replica set under §4.4.1 majority commit: the
    /// majority threshold is the same as for the next-smaller odd set, so
    /// the extra replica adds broadcast cost without adding fault
    /// tolerance (§4.4.1/§6).
    Fdb061,
    /// A replica set that explicitly names every node in the topology:
    /// equivalent to the full-replication default, so the declaration
    /// buys no fan-out reduction (§6).
    Fdb062,
}

impl Code {
    /// Every code the analyzer can emit, in numeric order. Tests assert
    /// this stays complete, so `--explain` can never lag behind a new
    /// check.
    pub const ALL: [Code; 22] = [
        Code::Fdb001,
        Code::Fdb002,
        Code::Fdb003,
        Code::Fdb010,
        Code::Fdb011,
        Code::Fdb020,
        Code::Fdb021,
        Code::Fdb022,
        Code::Fdb030,
        Code::Fdb031,
        Code::Fdb032,
        Code::Fdb033,
        Code::Fdb034,
        Code::Fdb035,
        Code::Fdb040,
        Code::Fdb050,
        Code::Fdb051,
        Code::Fdb052,
        Code::Fdb053,
        Code::Fdb060,
        Code::Fdb061,
        Code::Fdb062,
    ];

    /// Parse a code string such as `"FDB020"` (case-insensitive).
    pub fn parse(s: &str) -> Option<Code> {
        Code::ALL
            .into_iter()
            .find(|c| c.as_str().eq_ignore_ascii_case(s))
    }

    /// The rustc-style long-form explanation (`--explain`): what the
    /// check means, why the paper requires it, and what to do about it.
    pub fn explain(self) -> &'static str {
        match self {
            Code::Fdb001 => {
                "The database must be partitioned into disjoint fragments (§3.1): every \
                 object belongs to exactly one fragment, and the fragment's token is the \
                 sole authority over updates to those objects. Two fragments claiming the \
                 same object would mean two tokens could serialize conflicting updates to \
                 it independently, which voids the §3 model before any protocol runs. Fix \
                 the catalog so each object appears in exactly one fragment."
            }
            Code::Fdb002 => {
                "Each fragment has exactly one token, held by exactly one agent (§3.1). \
                 This report fires when the agent assignment references an undeclared \
                 fragment, declares two agents for one fragment, or leaves a fragment \
                 without an agent. Updates to an agent-less fragment can never commit; a \
                 doubly-agented fragment would mint two independent update sequences. \
                 Declare exactly one (fragment, agent, home) triple per fragment."
            }
            Code::Fdb003 => {
                "An agent's home node must exist in the topology, and a node agent must \
                 be homed at its own node (§3.1: node agents represent the node itself, \
                 so homing one elsewhere is contradictory). Point the home at a declared \
                 node, or use a user agent if the token should live away from the node."
            }
            Code::Fdb010 => {
                "A transaction must be initiated at the agent holding the token of the \
                 fragment it updates (§3.2's initiation requirement). A class declaring \
                 writes outside its initiator's fragment would commit updates whose \
                 token-holder never saw them — unless the class opts into the §3.2 \
                 footnote's multi-fragment protocol, which runs two-phase commit among \
                 the written fragments' agents. Either restrict writes to the initiating \
                 fragment or declare the class multi-fragment."
            }
            Code::Fdb011 => {
                "This class declares writes to several fragments and opted into the §3.2 \
                 footnote protocol: its commits run two-phase commit among the written \
                 fragments' agents. That is legal and serializable, but slower than \
                 single-fragment commits and unavailable while any participant is down — \
                 this note exists so the cost is a decision, not a surprise."
            }
            Code::Fdb020 => {
                "The §4.2 strategy commits foreign-read transactions locally, without \
                 coordination, and stays globally serializable only while the read-access \
                 graph — fragment i points at fragment j when some class initiated at i \
                 reads j — is elementarily acyclic. A cycle means two fragments can each \
                 commit a transaction that read the other's past, producing a global \
                 serialization-graph cycle no local order can repair (run `fragdb-mc` for \
                 the two-step counterexample). Remove a read edge, split a fragment, or \
                 run the cyclic classes under §4.1 read locks instead."
            }
            Code::Fdb021 => {
                "A class reads its own fragment. The read-access graph only tracks reads \
                 of *other* fragments (§4.2 defines edges for i ≠ j): own-fragment reads \
                 are serialized by the fragment's own token and can never contribute to a \
                 cycle. This note confirms the read was deliberately ignored."
            }
            Code::Fdb022 => {
                "The §4.2 strategy admits only transactions belonging to declared \
                 classes — that is how the analyzer knows the read-access graph it \
                 certified is the one that runs. With no classes declared, every update \
                 is undeclared and aborts. Declare the transaction classes, or choose a \
                 strategy that does not require them."
            }
            Code::Fdb030 => {
                "A fragment under §4.4.1 majority commit can only commit while its home \
                 can gather acknowledgments from a majority of the fragment's replicas. \
                 Here the topology (with every link up) gives the home no path to any \
                 majority, so every commit times out and aborts: permanent unavailability \
                 by construction, not by failure (run `fragdb-mc` for the trace). Add \
                 links, move the home, or shrink the replica set."
            }
            Code::Fdb031 => {
                "Under §4.1, a transaction that reads another fragment must first acquire \
                 a read lock at that fragment's lock site. A class initiator with no path \
                 to the lock site can never acquire the lock: the request is undeliverable \
                 and the transaction aborts on lock timeout, every time (run `fragdb-mc` \
                 for the trace). Connect the nodes or re-home one of the fragments."
            }
            Code::Fdb032 => {
                "With §6 partial replication, a transaction executes at its initiating \
                 agent's home using that node's local replicas. A declared read of a \
                 fragment the home does not replicate has no data to read — execution \
                 aborts with a logic error at run time (run `fragdb-mc` for the \
                 one-step trace). Add the home to the read fragment's replica set, or \
                 initiate the class at a node that replicates it."
            }
            Code::Fdb033 => {
                "§4.1 read locks name a fixed lock site per fragment — the paper defines \
                 the protocol for agents that do not move. Combining read locks with a \
                 movement policy would leave remote lock holders pointing at a node that \
                 no longer owns the token after a move. The system refuses to build this \
                 configuration; pin the fragment (MovePolicy::Fixed) or use a strategy \
                 that does not take remote locks."
            }
            Code::Fdb034 => {
                "A fragment's agent home must be inside the fragment's own replica set \
                 (§6): the home is where updates execute and commit, so it needs the \
                 data. The system refuses to build such a configuration. Add the home to \
                 the replica set or move the agent."
            }
            Code::Fdb035 => {
                "A replica set is malformed: empty, naming an undeclared fragment, or \
                 naming a node outside the topology (§6). An empty set would leave the \
                 fragment stored nowhere. The system refuses to build such a \
                 configuration; fix the replica-set declaration."
            }
            Code::Fdb040 => {
                "§4.1 classes acquire read locks in declaration order. Two classes that \
                 acquire locks on the same fragments in opposite orders can deadlock; \
                 the runtime resolves this by lock timeout (aborting one side), so this \
                 is a warning about wasted work and latency, not a safety hole. Order \
                 the declared reads consistently to avoid the aborts."
            }
            Code::Fdb050 => {
                "The §5 failure detector is enabled, but no fragment runs under §4.4.1 \
                 majority commit — the only policy whose epoch fencing and majority \
                 recovery make a takeover safe. Elections can trigger but never act, so \
                 the heartbeat traffic buys nothing. Run a fragment under \
                 MovePolicy::MajorityCommit or disable the detector."
            }
            Code::Fdb051 => {
                "Self-healing (§5) re-homes a dead token by majority vote among the \
                 fragment's replicas. With fewer than 3 replicas, any majority must \
                 include the dead home itself, so no election can ever win and the \
                 fragment stays unavailable until manual recovery. Replicate at 3 or \
                 more nodes for the vote to be winnable."
            }
            Code::Fdb052 => {
                "The election timeout is zero with the detector enabled (§5): every \
                 election round expires before a single vote can arrive, so takeovers \
                 abort forever while heartbeats keep announcing the failure. Set \
                 election_timeout to at least one network round trip."
            }
            Code::Fdb053 => {
                "The election timeout is shorter than the detector's own detection \
                 bound — heartbeat_period × (suspect_after + 1), the time it takes to \
                 confirm a silent node (§5). A round that expires before the failure it \
                 reacts to can be confirmed restarts against the same silence, \
                 livelocking instead of recovering. Raise election_timeout to at least \
                 the detection bound."
            }
            Code::Fdb060 => {
                "Every replica in a fragment's replica set must be reachable from the \
                 fragment's home with all links up (§6): the home's broadcast is the \
                 only way updates reach a replica, so an unreachable replica never \
                 receives a single update and diverges from the first commit onward. \
                 Unlike FDB030 this can strike even when a majority is reachable — \
                 commits keep succeeding while the cut-off replica silently rots, and a \
                 later election or read at that node observes stale data (run \
                 `fragdb-mc` for the divergence trace). Add links, or drop the \
                 unreachable node from the replica set."
            }
            Code::Fdb061 => {
                "A §4.4.1 majority over an even-sized replica set needs n/2 + 1 \
                 acknowledgments — exactly the same threshold as the odd set one \
                 smaller. The extra replica therefore adds one broadcast message per \
                 commit and one more node that can be down, while tolerating no \
                 additional failures: 4 replicas and 3 replicas both survive exactly \
                 one. Shrink to the odd size (the fragment allocator's replication \
                 factor does this automatically) or grow by two if more tolerance is \
                 actually wanted."
            }
            Code::Fdb062 => {
                "This replica set explicitly lists every node in the topology, which is \
                 exactly the full-replication default a fragment gets with no replica \
                 set declared (§6). The declaration is harmless but buys nothing: \
                 broadcasts still fan out to all nodes and commits still pay the full \
                 price the partial-replication machinery exists to avoid. Either drop \
                 the declaration for clarity or shrink the set to the nodes that \
                 actually read the fragment."
            }
        }
    }

    /// The stable code string, e.g. `"FDB020"`.
    pub fn as_str(self) -> &'static str {
        match self {
            Code::Fdb001 => "FDB001",
            Code::Fdb002 => "FDB002",
            Code::Fdb003 => "FDB003",
            Code::Fdb010 => "FDB010",
            Code::Fdb011 => "FDB011",
            Code::Fdb020 => "FDB020",
            Code::Fdb021 => "FDB021",
            Code::Fdb022 => "FDB022",
            Code::Fdb030 => "FDB030",
            Code::Fdb031 => "FDB031",
            Code::Fdb032 => "FDB032",
            Code::Fdb033 => "FDB033",
            Code::Fdb034 => "FDB034",
            Code::Fdb035 => "FDB035",
            Code::Fdb040 => "FDB040",
            Code::Fdb050 => "FDB050",
            Code::Fdb051 => "FDB051",
            Code::Fdb052 => "FDB052",
            Code::Fdb053 => "FDB053",
            Code::Fdb060 => "FDB060",
            Code::Fdb061 => "FDB061",
            Code::Fdb062 => "FDB062",
        }
    }

    /// The paper section the check derives from.
    pub fn paper_section(self) -> &'static str {
        match self {
            Code::Fdb001 | Code::Fdb002 | Code::Fdb003 => "§3.1",
            Code::Fdb010 | Code::Fdb011 => "§3.2",
            Code::Fdb020 | Code::Fdb021 | Code::Fdb022 => "§4.2",
            Code::Fdb030 => "§4.4.1",
            Code::Fdb031 | Code::Fdb040 => "§4.1",
            Code::Fdb032 | Code::Fdb034 | Code::Fdb035 | Code::Fdb060 | Code::Fdb062 => "§6",
            Code::Fdb033 => "§4.1/§4.4",
            Code::Fdb050 | Code::Fdb051 | Code::Fdb052 | Code::Fdb053 => "§5",
            Code::Fdb061 => "§4.4.1/§6",
        }
    }

    /// The severity this code is always emitted at.
    pub fn severity(self) -> Severity {
        match self {
            Code::Fdb011 | Code::Fdb021 | Code::Fdb062 => Severity::Info,
            Code::Fdb022 | Code::Fdb040 | Code::Fdb051 | Code::Fdb061 => Severity::Warning,
            _ => Severity::Error,
        }
    }
}

impl fmt::Display for Code {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.as_str())
    }
}

/// One finding.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Diagnostic {
    /// Stable code.
    pub code: Code,
    /// Severity (always `code.severity()`).
    pub severity: Severity,
    /// What is wrong, one line.
    pub message: String,
    /// The offending declaration, e.g. ``class `reserve` `` or
    /// `fragment F2`.
    pub subject: String,
    /// A suggested fix, when one is mechanical.
    pub help: Option<String>,
}

impl Diagnostic {
    /// Build a diagnostic at the code's canonical severity.
    pub fn new(code: Code, subject: impl Into<String>, message: impl Into<String>) -> Self {
        Diagnostic {
            code,
            severity: code.severity(),
            message: message.into(),
            subject: subject.into(),
            help: None,
        }
    }

    /// Attach a suggested fix (builder style).
    pub fn with_help(mut self, help: impl Into<String>) -> Self {
        self.help = Some(help.into());
        self
    }
}

impl fmt::Display for Diagnostic {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "{}[{}]: {} ({})",
            self.severity,
            self.code,
            self.message,
            self.code.paper_section()
        )?;
        writeln!(f, "  --> {}", self.subject)?;
        if let Some(help) = &self.help {
            writeln!(f, "  = help: {help}")?;
        }
        Ok(())
    }
}

/// All findings from one analysis run, errors first.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct Report {
    diagnostics: Vec<Diagnostic>,
}

impl Report {
    /// Wrap raw findings, sorting errors before warnings before infos
    /// (ties broken by code, then subject, for deterministic output).
    pub fn new(mut diagnostics: Vec<Diagnostic>) -> Self {
        diagnostics.sort_by(|a, b| {
            b.severity
                .cmp(&a.severity)
                .then(a.code.cmp(&b.code))
                .then(a.subject.cmp(&b.subject))
        });
        Report { diagnostics }
    }

    /// The findings, errors first.
    pub fn diagnostics(&self) -> &[Diagnostic] {
        &self.diagnostics
    }

    /// Consume into the raw findings.
    pub fn into_diagnostics(self) -> Vec<Diagnostic> {
        self.diagnostics
    }

    /// Does any finding have `code`?
    pub fn has(&self, code: Code) -> bool {
        self.diagnostics.iter().any(|d| d.code == code)
    }

    /// Number of error-severity findings.
    pub fn error_count(&self) -> usize {
        self.count(Severity::Error)
    }

    /// Number of findings at `severity`.
    pub fn count(&self, severity: Severity) -> usize {
        self.diagnostics
            .iter()
            .filter(|d| d.severity == severity)
            .count()
    }

    /// No findings at all?
    pub fn is_empty(&self) -> bool {
        self.diagnostics.is_empty()
    }

    /// Admissible ⟺ no error-severity findings.
    pub fn is_admissible(&self) -> bool {
        self.error_count() == 0
    }
}

impl fmt::Display for Report {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for d in &self.diagnostics {
            writeln!(f, "{d}")?;
        }
        write!(
            f,
            "{} error(s), {} warning(s), {} note(s)",
            self.error_count(),
            self.count(Severity::Warning),
            self.count(Severity::Info)
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn codes_are_stable_and_sectioned() {
        assert_eq!(Code::Fdb020.as_str(), "FDB020");
        assert_eq!(Code::Fdb020.paper_section(), "§4.2");
        assert_eq!(Code::Fdb030.paper_section(), "§4.4.1");
        assert_eq!(Code::Fdb021.severity(), Severity::Info);
        assert_eq!(Code::Fdb040.severity(), Severity::Warning);
        assert_eq!(Code::Fdb001.severity(), Severity::Error);
    }

    #[test]
    fn all_codes_listed_parseable_and_explained() {
        assert!(Code::ALL.windows(2).all(|w| w[0] < w[1]), "ALL is ordered");
        for code in Code::ALL {
            assert_eq!(Code::parse(code.as_str()), Some(code));
            assert_eq!(Code::parse(&code.as_str().to_lowercase()), Some(code));
            let text = code.explain();
            assert!(
                text.len() > 100,
                "{code} explanation should be long-form, got {} chars",
                text.len()
            );
        }
        assert_eq!(Code::parse("FDB999"), None);
    }

    #[test]
    fn report_sorts_errors_first_and_counts() {
        let r = Report::new(vec![
            Diagnostic::new(Code::Fdb021, "class `a`", "own-fragment read"),
            Diagnostic::new(Code::Fdb020, "class `b`", "cycle"),
            Diagnostic::new(Code::Fdb040, "classes", "lock cycle"),
        ]);
        assert_eq!(r.diagnostics()[0].code, Code::Fdb020);
        assert_eq!(r.error_count(), 1);
        assert_eq!(r.count(Severity::Warning), 1);
        assert!(!r.is_admissible() || r.error_count() == 0);
        assert!(r.has(Code::Fdb021));
        assert!(!r.has(Code::Fdb001));
    }

    #[test]
    fn rendering_is_rustc_like() {
        let d = Diagnostic::new(Code::Fdb020, "class `scan` (edge F1 -> F2)", "cycle closed")
            .with_help("remove the read of F2");
        let s = d.to_string();
        assert!(s.starts_with("error[FDB020]: cycle closed (§4.2)"));
        assert!(s.contains("--> class `scan`"));
        assert!(s.contains("help: remove the read of F2"));
        let r = Report::new(vec![d]);
        assert!(r.to_string().contains("1 error(s)"));
    }
}
