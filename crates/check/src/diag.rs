//! Structured diagnostics: stable codes, severities, rustc-style rendering.
//!
//! Every check emits [`Diagnostic`]s carrying a stable [`Code`], so drivers
//! can match on outcomes programmatically while humans read the rendered
//! [`Report`]. Codes are never reused; retired codes stay reserved.

use std::fmt;

/// How bad a finding is.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord)]
pub enum Severity {
    /// Purely informational — explains a non-obvious consequence of the
    /// declarations (e.g. why an own-fragment read is not a RAG edge).
    Info,
    /// The configuration is admissible but smells — e.g. a lock-order
    /// cycle that *can* deadlock under §4.1.
    Warning,
    /// The configuration violates a precondition: the run would abort,
    /// wedge, or void a paper guarantee. Admission refuses it.
    Error,
}

impl fmt::Display for Severity {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Severity::Info => write!(f, "info"),
            Severity::Warning => write!(f, "warning"),
            Severity::Error => write!(f, "error"),
        }
    }
}

/// Stable diagnostic codes. The block structure mirrors the paper:
/// `FDB00x` schema (§3.1), `FDB01x` transaction classes (§3.2), `FDB02x`
/// read-access graph (§4.2), `FDB03x` strategy/topology compatibility
/// (§4.1, §4.4.1, §6), `FDB04x` lock analysis (§4.1), `FDB05x`
/// self-healing token recovery (§5).
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord)]
pub enum Code {
    /// Fragments are not disjoint (§3.1).
    Fdb001,
    /// Bad token/agent assignment or a reference to an undeclared
    /// fragment (§3.1: exactly one token per fragment).
    Fdb002,
    /// An agent's home node is invalid (out of range, or a node agent
    /// homed away from its own node) (§3.1).
    Fdb003,
    /// A class declares writes outside its initiator's fragment without
    /// opting into the §3.2-footnote multi-fragment protocol — the
    /// initiation requirement would be violated at run time (§3.2).
    Fdb010,
    /// A declared multi-fragment class: legal, but commits through the
    /// two-phase protocol among the written fragments' agents (§3.2
    /// footnote).
    Fdb011,
    /// The read-access graph is not elementarily acyclic (§4.2).
    Fdb020,
    /// A class reads its own fragment: by definition (`i ≠ j`) this is
    /// *not* a RAG edge and cannot create a cycle (§4.2).
    Fdb021,
    /// The §4.2 strategy is selected but no transaction classes are
    /// declared: every update would abort as an undeclared class.
    Fdb022,
    /// A §4.4.1 majority is unreachable from the fragment's home even
    /// with every link up (§4.4.1).
    Fdb030,
    /// A §4.1 lock site is unreachable from a class initiator's home even
    /// with every link up (§4.1).
    Fdb031,
    /// A declared read is not covered by a replica at the node that would
    /// perform it (§6 partial replication).
    Fdb032,
    /// §4.1 read locks combined with a movement policy — read locks are
    /// defined for fixed agents only (§4.1/§4.4).
    Fdb033,
    /// A fragment's agent home is outside its own replica set (§6).
    Fdb034,
    /// A malformed replica set: empty, an unknown node, or an unknown
    /// fragment (§6).
    Fdb035,
    /// Deadlock-prone cyclic lock acquisition across §4.1 classes.
    Fdb040,
    /// The failure detector is enabled but no fragment runs under the
    /// §4.4.1 majority-commit policy — elections can never act, so the
    /// self-healing configuration is inert (§5).
    Fdb050,
    /// A majority-commit fragment's population is smaller than 3 with the
    /// detector enabled: an election cannot out-vote the (dead) home, so
    /// self-healing cannot recover this fragment (§5).
    Fdb051,
    /// The election timeout is zero with the detector enabled: every round
    /// aborts before a single vote can arrive (§5).
    Fdb052,
}

impl Code {
    /// The stable code string, e.g. `"FDB020"`.
    pub fn as_str(self) -> &'static str {
        match self {
            Code::Fdb001 => "FDB001",
            Code::Fdb002 => "FDB002",
            Code::Fdb003 => "FDB003",
            Code::Fdb010 => "FDB010",
            Code::Fdb011 => "FDB011",
            Code::Fdb020 => "FDB020",
            Code::Fdb021 => "FDB021",
            Code::Fdb022 => "FDB022",
            Code::Fdb030 => "FDB030",
            Code::Fdb031 => "FDB031",
            Code::Fdb032 => "FDB032",
            Code::Fdb033 => "FDB033",
            Code::Fdb034 => "FDB034",
            Code::Fdb035 => "FDB035",
            Code::Fdb040 => "FDB040",
            Code::Fdb050 => "FDB050",
            Code::Fdb051 => "FDB051",
            Code::Fdb052 => "FDB052",
        }
    }

    /// The paper section the check derives from.
    pub fn paper_section(self) -> &'static str {
        match self {
            Code::Fdb001 | Code::Fdb002 | Code::Fdb003 => "§3.1",
            Code::Fdb010 | Code::Fdb011 => "§3.2",
            Code::Fdb020 | Code::Fdb021 | Code::Fdb022 => "§4.2",
            Code::Fdb030 => "§4.4.1",
            Code::Fdb031 | Code::Fdb040 => "§4.1",
            Code::Fdb032 | Code::Fdb034 | Code::Fdb035 => "§6",
            Code::Fdb033 => "§4.1/§4.4",
            Code::Fdb050 | Code::Fdb051 | Code::Fdb052 => "§5",
        }
    }

    /// The severity this code is always emitted at.
    pub fn severity(self) -> Severity {
        match self {
            Code::Fdb011 | Code::Fdb021 => Severity::Info,
            Code::Fdb022 | Code::Fdb040 | Code::Fdb051 => Severity::Warning,
            _ => Severity::Error,
        }
    }
}

impl fmt::Display for Code {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.as_str())
    }
}

/// One finding.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Diagnostic {
    /// Stable code.
    pub code: Code,
    /// Severity (always `code.severity()`).
    pub severity: Severity,
    /// What is wrong, one line.
    pub message: String,
    /// The offending declaration, e.g. ``class `reserve` `` or
    /// `fragment F2`.
    pub subject: String,
    /// A suggested fix, when one is mechanical.
    pub help: Option<String>,
}

impl Diagnostic {
    /// Build a diagnostic at the code's canonical severity.
    pub fn new(code: Code, subject: impl Into<String>, message: impl Into<String>) -> Self {
        Diagnostic {
            code,
            severity: code.severity(),
            message: message.into(),
            subject: subject.into(),
            help: None,
        }
    }

    /// Attach a suggested fix (builder style).
    pub fn with_help(mut self, help: impl Into<String>) -> Self {
        self.help = Some(help.into());
        self
    }
}

impl fmt::Display for Diagnostic {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "{}[{}]: {} ({})",
            self.severity,
            self.code,
            self.message,
            self.code.paper_section()
        )?;
        writeln!(f, "  --> {}", self.subject)?;
        if let Some(help) = &self.help {
            writeln!(f, "  = help: {help}")?;
        }
        Ok(())
    }
}

/// All findings from one analysis run, errors first.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct Report {
    diagnostics: Vec<Diagnostic>,
}

impl Report {
    /// Wrap raw findings, sorting errors before warnings before infos
    /// (ties broken by code, then subject, for deterministic output).
    pub fn new(mut diagnostics: Vec<Diagnostic>) -> Self {
        diagnostics.sort_by(|a, b| {
            b.severity
                .cmp(&a.severity)
                .then(a.code.cmp(&b.code))
                .then(a.subject.cmp(&b.subject))
        });
        Report { diagnostics }
    }

    /// The findings, errors first.
    pub fn diagnostics(&self) -> &[Diagnostic] {
        &self.diagnostics
    }

    /// Consume into the raw findings.
    pub fn into_diagnostics(self) -> Vec<Diagnostic> {
        self.diagnostics
    }

    /// Does any finding have `code`?
    pub fn has(&self, code: Code) -> bool {
        self.diagnostics.iter().any(|d| d.code == code)
    }

    /// Number of error-severity findings.
    pub fn error_count(&self) -> usize {
        self.count(Severity::Error)
    }

    /// Number of findings at `severity`.
    pub fn count(&self, severity: Severity) -> usize {
        self.diagnostics
            .iter()
            .filter(|d| d.severity == severity)
            .count()
    }

    /// No findings at all?
    pub fn is_empty(&self) -> bool {
        self.diagnostics.is_empty()
    }

    /// Admissible ⟺ no error-severity findings.
    pub fn is_admissible(&self) -> bool {
        self.error_count() == 0
    }
}

impl fmt::Display for Report {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for d in &self.diagnostics {
            writeln!(f, "{d}")?;
        }
        write!(
            f,
            "{} error(s), {} warning(s), {} note(s)",
            self.error_count(),
            self.count(Severity::Warning),
            self.count(Severity::Info)
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn codes_are_stable_and_sectioned() {
        assert_eq!(Code::Fdb020.as_str(), "FDB020");
        assert_eq!(Code::Fdb020.paper_section(), "§4.2");
        assert_eq!(Code::Fdb030.paper_section(), "§4.4.1");
        assert_eq!(Code::Fdb021.severity(), Severity::Info);
        assert_eq!(Code::Fdb040.severity(), Severity::Warning);
        assert_eq!(Code::Fdb001.severity(), Severity::Error);
    }

    #[test]
    fn report_sorts_errors_first_and_counts() {
        let r = Report::new(vec![
            Diagnostic::new(Code::Fdb021, "class `a`", "own-fragment read"),
            Diagnostic::new(Code::Fdb020, "class `b`", "cycle"),
            Diagnostic::new(Code::Fdb040, "classes", "lock cycle"),
        ]);
        assert_eq!(r.diagnostics()[0].code, Code::Fdb020);
        assert_eq!(r.error_count(), 1);
        assert_eq!(r.count(Severity::Warning), 1);
        assert!(!r.is_admissible() || r.error_count() == 0);
        assert!(r.has(Code::Fdb021));
        assert!(!r.has(Code::Fdb001));
    }

    #[test]
    fn rendering_is_rustc_like() {
        let d = Diagnostic::new(Code::Fdb020, "class `scan` (edge F1 -> F2)", "cycle closed")
            .with_help("remove the read of F2");
        let s = d.to_string();
        assert!(s.starts_with("error[FDB020]: cycle closed (§4.2)"));
        assert!(s.contains("--> class `scan`"));
        assert!(s.contains("help: remove the read of F2"));
        let r = Report::new(vec![d]);
        assert!(r.to_string().contains("1 error(s)"));
    }
}
