//! `fragdb-check`: static admission analysis for fragdb configurations.
//!
//! Every guarantee in the paper's §4 spectrum is conditional on properties
//! of the *declared* configuration that can be checked without running
//! anything: §4.2's global serializability needs an elementarily acyclic
//! read-access graph, §4.4.1 needs a reachable majority, §4.1 needs
//! reachable lock sites and fixed agents, and the §3.2 initiation
//! requirement is a property of transaction-class declarations. This crate
//! takes a [`CheckInput`] — catalog, agent assignment, named classes,
//! topology, and the chosen [`SystemConfig`](fragdb_core::SystemConfig) —
//! and emits rustc-style [`Diagnostic`]s with stable `FDB0xx` codes, so a
//! misconfiguration is a red report naming the offending declaration, not
//! a wasted (or silently non-serializable) run.
//!
//! Three entry points:
//!
//! * [`check`] — the library API: run every analysis, get a [`Report`];
//! * [`build_admitted`] — the system hook: refuse (or warn, per
//!   [`AdmissionPolicy`]) to build a `System` from an inadmissible config;
//! * `examples/check.rs` in the workspace root — the CLI over every
//!   shipped example/experiment configuration (`-- --all-configs`), run
//!   in CI.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod admission;
mod checks;
mod diag;
mod input;

pub use admission::{admit, build_admitted, AdmissionError, AdmissionPolicy};
pub use checks::{
    check, check_classes, check_fragment_disjointness, check_lock_order, check_partial_replication,
    check_rag, check_replication, check_self_heal, check_strategy_topology, check_tokens,
};
pub use diag::{Code, Diagnostic, Report, Severity};
pub use input::{CheckInput, ClassDecl};
