//! The checks. Each function inspects declarations only — nothing here
//! executes a transaction, sends a message, or advances a clock.

use std::collections::BTreeSet;

use fragdb_core::{MovePolicy, StrategyKind};
use fragdb_graphs::{DiGraph, ReadAccessGraph};
use fragdb_model::{AgentId, Fragment, FragmentId, NodeId};
use fragdb_net::LinkState;

use crate::diag::{Code, Diagnostic, Report};
use crate::input::{CheckInput, ClassDecl};

/// Run every check and collect the findings, errors first.
pub fn check(input: &CheckInput) -> Report {
    let mut out = Vec::new();
    out.extend(check_fragment_disjointness(input.catalog.fragments()));
    out.extend(check_tokens(input));
    out.extend(check_classes(input));
    out.extend(check_rag(input));
    out.extend(check_replication(input));
    out.extend(check_partial_replication(input));
    out.extend(check_strategy_topology(input));
    out.extend(check_lock_order(input));
    out.extend(check_self_heal(input));
    Report::new(out)
}

/// FDB001 — §3.1: fragments must partition the database; no object may
/// belong to two fragments. (The catalog builder enforces this, so the
/// check matters for hand-built [`Fragment`] lists.)
pub fn check_fragment_disjointness(fragments: &[Fragment]) -> Vec<Diagnostic> {
    let mut owner: std::collections::BTreeMap<fragdb_model::ObjectId, FragmentId> =
        std::collections::BTreeMap::new();
    let mut out = Vec::new();
    for frag in fragments {
        for &object in &frag.objects {
            if let Some(&first) = owner.get(&object) {
                out.push(
                    Diagnostic::new(
                        Code::Fdb001,
                        format!("fragment {}", frag.id),
                        format!(
                            "object {object} belongs to both fragment {first} and fragment {}",
                            frag.id
                        ),
                    )
                    .with_help("fragments must be disjoint; assign the object to exactly one"),
                );
            } else {
                owner.insert(object, frag.id);
            }
        }
    }
    out
}

/// FDB002/FDB003 — §3.1: exactly one agent token per catalog fragment,
/// homed at an existing node; node agents live at their own node.
pub fn check_tokens(input: &CheckInput) -> Vec<Diagnostic> {
    let mut out = Vec::new();
    let n = input.topology.node_count();
    let mut seen: BTreeSet<FragmentId> = BTreeSet::new();
    for &(fragment, agent, home) in input.agents {
        let subject = format!("agent of fragment {fragment}");
        if input.catalog.fragment(fragment).is_err() {
            out.push(
                Diagnostic::new(
                    Code::Fdb002,
                    subject.clone(),
                    format!("agent assigned to undeclared fragment {fragment}"),
                )
                .with_help("declare the fragment in the catalog or drop the assignment"),
            );
        }
        if !seen.insert(fragment) {
            out.push(
                Diagnostic::new(
                    Code::Fdb002,
                    subject.clone(),
                    format!("fragment {fragment} assigned more than one agent token"),
                )
                .with_help("§3.1 mints exactly one token per fragment"),
            );
        }
        if home.0 >= n {
            out.push(Diagnostic::new(
                Code::Fdb003,
                subject.clone(),
                format!("home {home} does not exist (topology has {n} nodes)"),
            ));
        }
        if let AgentId::Node(node) = agent {
            if node != home {
                out.push(
                    Diagnostic::new(
                        Code::Fdb003,
                        subject,
                        format!("node agent {node} homed at {home}"),
                    )
                    .with_help("a node agent is the node: its home must be itself"),
                );
            }
        }
    }
    for frag in input.catalog.fragments() {
        if !seen.contains(&frag.id) {
            out.push(
                Diagnostic::new(
                    Code::Fdb002,
                    format!("fragment {}", frag.id),
                    format!("fragment {} ({}) has no agent token", frag.id, frag.name),
                )
                .with_help("every fragment needs exactly one agent (§3.1)"),
            );
        }
    }
    out
}

/// FDB002/FDB010/FDB011 — §3.2: classes may only reference declared
/// fragments; writes outside the initiator's fragment violate the
/// initiation requirement unless the class opts into the multi-fragment
/// protocol, which is flagged informationally.
pub fn check_classes(input: &CheckInput) -> Vec<Diagnostic> {
    let mut out = Vec::new();
    for class in input.classes {
        let subject = format!("class `{}`", class.name);
        for f in std::iter::once(class.initiator)
            .chain(class.reads.iter().copied())
            .chain(class.writes.iter().copied())
            .collect::<BTreeSet<_>>()
        {
            if input.catalog.fragment(f).is_err() {
                out.push(Diagnostic::new(
                    Code::Fdb002,
                    subject.clone(),
                    format!("references undeclared fragment {f}"),
                ));
            }
        }
        let foreign: Vec<FragmentId> = class.foreign_writes().collect();
        if !foreign.is_empty() && !class.multi_fragment {
            let list = join_frags(&foreign);
            out.push(
                Diagnostic::new(
                    Code::Fdb010,
                    subject.clone(),
                    format!(
                        "declares writes to {list} outside its initiator's fragment {} \
                         — instances would abort with an initiation violation",
                        class.initiator
                    ),
                )
                .with_help(
                    "let the written fragment's own agent initiate the update, or declare \
                     the class multi-fragment (§3.2 footnote, two-phase commit)",
                ),
            );
        }
        if class.multi_fragment && !foreign.is_empty() {
            out.push(
                Diagnostic::new(
                    Code::Fdb011,
                    subject,
                    format!(
                        "multi-fragment class writing {} — commits atomically via \
                         two-phase commit among the fragments' agents",
                        join_frags(&class.writes.iter().copied().collect::<Vec<_>>())
                    ),
                )
                .with_help("expect 2PC latency and blocking on partition (§3.2 footnote)"),
            );
        }
    }
    out
}

/// FDB020/FDB021/FDB022 — §4.2: when any fragment runs under the
/// acyclic-RAG strategy, the read-access graph induced by the declared
/// classes must be elementarily acyclic. FDB020 reports the *minimal*
/// edge set whose removal restores acyclicity, each edge annotated with
/// the classes inducing it.
pub fn check_rag(input: &CheckInput) -> Vec<Diagnostic> {
    if !fragments_with(input, |s| matches!(s, StrategyKind::AcyclicRag { .. })) {
        return Vec::new();
    }
    let mut out = Vec::new();
    // §6 mixtures: the RAG restriction binds only the classes initiated
    // in fragments that run under §4.2 — a lock-group class reading
    // across its own group is §4.1's business, not an RAG edge.
    let rag_classes: Vec<&ClassDecl> = input
        .classes
        .iter()
        .filter(|c| {
            matches!(
                strategy_for(input, c.initiator),
                StrategyKind::AcyclicRag { .. }
            )
        })
        .collect();
    if rag_classes.is_empty() {
        out.push(
            Diagnostic::new(
                Code::Fdb022,
                "strategy `acyclic-rag`".to_string(),
                "§4.2 selected with no declared transaction classes — every update \
                 would abort as an undeclared class",
            )
            .with_help("declare the workload's classes, or choose §4.1/§4.3"),
        );
        return out;
    }
    let decls: Vec<_> = rag_classes.iter().map(|c| c.to_access()).collect();
    let rag = ReadAccessGraph::from_decls(&decls);
    for (a, b) in rag.removal_set() {
        let inducers: Vec<&&ClassDecl> = rag_classes
            .iter()
            .filter(|c| c.initiator == a && c.reads.contains(&b))
            .collect();
        let names = inducers
            .iter()
            .map(|c| format!("`{}`", c.name))
            .collect::<Vec<_>>()
            .join(", ");
        out.push(
            Diagnostic::new(
                Code::Fdb020,
                format!("edge {a} -> {b} (induced by {names})"),
                format!(
                    "read-access graph is not elementarily acyclic; removing the \
                     read of {b} by {names} restores a forest"
                ),
            )
            .with_help(format!(
                "drop the read of {b} from {names}, split the class, or run \
                 {a} under §4.1 locks / §4.3 unrestricted instead"
            )),
        );
    }
    // Own-fragment reads: not edges by definition (i ≠ j) — say so.
    for f in rag.self_reads() {
        let readers = rag_classes
            .iter()
            .filter(|c| c.initiator == f && c.reads.contains(&f))
            .map(|c| format!("`{}`", c.name))
            .collect::<Vec<_>>()
            .join(", ");
        out.push(Diagnostic::new(
            Code::Fdb021,
            format!("fragment {f} (classes {readers})"),
            format!(
                "own-fragment reads of {f} are not read-access-graph edges \
                 (the definition requires i ≠ j) and cannot create a cycle"
            ),
        ));
    }
    out
}

/// FDB034/FDB035 — §6: replica sets must name declared fragments and
/// existing nodes, be non-empty, and contain the fragment's agent home.
pub fn check_replication(input: &CheckInput) -> Vec<Diagnostic> {
    let mut out = Vec::new();
    let n = input.topology.node_count();
    for (&fragment, set) in &input.config.replica_sets {
        let subject = format!("replica set of fragment {fragment}");
        if input.catalog.fragment(fragment).is_err() {
            out.push(Diagnostic::new(
                Code::Fdb035,
                subject.clone(),
                format!("replica set declared for undeclared fragment {fragment}"),
            ));
            continue;
        }
        if set.is_empty() {
            out.push(
                Diagnostic::new(Code::Fdb035, subject.clone(), "replica set is empty")
                    .with_help("a fragment must be stored somewhere"),
            );
            continue;
        }
        for &replica in set {
            if replica.0 >= n {
                out.push(Diagnostic::new(
                    Code::Fdb035,
                    subject.clone(),
                    format!("replica {replica} does not exist (topology has {n} nodes)"),
                ));
            }
        }
        if let Some(home) = input.home_of(fragment) {
            if !set.contains(&home) {
                out.push(
                    Diagnostic::new(
                        Code::Fdb034,
                        subject,
                        format!("agent home {home} holds no replica of its own fragment"),
                    )
                    .with_help(format!("add {home} to the replica set")),
                );
            }
        }
    }
    out
}

/// FDB060/FDB061/FDB062 — §6 partial-replication quality checks over the
/// *declared* replica sets (malformedness itself is FDB034/FDB035's job):
///
/// * every replica must be reachable from the fragment's home with all
///   links up, or it silently diverges from the first commit (FDB060);
/// * an even-sized replica set under §4.4.1 majority commit pays an extra
///   broadcast without tolerating an extra failure (FDB061);
/// * a replica set naming every node is just full replication spelled
///   out, so the fan-out reduction it suggests never happens (FDB062).
pub fn check_partial_replication(input: &CheckInput) -> Vec<Diagnostic> {
    let mut out = Vec::new();
    let up = LinkState::all_up();
    let n = input.topology.node_count();
    for (&fragment, set) in &input.config.replica_sets {
        if input.catalog.fragment(fragment).is_err() || set.is_empty() {
            continue; // malformedness already reported (FDB035)
        }
        let valid: Vec<NodeId> = set.iter().copied().filter(|r| r.0 < n).collect();
        let subject = format!("replica set of fragment {fragment}");
        if let Some(home) = input.home_of(fragment) {
            if home.0 < n && set.contains(&home) {
                for &replica in &valid {
                    if replica != home && !input.topology.connected(home, replica, &up) {
                        out.push(
                            Diagnostic::new(
                                Code::Fdb060,
                                subject.clone(),
                                format!(
                                    "replica {replica} is unreachable from home {home} even \
                                     with every link up — it can never receive an update \
                                     and diverges from the first commit onward"
                                ),
                            )
                            .with_help(format!(
                                "add a link toward {replica}, or drop it from the replica set"
                            )),
                        );
                    }
                }
            }
        }
        if move_policy_for(input, fragment).needs_majority_commit()
            && valid.len() >= 2
            && valid.len().is_multiple_of(2)
        {
            out.push(
                Diagnostic::new(
                    Code::Fdb061,
                    subject.clone(),
                    format!(
                        "even population of {} under §4.4.1 majority commit needs {} \
                         acknowledgments — the same as {} replicas, so the extra \
                         replica adds cost but no fault tolerance",
                        valid.len(),
                        valid.len() / 2 + 1,
                        valid.len() - 1
                    ),
                )
                .with_help("shrink to the odd size, or grow by two for real tolerance"),
            );
        }
        if valid.len() as u32 == n {
            out.push(
                Diagnostic::new(
                    Code::Fdb062,
                    subject,
                    format!(
                        "replica set names all {n} nodes — identical to the \
                         full-replication default, no fan-out is saved"
                    ),
                )
                .with_help("drop the declaration, or shrink the set to the actual readers"),
            );
        }
    }
    out
}

/// FDB030/FDB031/FDB032/FDB033 — strategy/topology compatibility:
///
/// * §4.1 read locks require fixed agents (FDB033) and every lock site
///   reachable from each initiator's home in the base topology (FDB031);
/// * §4.4.1 majority commit requires a reachable majority of the
///   fragment's population from its home (FDB030);
/// * under §6 partial replication, an update class's home must hold a
///   replica of everything it reads, unless the reads go through §4.1
///   lock sites (FDB032).
pub fn check_strategy_topology(input: &CheckInput) -> Vec<Diagnostic> {
    let mut out = Vec::new();
    let up = LinkState::all_up();
    let n = input.topology.node_count();

    for frag in input.catalog.fragments() {
        let strategy = strategy_for(input, frag.id);
        let movement = move_policy_for(input, frag.id);
        if strategy.uses_read_locks() && *movement != MovePolicy::Fixed {
            out.push(
                Diagnostic::new(
                    Code::Fdb033,
                    format!("fragment {}", frag.id),
                    "§4.1 read locks combined with a movement policy — read locks \
                     are defined for fixed agents only",
                )
                .with_help("use MovePolicy::Fixed for this fragment, or a lock-free strategy"),
            );
        }
        if movement.needs_majority_commit() {
            let Some(home) = input.home_of(frag.id) else {
                continue; // missing agent already reported (FDB002)
            };
            if home.0 >= n {
                continue; // reported by FDB003
            }
            let population: Vec<NodeId> = match input.config.replica_sets.get(&frag.id) {
                Some(set) => set.iter().copied().filter(|r| r.0 < n).collect(),
                None => input.topology.nodes().collect(),
            };
            if population.is_empty() {
                continue; // reported by FDB035
            }
            let majority = population.len() / 2 + 1;
            let reachable = population
                .iter()
                .filter(|&&m| m == home || input.topology.connected(home, m, &up))
                .count();
            if reachable < majority {
                out.push(
                    Diagnostic::new(
                        Code::Fdb030,
                        format!("fragment {} (home {home})", frag.id),
                        format!(
                            "§4.4.1 majority commit needs {majority} of {} population \
                             members, but only {reachable} are reachable from {home} \
                             even with every link up",
                            population.len()
                        ),
                    )
                    .with_help("add links, add replicas near the home, or choose another policy"),
                );
            }
        }
    }

    for class in input.classes {
        let strategy = strategy_for(input, class.initiator);
        let Some(home) = input.home_of(class.initiator) else {
            continue;
        };
        if home.0 >= n {
            continue;
        }
        let foreign_reads: Vec<FragmentId> = class
            .reads
            .iter()
            .copied()
            .filter(|&f| f != class.initiator && input.catalog.fragment(f).is_ok())
            .collect();
        if strategy.uses_read_locks() {
            // §4.1: reads are served by the read fragment's lock site.
            for f in foreign_reads {
                let Some(site) = input.home_of(f) else {
                    continue;
                };
                if site.0 < n && site != home && !input.topology.connected(home, site, &up) {
                    out.push(
                        Diagnostic::new(
                            Code::Fdb031,
                            format!("class `{}`", class.name),
                            format!(
                                "lock site {site} of read fragment {f} is unreachable \
                                 from initiator home {home} even with every link up"
                            ),
                        )
                        .with_help("no instance of this class can ever acquire its locks"),
                    );
                }
            }
        } else if !class.is_read_only() {
            // Update classes execute at the initiator's home; every read
            // is served from that node's replicas.
            for f in foreign_reads {
                let covered = input
                    .config
                    .replica_sets
                    .get(&f)
                    .is_none_or(|set| set.contains(&home));
                if !covered {
                    out.push(
                        Diagnostic::new(
                            Code::Fdb032,
                            format!("class `{}`", class.name),
                            format!(
                                "reads fragment {f}, but initiator home {home} holds \
                                 no replica of {f} — instances would abort"
                            ),
                        )
                        .with_help(format!(
                            "add {home} to {f}'s replica set, or read through §4.1 locks"
                        )),
                    );
                }
            }
        }
    }
    out
}

/// FDB040 — §4.1: conservative deadlock analysis. Build the directed
/// "lock-order" graph: an edge `F_i → F_j` for every update class under
/// read locks that is initiated by `A(F_i)` and reads `F_j`. Such a class
/// holds exclusive locks at its home while waiting on shared locks at
/// `F_j`'s site; a directed cycle means two classes can block each other —
/// the run-time deadlock the §4.1 implementation resolves by timeout.
pub fn check_lock_order(input: &CheckInput) -> Vec<Diagnostic> {
    let mut g: DiGraph<FragmentId> = DiGraph::new();
    let mut any = false;
    for class in input.classes {
        if class.is_read_only() || !strategy_for(input, class.initiator).uses_read_locks() {
            continue;
        }
        for f in class
            .reads
            .iter()
            .copied()
            .filter(|&f| f != class.initiator)
        {
            g.add_edge(class.initiator, f);
            any = true;
        }
    }
    if !any {
        return Vec::new();
    }
    let Some(cycle) = g.find_cycle() else {
        return Vec::new();
    };
    let mut inducers: Vec<String> = Vec::new();
    for (i, &a) in cycle.iter().enumerate() {
        let b = cycle[(i + 1) % cycle.len()];
        for c in input.classes {
            if !c.is_read_only() && c.initiator == a && c.reads.contains(&b) {
                let name = format!("`{}`", c.name);
                if !inducers.contains(&name) {
                    inducers.push(name);
                }
            }
        }
    }
    let path = cycle
        .iter()
        .map(|f| f.to_string())
        .collect::<Vec<_>>()
        .join(" -> ");
    vec![Diagnostic::new(
        Code::Fdb040,
        format!("classes {}", inducers.join(", ")),
        format!(
            "cyclic lock acquisition {path} -> {}: instances of these classes can \
             deadlock and will be resolved only by the lock timeout",
            cycle[0]
        ),
    )
    .with_help("break the cycle by reordering reads into one direction or splitting a class")]
}

/// FDB050/FDB051/FDB052 — §5 self-healing token recovery. Elections act
/// only on fragments under the §4.4.1 majority-commit policy (the one
/// policy whose recovery needs nothing from the dead home), so with the
/// detector enabled the configuration must give it something to protect
/// (FDB050), each protected fragment a population an election can win
/// (FDB051), and the rounds a non-zero patience (FDB052).
pub fn check_self_heal(input: &CheckInput) -> Vec<Diagnostic> {
    if !input.config.detector.enabled() {
        return Vec::new();
    }
    let mut out = Vec::new();
    let n = input.topology.node_count();
    let protected: Vec<&Fragment> = input
        .catalog
        .fragments()
        .iter()
        .filter(|f| move_policy_for(input, f.id).needs_majority_commit())
        .collect();
    if protected.is_empty() {
        out.push(
            Diagnostic::new(
                Code::Fdb050,
                "detector config",
                "failure detector enabled but no fragment runs under §4.4.1 majority \
                 commit — elections can never act, the heartbeat traffic buys nothing",
            )
            .with_help(
                "run at least one fragment under MovePolicy::MajorityCommit, \
                 or disable the detector",
            ),
        );
    }
    for frag in protected {
        let population = match input.config.replica_sets.get(&frag.id) {
            Some(set) => set.iter().filter(|r| r.0 < n).count(),
            None => n as usize,
        };
        if population < 3 {
            out.push(
                Diagnostic::new(
                    Code::Fdb051,
                    format!("fragment {}", frag.id),
                    format!(
                        "population of {population} cannot elect around a dead home — \
                         a majority of {} must include it",
                        population / 2 + 1
                    ),
                )
                .with_help("replicate the fragment at 3 or more nodes"),
            );
        }
    }
    if input.config.detector.election_timeout.micros() == 0 {
        out.push(
            Diagnostic::new(
                Code::Fdb052,
                "detector config",
                "election timeout is zero — every round aborts before a vote can arrive",
            )
            .with_help("set election_timeout to at least one network round trip"),
        );
    } else if input.config.detector.election_timeout < input.config.detector.detection_bound() {
        // A round that expires before the detector can even confirm a
        // failure restarts against the same silence, forever: livelock,
        // not recovery.
        out.push(
            Diagnostic::new(
                Code::Fdb053,
                "detector config",
                format!(
                    "election timeout ({:?}) is shorter than the detection bound ({:?}) — \
                     rounds abort and restart faster than a failure can be confirmed",
                    input.config.detector.election_timeout,
                    input.config.detector.detection_bound(),
                ),
            )
            .with_help("raise election_timeout to at least heartbeat_period * (suspect_after + 1)"),
        );
    }
    out
}

// ---- helpers ----------------------------------------------------------

fn strategy_for<'a>(input: &'a CheckInput, fragment: FragmentId) -> &'a StrategyKind {
    input
        .config
        .strategy_overrides
        .get(&fragment)
        .unwrap_or(&input.config.strategy)
}

fn move_policy_for<'a>(input: &'a CheckInput, fragment: FragmentId) -> &'a MovePolicy {
    input
        .config
        .move_overrides
        .get(&fragment)
        .unwrap_or(&input.config.move_policy)
}

fn fragments_with(input: &CheckInput, pred: impl Fn(&StrategyKind) -> bool) -> bool {
    input
        .catalog
        .fragments()
        .iter()
        .any(|f| pred(strategy_for(input, f.id)))
}

fn join_frags(frags: &[FragmentId]) -> String {
    frags
        .iter()
        .map(|f| f.to_string())
        .collect::<Vec<_>>()
        .join(", ")
}
