//! The declared configuration the analyzer consumes.
//!
//! [`ClassDecl`] extends the runtime [`AccessDecl`] with a *name* (so
//! diagnostics can point at the offending declaration) and an explicit
//! *write set* (so the §3.2 initiation requirement is checkable from the
//! declaration alone — `AccessDecl` can only say "updates the initiator").

use std::collections::BTreeSet;

use fragdb_core::SystemConfig;
use fragdb_model::{AccessDecl, AgentId, FragmentCatalog, FragmentId, NodeId};
use fragdb_net::Topology;

/// A named transaction-class declaration.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ClassDecl {
    /// Human-readable name used in diagnostics.
    pub name: String,
    /// Fragment whose agent initiates instances of the class.
    pub initiator: FragmentId,
    /// Fragments instances read (may include `initiator`).
    pub reads: BTreeSet<FragmentId>,
    /// Fragments instances write. `{initiator}` for ordinary update
    /// classes, empty for read-only classes.
    pub writes: BTreeSet<FragmentId>,
    /// `true` when the class opts into the §3.2-footnote multi-fragment
    /// protocol (atomic two-phase commit among the written fragments'
    /// agents), which is the only sanctioned way to write outside the
    /// initiator's fragment.
    pub multi_fragment: bool,
}

impl ClassDecl {
    /// An ordinary update class: writes only the initiator's fragment.
    pub fn update(
        name: impl Into<String>,
        initiator: FragmentId,
        reads: impl IntoIterator<Item = FragmentId>,
    ) -> Self {
        ClassDecl {
            name: name.into(),
            initiator,
            reads: reads.into_iter().collect(),
            writes: [initiator].into_iter().collect(),
            multi_fragment: false,
        }
    }

    /// A read-only class.
    pub fn read_only(
        name: impl Into<String>,
        initiator: FragmentId,
        reads: impl IntoIterator<Item = FragmentId>,
    ) -> Self {
        ClassDecl {
            name: name.into(),
            initiator,
            reads: reads.into_iter().collect(),
            writes: BTreeSet::new(),
            multi_fragment: false,
        }
    }

    /// A §3.2-footnote multi-fragment class committing via two-phase
    /// commit among the written fragments' agents.
    pub fn multi_update(
        name: impl Into<String>,
        initiator: FragmentId,
        reads: impl IntoIterator<Item = FragmentId>,
        writes: impl IntoIterator<Item = FragmentId>,
    ) -> Self {
        ClassDecl {
            name: name.into(),
            initiator,
            reads: reads.into_iter().collect(),
            writes: writes.into_iter().collect(),
            multi_fragment: true,
        }
    }

    /// Wrap a runtime [`AccessDecl`] under a name.
    pub fn from_access(name: impl Into<String>, decl: &AccessDecl) -> Self {
        ClassDecl {
            name: name.into(),
            initiator: decl.initiator,
            reads: decl.reads.clone(),
            writes: if decl.updates {
                [decl.initiator].into_iter().collect()
            } else {
                BTreeSet::new()
            },
            multi_fragment: false,
        }
    }

    /// Project back to the runtime declaration the §4.2 strategy consumes.
    pub fn to_access(&self) -> AccessDecl {
        if self.writes.is_empty() {
            AccessDecl::read_only(self.initiator, self.reads.iter().copied())
        } else {
            AccessDecl::update(self.initiator, self.reads.iter().copied())
        }
    }

    /// Is the class read-only (declares no writes)?
    pub fn is_read_only(&self) -> bool {
        self.writes.is_empty()
    }

    /// Fragments written outside the initiator's own fragment.
    pub fn foreign_writes(&self) -> impl Iterator<Item = FragmentId> + '_ {
        let own = self.initiator;
        self.writes.iter().copied().filter(move |f| *f != own)
    }
}

/// Everything the static analyzer looks at — exactly what
/// [`fragdb_core::System::build`] would consume, plus the named classes.
/// Nothing here is executed.
pub struct CheckInput<'a> {
    /// The node graph (base connectivity; all links assumed up).
    pub topology: &'a Topology,
    /// Fragment → object map.
    pub catalog: &'a FragmentCatalog,
    /// `(fragment, agent, home)` token assignment.
    pub agents: &'a [(FragmentId, AgentId, NodeId)],
    /// The declared transaction classes.
    pub classes: &'a [ClassDecl],
    /// Strategy, movement, and replication choices.
    pub config: &'a SystemConfig,
}

impl CheckInput<'_> {
    /// The declared home of `fragment`'s agent, if assigned.
    pub(crate) fn home_of(&self, fragment: FragmentId) -> Option<NodeId> {
        self.agents
            .iter()
            .find(|(f, _, _)| *f == fragment)
            .map(|&(_, _, home)| home)
    }

    /// The runtime access declarations implied by the classes.
    pub fn access_decls(&self) -> Vec<AccessDecl> {
        self.classes.iter().map(ClassDecl::to_access).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn constructors_shape_the_write_set() {
        let f = FragmentId;
        let u = ClassDecl::update("u", f(0), [f(0), f(1)]);
        assert_eq!(u.writes.iter().copied().collect::<Vec<_>>(), vec![f(0)]);
        assert!(!u.is_read_only());
        assert_eq!(u.foreign_writes().count(), 0);

        let r = ClassDecl::read_only("r", f(1), [f(0)]);
        assert!(r.is_read_only());
        assert!(!r.to_access().updates);

        let m = ClassDecl::multi_update("m", f(0), [f(0)], [f(0), f(2)]);
        assert!(m.multi_fragment);
        assert_eq!(m.foreign_writes().collect::<Vec<_>>(), vec![f(2)]);
    }

    #[test]
    fn from_access_round_trips() {
        let d = AccessDecl::update(FragmentId(2), [FragmentId(1), FragmentId(2)]);
        let c = ClassDecl::from_access("w", &d);
        assert_eq!(c.to_access(), d);
    }
}
