//! The admission hook: refuse (or merely warn about) a run whose declared
//! configuration fails the static checks, *before* anything executes.

use std::fmt;

use fragdb_core::{BuildError, System, SystemConfig};
use fragdb_model::{AgentId, FragmentCatalog, FragmentId, NodeId};
use fragdb_net::Topology;

use crate::checks::check;
use crate::diag::Report;
use crate::input::{CheckInput, ClassDecl};

/// What to do when admission finds error-severity diagnostics.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum AdmissionPolicy {
    /// Refuse to start the run (the default posture for CI and harnesses).
    Enforce,
    /// Start anyway; the caller inspects the report (useful when
    /// deliberately demonstrating a misconfiguration, as experiments do).
    Warn,
}

/// Why an admitted build did not produce a [`System`].
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum AdmissionError {
    /// The static checks found errors and the policy was
    /// [`AdmissionPolicy::Enforce`].
    Rejected(Report),
    /// The checks passed (or were only warnings) but [`System::build`]
    /// still refused the configuration.
    Build(BuildError),
}

impl fmt::Display for AdmissionError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            AdmissionError::Rejected(report) => {
                writeln!(f, "configuration refused admission:")?;
                write!(f, "{report}")
            }
            AdmissionError::Build(e) => write!(f, "system build failed: {e}"),
        }
    }
}

impl std::error::Error for AdmissionError {}

impl From<BuildError> for AdmissionError {
    fn from(e: BuildError) -> Self {
        AdmissionError::Build(e)
    }
}

/// Run the checks and apply `policy`: `Ok(report)` means the run may
/// start (the report may still carry warnings/infos, and errors under
/// [`AdmissionPolicy::Warn`]).
pub fn admit(input: &CheckInput, policy: AdmissionPolicy) -> Result<Report, AdmissionError> {
    let report = check(input);
    if policy == AdmissionPolicy::Enforce && !report.is_admissible() {
        return Err(AdmissionError::Rejected(report));
    }
    Ok(report)
}

/// Check first, build second: the admission-gated replacement for calling
/// [`System::build`] directly. Returns the built system together with the
/// (possibly warning-laden) report.
pub fn build_admitted(
    topology: Topology,
    catalog: FragmentCatalog,
    agents: Vec<(FragmentId, AgentId, NodeId)>,
    classes: &[ClassDecl],
    config: SystemConfig,
    policy: AdmissionPolicy,
) -> Result<(System, Report), AdmissionError> {
    let report = admit(
        &CheckInput {
            topology: &topology,
            catalog: &catalog,
            agents: &agents,
            classes,
            config: &config,
        },
        policy,
    )?;
    let system = System::build(topology, catalog, agents, config)?;
    Ok((system, report))
}
