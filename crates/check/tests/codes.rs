//! One test per `FDB0xx` code, plus the acceptance case: a deliberately
//! mutually-reading two-class §4.2 configuration must be rejected with a
//! diagnostic naming both inducing classes and the edge to remove.

use std::collections::BTreeSet;

use fragdb_check::{
    admit, build_admitted, check, check_fragment_disjointness, AdmissionError, AdmissionPolicy,
    CheckInput, ClassDecl, Code, Severity,
};
use fragdb_core::{DetectorConfig, MovePolicy, StrategyKind, SystemConfig};
use fragdb_model::{AgentId, Fragment, FragmentCatalog, FragmentId, NodeId, ObjectId};
use fragdb_net::Topology;
use fragdb_sim::SimDuration;

fn f(i: u32) -> FragmentId {
    FragmentId(i)
}

fn n(i: u32) -> NodeId {
    NodeId(i)
}

/// `k` fragments of 2 objects each, one node-agent per fragment at node i,
/// full mesh over `nodes` nodes.
fn schema(
    k: u32,
    nodes: u32,
) -> (
    FragmentCatalog,
    Vec<(FragmentId, AgentId, NodeId)>,
    Topology,
) {
    let mut b = FragmentCatalog::builder();
    let frags: Vec<_> = (0..k)
        .map(|i| b.add_fragment(format!("F{i}"), 2).0)
        .collect();
    let agents = frags
        .iter()
        .map(|&fr| (fr, AgentId::Node(n(fr.0)), n(fr.0)))
        .collect();
    (
        b.build(),
        agents,
        Topology::full_mesh(nodes, SimDuration::from_millis(1)),
    )
}

fn acyclic_rag_config(classes: &[ClassDecl], seed: u64) -> SystemConfig {
    SystemConfig::unrestricted(seed).with_strategy(StrategyKind::AcyclicRag {
        decls: classes.iter().map(ClassDecl::to_access).collect(),
        allow_violating_read_only: true,
    })
}

#[test]
fn fdb001_overlapping_fragments() {
    let frags = vec![
        Fragment::new(f(0), "A", vec![ObjectId(0), ObjectId(1)]),
        Fragment::new(f(1), "B", vec![ObjectId(1), ObjectId(2)]),
    ];
    let out = check_fragment_disjointness(&frags);
    assert_eq!(out.len(), 1);
    assert_eq!(out[0].code, Code::Fdb001);
    assert!(out[0].message.contains("x1"), "{}", out[0]);
    // A proper catalog is clean.
    let (catalog, _, _) = schema(2, 2);
    assert!(check_fragment_disjointness(catalog.fragments()).is_empty());
}

#[test]
fn fdb002_token_problems() {
    let (catalog, mut agents, topology) = schema(2, 3);
    // Missing agent for F1, duplicate for F0, and one for a ghost fragment.
    agents.remove(1);
    agents.push((f(0), AgentId::User(fragdb_model::UserId(1)), n(1)));
    agents.push((f(9), AgentId::User(fragdb_model::UserId(2)), n(2)));
    let config = SystemConfig::unrestricted(1);
    let report = check(&CheckInput {
        topology: &topology,
        catalog: &catalog,
        agents: &agents,
        classes: &[],
        config: &config,
    });
    let fdb002: Vec<_> = report
        .diagnostics()
        .iter()
        .filter(|d| d.code == Code::Fdb002)
        .collect();
    assert_eq!(fdb002.len(), 3, "missing + duplicate + unknown: {report}");
    assert!(!report.is_admissible());
}

#[test]
fn fdb003_bad_homes() {
    let (catalog, _, topology) = schema(2, 2);
    // F0's node agent homed at a foreign node; F1's home out of range.
    let agents = vec![
        (f(0), AgentId::Node(n(0)), n(1)),
        (f(1), AgentId::Node(n(7)), n(7)),
    ];
    let config = SystemConfig::unrestricted(1);
    let report = check(&CheckInput {
        topology: &topology,
        catalog: &catalog,
        agents: &agents,
        classes: &[],
        config: &config,
    });
    assert_eq!(
        report
            .diagnostics()
            .iter()
            .filter(|d| d.code == Code::Fdb003)
            .count(),
        2,
        "{report}"
    );
}

#[test]
fn fdb010_foreign_write_without_2pc_and_fdb011_with() {
    let (catalog, agents, topology) = schema(2, 2);
    let bad = ClassDecl {
        name: "rogue".into(),
        initiator: f(0),
        reads: BTreeSet::new(),
        writes: [f(1)].into_iter().collect(),
        multi_fragment: false,
    };
    let sanctioned = ClassDecl::multi_update("transfer", f(0), [f(0)], [f(0), f(1)]);
    let config = SystemConfig::unrestricted(1);
    let report = check(&CheckInput {
        topology: &topology,
        catalog: &catalog,
        agents: &agents,
        classes: &[bad, sanctioned],
        config: &config,
    });
    let d010 = report
        .diagnostics()
        .iter()
        .find(|d| d.code == Code::Fdb010)
        .expect("rogue write flagged");
    assert!(d010.subject.contains("rogue"));
    assert_eq!(d010.severity, Severity::Error);
    let d011 = report
        .diagnostics()
        .iter()
        .find(|d| d.code == Code::Fdb011)
        .expect("2PC class noted");
    assert!(d011.subject.contains("transfer"));
    assert_eq!(d011.severity, Severity::Info);
}

/// The acceptance criterion: two classes reading each other under §4.2.
#[test]
fn fdb020_mutually_reading_classes_are_rejected_with_edge_and_classes() {
    let (catalog, agents, topology) = schema(2, 2);
    let classes = vec![
        ClassDecl::update("post-activity", f(0), [f(0), f(1)]),
        ClassDecl::update("post-balance", f(1), [f(1), f(0)]),
    ];
    let config = acyclic_rag_config(&classes, 7);
    let report = match build_admitted(
        topology,
        catalog,
        agents,
        &classes,
        config,
        AdmissionPolicy::Enforce,
    ) {
        Err(AdmissionError::Rejected(report)) => report,
        Err(other) => panic!("expected admission rejection, got {other}"),
        Ok(_) => panic!("mutually-reading §4.2 config was admitted"),
    };
    let d = report
        .diagnostics()
        .iter()
        .find(|d| d.code == Code::Fdb020)
        .expect("FDB020 present");
    // The antiparallel pair F0<->F1: the second directed edge closes the
    // cycle, and the diagnostic names the edge and its inducing class;
    // the other class of the pair appears in the help's alternatives.
    assert!(d.subject.contains("F1 -> F0"), "edge named: {d}");
    assert!(d.subject.contains("post-balance"), "inducing class: {d}");
    let whole = report.to_string();
    assert!(
        whole.contains("post-activity") && whole.contains("post-balance"),
        "both classes of the mutual read appear in the report:\n{whole}"
    );
}

/// The parallel-edge case: two *distinct classes* inducing F0->F1 and
/// F1->F0 is exactly the two-parallel-undirected-edges cycle of §4.2.
#[test]
fn fdb020_parallel_edge_case_reports_minimal_removal() {
    let (catalog, agents, topology) = schema(3, 3);
    // Chain F0->F1, F1->F2 (fine) plus the antiparallel F1->F0 (cycle).
    let classes = vec![
        ClassDecl::update("a", f(0), [f(1)]),
        ClassDecl::update("b", f(1), [f(2)]),
        ClassDecl::update("c", f(1), [f(0)]),
    ];
    let config = acyclic_rag_config(&classes, 7);
    let report = check(&CheckInput {
        topology: &topology,
        catalog: &catalog,
        agents: &agents,
        classes: &classes,
        config: &config,
    });
    let cycles: Vec<_> = report
        .diagnostics()
        .iter()
        .filter(|d| d.code == Code::Fdb020)
        .collect();
    assert_eq!(cycles.len(), 1, "minimal removal set is one edge: {report}");
    assert!(cycles[0].subject.contains("F1 -> F0"));
    assert!(cycles[0].subject.contains("`c`"));
}

#[test]
fn fdb021_own_fragment_read_is_informational() {
    let (catalog, agents, topology) = schema(2, 2);
    let classes = vec![ClassDecl::update("self-scan", f(0), [f(0)])];
    let config = acyclic_rag_config(&classes, 7);
    let report = check(&CheckInput {
        topology: &topology,
        catalog: &catalog,
        agents: &agents,
        classes: &classes,
        config: &config,
    });
    let d = report
        .diagnostics()
        .iter()
        .find(|d| d.code == Code::Fdb021)
        .expect("own-fragment read surfaced");
    assert_eq!(d.severity, Severity::Info);
    assert!(d.subject.contains("self-scan"));
    assert!(report.is_admissible(), "info does not block admission");
}

#[test]
fn fdb022_acyclic_rag_without_classes() {
    let (catalog, agents, topology) = schema(1, 1);
    let config = acyclic_rag_config(&[], 7);
    let report = check(&CheckInput {
        topology: &topology,
        catalog: &catalog,
        agents: &agents,
        classes: &[],
        config: &config,
    });
    assert!(report.has(Code::Fdb022));
    assert!(report.is_admissible(), "a warning, not an error");
}

#[test]
fn fdb030_majority_unreachable() {
    // Line topology 0-1-2 minus links: use two disconnected pairs. Node 0
    // alone cannot reach a majority of 5 under majority commit.
    let mut topology = Topology::new(5);
    topology.add_link(n(0), n(1), SimDuration::from_millis(1));
    // Nodes 2,3,4 unreachable from 0.
    let (catalog, agents, _) = schema(1, 5);
    let config = SystemConfig::unrestricted(1).with_move_policy(MovePolicy::MajorityCommit {
        timeout: SimDuration::from_secs(5),
    });
    let report = check(&CheckInput {
        topology: &topology,
        catalog: &catalog,
        agents: &agents,
        classes: &[],
        config: &config,
    });
    let d = report
        .diagnostics()
        .iter()
        .find(|d| d.code == Code::Fdb030)
        .expect("majority unreachable");
    assert!(d.message.contains("3 of 5"), "{d}");
    // With a replica set of {0, 1} the majority is 2 and reachable.
    let config = config.with_replica_set(f(0), [n(0), n(1)]);
    let report = check(&CheckInput {
        topology: &topology,
        catalog: &catalog,
        agents: &agents,
        classes: &[],
        config: &config,
    });
    assert!(!report.has(Code::Fdb030), "{report}");
}

#[test]
fn fdb031_lock_site_unreachable() {
    let topology = Topology::new(2); // no links at all
    let (catalog, agents, _) = schema(2, 2);
    let classes = vec![ClassDecl::update("cross-read", f(0), [f(0), f(1)])];
    let config = SystemConfig::read_locks(1);
    let report = check(&CheckInput {
        topology: &topology,
        catalog: &catalog,
        agents: &agents,
        classes: &classes,
        config: &config,
    });
    let d = report
        .diagnostics()
        .iter()
        .find(|d| d.code == Code::Fdb031)
        .expect("lock site unreachable");
    assert!(d.subject.contains("cross-read"));
}

#[test]
fn fdb032_uncovered_read_under_partial_replication() {
    let (catalog, agents, topology) = schema(2, 3);
    // F1 replicated only at {1, 2}; F0's home (node 0) reads it.
    let classes = vec![ClassDecl::update("scan", f(0), [f(0), f(1)])];
    let config = SystemConfig::unrestricted(1).with_replica_set(f(1), [n(1), n(2)]);
    let report = check(&CheckInput {
        topology: &topology,
        catalog: &catalog,
        agents: &agents,
        classes: &classes,
        config: &config,
    });
    let d = report
        .diagnostics()
        .iter()
        .find(|d| d.code == Code::Fdb032)
        .expect("uncovered read");
    assert!(d.subject.contains("scan"));
    // Covering the read fixes it.
    let config = config.with_replica_set(f(1), [n(0), n(1), n(2)]);
    let report = check(&CheckInput {
        topology: &topology,
        catalog: &catalog,
        agents: &agents,
        classes: &classes,
        config: &config,
    });
    assert!(!report.has(Code::Fdb032));
}

#[test]
fn fdb033_locks_with_movement() {
    let (catalog, agents, topology) = schema(1, 2);
    let config = SystemConfig::read_locks(1).with_move_policy(MovePolicy::NoPrep);
    let report = check(&CheckInput {
        topology: &topology,
        catalog: &catalog,
        agents: &agents,
        classes: &[],
        config: &config,
    });
    assert!(report.has(Code::Fdb033));
    assert!(!report.is_admissible());
}

#[test]
fn fdb034_home_outside_replica_set() {
    let (catalog, agents, topology) = schema(1, 3);
    let config = SystemConfig::unrestricted(1).with_replica_set(f(0), [n(1), n(2)]);
    let report = check(&CheckInput {
        topology: &topology,
        catalog: &catalog,
        agents: &agents,
        classes: &[],
        config: &config,
    });
    let d = report
        .diagnostics()
        .iter()
        .find(|d| d.code == Code::Fdb034)
        .expect("home outside replica set");
    assert!(d.message.contains("N0"));
}

#[test]
fn fdb035_malformed_replica_sets() {
    let (catalog, agents, topology) = schema(1, 2);
    let config = SystemConfig::unrestricted(1)
        .with_replica_set(f(0), [n(0), n(9)]) // out-of-range member
        .with_replica_set(f(7), [n(0)]); // unknown fragment
    let report = check(&CheckInput {
        topology: &topology,
        catalog: &catalog,
        agents: &agents,
        classes: &[],
        config: &config,
    });
    assert_eq!(
        report
            .diagnostics()
            .iter()
            .filter(|d| d.code == Code::Fdb035)
            .count(),
        2,
        "{report}"
    );
    // Empty set.
    let config = SystemConfig::unrestricted(1).with_replica_set(f(0), []);
    let report = check(&CheckInput {
        topology: &topology,
        catalog: &catalog,
        agents: &agents,
        classes: &[],
        config: &config,
    });
    assert!(report.has(Code::Fdb035));
}

#[test]
fn fdb040_lock_order_cycle() {
    let (catalog, agents, topology) = schema(2, 2);
    let classes = vec![
        ClassDecl::update("left", f(0), [f(0), f(1)]),
        ClassDecl::update("right", f(1), [f(1), f(0)]),
    ];
    let config = SystemConfig::read_locks(1);
    let report = check(&CheckInput {
        topology: &topology,
        catalog: &catalog,
        agents: &agents,
        classes: &classes,
        config: &config,
    });
    let d = report
        .diagnostics()
        .iter()
        .find(|d| d.code == Code::Fdb040)
        .expect("lock cycle flagged");
    assert_eq!(d.severity, Severity::Warning);
    assert!(d.subject.contains("left") && d.subject.contains("right"));
    assert!(report.is_admissible(), "deadlocks resolve by timeout");
    // One-directional reads are clean.
    let classes = vec![ClassDecl::update("left", f(0), [f(0), f(1)])];
    let report = check(&CheckInput {
        topology: &topology,
        catalog: &catalog,
        agents: &agents,
        classes: &classes,
        config: &config,
    });
    assert!(!report.has(Code::Fdb040));
}

#[test]
fn admission_policy_warn_lets_bad_configs_through() {
    let (catalog, agents, topology) = schema(2, 2);
    let classes = vec![
        ClassDecl::update("a", f(0), [f(0), f(1)]),
        ClassDecl::update("b", f(1), [f(1), f(0)]),
    ];
    // Strategy stays Unrestricted so only the *declared* config is bad
    // under Enforce-with-AcyclicRag; under Warn even an erroring report
    // does not abort admission (System::build may still refuse).
    let config = acyclic_rag_config(&classes, 3);
    let input = CheckInput {
        topology: &topology,
        catalog: &catalog,
        agents: &agents,
        classes: &classes,
        config: &config,
    };
    assert!(admit(&input, AdmissionPolicy::Enforce).is_err());
    let report = admit(&input, AdmissionPolicy::Warn).expect("warn admits");
    assert!(!report.is_admissible());
    // But the strategy's own validation still refuses at build time.
    match build_admitted(
        topology,
        catalog,
        agents,
        &classes,
        config,
        AdmissionPolicy::Warn,
    ) {
        Err(AdmissionError::Build(_)) => {}
        Err(other) => panic!("expected build failure, got {other}"),
        Ok(_) => panic!("cyclic §4.2 strategy built anyway"),
    }
}

#[test]
fn clean_config_is_admitted_and_builds() {
    let (catalog, agents, topology) = schema(3, 3);
    // A star: F0 reads every other fragment — elementarily acyclic.
    let classes = vec![
        ClassDecl::update("central-scan", f(0), [f(0), f(1), f(2)]),
        ClassDecl::update("local-1", f(1), [f(1)]),
        ClassDecl::update("local-2", f(2), [f(2)]),
    ];
    let config = acyclic_rag_config(&classes, 11);
    let (system, report) = build_admitted(
        topology,
        catalog,
        agents,
        &classes,
        config,
        AdmissionPolicy::Enforce,
    )
    .expect("clean config admitted");
    assert_eq!(system.node_count(), 3);
    assert!(report.is_admissible());
}

#[test]
fn fdb05x_self_heal_admission() {
    let (catalog, agents, topology) = schema(1, 4);
    let input = |config: &SystemConfig| {
        check(&CheckInput {
            topology: &topology,
            catalog: &catalog,
            agents: &agents,
            classes: &[],
            config,
        })
        .into_diagnostics()
        .into_iter()
        .collect::<Vec<_>>()
    };

    // Detector on, but every fragment still on the default fixed policy:
    // the heartbeats buy nothing (FDB050).
    let inert = SystemConfig::unrestricted(1)
        .with_detector(DetectorConfig::period(SimDuration::from_millis(50)));
    let report = check(&CheckInput {
        topology: &topology,
        catalog: &catalog,
        agents: &agents,
        classes: &[],
        config: &inert,
    });
    assert!(report.has(Code::Fdb050), "{report}");
    assert!(!report.is_admissible());

    // Majority commit but only 2 replicas: a majority must include the
    // dead home, so the election is unwinnable (FDB051, warning only).
    let two_replica = SystemConfig::unrestricted(1)
        .with_move_policy(MovePolicy::MajorityCommit {
            timeout: SimDuration::from_secs(5),
        })
        .with_replica_set(f(0), [n(0), n(1)])
        .with_detector(DetectorConfig::period(SimDuration::from_millis(50)));
    let diags = input(&two_replica);
    let d = diags
        .iter()
        .find(|d| d.code == Code::Fdb051)
        .expect("FDB051 expected");
    assert_eq!(d.severity, Severity::Warning);
    assert!(d.subject.contains("F0"), "{d}");
    assert!(!diags.iter().any(|d| d.code == Code::Fdb050));

    // Zero election timeout: every round aborts before a vote lands.
    let hasty = SystemConfig::unrestricted(1)
        .with_move_policy(MovePolicy::MajorityCommit {
            timeout: SimDuration::from_secs(5),
        })
        .with_detector(
            DetectorConfig::period(SimDuration::from_millis(50))
                .with_election_timeout(SimDuration::ZERO),
        );
    let diags = input(&hasty);
    assert!(diags.iter().any(|d| d.code == Code::Fdb052));
    // Zero timeout is FDB052's finding alone, not double-reported as 053.
    assert!(!diags.iter().any(|d| d.code == Code::Fdb053));

    // Election timeout below the detection bound (50ms * (3+1) = 200ms):
    // rounds expire before the failure they react to can be confirmed.
    let livelocked = SystemConfig::unrestricted(1)
        .with_move_policy(MovePolicy::MajorityCommit {
            timeout: SimDuration::from_secs(5),
        })
        .with_detector(
            DetectorConfig::period(SimDuration::from_millis(50))
                .with_election_timeout(SimDuration::from_millis(100)),
        );
    let diags = input(&livelocked);
    let d = diags
        .iter()
        .find(|d| d.code == Code::Fdb053)
        .expect("FDB053 expected");
    assert_eq!(d.severity, Severity::Error);
    assert!(d.message.contains("detection bound"), "{d}");

    // A timeout exactly at the bound is the threshold case: admitted.
    let at_bound = SystemConfig::unrestricted(1)
        .with_move_policy(MovePolicy::MajorityCommit {
            timeout: SimDuration::from_secs(5),
        })
        .with_detector(
            DetectorConfig::period(SimDuration::from_millis(50))
                .with_election_timeout(SimDuration::from_millis(200)),
        );
    assert!(!input(&at_bound).iter().any(|d| d.code == Code::Fdb053));

    // A well-formed self-healing config raises none of the block.
    let sound = SystemConfig::unrestricted(1)
        .with_move_policy(MovePolicy::MajorityCommit {
            timeout: SimDuration::from_secs(5),
        })
        .with_detector(DetectorConfig::period(SimDuration::from_millis(50)));
    let diags = input(&sound);
    assert!(!diags.iter().any(|d| matches!(
        d.code,
        Code::Fdb050 | Code::Fdb051 | Code::Fdb052 | Code::Fdb053
    )));

    // Detector off: the FDB05x block is silent even on a 2-replica set.
    let off = SystemConfig::unrestricted(1)
        .with_move_policy(MovePolicy::MajorityCommit {
            timeout: SimDuration::from_secs(5),
        })
        .with_replica_set(f(0), [n(0), n(1)]);
    let diags = input(&off);
    assert!(!diags.iter().any(|d| matches!(
        d.code,
        Code::Fdb050 | Code::Fdb051 | Code::Fdb052 | Code::Fdb053
    )));
}

#[test]
fn fdb060_unreachable_replica_diverges() {
    // Nodes 0-1 linked; node 2 is an island but still claims a replica.
    // A majority (0, 1) stays reachable, so FDB030 stays silent — the
    // divergence is exactly what FDB060 exists to catch.
    let mut topology = Topology::new(3);
    topology.add_link(n(0), n(1), SimDuration::from_millis(1));
    let (catalog, agents, _) = schema(1, 3);
    let config = SystemConfig::unrestricted(1)
        .with_move_policy(MovePolicy::MajorityCommit {
            timeout: SimDuration::from_secs(5),
        })
        .with_replica_set(f(0), [n(0), n(1), n(2)]);
    let report = check(&CheckInput {
        topology: &topology,
        catalog: &catalog,
        agents: &agents,
        classes: &[],
        config: &config,
    });
    let d = report
        .diagnostics()
        .iter()
        .find(|d| d.code == Code::Fdb060)
        .expect("unreachable replica");
    assert!(d.message.contains("N2"), "{d}");
    assert_eq!(d.severity, Severity::Error);
    assert!(
        !report.has(Code::Fdb030),
        "majority itself is reachable: {report}"
    );
    assert!(!report.is_admissible());
    // Dropping the island fixes it.
    let config = SystemConfig::unrestricted(1)
        .with_move_policy(MovePolicy::MajorityCommit {
            timeout: SimDuration::from_secs(5),
        })
        .with_replica_set(f(0), [n(0), n(1)]);
    let report = check(&CheckInput {
        topology: &topology,
        catalog: &catalog,
        agents: &agents,
        classes: &[],
        config: &config,
    });
    assert!(!report.has(Code::Fdb060), "{report}");
}

#[test]
fn fdb061_even_replica_set_under_majority_commit() {
    let (catalog, agents, topology) = schema(1, 5);
    let even = SystemConfig::unrestricted(1)
        .with_move_policy(MovePolicy::MajorityCommit {
            timeout: SimDuration::from_secs(5),
        })
        .with_replica_set(f(0), [n(0), n(1), n(2), n(3)]);
    let report = check(&CheckInput {
        topology: &topology,
        catalog: &catalog,
        agents: &agents,
        classes: &[],
        config: &even,
    });
    let d = report
        .diagnostics()
        .iter()
        .find(|d| d.code == Code::Fdb061)
        .expect("even set warned");
    assert_eq!(d.severity, Severity::Warning);
    assert!(d.message.contains("4"), "{d}");
    assert!(report.is_admissible(), "warning, not error: {report}");
    // Odd set: silent. Even set without majority commit: also silent.
    let odd = SystemConfig::unrestricted(1)
        .with_move_policy(MovePolicy::MajorityCommit {
            timeout: SimDuration::from_secs(5),
        })
        .with_replica_set(f(0), [n(0), n(1), n(2)]);
    let report = check(&CheckInput {
        topology: &topology,
        catalog: &catalog,
        agents: &agents,
        classes: &[],
        config: &odd,
    });
    assert!(!report.has(Code::Fdb061), "{report}");
    let unrestricted = SystemConfig::unrestricted(1).with_replica_set(f(0), [n(0), n(1)]);
    let report = check(&CheckInput {
        topology: &topology,
        catalog: &catalog,
        agents: &agents,
        classes: &[],
        config: &unrestricted,
    });
    assert!(!report.has(Code::Fdb061), "{report}");
}

#[test]
fn fdb062_replica_set_naming_every_node() {
    let (catalog, agents, topology) = schema(1, 3);
    let config = SystemConfig::unrestricted(1).with_replica_set(f(0), [n(0), n(1), n(2)]);
    let report = check(&CheckInput {
        topology: &topology,
        catalog: &catalog,
        agents: &agents,
        classes: &[],
        config: &config,
    });
    let d = report
        .diagnostics()
        .iter()
        .find(|d| d.code == Code::Fdb062)
        .expect("full-set note");
    assert_eq!(d.severity, Severity::Info);
    assert!(report.is_admissible());
    // A genuinely partial set is silent.
    let config = SystemConfig::unrestricted(1).with_replica_set(f(0), [n(0), n(1)]);
    let report = check(&CheckInput {
        topology: &topology,
        catalog: &catalog,
        agents: &agents,
        classes: &[],
        config: &config,
    });
    assert!(!report.has(Code::Fdb062), "{report}");
}
