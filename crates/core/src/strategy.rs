//! Control strategies (§4.1–§4.3).
//!
//! All three fixed-agent options share the same mechanism (agents, tokens,
//! quasi-transactions, FIFO broadcast) and differ only in how *reads* are
//! admitted:
//!
//! * [`StrategyKind::ReadLocks`] (§4.1) — remote shared locks on every
//!   foreign object read, acquired from the object's agent's home node
//!   before execution. Globally serializable; lowest availability.
//! * [`StrategyKind::AcyclicRag`] (§4.2) — no read synchronization at all,
//!   but transaction *classes* must be declared and the resulting
//!   read-access graph must be elementarily acyclic (validated when the
//!   system is built). Globally serializable by the paper's theorem.
//! * [`StrategyKind::Unrestricted`] (§4.3) — reads go anywhere, anytime.
//!   Fragmentwise serializable.

use fragdb_graphs::ReadAccessGraph;
use fragdb_model::{AccessDecl, FragmentId};
use fragdb_sim::SimDuration;

/// Which control option the system runs.
#[derive(Debug, Clone)]
pub enum StrategyKind {
    /// §4.1: fixed agents, remote read locks. `timeout` bounds how long a
    /// transaction waits for lock grants before aborting as unavailable.
    ReadLocks {
        /// Lock-wait patience.
        timeout: SimDuration,
    },
    /// §4.2: fixed agents, declared classes, elementarily acyclic RAG.
    AcyclicRag {
        /// The declared transaction classes.
        decls: Vec<AccessDecl>,
        /// If `true`, read-only transactions may violate the declared
        /// graph (the §4.2 "no great harm" relaxation: anomalies show only
        /// in their output, never in the database).
        allow_violating_read_only: bool,
    },
    /// §4.3: fixed agents, no read restrictions.
    Unrestricted,
}

/// Error raised when a strategy's preconditions fail at system build time.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum StrategyError {
    /// §4.2 requires the read-access graph to be elementarily acyclic; it
    /// is not, and here is an offending undirected edge.
    RagNotElementarilyAcyclic(FragmentId, FragmentId),
}

impl std::fmt::Display for StrategyError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            StrategyError::RagNotElementarilyAcyclic(a, b) => write!(
                f,
                "read-access graph is not elementarily acyclic (edge {a} - {b} closes a cycle)"
            ),
        }
    }
}

impl std::error::Error for StrategyError {}

impl StrategyKind {
    /// Validate build-time preconditions. For [`StrategyKind::AcyclicRag`]
    /// this checks elementary acyclicity of the declared classes' graph.
    pub fn validate(&self) -> Result<(), StrategyError> {
        if let StrategyKind::AcyclicRag { decls, .. } = self {
            let rag = ReadAccessGraph::from_decls(decls);
            if let Some((a, b)) = rag.undirected_cycle_edge() {
                return Err(StrategyError::RagNotElementarilyAcyclic(a, b));
            }
        }
        Ok(())
    }

    /// §4.2 admission: is an update class `(initiator, reads)` declared?
    /// Other strategies admit everything (returns `true`).
    pub fn admits_update(
        &self,
        initiator: FragmentId,
        reads: impl IntoIterator<Item = FragmentId>,
    ) -> bool {
        match self {
            StrategyKind::AcyclicRag { decls, .. } => {
                let read_set: std::collections::BTreeSet<FragmentId> = reads.into_iter().collect();
                decls.iter().any(|d| {
                    d.updates
                        && d.initiator == initiator
                        && read_set
                            .iter()
                            .all(|f| *f == initiator || d.reads.contains(f))
                })
            }
            _ => true,
        }
    }

    /// §4.2 admission for read-only transactions.
    pub fn admits_read_only(
        &self,
        initiator: FragmentId,
        reads: impl IntoIterator<Item = FragmentId>,
    ) -> bool {
        match self {
            StrategyKind::AcyclicRag {
                decls,
                allow_violating_read_only,
            } => {
                if *allow_violating_read_only {
                    return true;
                }
                let read_set: std::collections::BTreeSet<FragmentId> = reads.into_iter().collect();
                decls.iter().any(|d| {
                    d.initiator == initiator
                        && read_set
                            .iter()
                            .all(|f| *f == initiator || d.reads.contains(f))
                })
            }
            _ => true,
        }
    }

    /// Does this strategy use the §4.1 remote read-lock protocol?
    pub fn uses_read_locks(&self) -> bool {
        matches!(self, StrategyKind::ReadLocks { .. })
    }

    /// Short label for reports (matches Figure 1.1 terminology).
    pub fn label(&self) -> &'static str {
        match self {
            StrategyKind::ReadLocks { .. } => "4.1 read-locks",
            StrategyKind::AcyclicRag { .. } => "4.2 acyclic-RAG",
            StrategyKind::Unrestricted => "4.3 unrestricted",
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn f(i: u32) -> FragmentId {
        FragmentId(i)
    }

    #[test]
    fn unrestricted_admits_everything() {
        let s = StrategyKind::Unrestricted;
        assert!(s.validate().is_ok());
        assert!(s.admits_update(f(0), [f(1), f(2)]));
        assert!(s.admits_read_only(f(0), [f(5)]));
        assert!(!s.uses_read_locks());
    }

    #[test]
    fn read_locks_admit_everything_but_flag_lock_use() {
        let s = StrategyKind::ReadLocks {
            timeout: SimDuration::from_secs(5),
        };
        assert!(s.validate().is_ok());
        assert!(s.uses_read_locks());
        assert!(s.admits_update(f(0), [f(1)]));
    }

    #[test]
    fn acyclic_rag_validates_elementary_acyclicity() {
        // Star (warehouse example): OK.
        let ok = StrategyKind::AcyclicRag {
            decls: vec![
                AccessDecl::update(f(0), [f(1), f(2), f(3)]),
                AccessDecl::update(f(1), [f(1)]),
            ],
            allow_violating_read_only: false,
        };
        assert!(ok.validate().is_ok());

        // Triangle (Figure 4.3.1): rejected.
        let bad = StrategyKind::AcyclicRag {
            decls: vec![
                AccessDecl::update(f(1), [f(2), f(3)]),
                AccessDecl::update(f(2), [f(3)]),
            ],
            allow_violating_read_only: false,
        };
        assert!(matches!(
            bad.validate(),
            Err(StrategyError::RagNotElementarilyAcyclic(_, _))
        ));
        let msg = bad.validate().unwrap_err().to_string();
        assert!(msg.contains("elementarily acyclic"));
    }

    #[test]
    fn acyclic_rag_admission_checks_declared_classes() {
        let s = StrategyKind::AcyclicRag {
            decls: vec![
                AccessDecl::update(f(0), [f(1)]),
                AccessDecl::read_only(f(2), [f(0), f(1)]),
            ],
            allow_violating_read_only: false,
        };
        // Declared update class (own-fragment reads always implied).
        assert!(s.admits_update(f(0), [f(0), f(1)]));
        // Reading an undeclared fragment: refused.
        assert!(!s.admits_update(f(0), [f(2)]));
        // Undeclared initiator: refused.
        assert!(!s.admits_update(f(1), [f(0)]));
        // Declared read-only class.
        assert!(s.admits_read_only(f(2), [f(0)]));
        // Undeclared read-only class: refused.
        assert!(!s.admits_read_only(f(1), [f(0)]));
    }

    #[test]
    fn violating_read_only_relaxation() {
        let s = StrategyKind::AcyclicRag {
            decls: vec![AccessDecl::update(f(0), [f(1)])],
            allow_violating_read_only: true,
        };
        // Any read-only transaction is admitted under the relaxation...
        assert!(s.admits_read_only(f(5), [f(0), f(1)]));
        // ...but updates still must be declared.
        assert!(!s.admits_update(f(5), [f(0)]));
    }

    #[test]
    fn labels_are_stable() {
        assert_eq!(StrategyKind::Unrestricted.label(), "4.3 unrestricted");
        assert_eq!(
            StrategyKind::ReadLocks {
                timeout: SimDuration::ZERO
            }
            .label(),
            "4.1 read-locks"
        );
    }
}
