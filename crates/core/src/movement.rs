//! Agent movement policies (§4.4).
//!
//! Moving a token from node `X` to node `Y` risks **missing transactions**:
//! `T_2` (the first update at `Y`) can be initiated, or received at a third
//! node `Z`, before `T_1` (the last update at `X`) has arrived. The paper
//! offers a family of protocols with different availability/correctness
//! trades; this module names them and holds their tuning knobs. The
//! protocol state machines live in [`crate::system`], next to the message
//! handlers they share.

use fragdb_sim::SimDuration;

/// How agent movement is handled.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum MovePolicy {
    /// Agents never move. Baseline for §4.1–§4.3.
    Fixed,
    /// §4.4.1 — permanent preparatory actions: every update commits only
    /// after a majority of nodes acknowledge its quasi-transaction, and a
    /// moving agent first recovers the full update sequence from a
    /// majority. Updates are unavailable without a majority.
    MajorityCommit {
        /// How long a transaction waits for its majority before aborting.
        timeout: SimDuration,
    },
    /// §4.4.2A — the agent transports a copy of the fragment with it;
    /// remote nodes hold back post-move updates until pre-move ones are in.
    WithData {
        /// Courier time for the physical copy (tape, card strip, …).
        /// Independent of network connectivity.
        transfer_delay: SimDuration,
    },
    /// §4.4.2B — only the last sequence number travels with the agent; the
    /// new home waits until it has installed everything below it.
    WithSeqNo,
    /// §4.4.3 — no preparation: the agent resumes immediately at the new
    /// home in a fresh epoch; missing transactions are later repackaged at
    /// the new home, with corrective actions left to the application.
    /// Only mutual consistency is guaranteed.
    NoPrep,
}

impl MovePolicy {
    /// Does this policy require majority acknowledgment on *every* commit?
    pub fn needs_majority_commit(&self) -> bool {
        matches!(self, MovePolicy::MajorityCommit { .. })
    }

    /// Do remote nodes install a fragment's updates strictly in
    /// `frag_seq` order (hold-back), as §4.4.2 requires?
    ///
    /// True for every policy except [`MovePolicy::NoPrep`], whose whole
    /// point is to never wait — it installs in arrival order and repairs
    /// afterwards.
    pub fn ordered_installs(&self) -> bool {
        !matches!(self, MovePolicy::NoPrep)
    }

    /// Short label for reports.
    pub fn label(&self) -> &'static str {
        match self {
            MovePolicy::Fixed => "fixed",
            MovePolicy::MajorityCommit { .. } => "4.4.1 majority",
            MovePolicy::WithData { .. } => "4.4.2A with-data",
            MovePolicy::WithSeqNo => "4.4.2B with-seqno",
            MovePolicy::NoPrep => "4.4.3 no-prep",
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn majority_flag() {
        assert!(MovePolicy::MajorityCommit {
            timeout: SimDuration::from_secs(10)
        }
        .needs_majority_commit());
        assert!(!MovePolicy::Fixed.needs_majority_commit());
        assert!(!MovePolicy::NoPrep.needs_majority_commit());
    }

    #[test]
    fn ordered_installs_everywhere_but_noprep() {
        assert!(MovePolicy::Fixed.ordered_installs());
        assert!(MovePolicy::WithData {
            transfer_delay: SimDuration::ZERO
        }
        .ordered_installs());
        assert!(MovePolicy::WithSeqNo.ordered_installs());
        assert!(MovePolicy::MajorityCommit {
            timeout: SimDuration::ZERO
        }
        .ordered_installs());
        assert!(!MovePolicy::NoPrep.ordered_installs());
    }

    #[test]
    fn labels_are_stable() {
        assert_eq!(MovePolicy::Fixed.label(), "fixed");
        assert_eq!(MovePolicy::WithSeqNo.label(), "4.4.2B with-seqno");
        assert_eq!(MovePolicy::NoPrep.label(), "4.4.3 no-prep");
    }
}
