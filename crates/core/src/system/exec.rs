//! Transaction execution and the commit path.

use std::collections::BTreeMap;

use fragdb_model::{
    FragmentId, NodeId, ObjectId, OpKind, QuasiTransaction, TxnId, TxnType, Updates, Value,
};
use fragdb_sim::metrics::keys;
use fragdb_sim::{SimTime, TelemetryEvent};

use crate::envelope::Envelope;
use crate::events::{AbortReason, Notification, Submission};
use crate::program::TxnEffects;
use crate::system::{Pending, QueuedSub, System};

impl System {
    /// Entry point for a submission event.
    pub(crate) fn handle_submission(&mut self, at: SimTime, sub: Submission) -> Vec<Notification> {
        self.engine.metrics.incr(keys::TXN_SUBMITTED);
        let fragment = sub.fragment;

        // Updates park while their fragment's agent is mid-move, while a
        // majority commit on the fragment is in flight (§4.4.1 keeps the
        // update sequence uninterrupted), and while the fragment is bound
        // into a multi-fragment two-phase commit.
        let fragment_busy = |f: &fragdb_model::FragmentId| {
            self.move_state.contains_key(f)
                || self.majority_inflight.contains_key(f)
                || self.mf_inflight.contains_key(f)
        };
        if !sub.read_only {
            let busy = std::iter::once(&fragment)
                .chain(sub.extra_fragments.iter())
                .find(|f| fragment_busy(f))
                .copied();
            if let Some(busy_fragment) = busy {
                let queue = self.queued.entry(busy_fragment).or_default();
                queue.push_back(QueuedSub {
                    submission: sub,
                    queued_at: at,
                });
                let depth = queue.len() as u64;
                self.engine.emit(|| TelemetryEvent::SubmissionQueued {
                    fragment: busy_fragment.0,
                    depth,
                });
                return Vec::new();
            }
        }

        // Only read-only transactions may pin an execution node; updates
        // always run at the fragment's agent home (§3.2's initiation
        // requirement — running an update elsewhere would let a non-agent
        // originate quasi-transactions).
        let home = match sub.at_node {
            Some(node) if sub.read_only => node,
            _ => self.tokens.home(fragment),
        };

        // A crashed execution site cannot run anything: the operation is
        // *unavailable* (the paper's availability question, answered "no"
        // for this node until it recovers).
        if self.down.contains(&home) {
            let txn = self.alloc_txn(home);
            return self.finish_abort(txn, fragment, AbortReason::Unavailable);
        }

        // Every dispatch path below allocates its transaction id at `home`
        // as its first action, so peeking the next sequence here names the
        // exact txn the submission will run under — the join key that pairs
        // this event with its `Committed`/`Aborted` in span reconstruction.
        let txn_seq = self.next_txn_seq[home.0 as usize];
        self.engine.emit(|| TelemetryEvent::Initiated {
            node: home.0,
            fragment: fragment.0,
            txn_seq,
        });

        if !sub.extra_fragments.is_empty() {
            return self.begin_multi_update(at, home, sub);
        }
        if self.strategy_for(fragment).uses_read_locks() {
            return self.begin_lock_acquisition(at, home, sub);
        }
        self.execute_now(at, home, sub, &BTreeMap::new())
    }

    /// Run a transaction program against `home`'s replica, mapping program
    /// errors to abort reasons. `extra_fragments` widens the writable set
    /// for multi-fragment transactions.
    #[allow(clippy::too_many_arguments)]
    pub(crate) fn run_program(
        &mut self,
        at: SimTime,
        home: NodeId,
        txn: TxnId,
        fragment: FragmentId,
        extra_fragments: &[FragmentId],
        granted: &BTreeMap<ObjectId, (NodeId, Value)>,
        read_only: bool,
        program: crate::program::UpdateFn,
    ) -> Result<TxnEffects, AbortReason> {
        let replica = &self.nodes[home.0 as usize].replica;
        let mut ctx = crate::program::TxnCtx::new(
            home,
            txn,
            fragment,
            at,
            replica,
            &self.catalog,
            granted,
            read_only,
        );
        ctx.allow_fragments(extra_fragments);
        match program(&mut ctx) {
            Ok(()) => Ok(ctx.finish()),
            Err(crate::program::ProgramError::Logic(m)) => Err(AbortReason::Logic(m)),
            Err(crate::program::ProgramError::InitiationViolation(_)) => {
                Err(AbortReason::Initiation)
            }
        }
    }

    /// Run the program immediately (§4.2/§4.3 path, or §4.1 once locks are
    /// granted — then `granted` carries the lock-site snapshots).
    pub(crate) fn execute_now(
        &mut self,
        at: SimTime,
        home: NodeId,
        sub: Submission,
        granted: &BTreeMap<ObjectId, (NodeId, Value)>,
    ) -> Vec<Notification> {
        let txn = self.alloc_txn(home);
        let Submission {
            fragment,
            program,
            read_only,
            ..
        } = sub;
        let effects =
            match self.run_program(at, home, txn, fragment, &[], granted, read_only, program) {
                Ok(e) => e,
                Err(reason) => return self.finish_abort(txn, fragment, reason),
            };

        // §6 partial replication: a replica read must happen at a node
        // holding the fragment (reads via §4.1 lock grants are recorded at
        // the lock site, which is always a replica). Replicas answer reads
        // of unknown objects with Null, so a program can reach this point
        // having read an object outside every fragment — a typed abort,
        // not a panic.
        for &(site, object) in &effects.reads {
            let frag = match self.catalog.fragment_of(object) {
                Ok(frag) => frag,
                Err(e) => return self.finish_abort(txn, fragment, AbortReason::Model(e)),
            };
            if !self.replicated_at(frag, site) {
                return self.finish_abort(
                    txn,
                    fragment,
                    AbortReason::Logic(format!(
                        "read of {object} at {site}, which holds no replica of {frag}"
                    )),
                );
            }
        }

        // §4.2 admission: the class (initiator, fragments-read) must be
        // declared. Checked post-execution, when the read set is known;
        // reads are side-effect-free so refusing here leaves no trace.
        let frags_read: Vec<FragmentId> = effects
            .reads
            .iter()
            .filter_map(|(_, o)| self.catalog.fragment_of(*o).ok())
            .collect();
        let admitted = if read_only {
            self.strategy_for(fragment)
                .admits_read_only(fragment, frags_read)
        } else {
            self.strategy_for(fragment)
                .admits_update(fragment, frags_read)
        };
        if !admitted {
            return self.finish_abort(txn, fragment, AbortReason::UndeclaredClass);
        }

        if read_only {
            self.flush_reads(txn, TxnType::ReadOnly(fragment), &effects.reads, at);
            self.engine.metrics.incr(keys::TXN_READ_FINISHED);
            return vec![Notification::ReadFinished { txn, node: home }];
        }

        if self.move_policy_for(fragment).needs_majority_commit() {
            return self.begin_majority_commit(at, home, txn, fragment, effects);
        }

        let mut notes = self.commit_update(at, home, txn, fragment, effects);
        notes.extend(self.observe_commit_latency(at, at));
        notes
    }

    /// Record buffered reads into the run history; for read-only
    /// transactions also emit one `ReadObserved` telemetry event per
    /// distinct `(site, fragment)`, measuring how many agent-committed
    /// updates the serving replica had not yet installed. (Updates always
    /// execute at the agent home on current data, so only reads can be
    /// stale — the paper's §4.1 vs §4.3 freshness spectrum.)
    pub(crate) fn flush_reads(
        &mut self,
        txn: TxnId,
        ttype: TxnType,
        reads: &[(NodeId, ObjectId)],
        at: SimTime,
    ) {
        for &(site, object) in reads {
            self.history
                .record_local(site, txn, ttype, OpKind::Read, object, at);
        }
        if self.engine.telemetry.is_enabled() && matches!(ttype, TxnType::ReadOnly(_)) {
            let mut seen: std::collections::BTreeSet<(NodeId, FragmentId)> =
                std::collections::BTreeSet::new();
            for &(site, object) in reads {
                let Ok(frag) = self.catalog.fragment_of(object) else {
                    continue;
                };
                if !seen.insert((site, frag)) {
                    continue;
                }
                // Both counters are "next sequence number": what the agent
                // would assign next vs. what the replica expects next.
                let agent_seq = self.tokens.peek_frag_seq(frag);
                let seen_seq = self.nodes[site.0 as usize]
                    .next_install
                    .get(&frag)
                    .copied()
                    .unwrap_or(0);
                self.engine.emit(|| TelemetryEvent::ReadObserved {
                    node: site.0,
                    fragment: frag.0,
                    seen_seq,
                    agent_seq,
                });
            }
        }
    }

    /// The common commit: sequence allocation, history, replica, broadcast.
    pub(crate) fn commit_update(
        &mut self,
        at: SimTime,
        home: NodeId,
        txn: TxnId,
        fragment: FragmentId,
        effects: TxnEffects,
    ) -> Vec<Notification> {
        let frag_seq = self.tokens.alloc_frag_seq(fragment);
        let epoch = self.tokens.epoch(fragment);
        let TxnEffects { reads, writes } = effects;
        let updates = self.materialize_payload(writes);
        self.finish_commit(
            at, home, txn, fragment, frag_seq, epoch, &reads, updates, true,
        )
    }

    /// Commit with a pre-allocated sequence number (majority path) and an
    /// optional quasi broadcast (majority broadcasts `CommitCmd` instead).
    /// `updates` is the already-materialized shared payload: the WAL entry,
    /// every broadcast envelope, and all retransmission buffers share it.
    #[allow(clippy::too_many_arguments)]
    pub(crate) fn finish_commit(
        &mut self,
        at: SimTime,
        home: NodeId,
        txn: TxnId,
        fragment: FragmentId,
        frag_seq: u64,
        epoch: u64,
        reads: &[(NodeId, ObjectId)],
        updates: Updates,
        broadcast_quasi: bool,
    ) -> Vec<Notification> {
        let ttype = TxnType::Update(fragment);
        self.flush_reads(txn, ttype, reads, at);
        for (object, _) in &updates {
            self.history
                .record_local(home, txn, ttype, OpKind::Write, *object, at);
        }
        let slot = &mut self.nodes[home.0 as usize];
        slot.replica
            .commit_local(txn, fragment, frag_seq, epoch, updates.clone(), at);
        // The home already has the data; ordered installation at the home
        // resumes from the next sequence number.
        slot.next_install.insert(fragment, frag_seq + 1);
        self.commit_times.insert((fragment, epoch, frag_seq), at);

        if self.engine.telemetry.is_enabled() {
            let cause = Self::cid(fragment, epoch, frag_seq);
            self.engine.emit(|| TelemetryEvent::Committed {
                cause,
                node: home.0,
                txn_seq: txn.seq,
            });
            // The home's local commit is its install: fault-free, a commit
            // joins to exactly R installs (R = replica-set size).
            self.engine.emit(|| TelemetryEvent::Installed {
                cause,
                node: home.0,
            });
            if broadcast_quasi {
                let recipients = self.broadcast_recipients(fragment);
                self.engine.emit(|| TelemetryEvent::BroadcastSent {
                    cause,
                    node: home.0,
                    recipients,
                });
            }
        }

        if broadcast_quasi {
            let quasi = QuasiTransaction {
                txn,
                fragment,
                frag_seq,
                epoch,
                updates,
            };
            if self.batch_cfg.enabled() {
                // Group commit: park the quasi in the fragment's open
                // batch; it travels in one coalesced envelope when the
                // window fills or the linger timer fires.
                self.enqueue_batch(at, home, quasi);
            } else {
                self.broadcast_fragment(at, home, fragment, move |bseq| Envelope::Quasi {
                    bseq,
                    quasi: quasi.clone(),
                });
            }
        }
        self.engine.metrics.incr(keys::TXN_COMMITTED);
        vec![Notification::Committed {
            txn,
            fragment,
            node: home,
            at,
        }]
    }

    /// Observe commit latency (separated so §4.1/§4.4.1 paths can pass the
    /// original submission time).
    pub(crate) fn observe_commit_latency(
        &mut self,
        submitted_at: SimTime,
        committed_at: SimTime,
    ) -> Vec<Notification> {
        self.engine
            .metrics
            .observe(keys::LATENCY_COMMIT, (committed_at - submitted_at).micros());
        Vec::new()
    }

    /// Terminal abort bookkeeping.
    pub(crate) fn finish_abort(
        &mut self,
        txn: TxnId,
        fragment: FragmentId,
        reason: AbortReason,
    ) -> Vec<Notification> {
        self.engine.metrics.incr(keys::TXN_ABORTED);
        let key = match &reason {
            AbortReason::Logic(_) => keys::ABORT_LOGIC,
            AbortReason::Initiation => keys::ABORT_INITIATION,
            AbortReason::Deadlock => keys::ABORT_DEADLOCK,
            AbortReason::Unavailable => keys::ABORT_UNAVAILABLE,
            AbortReason::UndeclaredClass => keys::ABORT_UNDECLARED_CLASS,
            AbortReason::Model(_) => keys::ABORT_MALFORMED,
        };
        self.engine.metrics.incr(key);
        let why = key.strip_prefix("abort.").unwrap_or(key);
        self.engine.emit(|| TelemetryEvent::Aborted {
            node: txn.origin.0,
            fragment: fragment.0,
            txn_seq: txn.seq,
            reason: why,
        });
        vec![Notification::Aborted {
            txn,
            fragment,
            reason,
        }]
    }

    /// Abort a pending (cross-event) transaction: release its locks or
    /// majority staging, then record the abort.
    pub(crate) fn abort_pending(
        &mut self,
        at: SimTime,
        txn: TxnId,
        reason: AbortReason,
    ) -> Vec<Notification> {
        let Some(pending) = self.pending.remove(&txn) else {
            return Vec::new();
        };
        let mut notes = Vec::new();
        let fragment = match pending {
            Pending::LockAcq {
                fragment,
                home,
                contacted_sites,
                ..
            }
            | Pending::XWait {
                fragment,
                home,
                contacted_sites,
                ..
            } => {
                notes.extend(self.release_all_sites(at, home, txn, &contacted_sites));
                fragment
            }
            Pending::MultiCoord {
                participants, home, ..
            } => {
                let fragment = participants[0].0;
                notes.extend(self.abort_multi(at, txn, participants, home));
                fragment
            }
            Pending::Majority {
                fragment,
                home,
                quasi,
                ..
            } => {
                self.majority_inflight.remove(&fragment);
                // Return the reserved sequence number so no gap forms —
                // unless an election has re-homed the token since staging
                // (epoch bumped): the new regime's recovery already reset
                // the counter, and rolling it back would corrupt it.
                if quasi.epoch == self.tokens.epoch(fragment) {
                    let seq = self.tokens.peek_frag_seq(fragment);
                    self.tokens
                        .set_next_frag_seq(fragment, seq.saturating_sub(1));
                }
                self.broadcast_fragment(at, home, fragment, |bseq| Envelope::AbortCmd {
                    bseq,
                    txn,
                });
                notes.extend(self.drain_queued(at, fragment));
                fragment
            }
        };
        notes.extend(self.finish_abort(txn, fragment, reason));
        notes
    }

    /// Re-submit everything parked on `fragment` (move finished, or the
    /// in-flight majority commit resolved).
    pub(crate) fn drain_queued(&mut self, at: SimTime, fragment: FragmentId) -> Vec<Notification> {
        let mut notes = Vec::new();
        while let Some(q) = self.queued.get_mut(&fragment).and_then(|v| v.pop_front()) {
            self.engine
                .metrics
                .observe(keys::LATENCY_MOVE_WAIT, (at - q.queued_at).micros());
            notes.extend(self.handle_submission(at, q.submission));
            // A drained submission may itself start a majority commit or a
            // 2PC, which re-parks the rest; stop draining in that case.
            if self.majority_inflight.contains_key(&fragment)
                || self.move_state.contains_key(&fragment)
                || self.mf_inflight.contains_key(&fragment)
            {
                break;
            }
        }
        notes
    }
}
