//! The §4.1 remote read-lock protocol.
//!
//! A transaction under "fixed agents; read locks" must hold shared locks on
//! every data object it reads outside its own fragment, acquired *at the
//! home node of that object's agent* — the only place the object can be
//! updated. Grants carry the lock site's current values, so the reader
//! observes a globally consistent snapshot (reading a possibly-stale local
//! replica under a remote lock would defeat the purpose).
//!
//! Writers participate too: before committing, the agent takes exclusive
//! locks on its write set in its own lock table, so it blocks while remote
//! readers hold shared locks there. That is the classical 2PL interaction
//! that makes the strategy globally serializable — and the reason its
//! availability collapses during partitions, which experiment E1 measures.

use std::collections::{BTreeMap, BTreeSet};

use fragdb_model::{NodeId, ObjectId, TxnId, TxnType, Value};
use fragdb_sim::metrics::keys;
use fragdb_sim::{SimTime, TelemetryEvent};
use fragdb_storage::{LockMode, LockOutcome};

use crate::envelope::Envelope;
use crate::events::{AbortReason, Notification, Submission};
use crate::strategy::StrategyKind;
use crate::system::{Pending, RemoteLockReq, System};

impl System {
    /// Begin §4.1 processing for a submission: group declared foreign reads
    /// by lock site and fire the lock requests.
    pub(crate) fn begin_lock_acquisition(
        &mut self,
        at: SimTime,
        home: NodeId,
        sub: Submission,
    ) -> Vec<Notification> {
        let txn = self.alloc_txn(home);
        let fragment = sub.fragment;

        // Group foreign reads by the home node of their fragment's agent.
        // A driver can declare a read of an object in no fragment; that is
        // the driver's mistake, surfaced as a typed abort.
        let mut by_site: BTreeMap<NodeId, Vec<ObjectId>> = BTreeMap::new();
        for &object in &sub.foreign_reads {
            let frag = match self.catalog.fragment_of(object) {
                Ok(frag) => frag,
                Err(e) => return self.finish_abort(txn, fragment, AbortReason::Model(e)),
            };
            let site = self.tokens.home(frag);
            by_site.entry(site).or_default().push(object);
        }

        let timeout = match self.strategy_for(fragment) {
            StrategyKind::ReadLocks { timeout } => *timeout,
            _ => unreachable!("lock path requires ReadLocks strategy"),
        };

        // The lock-wait phase opens here and closes with the `LockGranted`
        // emitted just before the commit (or the read-only finish), paired
        // by `(node, txn_seq)`; an abort closes it via `Aborted` instead.
        let lock_sites = by_site.len() as u32;
        self.engine.emit(|| TelemetryEvent::LockWaitStarted {
            node: home.0,
            fragment: fragment.0,
            txn_seq: txn.seq,
            sites: lock_sites,
        });

        let sites: BTreeSet<NodeId> = by_site.keys().copied().collect();
        self.pending.insert(
            txn,
            Pending::LockAcq {
                fragment,
                home,
                program: Some(sub.program),
                read_only: sub.read_only,
                outstanding_sites: sites.clone(),
                contacted_sites: sites,
                granted: BTreeMap::new(),
                submitted_at: at,
            },
        );
        self.arm_timeout(timeout, txn);

        let mut notes = Vec::new();
        if by_site.is_empty() {
            // Nothing to lock remotely; proceed straight to execution.
            notes.extend(self.try_start_execution(at, txn));
            return notes;
        }
        for (site, objects) in by_site {
            let env = Envelope::LockReq {
                txn,
                objects,
                reply_to: home,
            };
            notes.extend(self.send_direct(at, home, site, env));
        }
        notes
    }

    /// A lock site receives a request: try to take every shared lock now.
    pub(crate) fn on_lock_req(
        &mut self,
        at: SimTime,
        site: NodeId,
        txn: TxnId,
        objects: Vec<ObjectId>,
        reply_to: NodeId,
    ) -> Vec<Notification> {
        let slot = &mut self.nodes[site.0 as usize];
        let mut outstanding = BTreeSet::new();
        for &object in &objects {
            match slot.locks.acquire(txn, object, LockMode::Shared) {
                LockOutcome::Granted => {}
                LockOutcome::Waiting => {
                    outstanding.insert(object);
                }
                LockOutcome::Deadlock => {
                    // Release through the resume path so any waiter the
                    // freed locks unblock is granted, not stranded.
                    let mut notes = self.on_lock_release(at, site, txn);
                    notes.extend(self.send_direct(
                        at,
                        site,
                        reply_to,
                        Envelope::LockDenied { txn },
                    ));
                    return notes;
                }
            }
        }
        if outstanding.is_empty() {
            let values = self.snapshot_values(site, &objects);
            return self.send_direct(at, site, reply_to, Envelope::LockGrant { txn, values });
        }
        self.nodes[site.0 as usize].remote_reqs.insert(
            txn,
            RemoteLockReq {
                objects,
                outstanding,
                reply_to,
            },
        );
        Vec::new()
    }

    fn snapshot_values(&self, site: NodeId, objects: &[ObjectId]) -> Vec<(ObjectId, Value)> {
        let replica = &self.nodes[site.0 as usize].replica;
        objects
            .iter()
            .map(|&o| (o, replica.read(o).clone()))
            .collect()
    }

    /// A grant (with values) arrives back at the requester.
    pub(crate) fn on_lock_grant(
        &mut self,
        at: SimTime,
        site: NodeId,
        txn: TxnId,
        values: Vec<(ObjectId, Value)>,
    ) -> Vec<Notification> {
        let Some(Pending::LockAcq {
            outstanding_sites,
            granted,
            ..
        }) = self.pending.get_mut(&txn)
        else {
            // Timed out / aborted meanwhile: release what we just got.
            return self.send_direct(at, site, site, Envelope::LockRelease { txn });
        };
        for (object, value) in values {
            granted.insert(object, (site, value));
        }
        outstanding_sites.remove(&site);
        if outstanding_sites.is_empty() {
            return self.try_start_execution(at, txn);
        }
        Vec::new()
    }

    /// Denial: the request would deadlock at some site. Abort.
    pub(crate) fn on_lock_denied(&mut self, at: SimTime, txn: TxnId) -> Vec<Notification> {
        self.abort_pending(at, txn, AbortReason::Deadlock)
    }

    /// All shared locks held: run the program, then (for updates) take
    /// exclusive locks on the write set before committing.
    pub(crate) fn try_start_execution(&mut self, at: SimTime, txn: TxnId) -> Vec<Notification> {
        let Some(Pending::LockAcq {
            fragment,
            home,
            program,
            read_only,
            granted,
            contacted_sites,
            submitted_at,
            ..
        }) = self.pending.get_mut(&txn)
        else {
            return Vec::new();
        };
        let fragment = *fragment;
        let home = *home;
        let read_only = *read_only;
        let submitted_at = *submitted_at;
        let program = program.take().expect("program present until execution");
        let granted = std::mem::take(granted);
        let contacted_sites = std::mem::take(contacted_sites);
        self.pending.remove(&txn);

        let effects =
            match self.run_program(at, home, txn, fragment, &[], &granted, read_only, program) {
                Ok(e) => e,
                Err(reason) => {
                    let mut notes = self.release_all_sites(at, home, txn, &contacted_sites);
                    notes.extend(self.finish_abort(txn, fragment, reason));
                    return notes;
                }
            };

        if read_only {
            self.engine.emit(|| TelemetryEvent::LockGranted {
                node: home.0,
                fragment: fragment.0,
                txn_seq: txn.seq,
            });
            self.flush_reads(txn, TxnType::ReadOnly(fragment), &effects.reads, at);
            self.engine.metrics.incr(keys::TXN_READ_FINISHED);
            let mut notes = self.release_all_sites(at, home, txn, &contacted_sites);
            notes.push(Notification::ReadFinished { txn, node: home });
            notes.extend(self.observe_commit_latency(submitted_at, at));
            return notes;
        }

        // Exclusive locks on the write set, at the home's own table.
        let mut blocked = false;
        {
            let slot = &mut self.nodes[home.0 as usize];
            for (object, _) in &effects.writes {
                match slot.locks.acquire(txn, *object, LockMode::Exclusive) {
                    LockOutcome::Granted => {}
                    LockOutcome::Waiting => blocked = true,
                    LockOutcome::Deadlock => {
                        // release_all_sites (below) releases at the home
                        // through the resume path; a raw release here would
                        // swallow the grants it produces.
                        let mut notes = self.release_all_sites(at, home, txn, &contacted_sites);
                        notes.extend(self.finish_abort(txn, fragment, AbortReason::Deadlock));
                        return notes;
                    }
                }
            }
        }
        if blocked {
            self.pending.insert(
                txn,
                Pending::XWait {
                    fragment,
                    home,
                    effects,
                    contacted_sites,
                    submitted_at,
                },
            );
            return Vec::new();
        }
        self.commit_locked(
            at,
            home,
            txn,
            fragment,
            effects,
            &contacted_sites,
            submitted_at,
        )
    }

    /// Commit a §4.1 transaction and release every lock it holds.
    #[allow(clippy::too_many_arguments)]
    fn commit_locked(
        &mut self,
        at: SimTime,
        home: NodeId,
        txn: TxnId,
        fragment: fragdb_model::FragmentId,
        effects: crate::program::TxnEffects,
        contacted_sites: &BTreeSet<NodeId>,
        submitted_at: SimTime,
    ) -> Vec<Notification> {
        // Shared grants AND the exclusive write-set locks are all held:
        // the lock-wait phase ends here, adjacent to the commit itself.
        self.engine.emit(|| TelemetryEvent::LockGranted {
            node: home.0,
            fragment: fragment.0,
            txn_seq: txn.seq,
        });
        let mut notes = self.commit_update(at, home, txn, fragment, effects);
        notes.extend(self.observe_commit_latency(submitted_at, at));
        notes.extend(self.release_all_sites(at, home, txn, contacted_sites));
        notes
    }

    /// Release `txn`'s locks locally and at every contacted remote site.
    pub(crate) fn release_all_sites(
        &mut self,
        at: SimTime,
        home: NodeId,
        txn: TxnId,
        contacted_sites: &BTreeSet<NodeId>,
    ) -> Vec<Notification> {
        let mut notes = self.on_lock_release(at, home, txn);
        for &site in contacted_sites {
            if site != home {
                notes.extend(self.send_direct(at, home, site, Envelope::LockRelease { txn }));
            }
        }
        notes
    }

    /// Release at one node, then resume whatever the freed locks unblock:
    /// remote requests that are now fully granted, and local exclusive
    /// waits that can now commit.
    pub(crate) fn on_lock_release(
        &mut self,
        at: SimTime,
        node: NodeId,
        txn: TxnId,
    ) -> Vec<Notification> {
        let newly = {
            let slot = &mut self.nodes[node.0 as usize];
            slot.remote_reqs.remove(&txn);
            slot.locks.release_all(txn)
        };
        let mut notes = Vec::new();
        let mut completed_remote: Vec<TxnId> = Vec::new();
        let mut maybe_commit: BTreeSet<TxnId> = BTreeSet::new();
        {
            let slot = &mut self.nodes[node.0 as usize];
            for (granted_txn, object) in newly {
                if let Some(req) = slot.remote_reqs.get_mut(&granted_txn) {
                    req.outstanding.remove(&object);
                    if req.outstanding.is_empty() {
                        completed_remote.push(granted_txn);
                    }
                } else {
                    maybe_commit.insert(granted_txn);
                }
            }
        }
        for t in completed_remote {
            let req = self.nodes[node.0 as usize]
                .remote_reqs
                .remove(&t)
                .expect("present");
            let values = self.snapshot_values(node, &req.objects);
            notes.extend(self.send_direct(
                at,
                node,
                req.reply_to,
                Envelope::LockGrant { txn: t, values },
            ));
        }
        for t in maybe_commit {
            notes.extend(self.try_finish_xwait(at, node, t));
        }
        notes
    }

    /// If `txn` is an XWait whose write set is now fully locked, commit it.
    fn try_finish_xwait(&mut self, at: SimTime, node: NodeId, txn: TxnId) -> Vec<Notification> {
        let ready = match self.pending.get(&txn) {
            Some(Pending::XWait { home, effects, .. }) if *home == node => {
                let slot = &self.nodes[node.0 as usize];
                effects
                    .writes
                    .iter()
                    .all(|(o, _)| slot.locks.holds(txn, *o))
            }
            _ => false,
        };
        if !ready {
            return Vec::new();
        }
        let Some(Pending::XWait {
            fragment,
            home,
            effects,
            contacted_sites,
            submitted_at,
        }) = self.pending.remove(&txn)
        else {
            unreachable!("checked above");
        };
        self.commit_locked(
            at,
            home,
            txn,
            fragment,
            effects,
            &contacted_sites,
            submitted_at,
        )
    }
}
