//! Group-commit batching of the §3.2 quasi broadcast.
//!
//! With batching enabled ([`BatchConfig::enabled`]), a commit does not
//! broadcast its quasi-transaction immediately: the home parks it in a
//! per-fragment open batch, which flushes as **one** `Envelope::Batch`
//! when the window fills, when the linger timer fires, or — always —
//! before anything that must order after the batched commits (an agent
//! move). A receiver unpacks the batch element by element through the
//! ordinary install paths, so per-fragment `frag_seq` ordering, the
//! hold-back queue, duplicate suppression, and telemetry's
//! commit→install join are all unchanged; only the number of wire
//! envelopes (and therefore acks and retransmission state) shrinks from
//! O(commits × R) to O(batches × R).
//!
//! Loss semantics mirror the reliable layer's volatile send buffer: a
//! home crash discards its open batches exactly as it discards unacked
//! packets — the commits survive in the home's WAL and reach the other
//! replicas through recovery anti-entropy.
//!
//! [`BatchConfig::enabled`]: crate::config::BatchConfig::enabled

use fragdb_model::{FragmentId, NodeId, QuasiTransaction};
use fragdb_sim::metrics::keys;
use fragdb_sim::SimTime;

use crate::envelope::Envelope;
use crate::events::{Ev, Notification};
use crate::system::{OpenBatch, System};

impl System {
    /// Park a freshly committed quasi-transaction in its fragment's open
    /// batch, flushing if the window fills. Only called when batching is
    /// enabled; the disabled path broadcasts directly from `finish_commit`.
    pub(crate) fn enqueue_batch(&mut self, at: SimTime, home: NodeId, quasi: QuasiTransaction) {
        let fragment = quasi.fragment;
        debug_assert!(self.batch_cfg.enabled());
        let window = self.batch_cfg.window;
        let linger = self.batch_cfg.linger;
        let arm = match self.open_batches.get_mut(&fragment) {
            Some(ob) if ob.home == home => {
                ob.quasis.push(quasi);
                None
            }
            Some(_) => {
                // The agent moved with a batch still open at the old home;
                // moves flush eagerly, so this is defensive — flush the
                // stale batch, then open a fresh one.
                self.flush_batch(at, fragment);
                Some(quasi)
            }
            None => Some(quasi),
        };
        if let Some(quasi) = arm {
            let gen = self.next_batch_gen;
            self.next_batch_gen += 1;
            self.open_batches.insert(
                fragment,
                OpenBatch {
                    home,
                    gen,
                    quasis: vec![quasi],
                },
            );
            // Linger timers ride the timing wheel. A zero linger schedules
            // at the current instant with a *later* sequence number, so the
            // flush runs after every event already queued for this instant
            // ("flush on idle"): same-instant commits still coalesce.
            self.engine
                .schedule_timer_at(at + linger, Ev::FlushBatch { fragment, gen });
        }
        let full = self
            .open_batches
            .get(&fragment)
            .is_some_and(|ob| ob.quasis.len() >= window);
        if full {
            self.flush_batch(at, fragment);
        }
    }

    /// A linger timer fired: flush the batch it guards, unless the batch
    /// already flushed (window full / move) and the generation is stale.
    pub(crate) fn handle_flush_batch(
        &mut self,
        at: SimTime,
        fragment: FragmentId,
        gen: u64,
    ) -> Vec<Notification> {
        if self
            .open_batches
            .get(&fragment)
            .is_some_and(|ob| ob.gen == gen)
        {
            self.flush_batch(at, fragment);
        }
        Vec::new()
    }

    /// Broadcast and close `fragment`'s open batch, if any. A singleton
    /// batch travels as a plain `Quasi` — the same wire shape the
    /// unbatched path produces.
    pub(crate) fn flush_batch(&mut self, at: SimTime, fragment: FragmentId) {
        let Some(ob) = self.open_batches.remove(&fragment) else {
            return;
        };
        let OpenBatch { home, quasis, .. } = ob;
        self.engine
            .metrics
            .observe(keys::NET_BATCH_SIZE, quasis.len() as u64);
        if quasis.len() == 1 {
            let quasi = quasis.into_iter().next().expect("len checked");
            self.broadcast_fragment(at, home, fragment, move |bseq| Envelope::Quasi {
                bseq,
                quasi: quasi.clone(),
            });
        } else {
            self.broadcast_fragment(at, home, fragment, move |bseq| Envelope::Batch {
                bseq,
                batch: quasis.clone(),
            });
        }
    }

    /// Install a received batch at `node`.
    ///
    /// Fast path: when every element is valid and lands exactly in
    /// `frag_seq` order, the whole batch hits the store and WAL in one
    /// [`Replica::install_batch`] call (one WAL append), followed by the
    /// shared per-element bookkeeping. Anything irregular — a stale
    /// prefix, a gap, a NoPrep fragment — falls back to the ordinary
    /// one-at-a-time install routing, which handles every edge case.
    ///
    /// [`Replica::install_batch`]: fragdb_storage::Replica::install_batch
    pub(crate) fn install_batch_env(
        &mut self,
        at: SimTime,
        node: NodeId,
        batch: Vec<QuasiTransaction>,
    ) -> Vec<Notification> {
        if self.batch_fast_path_ok(node, &batch) {
            let fragment = batch[0].fragment;
            self.nodes[node.0 as usize]
                .replica
                .install_batch(&batch, at);
            let mut notes = Vec::new();
            for quasi in batch {
                notes.extend(self.post_install(at, node, quasi));
            }
            // A held-back successor may now be next, exactly as after a
            // single in-order install.
            notes.extend(self.drain_holdback(at, node, fragment));
            notes
        } else {
            let mut notes = Vec::new();
            for quasi in batch {
                notes.extend(self.route_quasi_install(at, node, quasi));
            }
            notes
        }
    }

    /// Is the contiguous single-append fast path safe for this batch here?
    fn batch_fast_path_ok(&self, node: NodeId, batch: &[QuasiTransaction]) -> bool {
        let Some(first) = batch.first() else {
            return false;
        };
        let fragment = first.fragment;
        if !self.move_policy_for(fragment).ordered_installs() {
            return false;
        }
        let next = self.nodes[node.0 as usize]
            .next_install
            .get(&fragment)
            .copied()
            .unwrap_or(0);
        batch.iter().enumerate().all(|(i, q)| {
            q.fragment == fragment
                && q.frag_seq == next + i as u64
                && q.origin() != node
                && q.validate_against(&self.catalog).is_ok()
        })
    }

    /// Route one quasi-transaction to the policy-appropriate install path
    /// (shared by the `Quasi` arm and the batch fallback).
    pub(crate) fn route_quasi_install(
        &mut self,
        at: SimTime,
        node: NodeId,
        quasi: QuasiTransaction,
    ) -> Vec<Notification> {
        if self.move_policy_for(quasi.fragment).ordered_installs() {
            self.ordered_install(at, node, quasi)
        } else {
            self.noprep_install(at, node, quasi)
        }
    }
}
