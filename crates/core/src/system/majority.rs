//! §4.4.1 — majority commit.
//!
//! "Before a transaction can commit at the agent's home node, the
//! corresponding quasi-transaction is sent out to the rest of the nodes,
//! and acknowledgments are requested. The transaction commits only after
//! acknowledgments have been received from a majority of the nodes."
//!
//! The home node counts toward the majority (it durably has the data).
//! One commit is in flight per fragment at a time, keeping the update
//! sequence uninterrupted; later submissions queue behind it.
//!
//! On a move, the new home broadcasts a [`Envelope::SeqQuery`] and installs
//! the entries returned by a majority before resuming — any committed
//! transaction was acked by a majority, every two majorities intersect, so
//! the new home recovers the complete sequence.

use fragdb_model::{FragmentId, NodeId, QuasiTransaction, TxnId};
use fragdb_sim::metrics::keys;
use fragdb_sim::{SimTime, TelemetryEvent};
use fragdb_storage::WalEntry;

use crate::envelope::Envelope;
use crate::events::Notification;
use crate::movement::MovePolicy;
use crate::program::TxnEffects;
use crate::system::{MoveState, Pending, System};

impl System {
    /// Nodes needed for a majority of `fragment`'s replica set (home
    /// included). With full replication this is a majority of all nodes.
    pub(crate) fn majority(&self, fragment: FragmentId) -> usize {
        let population = self
            .replicas_of(fragment)
            .map_or(self.nodes.len(), |set| set.len());
        population / 2 + 1
    }

    /// Stage a freshly-executed update and solicit acknowledgments.
    pub(crate) fn begin_majority_commit(
        &mut self,
        at: SimTime,
        home: NodeId,
        txn: TxnId,
        fragment: FragmentId,
        effects: TxnEffects,
    ) -> Vec<Notification> {
        let MovePolicy::MajorityCommit { timeout } = *self.move_policy_for(fragment) else {
            unreachable!("majority path requires MajorityCommit policy");
        };
        let frag_seq = self.tokens.alloc_frag_seq(fragment);
        let epoch = self.tokens.epoch(fragment);
        let TxnEffects { reads, writes } = effects;
        let updates = self.materialize_payload(writes);
        let quasi = QuasiTransaction {
            txn,
            fragment,
            frag_seq,
            epoch,
            updates,
        };
        self.majority_inflight.insert(fragment, txn);
        if self.engine.telemetry.is_enabled() {
            let cause = Self::cid(fragment, epoch, frag_seq);
            let recipients = self.broadcast_recipients(fragment);
            self.engine.emit(|| TelemetryEvent::BroadcastSent {
                cause,
                node: home.0,
                recipients,
            });
        }
        let q = quasi.clone();
        self.broadcast_fragment(at, home, fragment, move |bseq| Envelope::Prepare {
            bseq,
            quasi: q.clone(),
        });
        self.pending.insert(
            txn,
            Pending::Majority {
                fragment,
                home,
                quasi,
                reads,
                acks: [home].into_iter().collect(),
                submitted_at: at,
            },
        );
        self.arm_timeout(timeout, txn);
        // Single-node cluster: the home alone is a majority.
        self.check_majority(at, txn)
    }

    /// A remote node stages a prepared quasi-transaction and acknowledges.
    pub(crate) fn on_prepare(
        &mut self,
        at: SimTime,
        from: NodeId,
        to: NodeId,
        quasi: QuasiTransaction,
    ) -> Vec<Notification> {
        // Refuse (and never acknowledge) a malformed prepare: a missing ack
        // keeps the majority from forming, so the home aborts on timeout.
        if let Err(e) = quasi.validate_against(&self.catalog) {
            return self.reject_install(at, to, &quasi, e);
        }
        let txn = quasi.txn;
        self.nodes[to.0 as usize].staged.insert(txn, quasi);
        self.send_direct(at, to, from, Envelope::PrepareAck { txn, from: to })
    }

    /// An acknowledgment reaches the home node.
    pub(crate) fn on_prepare_ack(
        &mut self,
        at: SimTime,
        txn: TxnId,
        acker: NodeId,
    ) -> Vec<Notification> {
        if let Some(Pending::Majority { acks, .. }) = self.pending.get_mut(&txn) {
            acks.insert(acker);
        }
        self.check_majority(at, txn)
    }

    /// Commit if the majority has been reached.
    fn check_majority(&mut self, at: SimTime, txn: TxnId) -> Vec<Notification> {
        let reached = matches!(
            self.pending.get(&txn),
            Some(Pending::Majority { fragment, acks, .. })
                if acks.len() >= self.majority(*fragment)
        );
        if !reached {
            return Vec::new();
        }
        let Some(Pending::Majority {
            fragment,
            home,
            quasi,
            reads,
            submitted_at,
            ..
        }) = self.pending.remove(&txn)
        else {
            unreachable!("checked above");
        };
        self.majority_inflight.remove(&fragment);
        // Epoch fence: the quasi was staged under `quasi.epoch`. If a
        // quorum election (or an explicit move) has re-homed the token
        // since, this commit belongs to a deposed regime — refuse it even
        // though a majority acked, so a falsely-suspected home that
        // rejoins cannot fork the update sequence. The reserved sequence
        // number is NOT returned: the new regime's recovery already reset
        // the counter.
        if quasi.epoch != self.tokens.epoch(fragment) {
            self.broadcast_fragment(at, home, fragment, move |bseq| Envelope::AbortCmd {
                bseq,
                txn,
            });
            let mut notes = self.finish_abort(txn, fragment, crate::AbortReason::Unavailable);
            notes.extend(self.drain_queued(at, fragment));
            return notes;
        }
        let mut notes = self.finish_commit(
            at,
            home,
            txn,
            fragment,
            quasi.frag_seq,
            quasi.epoch,
            &reads,
            quasi.updates.clone(), // shares the staged payload, no deep copy
            false,                 // receivers install from their staged copy on CommitCmd
        );
        self.broadcast_fragment(at, home, fragment, |bseq| Envelope::CommitCmd {
            bseq,
            txn,
            fragment,
        });
        notes.extend(self.observe_commit_latency(submitted_at, at));
        notes.extend(self.drain_queued(at, fragment));
        notes
    }

    /// A commit command: install the staged quasi-transaction (in order).
    pub(crate) fn on_commit_cmd(
        &mut self,
        at: SimTime,
        from: NodeId,
        node: NodeId,
        txn: TxnId,
        fragment: FragmentId,
    ) -> Vec<Notification> {
        let Some(quasi) = self.nodes[node.0 as usize].staged.remove(&txn) else {
            // Either this node already has the entry (installed via move
            // recovery), or the staged copy died in a crash. Ask the home
            // for whatever this node is missing; the home committed before
            // broadcasting `CommitCmd`, so its WAL has the entry.
            let have = self.nodes[node.0 as usize].replica.last_frag_seq(fragment);
            return self.send_direct(
                at,
                node,
                from,
                Envelope::SeqQuery {
                    fragment,
                    have,
                    upto: None,
                    reply_to: node,
                    include_staged: false,
                },
            );
        };
        // Gap fence: if the sequence has a hole below this entry, the
        // install will be held back — and nothing retransmits the hole.
        // The gap arises when a predecessor's `CommitCmd` died with a
        // crashed home and an elected successor resurrected the entry
        // from the staged majority (§4.4.1): the new home's WAL has the
        // prefix, this node only ever staged it. Ask the commanding home
        // for exactly the missing range, or every later commit at this
        // node is held back forever.
        let next = self.nodes[node.0 as usize]
            .next_install
            .get(&fragment)
            .copied()
            .unwrap_or(0);
        let mut notes = Vec::new();
        if quasi.frag_seq > next {
            let have = self.nodes[node.0 as usize].replica.last_frag_seq(fragment);
            notes.extend(self.send_direct(
                at,
                node,
                from,
                Envelope::SeqQuery {
                    fragment,
                    have,
                    upto: Some(quasi.frag_seq - 1),
                    reply_to: node,
                    include_staged: false,
                },
            ));
        }
        notes.extend(self.ordered_install(at, node, quasi));
        notes
    }

    // ---- move-time recovery ---------------------------------------------

    /// §4.4.1 move: start recovering the fragment's sequence from a
    /// majority. `elected` marks a recovery started by a quorum election
    /// (rather than the driver); completion then emits `TokenRecovered`.
    pub(crate) fn begin_majority_recovery(
        &mut self,
        at: SimTime,
        fragment: FragmentId,
        old_home: NodeId,
        new_home: NodeId,
        elected: bool,
    ) -> Vec<Notification> {
        self.move_state.insert(
            fragment,
            MoveState::MajorityRecovery {
                new_home,
                old_home,
                elected,
                replies: [new_home].into_iter().collect(),
            },
        );
        let have = self.nodes[new_home.0 as usize]
            .replica
            .last_frag_seq(fragment);
        let targets: Vec<NodeId> = match self.replicas_of(fragment) {
            Some(set) => set.iter().copied().collect(),
            None => (0..self.nodes.len() as u32).map(NodeId).collect(),
        };
        let mut notes = Vec::new();
        for to in targets {
            if to == new_home {
                continue;
            }
            notes.extend(self.send_direct(
                at,
                new_home,
                to,
                Envelope::SeqQuery {
                    fragment,
                    have,
                    upto: None,
                    reply_to: new_home,
                    include_staged: true,
                },
            ));
        }
        // A single-node system is already a majority.
        notes.extend(self.check_recovery_done(at, fragment));
        notes
    }

    /// Another node answers a sequence query with the entries the querier
    /// is missing. With `include_staged`, staged-but-not-yet-committed
    /// quasi-transactions count as "seen" (the paper: each old transaction
    /// "was seen by a majority of nodes" — seen means acknowledged at
    /// prepare time, which is exactly the staged set), so a transaction
    /// whose `CommitCmd` is still in flight at move time is not lost.
    /// Crash-recovery anti-entropy passes `include_staged: false`: a
    /// restarting node must not resurrect prepares whose outcome is still
    /// the live home's to decide.
    ///
    /// Known limitation: if the move instead races an `AbortCmd`, a staged
    /// share can be resurrected at the new home. Both races stem from
    /// moving an agent with commands in flight; drivers should quiesce a
    /// fragment before moving it (same caveat as for multi-fragment 2PC).
    #[allow(clippy::too_many_arguments)]
    pub(crate) fn on_seq_query(
        &mut self,
        at: SimTime,
        node: NodeId,
        fragment: FragmentId,
        have: Option<u64>,
        upto: Option<u64>,
        reply_to: NodeId,
        include_staged: bool,
    ) -> Vec<Notification> {
        let from_seq = have.map_or(0, |h| h + 1);
        let to_seq = upto.unwrap_or(u64::MAX);
        let slot = &self.nodes[node.0 as usize];
        let mut entries: Vec<WalEntry> = slot
            .replica
            .wal()
            .fragment_range(fragment, from_seq, to_seq)
            .into_iter()
            .cloned()
            .collect();
        if include_staged {
            for quasi in slot.staged.values() {
                if quasi.fragment == fragment
                    && (from_seq..=to_seq).contains(&quasi.frag_seq)
                    && !entries.iter().any(|e| e.frag_seq == quasi.frag_seq)
                {
                    entries.push(WalEntry {
                        txn: quasi.txn,
                        fragment: quasi.fragment,
                        frag_seq: quasi.frag_seq,
                        epoch: quasi.epoch,
                        updates: quasi.updates.clone(),
                        installed_at: at,
                    });
                }
            }
        }
        entries.sort_by_key(|e| e.frag_seq);
        self.engine
            .metrics
            .observe(keys::CATCHUP_RANGE_LEN, entries.len() as u64);
        self.send_direct(
            at,
            node,
            reply_to,
            Envelope::SeqReply {
                fragment,
                from: node,
                entries,
            },
        )
    }

    /// A recovery reply: install what is missing. For a §4.4.1 move the
    /// replier also counts toward the recovery majority; crash-recovery
    /// catch-up (no move in progress) just installs — `ordered_install`
    /// drops anything already present.
    pub(crate) fn on_seq_reply(
        &mut self,
        at: SimTime,
        node: NodeId,
        fragment: FragmentId,
        replier: NodeId,
        entries: Vec<WalEntry>,
    ) -> Vec<Notification> {
        let mut notes = Vec::new();
        if let Some(MoveState::MajorityRecovery {
            new_home, replies, ..
        }) = self.move_state.get_mut(&fragment)
        {
            if *new_home == node {
                replies.insert(replier);
            }
        }
        // Install unconditionally — `ordered_install` drops anything
        // already present. In particular an entry *originated* by this
        // node must not be skipped: after a crash the origin may never
        // have installed its own commit (it crashed between `Prepare`
        // and the local install) while an elected successor resurrected
        // it from the staged majority; skipping it here would leave a
        // permanent hole that holds back the rest of the sequence.
        for e in entries {
            let quasi = QuasiTransaction {
                txn: e.txn,
                fragment: e.fragment,
                frag_seq: e.frag_seq,
                epoch: e.epoch,
                updates: e.updates,
            };
            notes.extend(self.ordered_install(at, node, quasi));
        }
        notes.extend(self.check_recovery_done(at, fragment));
        notes
    }

    fn check_recovery_done(&mut self, at: SimTime, fragment: FragmentId) -> Vec<Notification> {
        let done = matches!(
            self.move_state.get(&fragment),
            Some(MoveState::MajorityRecovery { replies, .. })
                if replies.len() >= self.majority(fragment)
        );
        if !done {
            return Vec::new();
        }
        let Some(MoveState::MajorityRecovery {
            new_home, elected, ..
        }) = self.move_state.remove(&fragment)
        else {
            unreachable!("checked above");
        };
        // The recovered prefix defines where the sequence resumes.
        let next = self.nodes[new_home.0 as usize]
            .next_install
            .get(&fragment)
            .copied()
            .unwrap_or(0);
        self.tokens.set_next_frag_seq(fragment, next);
        self.engine.emit(|| TelemetryEvent::TokenArrived {
            fragment: fragment.0,
            node: new_home.0,
        });
        if elected {
            // Self-healing complete: the fragment is writable again at the
            // elected home. Probes close `frag.<f>.unavail_window` here.
            let epoch = self.tokens.epoch(fragment);
            self.engine.emit(|| TelemetryEvent::TokenRecovered {
                fragment: fragment.0,
                epoch,
                node: new_home.0,
            });
        }
        let mut notes = vec![Notification::MoveCompleted {
            fragment,
            node: new_home,
            at,
        }];
        notes.extend(self.drain_queued(at, fragment));
        notes
    }
}
