//! Multi-fragment update transactions (the §3.2 footnote).
//!
//! *"When this cannot be done, a semblance of the two-phase commit
//! protocol can be used, that involves the agents of all the fragments
//! that are being updated."*
//!
//! The coordinator is the **first** fragment's agent home. It runs the
//! program against its own replica, partitions the buffered writes by
//! fragment, and runs a two-phase commit with each written fragment's
//! agent:
//!
//! 1. `MfPrepare` — each agent *stages* its share: it reserves the next
//!    position in its fragment's update sequence, marks the fragment busy
//!    (blocking other updates on it until resolution — the classical 2PC
//!    blocking cost, which shows up as measured queueing), and votes.
//!    An agent whose fragment is already bound to another 2PC, mid-move,
//!    or mid-majority-commit votes **no**.
//! 2. On unanimous yes votes the coordinator sends `MfCommit`: each agent
//!    commits its share under a *local* transaction id (updates to a
//!    fragment still originate only from its agent — the paper's core
//!    invariant) and broadcasts the share as an ordinary quasi-transaction.
//!    On any no vote, or on timeout, `MfAbort` releases the stage and
//!    returns the reserved sequence number.
//!
//! Shares commit at their agents at slightly different instants, so a
//! reader can observe one share before another — consistent with
//! fragmentwise serializability, which never protects multi-fragment
//! predicates (§4.3). Atomicity here is all-or-nothing *durability*, not
//! isolation.
//!
//! Known limitation (documented, asserted in tests): moving the agent of a
//! fragment while it participates in an in-flight 2PC is unsupported; the
//! coordinator timeout plus `MfAbort` eventually release the fragment, but
//! the reserved sequence number may leave a gap if the token moved
//! meanwhile. Drivers should quiesce a fragment before moving it.

use std::collections::BTreeMap;

use fragdb_model::{
    FragmentId, NodeId, ObjectId, QuasiTransaction, TxnId, TxnType, Updates, Value,
};
use fragdb_sim::metrics::keys;
use fragdb_sim::{SimTime, TelemetryEvent};

use crate::envelope::Envelope;
use crate::events::{AbortReason, Notification, Submission};
use crate::system::{MfStage, Pending, System};

impl System {
    /// Coordinator entry: run the program, partition writes, fire prepares.
    pub(crate) fn begin_multi_update(
        &mut self,
        at: SimTime,
        home: NodeId,
        sub: Submission,
    ) -> Vec<Notification> {
        let xid = self.alloc_txn(home);
        let first = sub.fragment;
        let declared: Vec<FragmentId> = std::iter::once(first)
            .chain(sub.extra_fragments.iter().copied())
            .collect();

        // Execute against the coordinator's replica.
        let no_grants = BTreeMap::new();
        let effects = match self.run_program(
            at,
            home,
            xid,
            first,
            &sub.extra_fragments,
            &no_grants,
            false,
            sub.program,
        ) {
            Ok(e) => e,
            Err(reason) => return self.finish_abort(xid, first, reason),
        };

        // Partition writes per fragment.
        let mut shares: BTreeMap<FragmentId, Vec<(ObjectId, Value)>> = BTreeMap::new();
        for (o, v) in effects.writes {
            let f = self.catalog.fragment_of(o).expect("validated by ctx");
            shares.entry(f).or_default().push((o, v));
        }
        // Degenerate case: everything landed in the initiating fragment —
        // commit through the ordinary single-fragment path, which also
        // routes through majority commit when that policy applies. (If the
        // single written fragment is NOT the initiator's, fall through to
        // the 2PC machinery so the write still commits at that fragment's
        // own agent home.)
        let only_first = shares.len() <= 1 && shares.keys().next().is_none_or(|&f| f == first);
        if only_first {
            let writes = shares.into_values().next().unwrap_or_default();
            let effects = crate::program::TxnEffects {
                reads: effects.reads,
                writes,
            };
            if self.move_policy_for(first).needs_majority_commit() {
                return self.begin_majority_commit(at, home, xid, first, effects);
            }
            let mut notes = self.commit_update(at, home, xid, first, effects);
            notes.extend(self.observe_commit_latency(at, at));
            return notes;
        }

        // One materialization per share; each participant's envelope,
        // retransmission buffer, staged copy, WAL entry, and rebroadcast
        // share it.
        let mut payloads: BTreeMap<FragmentId, Updates> = BTreeMap::new();
        for (f, w) in shares {
            let payload = self.materialize_payload(w);
            payloads.insert(f, payload);
        }
        let participants: Vec<(FragmentId, NodeId)> =
            payloads.keys().map(|&f| (f, self.tokens.home(f))).collect();
        debug_assert!(participants
            .iter()
            .any(|(f, _)| *f == first || declared.contains(f)));
        self.engine.metrics.incr(keys::MF_STARTED);
        self.pending.insert(
            xid,
            Pending::MultiCoord {
                participants: participants.clone(),
                votes: Default::default(),
                home,
                reads: effects.reads,
                submitted_at: at,
            },
        );
        let timeout = self.mf_timeout;
        self.arm_timeout(timeout, xid);

        let mut notes = Vec::new();
        for (fragment, agent_home) in participants {
            let env = Envelope::MfPrepare {
                xid,
                fragment,
                updates: payloads[&fragment].clone(),
                reply_to: home,
            };
            notes.extend(self.send_direct(at, home, agent_home, env));
        }
        notes
    }

    /// Participant: stage a share, reserve the sequence slot, vote.
    pub(crate) fn on_mf_prepare(
        &mut self,
        at: SimTime,
        node: NodeId,
        xid: TxnId,
        fragment: FragmentId,
        updates: Updates,
        reply_to: NodeId,
    ) -> Vec<Notification> {
        let busy = self.mf_inflight.contains_key(&fragment)
            || self.majority_inflight.contains_key(&fragment)
            || self.move_state.contains_key(&fragment)
            || !self.tokens.is_home(fragment, node);
        if busy {
            self.engine.metrics.incr(keys::MF_VOTE_NO);
            return self.send_direct(
                at,
                node,
                reply_to,
                Envelope::MfVote {
                    xid,
                    fragment,
                    yes: false,
                },
            );
        }
        let local_txn = self.alloc_txn(node);
        let frag_seq = self.tokens.alloc_frag_seq(fragment);
        let epoch = self.tokens.epoch(fragment);
        self.mf_inflight.insert(fragment, xid);
        self.nodes[node.0 as usize].mf_staged.insert(
            (xid, fragment),
            MfStage {
                local_txn,
                frag_seq,
                epoch,
                updates,
            },
        );
        self.send_direct(
            at,
            node,
            reply_to,
            Envelope::MfVote {
                xid,
                fragment,
                yes: true,
            },
        )
    }

    /// Coordinator: collect votes; commit on unanimity, abort on refusal.
    pub(crate) fn on_mf_vote(
        &mut self,
        at: SimTime,
        xid: TxnId,
        fragment: FragmentId,
        yes: bool,
    ) -> Vec<Notification> {
        if !yes {
            return self.abort_pending(at, xid, AbortReason::Unavailable);
        }
        let ready = match self.pending.get_mut(&xid) {
            Some(Pending::MultiCoord {
                participants,
                votes,
                ..
            }) => {
                votes.insert(fragment);
                votes.len() == participants.len()
            }
            _ => false, // already resolved
        };
        if !ready {
            return Vec::new();
        }
        let Some(Pending::MultiCoord {
            participants,
            home,
            reads,
            submitted_at,
            ..
        }) = self.pending.remove(&xid)
        else {
            unreachable!("checked above");
        };
        self.engine.metrics.incr(keys::MF_COMMITTED);
        let mut notes = Vec::new();
        // Flush the coordinator's reads under the share executed at the
        // coordinator itself (its own fragment's share) — it performed
        // them. Fall back to the first share if the program wrote nothing
        // in the initiator's fragment.
        let (read_fragment, read_home) = participants
            .iter()
            .copied()
            .find(|&(_, h)| h == home)
            .unwrap_or(participants[0]);
        let read_txn = self.nodes[read_home.0 as usize]
            .mf_staged
            .get(&(xid, read_fragment))
            .map(|s| s.local_txn);
        if let Some(t) = read_txn {
            self.flush_reads(t, TxnType::Update(read_fragment), &reads, at);
        }
        for (fragment, agent_home) in participants {
            notes.extend(self.send_direct(
                at,
                home,
                agent_home,
                Envelope::MfCommit { xid, fragment },
            ));
        }
        notes.extend(self.observe_commit_latency(submitted_at, at));
        notes
    }

    /// Participant: commit the staged share under its local transaction.
    pub(crate) fn on_mf_commit(
        &mut self,
        at: SimTime,
        node: NodeId,
        xid: TxnId,
        fragment: FragmentId,
    ) -> Vec<Notification> {
        let Some(stage) = self.nodes[node.0 as usize]
            .mf_staged
            .remove(&(xid, fragment))
        else {
            return Vec::new();
        };
        self.mf_inflight.remove(&fragment);
        let ttype = TxnType::Update(fragment);
        for (object, _) in &stage.updates {
            self.history.record_local(
                node,
                stage.local_txn,
                ttype,
                fragdb_model::OpKind::Write,
                *object,
                at,
            );
        }
        let slot = &mut self.nodes[node.0 as usize];
        slot.replica.commit_local(
            stage.local_txn,
            fragment,
            stage.frag_seq,
            stage.epoch,
            stage.updates.clone(),
            at,
        );
        slot.next_install.insert(fragment, stage.frag_seq + 1);
        self.commit_times
            .insert((fragment, stage.epoch, stage.frag_seq), at);
        if self.engine.telemetry.is_enabled() {
            let cause = Self::cid(fragment, stage.epoch, stage.frag_seq);
            self.engine.emit(|| TelemetryEvent::Committed {
                cause,
                node: node.0,
                txn_seq: stage.local_txn.seq,
            });
            self.engine.emit(|| TelemetryEvent::Installed {
                cause,
                node: node.0,
            });
            let recipients = self.broadcast_recipients(fragment);
            self.engine.emit(|| TelemetryEvent::BroadcastSent {
                cause,
                node: node.0,
                recipients,
            });
        }
        let quasi = QuasiTransaction {
            txn: stage.local_txn,
            fragment,
            frag_seq: stage.frag_seq,
            epoch: stage.epoch,
            updates: stage.updates,
        };
        let q = quasi.clone();
        self.broadcast_fragment(at, node, fragment, move |bseq| Envelope::Quasi {
            bseq,
            quasi: q.clone(),
        });
        self.engine.metrics.incr(keys::TXN_COMMITTED);
        let mut notes = vec![Notification::Committed {
            txn: stage.local_txn,
            fragment,
            node,
            at,
        }];
        notes.extend(self.drain_queued(at, fragment));
        notes
    }

    /// Participant: drop a staged share and return the reserved slot.
    pub(crate) fn on_mf_abort(
        &mut self,
        at: SimTime,
        node: NodeId,
        xid: TxnId,
        fragment: FragmentId,
    ) -> Vec<Notification> {
        let Some(stage) = self.nodes[node.0 as usize]
            .mf_staged
            .remove(&(xid, fragment))
        else {
            return Vec::new();
        };
        if self.mf_inflight.get(&fragment) == Some(&xid) {
            self.mf_inflight.remove(&fragment);
        }
        // Return the reserved sequence number iff nothing was allocated
        // after it (guaranteed while the fragment was marked busy) and the
        // token has not moved to a new regime meanwhile.
        if self.tokens.peek_frag_seq(fragment) == stage.frag_seq + 1
            && self.tokens.epoch(fragment) == stage.epoch
        {
            self.tokens.set_next_frag_seq(fragment, stage.frag_seq);
        }
        self.engine.metrics.incr(keys::MF_ABORTED_SHARE);
        self.drain_queued(at, fragment)
    }

    /// Coordinator-side abort (vote no / timeout): tell every participant.
    pub(crate) fn abort_multi(
        &mut self,
        at: SimTime,
        xid: TxnId,
        participants: Vec<(FragmentId, NodeId)>,
        home: NodeId,
    ) -> Vec<Notification> {
        self.engine.metrics.incr(keys::MF_ABORTED);
        let mut notes = Vec::new();
        for (fragment, agent_home) in participants {
            notes.extend(self.send_direct(
                at,
                home,
                agent_home,
                Envelope::MfAbort { xid, fragment },
            ));
        }
        notes
    }
}
