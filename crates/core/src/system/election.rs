//! Self-healing token recovery: heartbeat sweep + quorum election.
//!
//! The paper (§4.4, §5) leaves post-failure agent recovery to an operator:
//! someone notices the dead home and moves the token by hand. This module
//! mechanizes that. Each [`Ev::DetectorTick`] every live node broadcasts a
//! [`Envelope::Heartbeat`] and sweeps its local [`FailureDetector`]; when
//! the lowest-id live replica of a majority-commit fragment suspects that
//! fragment's token home, it calls an election among the fragment's
//! replicas. A voter grants at most one candidate per `(fragment, epoch)`,
//! so at most one candidate can assemble a majority in an epoch; the
//! winner bumps the token epoch (fencing the deposed home — see the epoch
//! fence in `check_majority`) and re-homes the token through the §4.4.1
//! recovery machinery, which is exactly the manual move's code path.
//!
//! Elections are restricted to fragments under the `MajorityCommit`
//! policy: it is the one policy whose recovery needs no cooperation from
//! the (dead) old home, because every committed update was acknowledged by
//! a majority and any two majorities intersect. A suspicion of a home
//! under any other policy is surfaced (`SuspectRaised`) but not acted on.
//!
//! A false suspicion — the home is slow or partitioned, not dead — is
//! safe everywhere in this file: suspicion only starts a vote; losing the
//! vote costs nothing; winning it bumps the epoch, and the fence turns the
//! old regime's in-flight commits into clean aborts.
//!
//! [`Ev::DetectorTick`]: crate::events::Ev::DetectorTick
//! [`FailureDetector`]: fragdb_net::FailureDetector

use std::collections::BTreeSet;

use fragdb_model::{FragmentId, NodeId};
use fragdb_sim::metrics::keys;
use fragdb_sim::{SimTime, TelemetryEvent};

use crate::envelope::Envelope;
use crate::events::{Ev, Notification};
use crate::system::System;

/// One open election (at most one per fragment).
pub(crate) struct ElectionState {
    /// The suspected home being voted out.
    pub home: NodeId,
    /// The token epoch this election fences on: votes and the win are
    /// valid only while the token is still at this epoch.
    pub fenced_epoch: u64,
    /// The proposed new home (the initiating replica itself).
    pub candidate: NodeId,
    /// Yes-votes received, the candidate's own included.
    pub votes: BTreeSet<NodeId>,
    /// When this round's patience timer fires; earlier (stale) timeout
    /// events no-op against it.
    pub deadline: SimTime,
}

impl System {
    /// The recurring detector tick: re-arm, beat, sweep, (maybe) elect.
    pub(crate) fn handle_detector_tick(&mut self, at: SimTime) -> Vec<Notification> {
        if !self.detector_cfg.enabled() {
            return Vec::new();
        }
        // Re-arm first so the cadence is independent of the work below.
        self.engine
            .schedule_timer_at(at + self.detector_cfg.heartbeat_period, Ev::DetectorTick);
        self.detector_beat += 1;
        let beat = self.detector_beat;
        let n = self.nodes.len() as u32;

        // Every live node beats to its monitor peers — the nodes it shares
        // at least one fragment replica set with. Under full replication
        // that is every peer (the pre-§6 behavior); under partial
        // replication the per-tick fan-out is bounded by the replica sets
        // instead of O(n²). Beats to a down peer are dropped at its door
        // and retransmitted; the reliable layer's resync on recovery
        // clears the backlog.
        let live: Vec<NodeId> = (0..n)
            .map(NodeId)
            .filter(|p| !self.down.contains(p))
            .collect();
        for &from in &live {
            for peer in self.monitor_peers(from) {
                self.engine.metrics.incr(keys::DETECTOR_HEARTBEATS);
                self.send_direct(at, from, peer, Envelope::Heartbeat { from, beat });
            }
        }

        // Sweep each live node's local view for newly silent peers.
        let mut notes = Vec::new();
        for &observer in &live {
            let Some(d) = self.detectors.get_mut(&observer) else {
                continue;
            };
            for suspect in d.tick(at) {
                self.engine.metrics.incr(keys::DETECTOR_SUSPICIONS);
                self.engine.emit(|| TelemetryEvent::SuspectRaised {
                    node: observer.0,
                    suspect: suspect.0,
                });
            }
        }

        // Election scan — standing suspicions, not just newly raised ones,
        // so an aborted (timed-out) round retries on the next tick. Only
        // the fragment's designated initiator acts: the lowest-id replica
        // that is live and does not itself suspect it.
        let frags: Vec<FragmentId> = self.tokens.fragments().collect();
        for fragment in frags {
            if self.elections.contains_key(&fragment) || self.move_state.contains_key(&fragment) {
                continue;
            }
            if !self.move_policy_for(fragment).needs_majority_commit() {
                continue;
            }
            let home = self.tokens.home(fragment);
            let replicas: Vec<NodeId> = match self.replicas_of(fragment) {
                Some(set) => set.iter().copied().collect(),
                None => (0..n).map(NodeId).collect(),
            };
            // A 2-replica set cannot out-vote its own home (majority = 2
            // includes the dead home); Fdb051 warns about this statically.
            if replicas.len() < 3 {
                continue;
            }
            let initiator = replicas.iter().copied().find(|&r| {
                r != home
                    && !self.down.contains(&r)
                    && self.detectors.get(&r).is_some_and(|d| d.is_suspected(home))
            });
            let Some(initiator) = initiator else {
                continue;
            };
            notes.extend(self.start_election(at, fragment, initiator));
        }
        notes
    }

    /// Open a round: fence on the current epoch, self-vote, solicit the
    /// rest of the replica set, arm the patience timer.
    fn start_election(
        &mut self,
        at: SimTime,
        fragment: FragmentId,
        candidate: NodeId,
    ) -> Vec<Notification> {
        let home = self.tokens.home(fragment);
        let epoch = self.tokens.epoch(fragment);
        self.engine.metrics.incr(keys::ELECTION_ROUNDS);
        self.engine.emit(|| TelemetryEvent::ElectionStarted {
            fragment: fragment.0,
            epoch,
            candidate: candidate.0,
        });
        let deadline = at + self.detector_cfg.election_timeout;
        self.elections.insert(
            fragment,
            ElectionState {
                home,
                fenced_epoch: epoch,
                candidate,
                votes: [candidate].into_iter().collect(),
                deadline,
            },
        );
        self.granted_votes
            .insert((fragment, epoch, candidate), candidate);
        self.engine
            .schedule_timer_at(deadline, Ev::ElectionTimeout { fragment, epoch });
        let voters: Vec<NodeId> = match self.replicas_of(fragment) {
            Some(set) => set.iter().copied().collect(),
            None => (0..self.nodes.len() as u32).map(NodeId).collect(),
        };
        let mut notes = Vec::new();
        for v in voters {
            if v == candidate || v == home {
                continue;
            }
            notes.extend(self.send_direct(
                at,
                candidate,
                v,
                Envelope::VoteReq {
                    fragment,
                    epoch,
                    candidate,
                    reply_to: candidate,
                },
            ));
        }
        notes
    }

    /// A heartbeat arrives at `node` from `beater`. Clearing a standing
    /// suspicion at a candidate aborts its election: the home is alive.
    pub(crate) fn on_heartbeat(
        &mut self,
        at: SimTime,
        node: NodeId,
        beater: NodeId,
    ) -> Vec<Notification> {
        let cleared = self
            .detectors
            .get_mut(&node)
            .is_some_and(|d| d.heard(beater, at));
        if !cleared {
            return Vec::new();
        }
        let stale: Vec<FragmentId> = self
            .elections
            .iter()
            .filter(|(_, e)| e.candidate == node && e.home == beater)
            .map(|(&f, _)| f)
            .collect();
        for fragment in stale {
            let e = self.elections.remove(&fragment).expect("collected above");
            self.abort_election(fragment, e.fenced_epoch, "home_alive");
        }
        Vec::new()
    }

    /// A replica decides whether to grant a vote. The grant requires: the
    /// epoch is current (nothing re-homed the token meanwhile), this voter
    /// also suspects the home, and it has not granted a different
    /// candidate in this `(fragment, epoch)`.
    pub(crate) fn on_vote_req(
        &mut self,
        at: SimTime,
        node: NodeId,
        fragment: FragmentId,
        epoch: u64,
        candidate: NodeId,
        reply_to: NodeId,
    ) -> Vec<Notification> {
        let home = self.tokens.home(fragment);
        let granted = epoch == self.tokens.epoch(fragment)
            && self
                .detectors
                .get(&node)
                .is_some_and(|d| d.is_suspected(home))
            && match self.granted_votes.get(&(fragment, epoch, node)) {
                Some(&prior) => prior == candidate,
                None => true,
            };
        if granted {
            self.granted_votes
                .insert((fragment, epoch, node), candidate);
        }
        self.send_direct(
            at,
            node,
            reply_to,
            Envelope::Vote {
                fragment,
                epoch,
                from: node,
                granted,
            },
        )
    }

    /// A vote reaches the candidate; a majority wins the round.
    pub(crate) fn on_vote(
        &mut self,
        at: SimTime,
        node: NodeId,
        fragment: FragmentId,
        epoch: u64,
        voter: NodeId,
        granted: bool,
    ) -> Vec<Notification> {
        let majority = self.majority(fragment);
        let won = {
            let Some(e) = self.elections.get_mut(&fragment) else {
                return Vec::new();
            };
            if e.fenced_epoch != epoch || e.candidate != node || !granted {
                return Vec::new();
            }
            e.votes.insert(voter);
            e.votes.len() >= majority
        };
        if !won {
            return Vec::new();
        }
        let e = self.elections.remove(&fragment).expect("present above");
        if self.tokens.epoch(fragment) != e.fenced_epoch {
            // An explicit move (or a competing mechanism) re-homed the
            // token while the votes were in flight; the win is void.
            self.abort_election(fragment, e.fenced_epoch, "superseded");
            return Vec::new();
        }
        self.engine.metrics.incr(keys::ELECTION_WON);
        self.engine.emit(|| TelemetryEvent::ElectionWon {
            fragment: fragment.0,
            epoch: e.fenced_epoch,
            node: e.candidate.0,
        });
        // The reattach bumps the epoch — from here the fence in
        // `check_majority` refuses every commit the deposed home staged.
        self.tokens.reattach(fragment, e.candidate);
        self.begin_majority_recovery(at, fragment, e.home, e.candidate, true)
    }

    /// The round's patience ran out; a retry starts at the next tick if
    /// the home is still suspected.
    pub(crate) fn handle_election_timeout(
        &mut self,
        at: SimTime,
        fragment: FragmentId,
        epoch: u64,
    ) -> Vec<Notification> {
        let stale = match self.elections.get(&fragment) {
            Some(e) => e.fenced_epoch != epoch || at < e.deadline,
            None => true,
        };
        if stale {
            return Vec::new();
        }
        self.elections.remove(&fragment);
        self.abort_election(fragment, epoch, "timeout");
        Vec::new()
    }

    /// Shared abort bookkeeping (the election has already been removed).
    pub(crate) fn abort_election(
        &mut self,
        fragment: FragmentId,
        epoch: u64,
        reason: &'static str,
    ) {
        self.engine.metrics.incr(keys::ELECTION_ABORTED);
        self.engine.emit(|| TelemetryEvent::ElectionAborted {
            fragment: fragment.0,
            epoch,
            reason,
        });
    }

    /// Crash-time cleanup: a dead candidate's rounds abort, and the dead
    /// node's volatile votes (granted and received) are struck so they
    /// cannot count toward any majority after it restarts amnesiac.
    pub(crate) fn election_cleanup_on_crash(&mut self, node: NodeId) {
        let dead: Vec<FragmentId> = self
            .elections
            .iter()
            .filter(|(_, e)| e.candidate == node)
            .map(|(&f, _)| f)
            .collect();
        for fragment in dead {
            let e = self.elections.remove(&fragment).expect("collected above");
            self.abort_election(fragment, e.fenced_epoch, "candidate_crashed");
        }
        for e in self.elections.values_mut() {
            e.votes.remove(&node);
        }
        self.granted_votes.retain(|&(_, _, voter), _| voter != node);
    }
}
