//! Agent movement (§4.4): the `Move` event and the per-policy protocols
//! other than majority recovery (which lives in `majority.rs`).

use fragdb_model::{FragmentId, NodeId, ObjectId, QuasiTransaction, TxnId, Value};
use fragdb_sim::metrics::keys;
use fragdb_sim::{SimTime, TelemetryEvent};
use fragdb_storage::WalEntry;

use crate::envelope::Envelope;
use crate::events::{AbortReason, Ev, Notification};
use crate::movement::MovePolicy;
use crate::system::{MoveState, RegimeClose, System};

impl System {
    /// Handle a token move request.
    pub(crate) fn handle_move(
        &mut self,
        at: SimTime,
        fragment: FragmentId,
        to: NodeId,
    ) -> Vec<Notification> {
        assert!(
            *self.move_policy_for(fragment) != MovePolicy::Fixed,
            "agent movement requested under the Fixed policy (fragment {fragment})"
        );
        assert!(
            self.replicated_at(fragment, to),
            "cannot move {fragment}'s agent to {to}: no replica there"
        );
        // A move ends the regime: the old home's open group-commit batch
        // (if any) must hit the wire *before* the move's own broadcasts so
        // the old-regime commits are FIFO-ordered ahead of the epoch bump.
        self.flush_batch(at, fragment);
        let old_home = self.tokens.home(fragment);
        // Either endpoint down: the move cannot proceed (the old home must
        // snapshot/close the regime, the new home must receive). Retry
        // shortly, like a move racing another move.
        if self.down.contains(&old_home) || self.down.contains(&to) {
            self.engine.metrics.incr(keys::MOVES_DEFERRED);
            self.engine.emit(|| TelemetryEvent::MoveAborted {
                fragment: fragment.0,
                from: old_home.0,
                to: to.0,
            });
            self.engine.schedule(
                fragdb_sim::SimDuration::from_secs(1),
                Ev::Move { fragment, to },
            );
            return Vec::new();
        }
        if old_home == to {
            return vec![Notification::MoveCompleted {
                fragment,
                node: to,
                at,
            }];
        }
        // A move while the previous one is still completing would corrupt
        // the protocol state; retry shortly instead.
        if self.move_state.contains_key(&fragment) {
            self.engine.metrics.incr(keys::MOVES_DEFERRED);
            self.engine.emit(|| TelemetryEvent::MoveAborted {
                fragment: fragment.0,
                from: old_home.0,
                to: to.0,
            });
            self.engine.schedule(
                fragdb_sim::SimDuration::from_secs(1),
                Ev::Move { fragment, to },
            );
            return Vec::new();
        }
        self.engine.metrics.incr(keys::MOVES_REQUESTED);
        self.engine.emit(|| TelemetryEvent::MoveRequested {
            fragment: fragment.0,
            from: old_home.0,
            to: to.0,
        });

        // Any in-flight transaction touching this fragment is orphaned by
        // the move: collect it for abort. The aborts run AFTER the policy
        // match below, so the move state is already in place and a drained
        // submission re-queues instead of executing at the stale home.
        let orphans: Vec<TxnId> = self
            .pending
            .iter()
            .filter(|(_, p)| match p {
                super::Pending::LockAcq { fragment: f, .. }
                | super::Pending::XWait { fragment: f, .. }
                | super::Pending::Majority { fragment: f, .. } => *f == fragment,
                super::Pending::MultiCoord { participants, .. } => {
                    participants.iter().any(|(f, _)| *f == fragment)
                }
            })
            .map(|(&t, _)| t)
            .collect();
        let mut notes = Vec::new();

        match self.move_policy_for(fragment).clone() {
            MovePolicy::Fixed => unreachable!("checked above"),
            MovePolicy::MajorityCommit { .. } => {
                self.tokens.reattach(fragment, to);
                notes.extend(self.begin_majority_recovery(at, fragment, old_home, to, false));
            }
            MovePolicy::WithData { transfer_delay } => {
                // §4.4.2A: the agent carries a copy of the fragment from X.
                // The courier is physical — it works regardless of network
                // partitions (tape, card strip, the airplane itself).
                let objects = self
                    .catalog
                    .fragment(fragment)
                    .expect("fragment exists")
                    .objects
                    .clone();
                let snapshot = self.nodes[old_home.0 as usize].replica.snapshot(&objects);
                let next_frag_seq = self.tokens.peek_frag_seq(fragment);
                let epoch = self.tokens.reattach(fragment, to);
                self.move_state.insert(
                    fragment,
                    MoveState::AwaitingData {
                        new_home: to,
                        old_home,
                    },
                );
                self.engine.schedule(
                    transfer_delay,
                    Ev::DataArrive {
                        fragment,
                        to,
                        snapshot,
                        next_frag_seq,
                        epoch,
                    },
                );
            }
            MovePolicy::WithSeqNo => {
                // §4.4.2B: only the sequence number travels with the agent.
                let upto = self.tokens.peek_frag_seq(fragment);
                self.tokens.reattach(fragment, to);
                let caught_up = self.nodes[to.0 as usize]
                    .next_install
                    .get(&fragment)
                    .copied()
                    .unwrap_or(0)
                    >= upto;
                if caught_up {
                    self.engine.emit(|| TelemetryEvent::TokenArrived {
                        fragment: fragment.0,
                        node: to.0,
                    });
                    notes.push(Notification::MoveCompleted {
                        fragment,
                        node: to,
                        at,
                    });
                } else {
                    self.move_state.insert(
                        fragment,
                        MoveState::AwaitingSeq {
                            new_home: to,
                            old_home,
                            upto,
                        },
                    );
                }
            }
            MovePolicy::NoPrep => {
                notes.extend(self.begin_noprep_move(at, fragment, old_home, to));
            }
        }
        for t in orphans {
            notes.extend(self.abort_pending(at, t, AbortReason::Unavailable));
        }
        notes
    }

    /// §4.4.2A: the couriered copy arrives; install it and resume.
    pub(crate) fn handle_data_arrive(
        &mut self,
        at: SimTime,
        fragment: FragmentId,
        to: NodeId,
        snapshot: Vec<(ObjectId, Value)>,
        next_frag_seq: u64,
        _epoch: u64,
    ) -> Vec<Notification> {
        // No matching move: the destination crashed in transit and the
        // crash sweep unwound the move — the courier's copy is lost with
        // the node (the paper's tape on the crashed mainframe's desk).
        if !matches!(
            self.move_state.get(&fragment),
            Some(MoveState::AwaitingData { new_home, .. }) if *new_home == to
        ) {
            return Vec::new();
        }
        let restore_txn = self.alloc_txn(to);
        let slot = &mut self.nodes[to.0 as usize];
        slot.replica.restore(&snapshot, restore_txn, at);
        // The snapshot subsumes every update below next_frag_seq: ordered
        // installation resumes from there, and stragglers from the old home
        // are dropped as duplicates.
        slot.next_install.insert(fragment, next_frag_seq);
        slot.holdback
            .entry(fragment)
            .or_default()
            .retain(|&seq, _| seq >= next_frag_seq);
        self.move_state.remove(&fragment);
        self.engine.emit(|| TelemetryEvent::TokenArrived {
            fragment: fragment.0,
            node: to.0,
        });
        let mut notes = vec![Notification::MoveCompleted {
            fragment,
            node: to,
            at,
        }];
        // Queued quasi-transactions at or above the restore point may now
        // be installable.
        let resume = {
            let slot = &mut self.nodes[to.0 as usize];
            // Take the whole hold-back map (ascending seq order) instead of
            // materializing a key list and removing one by one.
            std::mem::take(slot.holdback.entry(fragment).or_default())
        };
        for q in resume.into_values() {
            notes.extend(self.ordered_install(at, to, q));
        }
        notes.extend(self.drain_queued(at, fragment));
        notes
    }

    // ---- §4.4.3: no preparation -----------------------------------------

    /// The agent resumes immediately at the new home; broadcast `M0`.
    pub(crate) fn begin_noprep_move(
        &mut self,
        at: SimTime,
        fragment: FragmentId,
        _old_home: NodeId,
        to: NodeId,
    ) -> Vec<Notification> {
        let old_epoch = self.tokens.epoch(fragment);
        let new_epoch = self.tokens.reattach(fragment, to);
        debug_assert_eq!(new_epoch, old_epoch + 1);

        // Everything the new home knows of the old regime.
        let entries: Vec<WalEntry> = self.nodes[to.0 as usize]
            .replica
            .wal()
            .fragment_entries(fragment)
            .filter(|e| e.epoch == old_epoch)
            .cloned()
            .collect();
        let last_seq = entries.iter().map(|e| e.frag_seq).max();
        // New transactions continue the sequence after `i`.
        self.tokens
            .set_next_frag_seq(fragment, last_seq.map_or(0, |i| i + 1));
        self.nodes[to.0 as usize].regime_close.insert(
            fragment,
            RegimeClose {
                old_epoch,
                last_seq,
                new_home: to,
            },
        );
        let e2 = entries.clone();
        self.broadcast_fragment(at, to, fragment, move |bseq| Envelope::M0 {
            bseq,
            fragment,
            old_epoch,
            last_seq,
            entries: e2.clone(),
            new_home: to,
        });
        // Availability is immediate: the move completes now.
        self.engine.emit(|| TelemetryEvent::TokenArrived {
            fragment: fragment.0,
            node: to.0,
        });
        vec![Notification::MoveCompleted {
            fragment,
            node: to,
            at,
        }]
    }

    /// `M0` arrives at a node `Z`: learn the regime switch and install any
    /// old-regime transactions `Z` is missing (protocol step B.1).
    #[allow(clippy::too_many_arguments)]
    pub(crate) fn on_m0(
        &mut self,
        at: SimTime,
        node: NodeId,
        fragment: FragmentId,
        old_epoch: u64,
        last_seq: Option<u64>,
        entries: Vec<WalEntry>,
        new_home: NodeId,
    ) -> Vec<Notification> {
        self.nodes[node.0 as usize].regime_close.insert(
            fragment,
            RegimeClose {
                old_epoch,
                last_seq,
                new_home,
            },
        );
        let mut notes = Vec::new();
        for e in entries {
            let quasi = QuasiTransaction {
                txn: e.txn,
                fragment: e.fragment,
                frag_seq: e.frag_seq,
                epoch: e.epoch,
                updates: e.updates,
            };
            if quasi.origin() != node && !self.already_installed(node, &quasi) {
                notes.extend(self.noprep_do_install(at, node, quasi));
            }
        }
        notes
    }

    fn already_installed(&self, node: NodeId, q: &QuasiTransaction) -> bool {
        self.nodes[node.0 as usize]
            .replica
            .wal()
            .fragment_entries(q.fragment)
            .any(|e| e.epoch == q.epoch && e.frag_seq == q.frag_seq)
    }

    /// §4.4.3 installation: arrival order, with the regime rules applied.
    pub(crate) fn noprep_install(
        &mut self,
        at: SimTime,
        node: NodeId,
        quasi: QuasiTransaction,
    ) -> Vec<Notification> {
        if let Err(e) = quasi.validate_against(&self.catalog) {
            return self.reject_install(at, node, &quasi, e);
        }
        if quasi.origin() == node || self.already_installed(node, &quasi) {
            self.engine.metrics.incr(keys::INSTALL_DUPLICATE);
            return Vec::new();
        }
        let close = self.nodes[node.0 as usize]
            .regime_close
            .get(&quasi.fragment)
            .cloned();
        match close {
            Some(close) if quasi.epoch <= close.old_epoch => {
                let is_late = close.last_seq.is_none_or(|i| quasi.frag_seq > i);
                if !is_late {
                    // Part of the acknowledged prefix: install normally.
                    return self.noprep_do_install(at, node, quasi);
                }
                if close.new_home == node {
                    if !self.tokens.is_home(quasi.fragment, node) {
                        // Stale regime knowledge: the token has moved on
                        // again. Forward to the current home rather than
                        // repackaging under a sequence we no longer own.
                        let current = self.tokens.home(quasi.fragment);
                        self.engine.metrics.incr(keys::NOPREP_FORWARDED);
                        return self.send_direct(
                            at,
                            node,
                            current,
                            Envelope::ForwardMissing { quasi },
                        );
                    }
                    // Step A.2: a missing transaction found at the new home.
                    self.repackage_missing(at, node, quasi)
                } else {
                    // Step B.2: forward to the new home for corrective
                    // handling; do not install.
                    self.engine.metrics.incr(keys::NOPREP_FORWARDED);
                    self.send_direct(at, node, close.new_home, Envelope::ForwardMissing { quasi })
                }
            }
            _ => self.noprep_do_install(at, node, quasi),
        }
    }

    /// Plain install for the no-prep path (no hold-back).
    fn noprep_do_install(
        &mut self,
        at: SimTime,
        node: NodeId,
        quasi: QuasiTransaction,
    ) -> Vec<Notification> {
        // `do_install` maintains `next_install`, which is meaningless here
        // but harmless (NoPrep never consults it).
        self.do_install(at, node, quasi)
    }

    /// §4.4.3 step A.2: strip overwritten updates from a late transaction,
    /// repackage the rest under a fresh id in the new regime, install and
    /// rebroadcast it.
    fn repackage_missing(
        &mut self,
        at: SimTime,
        node: NodeId,
        quasi: QuasiTransaction,
    ) -> Vec<Notification> {
        let fragment = quasi.fragment;
        let handled = self.nodes[node.0 as usize]
            .noprep_handled
            .entry(fragment)
            .or_default();
        if !handled.insert((quasi.epoch, quasi.frag_seq)) {
            self.engine.metrics.incr(keys::INSTALL_DUPLICATE);
            return Vec::new();
        }
        self.engine.metrics.incr(keys::NOPREP_REPACKAGED);
        let (kept, dropped): (Vec<_>, Vec<_>) = {
            let wal = self.nodes[node.0 as usize].replica.wal();
            quasi.updates.iter().cloned().partition(|(object, _)| {
                match wal.last_writer_of(*object) {
                    // Overwritten iff a strictly later (epoch, seq) wrote it.
                    Some(e) => (e.epoch, e.frag_seq) < (quasi.epoch, quasi.frag_seq),
                    None => true,
                }
            })
        };

        let mut notes = Vec::new();
        let repackaged = self.alloc_txn(node);
        if !kept.is_empty() {
            let frag_seq = self.tokens.alloc_frag_seq(fragment);
            let epoch = self.tokens.epoch(fragment);
            let ttype = fragdb_model::TxnType::Update(fragment);
            for (object, _) in &kept {
                self.history.record_local(
                    node,
                    repackaged,
                    ttype,
                    fragdb_model::OpKind::Write,
                    *object,
                    at,
                );
            }
            let payload = self.materialize_payload(kept.clone());
            self.nodes[node.0 as usize].replica.commit_local(
                repackaged,
                fragment,
                frag_seq,
                epoch,
                payload.clone(),
                at,
            );
            self.commit_times.insert((fragment, epoch, frag_seq), at);
            if self.engine.telemetry.is_enabled() {
                let cause = Self::cid(fragment, epoch, frag_seq);
                self.engine.emit(|| TelemetryEvent::Committed {
                    cause,
                    node: node.0,
                    txn_seq: repackaged.seq,
                });
                self.engine.emit(|| TelemetryEvent::Installed {
                    cause,
                    node: node.0,
                });
                let recipients = self.broadcast_recipients(fragment);
                self.engine.emit(|| TelemetryEvent::BroadcastSent {
                    cause,
                    node: node.0,
                    recipients,
                });
            }
            let q = QuasiTransaction {
                txn: repackaged,
                fragment,
                frag_seq,
                epoch,
                updates: payload,
            };
            self.broadcast_fragment(at, node, fragment, move |bseq| Envelope::Quasi {
                bseq,
                quasi: q.clone(),
            });
        }
        notes.push(Notification::MissingRepackaged {
            fragment,
            node,
            original: quasi.txn,
            repackaged,
            kept,
            dropped,
        });
        notes
    }
}
