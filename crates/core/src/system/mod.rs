//! The [`System`]: `n` replicated nodes wired to a simulated network,
//! executing transactions under a chosen control strategy and movement
//! policy, recording everything into a [`History`].
//!
//! The system is *driven*: workload code schedules [`Ev`]s (submissions,
//! partitions, agent moves) on the engine and then pumps
//! [`System::step_until`], reacting to the returned [`Notification`]s.
//! Domain triggers — e.g. the §2 banking rule "when an ACTIVITY update
//! reaches the central office, post it to BALANCES" — are driver reactions
//! to [`Notification::Installed`].

mod batch;
mod election;
mod exec;
mod install;
mod locks_proto;
mod majority;
mod mc;
mod moves;
mod multi;

pub use mc::{McChoice, McDelivery};

use std::collections::{BTreeMap, BTreeSet, VecDeque};

use fragdb_model::{
    AgentId, FragmentCatalog, FragmentId, History, NodeId, ObjectId, QuasiTransaction, TxnId,
    Updates, Value,
};
use fragdb_net::{
    BroadcastLayer, Delivery, FailureDetector, NetAction, NetworkChange, PktDelivery, ReliableNet,
    Topology,
};
use fragdb_sim::metrics::keys;
use fragdb_sim::{CausalId, Engine, SimDuration, SimTime, TelemetryEvent};
use fragdb_storage::{LockManager, Replica};

use crate::config::SystemConfig;
use crate::envelope::Envelope;
use crate::events::{AbortReason, Ev, Notification, Submission};
use crate::movement::MovePolicy;
use crate::program::{TxnEffects, UpdateFn};
use crate::strategy::{StrategyError, StrategyKind};
use crate::tokens::TokenRegistry;

/// Per-node runtime state.
pub(crate) struct NodeSlot {
    /// The node's database copy + WAL.
    pub replica: Replica,
    /// Lock table for objects whose fragments are homed here (§4.1).
    pub locks: LockManager,
    /// Remote lock requests waiting at this lock site: txn -> request.
    pub remote_reqs: BTreeMap<TxnId, RemoteLockReq>,
    /// §4.4.1: quasi-transactions staged by `Prepare`, awaiting `CommitCmd`.
    pub staged: BTreeMap<TxnId, QuasiTransaction>,
    /// Next fragment sequence expected for ordered installation.
    pub next_install: BTreeMap<FragmentId, u64>,
    /// Out-of-order quasi-transactions held until their predecessors land.
    pub holdback: BTreeMap<FragmentId, BTreeMap<u64, QuasiTransaction>>,
    /// §4.4.3: what this node learned from `M0` about a closed regime.
    pub regime_close: BTreeMap<FragmentId, RegimeClose>,
    /// §4.4.3: late `(epoch, frag_seq)` transactions this node (as a new
    /// home) has already repackaged — a late transaction can arrive twice,
    /// once from the origin's broadcast and once forwarded by a third node.
    pub noprep_handled: BTreeMap<FragmentId, BTreeSet<(u64, u64)>>,
    /// §3.2 footnote: shares of multi-fragment transactions staged at this
    /// node (as the fragment's agent home), keyed by `(xid, fragment)`.
    pub mf_staged: BTreeMap<(TxnId, FragmentId), MfStage>,
}

/// A staged share of a multi-fragment transaction.
#[derive(Clone, Debug)]
pub struct MfStage {
    /// Local transaction id minted for this share.
    pub local_txn: TxnId,
    /// Reserved position in the fragment's update sequence.
    pub frag_seq: u64,
    /// Token epoch at staging time.
    pub epoch: u64,
    /// The share's writes, shared with the envelope that delivered them.
    pub updates: Updates,
}

/// §4.4.3 knowledge recorded when `M0` arrives.
#[derive(Clone, Debug)]
pub(crate) struct RegimeClose {
    /// The epoch that ended.
    pub old_epoch: u64,
    /// Highest old-regime `frag_seq` the new home had (`i`); `None` if it
    /// had none.
    pub last_seq: Option<u64>,
    /// Where late old-regime transactions must be forwarded.
    pub new_home: NodeId,
}

/// A remote lock request parked at a lock site.
pub(crate) struct RemoteLockReq {
    /// Objects requested (all homed at this site).
    pub objects: Vec<ObjectId>,
    /// Objects not yet granted.
    pub outstanding: BTreeSet<ObjectId>,
    /// Where to send the grant.
    pub reply_to: NodeId,
}

/// Cross-event state of an in-flight transaction.
pub(crate) enum Pending {
    /// §4.1: waiting for shared-lock grants from lock sites.
    LockAcq {
        fragment: FragmentId,
        home: NodeId,
        program: Option<UpdateFn>,
        read_only: bool,
        outstanding_sites: BTreeSet<NodeId>,
        contacted_sites: BTreeSet<NodeId>,
        granted: BTreeMap<ObjectId, (NodeId, Value)>,
        submitted_at: SimTime,
    },
    /// §4.1: program ran; waiting for local exclusive locks on the write set.
    XWait {
        fragment: FragmentId,
        home: NodeId,
        effects: TxnEffects,
        contacted_sites: BTreeSet<NodeId>,
        submitted_at: SimTime,
    },
    /// §3.2 footnote: a multi-fragment coordinator waiting for votes.
    MultiCoord {
        /// All participating fragments with their agent homes.
        participants: Vec<(FragmentId, NodeId)>,
        /// Fragments that have voted yes.
        votes: BTreeSet<FragmentId>,
        /// Coordinator (home of the first fragment).
        home: NodeId,
        /// The buffered reads (flushed on commit of the first share).
        reads: Vec<(NodeId, ObjectId)>,
        /// When the transaction was submitted.
        submitted_at: SimTime,
    },
    /// §4.4.1: staged; waiting for a majority of `PrepareAck`s.
    Majority {
        fragment: FragmentId,
        home: NodeId,
        quasi: QuasiTransaction,
        reads: Vec<(NodeId, ObjectId)>,
        acks: BTreeSet<NodeId>,
        submitted_at: SimTime,
    },
}

/// Per-fragment state while an agent move is in progress. Every variant
/// remembers `old_home` so a crash of either endpoint mid-move can be
/// unwound (the token reattaches to the surviving side instead of the
/// move stalling forever).
pub(crate) enum MoveState {
    /// §4.4.1: new home is recovering the update sequence from a majority.
    MajorityRecovery {
        new_home: NodeId,
        old_home: NodeId,
        /// `true` when a quorum election (not the driver) started the
        /// recovery; completion then emits `TokenRecovered`.
        elected: bool,
        replies: BTreeSet<NodeId>,
    },
    /// §4.4.2A: waiting for the couriered fragment copy.
    AwaitingData { new_home: NodeId, old_home: NodeId },
    /// §4.4.2B: new home waits until it has installed everything below
    /// `upto`.
    AwaitingSeq {
        new_home: NodeId,
        old_home: NodeId,
        upto: u64,
    },
}

/// A submission parked while its fragment is mid-move (or behind a
/// serialized majority commit).
pub(crate) struct QueuedSub {
    pub submission: Submission,
    pub queued_at: SimTime,
}

/// Cleanup a crashed node owes the rest of the system, announced when it
/// recovers ("presumed abort, declared on restart"). A dead node cannot
/// send; these are the messages it would have sent to abort its in-flight
/// transactions.
pub(crate) enum CrashTombstone {
    /// §4.4.1: tell the replica set to drop a staged prepare.
    AbortCmd { fragment: FragmentId, txn: TxnId },
    /// §3.2 footnote: tell 2PC participants to drop their staged shares.
    MfAbort {
        xid: TxnId,
        participants: Vec<(FragmentId, NodeId)>,
    },
    /// §4.1: free the shared locks the dead coordinator held at lock sites.
    LockRelease { txn: TxnId, sites: BTreeSet<NodeId> },
}

/// Why a declared configuration cannot be assembled into a [`System`].
///
/// Every variant corresponds to a static precondition from the paper;
/// `fragdb-check` renders the same conditions as `FDB0xx` diagnostics
/// before a build is ever attempted.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum BuildError {
    /// The chosen control strategy failed its own validation (e.g. a §4.2
    /// read-access graph that is not elementarily acyclic).
    Strategy(StrategyError),
    /// A catalog fragment was assigned no agent token.
    MissingAgent(FragmentId),
    /// A fragment appeared more than once in the agent assignment (§3.1:
    /// exactly one token per fragment).
    DuplicateAgent(FragmentId),
    /// An agent assignment referenced a fragment not in the catalog.
    UnknownFragment(FragmentId),
    /// An agent's home node does not exist in the topology.
    HomeOutOfRange {
        /// Fragment whose agent is misplaced.
        fragment: FragmentId,
        /// The out-of-range home.
        home: NodeId,
        /// Number of nodes in the topology.
        nodes: u32,
    },
    /// A node agent must be homed at its own node (§3.1: "the agent is
    /// the node").
    NodeAgentForeignHome {
        /// Fragment concerned.
        fragment: FragmentId,
        /// The node agent.
        agent: NodeId,
        /// The (different) declared home.
        home: NodeId,
    },
    /// §4.1 read locks are defined for fixed agents only; the fragment
    /// mixes them with a movement policy.
    LocksRequireFixedAgents(FragmentId),
    /// A §6 replica set is empty.
    EmptyReplicaSet(FragmentId),
    /// A §6 replica set names a node outside the topology.
    ReplicaOutOfRange {
        /// Fragment concerned.
        fragment: FragmentId,
        /// The out-of-range replica.
        replica: NodeId,
    },
    /// A fragment's agent home is missing from its own replica set.
    HomeNotInReplicaSet {
        /// Fragment concerned.
        fragment: FragmentId,
        /// The home that holds no replica.
        home: NodeId,
    },
}

impl std::fmt::Display for BuildError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            BuildError::Strategy(e) => write!(f, "{e}"),
            BuildError::MissingAgent(fr) => write!(f, "fragment {fr} has no agent token"),
            BuildError::DuplicateAgent(fr) => {
                write!(f, "fragment {fr} assigned more than one agent token")
            }
            BuildError::UnknownFragment(fr) => {
                write!(f, "agent assigned to unknown fragment {fr}")
            }
            BuildError::HomeOutOfRange {
                fragment,
                home,
                nodes,
            } => write!(
                f,
                "fragment {fragment}'s agent home {home} out of range (topology has {nodes} nodes)"
            ),
            BuildError::NodeAgentForeignHome {
                fragment,
                agent,
                home,
            } => write!(
                f,
                "fragment {fragment}'s node agent {agent} must be homed at itself, not {home}"
            ),
            BuildError::LocksRequireFixedAgents(fr) => write!(
                f,
                "§4.1 read locks are defined for fixed agents only (fragment {fr})"
            ),
            BuildError::EmptyReplicaSet(fr) => {
                write!(f, "empty replica set for fragment {fr}")
            }
            BuildError::ReplicaOutOfRange { fragment, replica } => {
                write!(f, "replica {replica} out of range for fragment {fragment}")
            }
            BuildError::HomeNotInReplicaSet { fragment, home } => write!(
                f,
                "fragment {fragment}'s agent home {home} must be in its replica set"
            ),
        }
    }
}

impl std::error::Error for BuildError {}

impl From<StrategyError> for BuildError {
    fn from(e: StrategyError) -> Self {
        BuildError::Strategy(e)
    }
}

/// The fragments-and-agents distributed database system.
pub struct System {
    /// The discrete-event engine driving everything.
    pub engine: Engine<Ev>,
    /// The executed history (feed it to `fragdb_graphs::analyze`).
    pub history: History,
    pub(crate) catalog: FragmentCatalog,
    pub(crate) strategy: StrategyKind,
    pub(crate) move_policy: MovePolicy,
    /// §6: per-fragment strategy overrides.
    pub(crate) strategy_overrides: std::collections::BTreeMap<FragmentId, StrategyKind>,
    /// §6: per-fragment movement-policy overrides.
    pub(crate) move_overrides: std::collections::BTreeMap<FragmentId, MovePolicy>,
    pub(crate) net: ReliableNet<Envelope>,
    pub(crate) bcast: BroadcastLayer<Envelope>,
    pub(crate) tokens: TokenRegistry,
    pub(crate) nodes: Vec<NodeSlot>,
    /// Nodes currently crashed: packets addressed to them are dropped on
    /// arrival, submissions homed at them abort as unavailable.
    pub(crate) down: BTreeSet<NodeId>,
    /// Abort messages each crashed node owes the system, sent at recovery.
    pub(crate) tombstones: BTreeMap<NodeId, Vec<CrashTombstone>>,
    /// Crash-recovery catch-up in progress: `(node, fragment)` → the
    /// `next_install` target that means "caught up", and when recovery
    /// started (for the `latency.recovery` metric).
    pub(crate) recovering: BTreeMap<(NodeId, FragmentId), (u64, SimTime)>,
    pub(crate) next_txn_seq: Vec<u64>,
    pub(crate) pending: BTreeMap<TxnId, Pending>,
    /// Commit times per (fragment, epoch, frag_seq), for staleness metrics.
    pub(crate) commit_times: BTreeMap<(FragmentId, u64, u64), SimTime>,
    pub(crate) move_state: BTreeMap<FragmentId, MoveState>,
    pub(crate) queued: BTreeMap<FragmentId, VecDeque<QueuedSub>>,
    /// §4.4.1: at most one majority commit in flight per fragment.
    pub(crate) majority_inflight: BTreeMap<FragmentId, TxnId>,
    /// §6: partial replication map (absent = fully replicated).
    pub(crate) replica_sets: BTreeMap<FragmentId, BTreeSet<NodeId>>,
    /// §3.2 footnote: fragments currently bound into a two-phase commit.
    pub(crate) mf_inflight: BTreeMap<FragmentId, TxnId>,
    /// How long a multi-fragment coordinator waits for votes.
    pub(crate) mf_timeout: fragdb_sim::SimDuration,
    /// Group-commit batching knob (off by default).
    pub(crate) batch_cfg: crate::config::BatchConfig,
    /// Per-fragment open group-commit batch at the fragment's home.
    pub(crate) open_batches: BTreeMap<FragmentId, OpenBatch>,
    /// Flush-timer generation allocator (stale timers are no-ops).
    pub(crate) next_batch_gen: u64,
    /// Self-healing token recovery knob (off by default).
    pub(crate) detector_cfg: crate::config::DetectorConfig,
    /// Each live node's local liveness view (present only when the
    /// detector is enabled; a crashed node's entry is volatile and is
    /// rebuilt fresh at recovery).
    pub(crate) detectors: BTreeMap<NodeId, FailureDetector>,
    /// Open quorum elections, at most one per fragment.
    pub(crate) elections: BTreeMap<FragmentId, election::ElectionState>,
    /// Vote ledger: `(fragment, epoch, voter) → candidate`. A voter grants
    /// at most one candidate per `(fragment, epoch)`, so two candidates
    /// can never both assemble a majority in the same epoch.
    pub(crate) granted_votes: BTreeMap<(FragmentId, u64, NodeId), NodeId>,
    /// Monotone heartbeat counter shared by all senders (diagnostic only).
    pub(crate) detector_beat: u64,
}

/// An under-construction group-commit batch (volatile, home-side).
pub(crate) struct OpenBatch {
    /// The home node that committed the batched transactions.
    pub(crate) home: NodeId,
    /// Generation guarding this batch's linger timer.
    pub(crate) gen: u64,
    /// The coalesced quasi-transactions, in commit (`frag_seq`) order.
    pub(crate) quasis: Vec<QuasiTransaction>,
}

impl System {
    /// Build a system.
    ///
    /// `agents` assigns each fragment its initial agent and home node; every
    /// fragment in the catalog must appear exactly once.
    pub fn build(
        topology: Topology,
        catalog: FragmentCatalog,
        agents: Vec<(FragmentId, AgentId, NodeId)>,
        config: SystemConfig,
    ) -> Result<System, BuildError> {
        config.strategy.validate()?;
        for strategy in config.strategy_overrides.values() {
            strategy.validate()?;
        }
        let n = topology.node_count();
        let mut tokens = TokenRegistry::new();
        for &(fragment, agent, home) in &agents {
            if catalog.fragment(fragment).is_err() {
                return Err(BuildError::UnknownFragment(fragment));
            }
            if home.0 >= n {
                return Err(BuildError::HomeOutOfRange {
                    fragment,
                    home,
                    nodes: n,
                });
            }
            if let AgentId::Node(node) = agent {
                if node != home {
                    return Err(BuildError::NodeAgentForeignHome {
                        fragment,
                        agent: node,
                        home,
                    });
                }
            }
            if tokens.fragments().any(|f| f == fragment) {
                return Err(BuildError::DuplicateAgent(fragment));
            }
            tokens.mint(fragment, agent, home);
        }
        for frag in catalog.fragments() {
            // Every fragment needs exactly one token (§3.1).
            if !tokens.fragments().any(|f| f == frag.id) {
                return Err(BuildError::MissingAgent(frag.id));
            }
            // §4.1 read locks are defined for fixed agents only — checked
            // per fragment so §6 mixtures stay sound.
            let strategy = config
                .strategy_overrides
                .get(&frag.id)
                .unwrap_or(&config.strategy);
            let movement = config
                .move_overrides
                .get(&frag.id)
                .unwrap_or(&config.move_policy);
            if strategy.uses_read_locks() && *movement != MovePolicy::Fixed {
                return Err(BuildError::LocksRequireFixedAgents(frag.id));
            }
            if let Some(set) = config.replica_sets.get(&frag.id) {
                if set.is_empty() {
                    return Err(BuildError::EmptyReplicaSet(frag.id));
                }
                if let Some(&replica) = set.iter().find(|r| r.0 >= n) {
                    return Err(BuildError::ReplicaOutOfRange {
                        fragment: frag.id,
                        replica,
                    });
                }
                let home = tokens.home(frag.id);
                if !set.contains(&home) {
                    return Err(BuildError::HomeNotInReplicaSet {
                        fragment: frag.id,
                        home,
                    });
                }
            }
        }
        let nodes = (0..n)
            .map(|i| NodeSlot {
                replica: Replica::new(NodeId(i)),
                locks: LockManager::new(),
                remote_reqs: BTreeMap::new(),
                staged: BTreeMap::new(),
                next_install: BTreeMap::new(),
                holdback: BTreeMap::new(),
                regime_close: BTreeMap::new(),
                noprep_handled: BTreeMap::new(),
                mf_staged: BTreeMap::new(),
            })
            .collect();
        let mut system = System {
            engine: Engine::new(config.seed),
            history: History::new(),
            catalog,
            strategy: config.strategy,
            move_policy: config.move_policy,
            strategy_overrides: config.strategy_overrides,
            move_overrides: config.move_overrides,
            net: ReliableNet::new(topology)
                .with_faults(config.faults)
                .with_retransmit(config.retransmit),
            bcast: BroadcastLayer::new(),
            tokens,
            nodes,
            down: BTreeSet::new(),
            tombstones: BTreeMap::new(),
            recovering: BTreeMap::new(),
            next_txn_seq: vec![0; n as usize],
            pending: BTreeMap::new(),
            commit_times: BTreeMap::new(),
            move_state: BTreeMap::new(),
            queued: BTreeMap::new(),
            majority_inflight: BTreeMap::new(),
            replica_sets: config.replica_sets,
            mf_inflight: BTreeMap::new(),
            mf_timeout: fragdb_sim::SimDuration::from_secs(30),
            batch_cfg: config.batch,
            open_batches: BTreeMap::new(),
            next_batch_gen: 0,
            detector_cfg: config.detector,
            detectors: BTreeMap::new(),
            elections: BTreeMap::new(),
            granted_votes: BTreeMap::new(),
            detector_beat: 0,
        };
        if system.detector_cfg.enabled() {
            // Every node starts with a full silence allowance for each of
            // its monitor peers (under full replication: every peer); the
            // first sweep happens one period in.
            for i in 0..n {
                let mut d = FailureDetector::new(
                    system.detector_cfg.heartbeat_period,
                    system.detector_cfg.suspect_after,
                );
                for peer in system.monitor_peers(NodeId(i)) {
                    d.track(peer, SimTime::ZERO);
                }
                system.detectors.insert(NodeId(i), d);
            }
            // The recurring tick re-arms itself; with the detector off it
            // is never scheduled, keeping default runs byte-identical.
            let first = SimTime::ZERO + system.detector_cfg.heartbeat_period;
            system.engine.schedule_timer_at(first, Ev::DetectorTick);
        }
        Ok(system)
    }

    // ---- driver API ----------------------------------------------------

    /// Schedule a transaction submission at absolute time `at`.
    pub fn submit_at(&mut self, at: SimTime, submission: Submission) {
        self.engine.schedule_at(at, Ev::Submit(submission));
    }

    /// Schedule a network change at absolute time `at`.
    pub fn net_change_at(&mut self, at: SimTime, change: NetworkChange) {
        self.engine.schedule_at(at, Ev::Net(change));
    }

    /// Schedule an entire partition schedule.
    pub fn schedule_partitions(&mut self, schedule: &fragdb_net::PartitionSchedule) {
        for (at, change) in schedule.events() {
            self.engine.schedule_at(*at, Ev::Net(change.clone()));
        }
    }

    /// Schedule an agent move at absolute time `at`.
    pub fn move_agent_at(&mut self, at: SimTime, fragment: FragmentId, to: NodeId) {
        self.engine.schedule_at(at, Ev::Move { fragment, to });
    }

    /// Schedule a node crash at absolute time `at`.
    pub fn crash_at(&mut self, at: SimTime, node: NodeId) {
        self.engine.schedule_at(at, Ev::Crash(node));
    }

    /// Schedule a §6 replica-set shrink at absolute time `at`. The new set
    /// must be a non-empty subset of the fragment's current replica set
    /// (all nodes, if fully replicated) containing the token home; an
    /// invalid or mid-move/mid-election request is skipped — the allocator
    /// retries at its next epoch.
    pub fn shrink_replica_set_at(
        &mut self,
        at: SimTime,
        fragment: FragmentId,
        new_set: BTreeSet<NodeId>,
    ) {
        self.engine
            .schedule_at(at, Ev::ShrinkReplicaSet { fragment, new_set });
    }

    /// Schedule a node recovery at absolute time `at`.
    pub fn recover_at(&mut self, at: SimTime, node: NodeId) {
        self.engine.schedule_at(at, Ev::Recover(node));
    }

    /// Is `node` currently crashed?
    pub fn is_down(&self, node: NodeId) -> bool {
        self.down.contains(&node)
    }

    /// Handle the next event at or before `limit`. Returns `None` when no
    /// such event remains (clock advances to `limit`).
    pub fn step_until(&mut self, limit: SimTime) -> Option<(SimTime, Vec<Notification>)> {
        let (at, ev) = self.engine.pop_until(limit)?;
        if self.engine.trace.is_enabled() {
            self.engine.trace.log(at, || format!("{ev:?}"));
        }
        let notes = self.handle(at, ev);
        Some((at, notes))
    }

    /// Pump every event up to `limit`, collecting all notifications.
    /// Only use when the driver has no triggers to run; otherwise loop over
    /// [`System::step_until`].
    pub fn run_until(&mut self, limit: SimTime) -> Vec<Notification> {
        let mut all = Vec::new();
        while let Some((_, notes)) = self.step_until(limit) {
            all.extend(notes);
        }
        all
    }

    /// Current virtual time.
    pub fn now(&self) -> SimTime {
        self.engine.now()
    }

    /// A node's replica (read-only).
    pub fn replica(&self, node: NodeId) -> &Replica {
        &self.nodes[node.0 as usize].replica
    }

    /// The fragment catalog.
    pub fn catalog(&self) -> &FragmentCatalog {
        &self.catalog
    }

    /// The token registry.
    pub fn tokens(&self) -> &TokenRegistry {
        &self.tokens
    }

    /// Reliable-network activity counters.
    pub fn net_stats(&self) -> fragdb_net::ReliableStats {
        self.net.stats()
    }

    /// Publish reliable-layer totals into the metrics registry (gauge
    /// semantics — the stats are running totals, not deltas). Harnesses
    /// call this once at the end of a run so trace/report tooling sees the
    /// ack-compression win next to the event-level metrics.
    pub fn publish_net_metrics(&mut self) {
        let stats = self.net.stats();
        self.engine
            .metrics
            .set(keys::NET_ACK_CUMULATIVE, stats.cumulative_acks);
    }

    /// Number of nodes.
    pub fn node_count(&self) -> u32 {
        self.nodes.len() as u32
    }

    /// Fragments whose replicas currently diverge (content digests differ
    /// across nodes). Empty at quiescence ⟺ mutual consistency.
    pub fn divergent_fragments(&self) -> Vec<FragmentId> {
        let mut out = Vec::new();
        for frag in self.catalog.fragments() {
            let objects = &frag.objects;
            let mut digests = self
                .nodes
                .iter()
                .filter(|n| self.replicated_at(frag.id, n.replica.node))
                .map(|n| n.replica.digest(objects));
            let Some(first) = digests.next() else {
                continue;
            };
            if digests.any(|d| d != first) {
                out.push(frag.id);
            }
        }
        out
    }

    /// Count of submissions still parked behind an unfinished move.
    pub fn queued_submissions(&self) -> usize {
        self.queued.values().map(VecDeque::len).sum()
    }

    // ---- event dispatch --------------------------------------------------

    pub(crate) fn handle(&mut self, at: SimTime, ev: Ev) -> Vec<Notification> {
        match ev {
            Ev::Submit(sub) => self.handle_submission(at, sub),
            Ev::Pkt(pd) => self.handle_packet(at, pd),
            Ev::Rto(timer) => {
                let before = self.net_stats_if_telemetry();
                let actions = self.net.on_timer(at, timer, &mut self.engine.rng);
                self.schedule_net(actions);
                if let Some(b) = before {
                    self.emit_net_delta(b, timer.from, timer.to);
                }
                Vec::new()
            }
            Ev::Net(change) => {
                // Nothing to release: blocked traffic gets through on a
                // later retransmission once connectivity returns.
                self.net.apply_change(&change);
                Vec::new()
            }
            Ev::Crash(node) => self.handle_crash(at, node),
            Ev::Recover(node) => self.handle_recover(at, node),
            Ev::Move { fragment, to } => self.handle_move(at, fragment, to),
            Ev::DataArrive {
                fragment,
                to,
                snapshot,
                next_frag_seq,
                epoch,
            } => self.handle_data_arrive(at, fragment, to, snapshot, next_frag_seq, epoch),
            Ev::Timeout { txn } => self.handle_timeout(at, txn),
            Ev::FlushBatch { fragment, gen } => self.handle_flush_batch(at, fragment, gen),
            Ev::DetectorTick => self.handle_detector_tick(at),
            Ev::ElectionTimeout { fragment, epoch } => {
                self.handle_election_timeout(at, fragment, epoch)
            }
            Ev::ShrinkReplicaSet { fragment, new_set } => {
                self.handle_shrink_replica_set(at, fragment, new_set)
            }
        }
    }

    /// Schedule the reliable layer's follow-up work on the engine.
    pub(crate) fn schedule_net(&mut self, actions: Vec<NetAction<Envelope>>) {
        for action in actions {
            match action {
                NetAction::Deliver(deliver_at, pd) => {
                    self.engine.schedule_at(deliver_at, Ev::Pkt(pd));
                }
                NetAction::Timer(fire_at, timer) => {
                    // Timers go through the timing wheel (O(1) insert);
                    // the shared sequence counter keeps the pop order
                    // identical to heap scheduling.
                    self.engine.schedule_timer_at(fire_at, Ev::Rto(timer));
                }
            }
        }
    }

    /// A wire packet arrives at a host. Crashed hosts drop everything on
    /// the floor (no ack — the sender keeps retransmitting until the node
    /// recovers and resyncs); live hosts run the reliable layer, and each
    /// application message it releases is dispatched in order.
    fn handle_packet(&mut self, at: SimTime, pd: PktDelivery<Envelope>) -> Vec<Notification> {
        if self.down.contains(&pd.to) {
            self.engine.metrics.incr(keys::NET_DROPPED_AT_DOWN_NODE);
            let (from, to) = (pd.from, pd.to);
            self.engine.emit(|| TelemetryEvent::Dropped {
                from: from.0,
                to: to.0,
                count: 1,
            });
            return Vec::new();
        }
        let (from, to) = (pd.from, pd.to);
        let before = self.net_stats_if_telemetry();
        let (released, actions) = self.net.on_packet(at, pd, &mut self.engine.rng);
        self.schedule_net(actions);
        if let Some(b) = before {
            // Any loss here is of the ack the receiver sent back.
            self.emit_net_delta(b, to, from);
        }
        let mut notes = Vec::new();
        for d in released {
            notes.extend(self.handle_delivery(at, d));
        }
        notes
    }

    fn handle_delivery(&mut self, at: SimTime, d: Delivery<Envelope>) -> Vec<Notification> {
        self.engine.metrics.incr(d.msg.metric_key());
        let Delivery { from, to, msg } = d;
        let kind = msg.kind();
        self.engine.emit(|| TelemetryEvent::Delivered {
            from: from.0,
            to: to.0,
            kind,
        });
        match msg.bseq() {
            Some(bseq) => {
                let ready = self.bcast.accept(to, from, bseq, msg);
                let mut notes = Vec::new();
                for (_, env) in ready {
                    notes.extend(self.dispatch_broadcast(at, from, to, env));
                }
                notes
            }
            None => self.dispatch_direct(at, from, to, msg),
        }
    }

    fn dispatch_broadcast(
        &mut self,
        at: SimTime,
        from: NodeId,
        to: NodeId,
        env: Envelope,
    ) -> Vec<Notification> {
        match env {
            Envelope::Quasi { quasi, .. } => self.route_quasi_install(at, to, quasi),
            Envelope::Batch { batch, .. } => self.install_batch_env(at, to, batch),
            Envelope::Prepare { quasi, .. } => self.on_prepare(at, from, to, quasi),
            Envelope::CommitCmd { txn, fragment, .. } => {
                self.on_commit_cmd(at, from, to, txn, fragment)
            }
            Envelope::AbortCmd { txn, .. } => {
                self.nodes[to.0 as usize].staged.remove(&txn);
                Vec::new()
            }
            Envelope::M0 {
                fragment,
                old_epoch,
                last_seq,
                entries,
                new_home,
                ..
            } => self.on_m0(at, to, fragment, old_epoch, last_seq, entries, new_home),
            other => unreachable!(
                "non-broadcast envelope {:?} in broadcast path",
                other.kind()
            ),
        }
    }

    fn dispatch_direct(
        &mut self,
        at: SimTime,
        from: NodeId,
        to: NodeId,
        env: Envelope,
    ) -> Vec<Notification> {
        match env {
            Envelope::LockReq {
                txn,
                objects,
                reply_to,
            } => self.on_lock_req(at, to, txn, objects, reply_to),
            Envelope::LockGrant { txn, values } => self.on_lock_grant(at, from, txn, values),
            Envelope::LockDenied { txn } => self.on_lock_denied(at, txn),
            Envelope::LockRelease { txn } => self.on_lock_release(at, to, txn),
            Envelope::PrepareAck { txn, from: acker } => self.on_prepare_ack(at, txn, acker),
            Envelope::SeqQuery {
                fragment,
                have,
                upto,
                reply_to,
                include_staged,
            } => self.on_seq_query(at, to, fragment, have, upto, reply_to, include_staged),
            Envelope::SeqReply {
                fragment,
                from: replier,
                entries,
            } => self.on_seq_reply(at, to, fragment, replier, entries),
            Envelope::ForwardMissing { quasi } => self.noprep_install(at, to, quasi),
            Envelope::MfPrepare {
                xid,
                fragment,
                updates,
                reply_to,
            } => self.on_mf_prepare(at, to, xid, fragment, updates, reply_to),
            Envelope::MfVote { xid, fragment, yes } => self.on_mf_vote(at, xid, fragment, yes),
            Envelope::MfCommit { xid, fragment } => self.on_mf_commit(at, to, xid, fragment),
            Envelope::MfAbort { xid, fragment } => self.on_mf_abort(at, to, xid, fragment),
            Envelope::Heartbeat { from: beater, .. } => self.on_heartbeat(at, to, beater),
            Envelope::VoteReq {
                fragment,
                epoch,
                candidate,
                reply_to,
            } => self.on_vote_req(at, to, fragment, epoch, candidate, reply_to),
            Envelope::Vote {
                fragment,
                epoch,
                from: voter,
                granted,
            } => self.on_vote(at, to, fragment, epoch, voter, granted),
            other => unreachable!("broadcast envelope {:?} in direct path", other.kind()),
        }
    }

    // ---- shared plumbing -------------------------------------------------

    /// Telemetry causal id for a quasi-transaction's coordinates.
    pub(crate) fn cid(fragment: FragmentId, epoch: u64, frag_seq: u64) -> CausalId {
        CausalId {
            fragment: fragment.0,
            epoch,
            frag_seq,
        }
    }

    /// Snapshot reliable-layer stats, but only when telemetry will consume
    /// the delta — the disabled path stays a single branch.
    fn net_stats_if_telemetry(&self) -> Option<fragdb_net::ReliableStats> {
        self.engine.telemetry.is_enabled().then(|| self.net.stats())
    }

    /// Emit `Dropped` / `Retransmit` telemetry from a reliable-layer stats
    /// delta over one `send`/`on_timer`/`on_packet` call, attributed to the
    /// `from → to` direction the call transmitted in.
    fn emit_net_delta(&mut self, before: fragdb_net::ReliableStats, from: NodeId, to: NodeId) {
        let after = self.net.stats();
        let dropped =
            (after.fault_dropped - before.fault_dropped) + (after.unreachable - before.unreachable);
        if dropped > 0 {
            self.engine.emit(|| TelemetryEvent::Dropped {
                from: from.0,
                to: to.0,
                count: dropped,
            });
        }
        let retx = after.retransmissions - before.retransmissions;
        if retx > 0 {
            self.engine.emit(|| TelemetryEvent::Retransmit {
                from: from.0,
                to: to.0,
                count: retx,
            });
        }
    }

    /// Number of nodes a fragment-scoped broadcast addresses (the replica
    /// set minus the sender, which always holds a replica).
    pub(crate) fn broadcast_recipients(&self, fragment: FragmentId) -> u32 {
        match self.replica_sets.get(&fragment) {
            Some(set) => set.len().saturating_sub(1) as u32,
            None => self.nodes.len() as u32 - 1,
        }
    }

    /// The nodes holding a replica of `fragment` (§6 partial replication);
    /// `None` means fully replicated.
    pub fn replicas_of(&self, fragment: FragmentId) -> Option<&BTreeSet<NodeId>> {
        self.replica_sets.get(&fragment)
    }

    /// Is `fragment` replicated at `node`?
    pub fn replicated_at(&self, fragment: FragmentId, node: NodeId) -> bool {
        self.replica_sets
            .get(&fragment)
            .is_none_or(|set| set.contains(&node))
    }

    /// The peers `node` exchanges heartbeats with: every node it shares at
    /// least one fragment replica set with. Any fully replicated fragment
    /// (no explicit replica set) makes every other node a monitor peer, so
    /// fully replicated systems keep the all-pairs detector behavior and
    /// their golden traces; under partial replication the detector fan-out
    /// is bounded by the replica sets instead of O(n²).
    pub fn monitor_peers(&self, node: NodeId) -> BTreeSet<NodeId> {
        let n = self.nodes.len() as u32;
        let mut peers = BTreeSet::new();
        for frag in self.catalog.fragments() {
            match self.replica_sets.get(&frag.id) {
                None => {
                    return (0..n).map(NodeId).filter(|&p| p != node).collect();
                }
                Some(set) if set.contains(&node) => {
                    peers.extend(set.iter().copied().filter(|&p| p != node));
                }
                Some(_) => {}
            }
        }
        peers
    }

    /// §6: shrink `fragment`'s replica set to `new_set`. Validates that the
    /// fragment exists, the set is a non-empty subset of the current
    /// replica set containing the token home, and no move or election is
    /// in flight; an invalid request is skipped (the allocator retries at
    /// its next epoch). Dropped replicas stop receiving broadcasts
    /// immediately; majority quorums recompute over the new set; each
    /// node's detector roster is refreshed to the new monitor peers.
    fn handle_shrink_replica_set(
        &mut self,
        at: SimTime,
        fragment: FragmentId,
        new_set: BTreeSet<NodeId>,
    ) -> Vec<Notification> {
        if self.catalog.fragment(fragment).is_err()
            || new_set.is_empty()
            || self.move_state.contains_key(&fragment)
            || self.elections.contains_key(&fragment)
        {
            return Vec::new();
        }
        let n = self.nodes.len() as u32;
        let current_len = match self.replica_sets.get(&fragment) {
            Some(set) => {
                if !new_set.is_subset(set) {
                    return Vec::new();
                }
                set.len() as u32
            }
            None => {
                if new_set.iter().any(|r| r.0 >= n) {
                    return Vec::new();
                }
                n
            }
        };
        if !new_set.contains(&self.tokens.home(fragment)) {
            return Vec::new();
        }
        let to_count = new_set.len() as u32;
        if to_count == current_len {
            return Vec::new();
        }
        self.replica_sets.insert(fragment, new_set);
        self.engine.emit(|| TelemetryEvent::ReplicaSetChanged {
            fragment: fragment.0,
            from_count: current_len,
            to_count,
        });
        self.refresh_detector_peers(at);
        Vec::new()
    }

    /// Re-derive every live node's detector roster from the current
    /// replica sets: peers that stopped sharing a replica set are
    /// forgotten, newly shared peers start tracking with a full silence
    /// allowance from `at`. Existing entries keep their timestamps and
    /// standing suspicions.
    fn refresh_detector_peers(&mut self, at: SimTime) {
        if !self.detector_cfg.enabled() {
            return;
        }
        let nodes: Vec<NodeId> = self.detectors.keys().copied().collect();
        for node in nodes {
            let want = self.monitor_peers(node);
            let d = self.detectors.get_mut(&node).expect("collected above");
            for p in d.tracked() {
                if !want.contains(&p) {
                    d.forget(p);
                }
            }
            for p in want {
                if !d.is_tracked(p) {
                    d.track(p, at);
                }
            }
        }
    }

    /// The effective control strategy for `fragment` (§6 mixtures).
    pub fn strategy_for(&self, fragment: FragmentId) -> &StrategyKind {
        self.strategy_overrides
            .get(&fragment)
            .unwrap_or(&self.strategy)
    }

    /// The effective movement policy for `fragment` (§6 mixtures).
    pub fn move_policy_for(&self, fragment: FragmentId) -> &MovePolicy {
        self.move_overrides
            .get(&fragment)
            .unwrap_or(&self.move_policy)
    }

    /// Allocate a fresh transaction id for a transaction executing at `node`.
    pub(crate) fn alloc_txn(&mut self, node: NodeId) -> TxnId {
        let seq = &mut self.next_txn_seq[node.0 as usize];
        let id = TxnId::new(node, *seq);
        *seq += 1;
        id
    }

    /// Broadcast an envelope from `from` to every other node, through the
    /// FIFO layer. The closure builds the envelope given the allocated
    /// broadcast sequence number.
    pub(crate) fn broadcast(&mut self, at: SimTime, from: NodeId, build: impl Fn(u64) -> Envelope) {
        let n = self.nodes.len() as u32;
        let targets: Vec<NodeId> = (0..n).map(NodeId).collect();
        self.broadcast_to(at, from, &targets, build);
    }

    /// Broadcast a fragment-scoped envelope to the fragment's replica set
    /// only (§6 partial replication).
    pub(crate) fn broadcast_fragment(
        &mut self,
        at: SimTime,
        from: NodeId,
        fragment: FragmentId,
        build: impl Fn(u64) -> Envelope,
    ) {
        match self.replica_sets.get(&fragment) {
            Some(set) => {
                let targets: Vec<NodeId> = set.iter().copied().collect();
                self.broadcast_to(at, from, &targets, build);
            }
            None => self.broadcast(at, from, build),
        }
    }

    fn broadcast_to(
        &mut self,
        at: SimTime,
        from: NodeId,
        targets: &[NodeId],
        build: impl Fn(u64) -> Envelope,
    ) {
        // Sequence numbers are per (sender, receiver) pair: a fragment-
        // scoped broadcast reaches only the fragment's replica set, and a
        // per-sender stream shared across receivers would leave permanent
        // gaps in the skipped receivers' hold-back queues.
        for &to in targets {
            if to == from {
                continue;
            }
            let bseq = self.bcast.stamp_for(from, to);
            let env = build(bseq);
            self.meter_payload_share(&env);
            let before = self.net_stats_if_telemetry();
            let actions = self.net.send(at, from, to, env, &mut self.engine.rng);
            self.schedule_net(actions);
            if let Some(b) = before {
                self.emit_net_delta(b, from, to);
            }
        }
    }

    /// Meter an outgoing payload-bearing envelope: the payload travels as a
    /// shared reference, where it used to be deep-cloned once per receiver.
    fn meter_payload_share(&mut self, env: &Envelope) {
        if let Some(bytes) = env.payload_bytes() {
            self.engine.metrics.incr(keys::PAYLOAD_SHARES);
            self.engine.metrics.add(keys::PAYLOAD_SHARE_BYTES, bytes);
        }
    }

    /// Materialize a commit's broadcast payload from its owned writes — the
    /// single deep copy the commit performs; every downstream copy
    /// (envelopes, retransmission buffers, hold-back, staging, WALs) shares
    /// the allocation. Metered so tests can assert the O(1)-per-commit
    /// property.
    pub(crate) fn materialize_payload(&mut self, writes: Vec<(ObjectId, Value)>) -> Updates {
        let updates: Updates = writes.into();
        self.engine.metrics.incr(keys::PAYLOAD_CLONES);
        self.engine
            .metrics
            .add(keys::PAYLOAD_CLONE_BYTES, updates.approx_bytes());
        updates
    }

    /// Send a point-to-point envelope (retransmitted until acknowledged;
    /// loopback is dispatched inline).
    pub(crate) fn send_direct(
        &mut self,
        at: SimTime,
        from: NodeId,
        to: NodeId,
        env: Envelope,
    ) -> Vec<Notification> {
        if from == to {
            return self.dispatch_direct(at, from, to, env);
        }
        self.meter_payload_share(&env);
        let before = self.net_stats_if_telemetry();
        let actions = self.net.send(at, from, to, env, &mut self.engine.rng);
        self.schedule_net(actions);
        if let Some(b) = before {
            self.emit_net_delta(b, from, to);
        }
        Vec::new()
    }

    /// Schedule a timeout for a pending transaction.
    pub(crate) fn arm_timeout(&mut self, delay: SimDuration, txn: TxnId) {
        self.engine.schedule(delay, Ev::Timeout { txn });
    }

    fn handle_timeout(&mut self, at: SimTime, txn: TxnId) -> Vec<Notification> {
        if !self.pending.contains_key(&txn) {
            return Vec::new();
        }
        self.abort_pending(at, txn, AbortReason::Unavailable)
    }

    // ---- crash / recovery ------------------------------------------------

    /// A node fails: everything volatile is lost. The store, lock tables,
    /// staged prepares, hold-back queues, and pending protocol state
    /// vanish; the WAL (stable storage) survives. In-flight transactions
    /// homed at the node abort — but a dead node cannot broadcast its
    /// aborts, so they are recorded as tombstones announced at recovery
    /// (presumed abort).
    fn handle_crash(&mut self, at: SimTime, node: NodeId) -> Vec<Notification> {
        if !self.down.insert(node) {
            return Vec::new(); // already down
        }
        self.engine.metrics.incr(keys::NODE_CRASH);
        self.engine.emit(|| TelemetryEvent::Crash { node: node.0 });
        self.net.crash(node);
        // Un-flushed group-commit batches are volatile send-side state,
        // exactly like the reliable layer's unacked buffer: the commits
        // survive only in this node's WAL and reach the other replicas
        // through recovery anti-entropy. Each discarded quasi gets an
        // explicit `BatchDiscarded` event so its causal id is closed in
        // the telemetry join rather than dangling as a phantom lag.
        let dead_batches: Vec<FragmentId> = self
            .open_batches
            .iter()
            .filter(|(_, ob)| ob.home == node)
            .map(|(&f, _)| f)
            .collect();
        for f in dead_batches {
            let ob = self.open_batches.remove(&f).expect("collected above");
            for q in &ob.quasis {
                self.engine.metrics.incr(keys::BATCH_DISCARDED);
                let cause = Self::cid(q.fragment, q.epoch, q.frag_seq);
                self.engine.emit(|| TelemetryEvent::BatchDiscarded {
                    cause,
                    node: node.0,
                });
            }
        }

        let slot = &mut self.nodes[node.0 as usize];
        slot.replica.crash();
        slot.locks = LockManager::new();
        slot.remote_reqs.clear();
        slot.staged.clear();
        slot.next_install.clear();
        slot.holdback.clear();
        slot.regime_close.clear();
        slot.noprep_handled.clear();
        slot.mf_staged.clear();

        let mine: Vec<TxnId> = self
            .pending
            .iter()
            .filter(|(_, p)| match p {
                Pending::LockAcq { home, .. }
                | Pending::XWait { home, .. }
                | Pending::MultiCoord { home, .. }
                | Pending::Majority { home, .. } => *home == node,
            })
            .map(|(&t, _)| t)
            .collect();
        let mut notes = Vec::new();
        for txn in mine {
            notes.extend(self.abort_crashed(node, txn));
        }
        notes.extend(self.unwind_moves_on_crash(at, node));
        self.election_cleanup_on_crash(node);
        self.detectors.remove(&node);
        notes.push(Notification::Crashed { node, at });
        notes
    }

    /// Bug-sweep (liveness): a crash of a move endpoint used to leave the
    /// `MoveState` entry in place forever — nothing re-drove it, so the
    /// fragment stayed write-unavailable and queued submissions never
    /// drained. Unwind or re-drive every affected move.
    fn unwind_moves_on_crash(&mut self, at: SimTime, node: NodeId) -> Vec<Notification> {
        let affected: Vec<FragmentId> = self
            .move_state
            .iter()
            .filter(|(_, st)| match st {
                MoveState::MajorityRecovery {
                    new_home, old_home, ..
                }
                | MoveState::AwaitingData { new_home, old_home }
                | MoveState::AwaitingSeq {
                    new_home, old_home, ..
                } => *new_home == node || *old_home == node,
            })
            .map(|(&f, _)| f)
            .collect();
        let mut notes = Vec::new();
        for fragment in affected {
            let st = self.move_state.get(&fragment).expect("collected above");
            let (new_home, old_home) = match st {
                MoveState::MajorityRecovery {
                    new_home, old_home, ..
                }
                | MoveState::AwaitingData { new_home, old_home }
                | MoveState::AwaitingSeq {
                    new_home, old_home, ..
                } => (*new_home, *old_home),
            };
            if new_home == node {
                // The destination died mid-move: abort the move. The token
                // reattaches to the old home when it is still alive (epoch
                // bumps, fencing any stray destination-side traffic); when
                // it is not — an elected recovery whose candidate crashed —
                // the token stays put and the next detector sweep elects a
                // fresh candidate.
                self.move_state.remove(&fragment);
                if !self.down.contains(&old_home) {
                    self.tokens.reattach(fragment, old_home);
                    // Resume the sequence from the old home's installed
                    // prefix, exactly as a *completed* recovery would
                    // (`check_recovery_done`). Without this, a sequence
                    // number reserved by a commit the move orphan-aborted
                    // stays consumed — the abort's epoch fence refused to
                    // roll the counter back — and the permanent hole holds
                    // back every later install at every replica.
                    let next = self.nodes[old_home.0 as usize]
                        .next_install
                        .get(&fragment)
                        .copied()
                        .unwrap_or(0);
                    self.tokens.set_next_frag_seq(fragment, next);
                }
                self.engine.emit(|| TelemetryEvent::MoveAborted {
                    fragment: fragment.0,
                    from: old_home.0,
                    to: new_home.0,
                });
                notes.extend(self.drain_queued(at, fragment));
            } else if matches!(st, MoveState::AwaitingSeq { .. }) {
                // §4.4.2B with the old home dead: the missing prefix may
                // have died in the old home's unacked send buffer. Re-drive
                // via anti-entropy against every other replica — a live one
                // answers from its installed copy, and the query addressed
                // to the dead old home itself is retransmitted until it
                // recovers and answers from its WAL, so the move completes
                // even when no live replica ever saw the missing entries.
                let MoveState::AwaitingSeq { upto, .. } =
                    *self.move_state.get(&fragment).expect("collected above")
                else {
                    unreachable!("matched above");
                };
                let have = self.nodes[new_home.0 as usize]
                    .replica
                    .last_frag_seq(fragment);
                let targets: Vec<NodeId> = match self.replicas_of(fragment) {
                    Some(set) => set.iter().copied().collect(),
                    None => (0..self.nodes.len() as u32).map(NodeId).collect(),
                };
                for t in targets {
                    if t == new_home {
                        continue;
                    }
                    notes.extend(self.send_direct(
                        at,
                        new_home,
                        t,
                        Envelope::SeqQuery {
                            fragment,
                            have,
                            upto: upto.checked_sub(1),
                            reply_to: new_home,
                            include_staged: false,
                        },
                    ));
                }
            }
            // MajorityRecovery with the old home dead needs nothing: the
            // recovery majority forms from the surviving replicas'
            // `SeqReply`s (every committed entry was acked by a majority).
        }
        notes
    }

    /// Abort one in-flight transaction that died with its home node,
    /// recording the cleanup messages the node owes as tombstones.
    fn abort_crashed(&mut self, node: NodeId, txn: TxnId) -> Vec<Notification> {
        let Some(pending) = self.pending.remove(&txn) else {
            return Vec::new();
        };
        let (fragment, tombstone) = match pending {
            Pending::LockAcq {
                fragment,
                contacted_sites,
                ..
            }
            | Pending::XWait {
                fragment,
                contacted_sites,
                ..
            } => {
                let sites: BTreeSet<NodeId> =
                    contacted_sites.into_iter().filter(|s| *s != node).collect();
                (
                    fragment,
                    (!sites.is_empty()).then_some(CrashTombstone::LockRelease { txn, sites }),
                )
            }
            Pending::MultiCoord { participants, .. } => {
                let fragment = participants[0].0;
                for (f, _) in &participants {
                    self.mf_inflight.remove(f);
                }
                let others: Vec<(FragmentId, NodeId)> = participants
                    .into_iter()
                    .filter(|&(_, home)| home != node)
                    .collect();
                (
                    fragment,
                    (!others.is_empty()).then_some(CrashTombstone::MfAbort {
                        xid: txn,
                        participants: others,
                    }),
                )
            }
            Pending::Majority {
                fragment, quasi, ..
            } => {
                self.majority_inflight.remove(&fragment);
                // Return the reserved sequence number so no gap forms —
                // unless the token has since been re-homed (epoch bumped):
                // the new regime's recovery already reset the counter, and
                // rolling it back would corrupt the new home's sequence.
                if quasi.epoch == self.tokens.epoch(fragment) {
                    let seq = self.tokens.peek_frag_seq(fragment);
                    self.tokens
                        .set_next_frag_seq(fragment, seq.saturating_sub(1));
                }
                (fragment, Some(CrashTombstone::AbortCmd { fragment, txn }))
            }
        };
        if let Some(t) = tombstone {
            self.tombstones.entry(node).or_default().push(t);
        }
        self.finish_abort(txn, fragment, AbortReason::Unavailable)
    }

    /// A node restarts: replay the WAL into the store, resync the network
    /// and broadcast layers (pre-crash streams drain as duplicates),
    /// announce the tombstoned aborts, and run `SeqQuery` anti-entropy
    /// against each fragment's home to catch up on what was missed.
    fn handle_recover(&mut self, at: SimTime, node: NodeId) -> Vec<Notification> {
        if !self.down.remove(&node) {
            return Vec::new(); // was not down
        }
        self.engine.metrics.incr(keys::NODE_RECOVER);

        let frags: Vec<FragmentId> = self.catalog.fragments().iter().map(|f| f.id).collect();
        let slot = &mut self.nodes[node.0 as usize];
        slot.replica.recover(at);
        for &f in &frags {
            if let Some(s) = slot.replica.last_frag_seq(f) {
                slot.next_install.insert(f, s + 1);
            }
        }

        self.net.resync_node(node);
        self.bcast.resync_node(node);

        if self.detector_cfg.enabled() {
            // The liveness view is volatile: restart with a fresh full
            // silence allowance for every peer, so stale pre-crash
            // timestamps cannot produce instant suspicions.
            let mut d = FailureDetector::new(
                self.detector_cfg.heartbeat_period,
                self.detector_cfg.suspect_after,
            );
            for peer in self.monitor_peers(node) {
                d.track(peer, at);
            }
            self.detectors.insert(node, d);
        }

        let mut notes = Vec::new();
        for t in self.tombstones.remove(&node).unwrap_or_default() {
            match t {
                CrashTombstone::AbortCmd { fragment, txn } => {
                    self.broadcast_fragment(at, node, fragment, move |bseq| Envelope::AbortCmd {
                        bseq,
                        txn,
                    });
                }
                CrashTombstone::MfAbort { xid, participants } => {
                    for (f, home) in participants {
                        notes.extend(self.send_direct(
                            at,
                            node,
                            home,
                            Envelope::MfAbort { xid, fragment: f },
                        ));
                    }
                }
                CrashTombstone::LockRelease { txn, sites } => {
                    for site in sites {
                        notes.extend(self.send_direct(
                            at,
                            node,
                            site,
                            Envelope::LockRelease { txn },
                        ));
                    }
                }
            }
        }

        // Anti-entropy: the home has the full installed sequence (it
        // commits locally before broadcasting), so one round trip per
        // fragment closes the gap. `recovering` records the catch-up
        // target; `do_install` observes `latency.recovery` when it's met.
        for &f in &frags {
            if !self.replicated_at(f, node) {
                continue;
            }
            let target = self.tokens.peek_frag_seq(f);
            let have = self.nodes[node.0 as usize].replica.last_frag_seq(f);
            let home = self.tokens.home(f);
            if have.map_or(0, |h| h + 1) >= target || home == node || self.down.contains(&home) {
                continue;
            }
            self.recovering.insert((node, f), (target, at));
            // Bounded range anti-entropy: the catch-up target is known, so
            // ask for exactly `have+1 ..= target-1`. Commits issued after
            // this instant reach the node as ordinary broadcasts.
            notes.extend(self.send_direct(
                at,
                node,
                home,
                Envelope::SeqQuery {
                    fragment: f,
                    have,
                    upto: target.checked_sub(1),
                    reply_to: node,
                    include_staged: false,
                },
            ));
        }
        let behind = self.recovering.keys().filter(|&&(n, _)| n == node).count() as u64;
        self.engine.emit(|| TelemetryEvent::Recover {
            node: node.0,
            behind_fragments: behind,
        });
        if behind == 0 {
            // Nothing was missed: recovery completes with WAL replay alone.
            self.engine.metrics.observe(keys::LATENCY_RECOVERY, 0);
            self.engine
                .emit(|| TelemetryEvent::CatchupComplete { node: node.0 });
        }
        notes.push(Notification::Recovered { node, at });
        notes
    }
}
