//! Model-checking hooks on [`System`]: pending-event enumeration, stepping
//! by explicit choice, and a time-abstract state digest.
//!
//! These are the primitives `fragdb-mc` builds its replay-based DFS on. The
//! contract is:
//!
//! 1. [`System::mc_enable`] switches the engine so every pending event —
//!    including timers — is individually enumerable and takeable.
//! 2. [`System::mc_choices`] lists the enabled transitions of the current
//!    state. Each carries a stable `seq` key (valid for exactly one
//!    [`System::mc_step`] from this state) and a human-readable label used
//!    for witnesses. Because the simulation is fully deterministic, a
//!    recorded sequence of `seq` keys replays to the identical state from a
//!    freshly built system — which is what lets the checker backtrack
//!    without `System: Clone`.
//! 3. [`System::mc_digest`] hashes the protocol-visible state while
//!    abstracting absolute virtual time. Two states with equal digests have
//!    identical label-level futures (timestamps only affect the canonical
//!    default order, never which transitions are enabled), so the explorer
//!    may prune revisits.

use std::collections::BTreeSet;

use fragdb_model::{FragmentId, NodeId};
use fragdb_net::Pkt;
use fragdb_sim::SimTime;

use crate::envelope::Envelope;
use crate::events::{Ev, Notification};

use super::{MoveState, Pending, System};

/// One enabled transition of the current state.
#[derive(Clone, Debug)]
pub struct McChoice {
    /// Scheduled instant (ordering hint only; the checker may fire any
    /// pending event next regardless of timestamp).
    pub at: SimTime,
    /// Engine sequence number — the key passed to [`System::mc_step`].
    pub seq: u64,
    /// Stable, time-free description of the event (used in witnesses and in
    /// the pending-set component of the state digest).
    pub label: String,
    /// For data-packet deliveries of a replicated install, the broadcast
    /// identity used by the partial-order reduction.
    pub delivery: Option<McDelivery>,
    /// Crash/recover/topology events: their presence disables the POR,
    /// since a fault does not commute with a delivery to the same node.
    pub is_fault: bool,
}

/// Identity of a broadcast-install delivery for POR grouping: deliveries of
/// the same `(from, fragment, epoch, frag_seq)` to *different* destinations
/// commute (they touch disjoint node state).
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord)]
pub struct McDelivery {
    /// Sending node.
    pub from: NodeId,
    /// Receiving node.
    pub to: NodeId,
    /// Fragment of the carried install.
    pub fragment: FragmentId,
    /// Token epoch of the carried install.
    pub epoch: u64,
    /// Fragment sequence number of the carried install.
    pub frag_seq: u64,
}

impl System {
    /// Switch into model-checking mode (see module docs). Idempotent.
    pub fn mc_enable(&mut self) {
        self.engine.enable_mc();
    }

    /// Enumerate the enabled transitions of the current state, sorted by
    /// the canonical `(at, seq)` key.
    pub fn mc_choices(&self) -> Vec<McChoice> {
        self.engine
            .mc_pending()
            .into_iter()
            .map(|(at, seq, ev)| {
                let delivery = match ev {
                    Ev::Pkt(pd) => match &pd.pkt {
                        Pkt::Data { msg, .. } => match msg {
                            Envelope::Quasi { quasi, .. } => Some(McDelivery {
                                from: pd.from,
                                to: pd.to,
                                fragment: quasi.fragment,
                                epoch: quasi.epoch,
                                frag_seq: quasi.frag_seq,
                            }),
                            Envelope::Batch { batch, .. } => batch.first().map(|q| McDelivery {
                                from: pd.from,
                                to: pd.to,
                                fragment: q.fragment,
                                epoch: q.epoch,
                                frag_seq: q.frag_seq,
                            }),
                            _ => None,
                        },
                        Pkt::Ack { .. } => None,
                    },
                    _ => None,
                };
                let is_fault = matches!(ev, Ev::Crash(_) | Ev::Recover(_) | Ev::Net(_));
                McChoice {
                    at,
                    seq,
                    label: format!("{ev:?}"),
                    delivery,
                    is_fault,
                }
            })
            .collect()
    }

    /// Fire the pending event keyed by `seq` and run its handler. Returns
    /// `None` if no live pending event carries that key.
    pub fn mc_step(&mut self, seq: u64) -> Option<Vec<Notification>> {
        let (at, ev) = self.engine.mc_take(seq)?;
        Some(self.handle(at, ev))
    }

    /// `true` when no events are pending — the run has quiesced and the
    /// final-state invariants (convergence, durability, serializability)
    /// apply.
    pub fn mc_quiescent(&self) -> bool {
        self.engine.pending() == 0
    }

    /// Per-node installed-sequence frontier: `(node, fragment, next_install)`
    /// for every frontier the node currently tracks. The model checker
    /// asserts these never move backwards between consecutive states (except
    /// across a crash of the node, which legitimately resets them).
    pub fn mc_install_frontier(&self) -> Vec<(NodeId, FragmentId, u64)> {
        let mut out = Vec::new();
        for slot in &self.nodes {
            for (&frag, &next) in &slot.next_install {
                out.push((slot.replica.node, frag, next));
            }
        }
        out
    }

    /// Time-abstract digest of the protocol-visible state (FNV-1a over
    /// [`System::mc_state_string`]).
    pub fn mc_digest(&self) -> u64 {
        fnv1a(self.mc_state_string().as_bytes())
    }

    /// Canonical rendering of the protocol-visible state with absolute
    /// virtual times stripped. Everything that determines future behaviour
    /// at the label level is included: per-node stores, WALs, install
    /// frontiers, hold-back buffers, staged prepares, coordination state,
    /// token placement, movement/election state, the down set, the reliable
    /// layer's counters, the pending-event label multiset, and the recorded
    /// history normalized to per-`(node, object)` op order.
    pub fn mc_state_string(&self) -> String {
        use std::fmt::Write as _;
        let mut s = String::with_capacity(1024);
        let objects: Vec<_> = self
            .catalog
            .fragments()
            .iter()
            .flat_map(|f| f.objects.iter().copied())
            .collect();
        // Candidate txns for the lock fingerprint: everything that can hold
        // or await a lock right now.
        let mut lock_txns: BTreeSet<_> = self.pending.keys().copied().collect();
        for slot in &self.nodes {
            lock_txns.extend(slot.remote_reqs.keys().copied());
            lock_txns.extend(slot.staged.keys().copied());
        }
        for slot in &self.nodes {
            let n = slot.replica.node;
            let _ = write!(s, "n{n}");
            if self.down.contains(&n) {
                s.push_str("[down]");
            }
            s.push_str("{st:");
            for &o in &objects {
                let _ = write!(s, "{o}={:?};", slot.replica.read(o));
            }
            s.push_str("|wal:");
            for e in slot.replica.wal().entries() {
                let _ = write!(s, "{}@{}.{}.{};", e.txn, e.fragment, e.epoch, e.frag_seq);
            }
            s.push_str("|ni:");
            for (f, v) in &slot.next_install {
                let _ = write!(s, "{f}={v};");
            }
            s.push_str("|hb:");
            for (f, m) in &slot.holdback {
                for (seq, q) in m {
                    let _ = write!(s, "{f}.{seq}={};", q.txn);
                }
            }
            s.push_str("|staged:");
            for t in slot.staged.keys() {
                let _ = write!(s, "{t};");
            }
            s.push_str("|rc:");
            for (f, rc) in &slot.regime_close {
                let _ = write!(s, "{f}e{}>{};", rc.old_epoch, rc.new_home);
            }
            s.push_str("|mf:");
            for (t, f) in slot.mf_staged.keys() {
                let _ = write!(s, "{t}.{f};");
            }
            s.push_str("|lk:");
            for &t in &lock_txns {
                for &o in &objects {
                    if slot.locks.holds(t, o) {
                        let _ = write!(s, "{t}@{o};");
                    }
                }
            }
            s.push('}');
        }
        s.push_str("|tok:");
        for f in self.tokens.fragments() {
            let _ = write!(
                s,
                "{f}@{}e{}s{};",
                self.tokens.home(f),
                self.tokens.epoch(f),
                self.tokens.peek_frag_seq(f)
            );
        }
        s.push_str("|pend:");
        for (t, p) in &self.pending {
            let desc = match p {
                Pending::LockAcq {
                    fragment,
                    outstanding_sites,
                    granted,
                    ..
                } => format!("L{fragment}o{}g{}", outstanding_sites.len(), granted.len()),
                Pending::XWait { fragment, .. } => format!("X{fragment}"),
                Pending::MultiCoord { votes, .. } => format!("C{}", votes.len()),
                Pending::Majority { fragment, acks, .. } => format!("M{fragment}a{}", acks.len()),
            };
            let _ = write!(s, "{t}={desc};");
        }
        s.push_str("|mv:");
        for (f, m) in &self.move_state {
            let desc = match m {
                MoveState::MajorityRecovery {
                    new_home,
                    old_home,
                    elected,
                    replies,
                } => format!("R{old_home}>{new_home}e{elected}r{}", replies.len()),
                MoveState::AwaitingData { new_home, old_home } => {
                    format!("D{old_home}>{new_home}")
                }
                MoveState::AwaitingSeq {
                    new_home,
                    old_home,
                    upto,
                } => format!("S{old_home}>{new_home}u{upto}"),
            };
            let _ = write!(s, "{f}={desc};");
        }
        s.push_str("|q:");
        for (f, q) in &self.queued {
            let _ = write!(s, "{f}={};", q.len());
        }
        s.push_str("|mi:");
        for (f, t) in &self.majority_inflight {
            let _ = write!(s, "{f}={t};");
        }
        for (f, t) in &self.mf_inflight {
            let _ = write!(s, "mf{f}={t};");
        }
        s.push_str("|el:");
        for f in self.elections.keys() {
            let _ = write!(s, "{f};");
        }
        for ((f, e, n), c) in &self.granted_votes {
            let _ = write!(s, "v{f}e{e}n{n}={c};");
        }
        s.push_str("|rec:");
        for ((n, f), (e, _)) in &self.recovering {
            let _ = write!(s, "{n}.{f}e{e};");
        }
        s.push_str("|ts:");
        for (n, v) in &self.tombstones {
            let _ = write!(s, "{n}x{};", v.len());
        }
        let _ = write!(s, "|seq:{:?}", self.next_txn_seq);
        let _ = write!(s, "|net:{:?}", self.net.stats());
        s.push_str("|evq:");
        let mut labels: Vec<String> = self
            .engine
            .mc_pending()
            .into_iter()
            .map(|(_, _, ev)| format!("{ev:?}"))
            .collect();
        labels.sort();
        for l in &labels {
            s.push_str(l);
            s.push(';');
        }
        s.push_str("|hist:");
        // Per-(node, object) op order is what the serialization analyzers
        // consume; absolute times and global seq values are path noise.
        let mut keyed: Vec<_> = self
            .history
            .ops()
            .iter()
            .map(|op| {
                (
                    (op.node, op.object),
                    op.seq,
                    format!("{}{:?}{}", op.txn, op.kind, u8::from(op.is_install)),
                )
            })
            .collect();
        keyed.sort();
        for ((n, o), _, desc) in &keyed {
            let _ = write!(s, "{n}.{o}:{desc};");
        }
        s
    }
}

/// Stable 64-bit FNV-1a (the std hasher is not guaranteed stable across
/// runs, and determinism across processes is part of the mc contract).
fn fnv1a(bytes: &[u8]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in bytes {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

#[cfg(test)]
mod tests {
    use fragdb_model::{AgentId, FragmentCatalog, ObjectId, Value};
    use fragdb_net::Topology;
    use fragdb_sim::SimDuration;

    use crate::config::SystemConfig;
    use crate::events::Submission;

    use super::*;

    fn tiny_system() -> System {
        let mut b = FragmentCatalog::builder();
        let (f0, _) = b.add_fragment("F0", 2);
        let topology = Topology::full_mesh(3, SimDuration::from_millis(5));
        let agents = vec![(f0, AgentId::Node(NodeId(0)), NodeId(0))];
        System::build(topology, b.build(), agents, SystemConfig::unrestricted(7))
            .expect("tiny system builds")
    }

    fn bump(fragment: FragmentId) -> Submission {
        Submission::update(
            fragment,
            Box::new(move |ctx| {
                let v = match ctx.read(ObjectId(0)) {
                    Value::Int(i) => i,
                    _ => 0,
                };
                ctx.write(ObjectId(0), Value::Int(v + 1))?;
                Ok(())
            }),
        )
    }

    #[test]
    fn choices_replay_to_identical_digests() {
        let build = || {
            let mut sys = tiny_system();
            sys.mc_enable();
            sys.submit_at(SimTime::from_millis(1), bump(FragmentId(0)));
            sys.submit_at(SimTime::from_millis(2), bump(FragmentId(0)));
            sys
        };
        // Drive one run to quiescence in canonical order, recording choices.
        let mut sys = build();
        let mut path = Vec::new();
        let mut digests = Vec::new();
        while let Some(choice) = sys.mc_choices().first().cloned() {
            sys.mc_step(choice.seq).expect("choice is live");
            path.push(choice.seq);
            digests.push(sys.mc_digest());
        }
        assert!(sys.mc_quiescent());
        // Replaying the recorded keys on a fresh system reproduces every
        // intermediate digest — the property the DFS backtracking relies on.
        let mut replay = build();
        for (i, &seq) in path.iter().enumerate() {
            replay.mc_step(seq).expect("replay step is live");
            assert_eq!(replay.mc_digest(), digests[i], "digest diverged at {i}");
        }
    }

    #[test]
    fn digest_abstracts_time_but_not_state() {
        let mut a = tiny_system();
        a.mc_enable();
        let mut b = tiny_system();
        b.mc_enable();
        assert_eq!(a.mc_digest(), b.mc_digest(), "fresh systems agree");
        a.submit_at(SimTime::from_millis(1), bump(FragmentId(0)));
        assert_ne!(a.mc_digest(), b.mc_digest(), "pending submit is visible");
    }

    #[test]
    fn delivery_choices_carry_broadcast_identity() {
        let mut sys = tiny_system();
        sys.mc_enable();
        sys.submit_at(SimTime::from_millis(1), bump(FragmentId(0)));
        // Step until replica-bound install packets appear.
        let mut saw_delivery = false;
        for _ in 0..64 {
            let choices = sys.mc_choices();
            if let Some(d) = choices.iter().find_map(|c| c.delivery) {
                assert_eq!(d.fragment, FragmentId(0));
                assert_eq!(d.from, NodeId(0));
                saw_delivery = true;
                break;
            }
            let Some(first) = choices.first().cloned() else {
                break;
            };
            sys.mc_step(first.seq);
        }
        assert!(saw_delivery, "install broadcast never appeared");
    }
}
