//! Quasi-transaction installation paths.
//!
//! * [`System::ordered_install`] — used by every movement policy except
//!   §4.4.3: a fragment's updates are installed strictly in `frag_seq`
//!   order (per-fragment hold-back), which is what keeps replicas mutually
//!   consistent across agent moves (§4.4.2's "all other sites are requested
//!   not to install updates from T2 until those from T1 have been
//!   installed").
//! * [`System::do_install`] — the actual installation: replica + WAL +
//!   history + staleness metrics + the §4.4.2B move-completion check.
//!
//! The §4.4.3 path lives in `moves.rs` (it is intertwined with `M0`
//! processing).

use fragdb_model::{ModelError, NodeId, QuasiTransaction, TxnType};
use fragdb_sim::metrics::keys;
use fragdb_sim::{SimTime, TelemetryEvent};

use crate::events::Notification;
use crate::system::{MoveState, System};

impl System {
    /// Refuse a malformed quasi-transaction: the replica is untouched, the
    /// refusal is metered and surfaced to the driver as a typed error.
    pub(crate) fn reject_install(
        &mut self,
        at: SimTime,
        node: NodeId,
        quasi: &QuasiTransaction,
        error: ModelError,
    ) -> Vec<Notification> {
        self.engine.metrics.incr(keys::INSTALL_REJECTED);
        vec![Notification::InstallRejected {
            node,
            txn: quasi.txn,
            fragment: quasi.fragment,
            error,
            at,
        }]
    }

    /// Install `quasi` at `node` respecting `frag_seq` order; out-of-order
    /// arrivals are held back, duplicates dropped.
    pub(crate) fn ordered_install(
        &mut self,
        at: SimTime,
        node: NodeId,
        quasi: QuasiTransaction,
    ) -> Vec<Notification> {
        if let Err(e) = quasi.validate_against(&self.catalog) {
            return self.reject_install(at, node, &quasi, e);
        }
        let slot = &mut self.nodes[node.0 as usize];
        let fragment = quasi.fragment;
        let next = slot.next_install.entry(fragment).or_insert(0);
        if quasi.frag_seq < *next {
            self.engine.metrics.incr(keys::INSTALL_DUPLICATE);
            return Vec::new();
        }
        if quasi.frag_seq > *next {
            self.engine.metrics.incr(keys::INSTALL_HELDBACK);
            let cause = Self::cid(fragment, quasi.epoch, quasi.frag_seq);
            let hb = slot.holdback.entry(fragment).or_default();
            hb.insert(quasi.frag_seq, quasi);
            let depth = hb.len() as u64;
            self.engine.emit(|| TelemetryEvent::HeldBack {
                cause,
                node: node.0,
                depth,
            });
            return Vec::new();
        }
        // quasi.frag_seq == *next: install it, then drain the hold-back.
        let mut notes = self.do_install(at, node, quasi);
        notes.extend(self.drain_holdback(at, node, fragment));
        notes
    }

    /// Install every held-back quasi-transaction that is now next in
    /// `frag_seq` order at `node` (after an in-order install or a batch).
    pub(crate) fn drain_holdback(
        &mut self,
        at: SimTime,
        node: NodeId,
        fragment: fragdb_model::FragmentId,
    ) -> Vec<Notification> {
        let mut notes = Vec::new();
        loop {
            let slot = &mut self.nodes[node.0 as usize];
            let Some(&next) = slot.next_install.get(&fragment) else {
                break;
            };
            let Some(q) = slot
                .holdback
                .get_mut(&fragment)
                .and_then(|hb| hb.remove(&next))
            else {
                break;
            };
            notes.extend(self.do_install(at, node, q));
        }
        notes
    }

    /// Unconditionally install `quasi` at `node`: replica + WAL write,
    /// history install records, staleness metric, notifications, and the
    /// §4.4.2B "caught up yet?" check.
    pub(crate) fn do_install(
        &mut self,
        at: SimTime,
        node: NodeId,
        quasi: QuasiTransaction,
    ) -> Vec<Notification> {
        // `quasi.origin() == node` is legitimate here: a home that crashed
        // between `Prepare` and its local commit re-installs its own entry
        // during catch-up after an elected successor resurrected it.
        self.nodes[node.0 as usize]
            .replica
            .install_quasi(&quasi, at);
        self.post_install(at, node, quasi)
    }

    /// Everything an installation does *besides* the replica/WAL write:
    /// sequence bookkeeping, history records, staleness metrics,
    /// telemetry, and the recovery / §4.4.2B completion checks. The batch
    /// fast path writes a whole batch to the replica in one call and then
    /// runs this per element.
    pub(crate) fn post_install(
        &mut self,
        at: SimTime,
        node: NodeId,
        quasi: QuasiTransaction,
    ) -> Vec<Notification> {
        let slot = &mut self.nodes[node.0 as usize];
        slot.next_install.insert(quasi.fragment, quasi.frag_seq + 1);
        // Prune any staged copy of this transaction: once installed, the
        // stage is redundant, and leaving it would let a later
        // `include_staged` recovery resurrect an entry that is already in
        // the sequence (and leak memory until then).
        slot.staged.remove(&quasi.txn);
        let ttype = TxnType::Update(quasi.fragment);
        for (object, _) in &quasi.updates {
            self.history
                .record_install(node, quasi.txn, ttype, *object, at);
        }
        if let Some(&committed) =
            self.commit_times
                .get(&(quasi.fragment, quasi.epoch, quasi.frag_seq))
        {
            self.engine
                .metrics
                .observe(keys::LATENCY_PROPAGATION, (at - committed).micros());
        }
        self.engine.metrics.incr(keys::INSTALL_COUNT);
        let cause = Self::cid(quasi.fragment, quasi.epoch, quasi.frag_seq);
        self.engine.emit(|| TelemetryEvent::Installed {
            cause,
            node: node.0,
        });

        // Crash recovery: did this install reach the catch-up target?
        if let Some(&(target, since)) = self.recovering.get(&(node, quasi.fragment)) {
            let caught_up = self.nodes[node.0 as usize]
                .next_install
                .get(&quasi.fragment)
                .is_some_and(|&n| n >= target);
            if caught_up {
                self.recovering.remove(&(node, quasi.fragment));
                self.engine
                    .metrics
                    .observe(keys::LATENCY_RECOVERY, (at - since).micros());
                if !self.recovering.keys().any(|&(n, _)| n == node) {
                    self.engine
                        .emit(|| TelemetryEvent::CatchupComplete { node: node.0 });
                }
            }
        }

        let mut notes = vec![Notification::Installed {
            node,
            quasi: quasi.clone(),
            at,
        }];

        // §4.4.2B: if this node is a new home waiting to catch up, check
        // whether this install completed the prefix.
        if let Some(MoveState::AwaitingSeq { new_home, upto, .. }) =
            self.move_state.get(&quasi.fragment)
        {
            let (new_home, upto) = (*new_home, *upto);
            if new_home == node {
                let caught_up = self.nodes[node.0 as usize]
                    .next_install
                    .get(&quasi.fragment)
                    .is_some_and(|&n| n >= upto);
                if caught_up {
                    let fragment = quasi.fragment;
                    self.move_state.remove(&fragment);
                    self.engine.emit(|| TelemetryEvent::TokenArrived {
                        fragment: fragment.0,
                        node: new_home.0,
                    });
                    notes.push(Notification::MoveCompleted {
                        fragment,
                        node: new_home,
                        at,
                    });
                    notes.extend(self.drain_queued(at, fragment));
                }
            }
        }
        notes
    }
}
