//! Every message nodes exchange.
//!
//! One envelope type keeps the transport monomorphic and makes the full
//! protocol surface visible in one place. Messages group into:
//!
//! * **update propagation** (§3.2): [`Envelope::Quasi`];
//! * **read-lock protocol** (§4.1): `LockReq` / `LockGrant` / `LockDenied`
//!   / `LockRelease`;
//! * **majority commit** (§4.4.1): `Prepare` / `PrepareAck` / `CommitCmd`
//!   / `AbortCmd`, and `SeqQuery` / `SeqReply` for the move-time catch-up;
//! * **unprepared movement** (§4.4.3): `M0` (the catch-up announcement)
//!   and `ForwardMissing` (a late old-regime transaction routed to the new
//!   home).

use fragdb_model::{FragmentId, NodeId, ObjectId, QuasiTransaction, TxnId, Updates, Value};
use fragdb_storage::WalEntry;

/// A network message.
#[derive(Clone, Debug)]
pub enum Envelope {
    /// A broadcast quasi-transaction, stamped with the sender's broadcast
    /// sequence number (per-sender FIFO processing, §3.2).
    Quasi {
        /// Per-sender broadcast sequence.
        bseq: u64,
        /// The propagated updates.
        quasi: QuasiTransaction,
    },
    /// A group-commit batch: consecutive quasi-transactions for one
    /// fragment coalesced into a single broadcast envelope. Each element
    /// keeps its own causal id `(fragment, epoch, frag_seq)`, so the
    /// receiver unpacks them through the ordinary install paths and
    /// telemetry's commit→install join is unchanged.
    Batch {
        /// Per-sender broadcast sequence.
        bseq: u64,
        /// The batched quasi-transactions, in `frag_seq` order.
        batch: Vec<QuasiTransaction>,
    },

    // ---- §4.1 read-lock protocol -------------------------------------
    /// Request shared locks on `objects` at the receiving node (the home
    /// of the fragment owning them) on behalf of `txn`.
    LockReq {
        /// The requesting transaction.
        txn: TxnId,
        /// Objects to lock (all owned by fragments homed at the receiver).
        objects: Vec<ObjectId>,
        /// Node to send the grant back to.
        reply_to: NodeId,
    },
    /// All requested locks are held; carries the current values at the
    /// lock site so the reader sees a globally-consistent snapshot.
    LockGrant {
        /// The requesting transaction.
        txn: TxnId,
        /// `(object, value-at-grant-time)` pairs.
        values: Vec<(ObjectId, Value)>,
    },
    /// The request would deadlock; the transaction must abort.
    LockDenied {
        /// The requesting transaction.
        txn: TxnId,
    },
    /// The transaction finished; drop all its locks at the receiver.
    LockRelease {
        /// The finished transaction.
        txn: TxnId,
    },

    // ---- §4.4.1 majority commit ---------------------------------------
    /// Stage this quasi-transaction and acknowledge.
    Prepare {
        /// Per-sender broadcast sequence.
        bseq: u64,
        /// The staged updates.
        quasi: QuasiTransaction,
    },
    /// Acknowledgment of a `Prepare`.
    PrepareAck {
        /// The staged transaction.
        txn: TxnId,
        /// The acknowledging node.
        from: NodeId,
    },
    /// Commit the previously staged quasi-transaction.
    CommitCmd {
        /// Per-sender broadcast sequence.
        bseq: u64,
        /// The staged transaction to commit.
        txn: TxnId,
        /// Its fragment — lets a receiver that lost the staged copy (crash)
        /// fetch the committed entry from the home instead.
        fragment: FragmentId,
    },
    /// Abandon the previously staged quasi-transaction.
    AbortCmd {
        /// Per-sender broadcast sequence.
        bseq: u64,
        /// The staged transaction to drop.
        txn: TxnId,
    },
    /// "Which transactions on `fragment` have you seen?" — the §4.4.1
    /// move-time catch-up, also reused as crash-recovery anti-entropy.
    SeqQuery {
        /// Fragment being recovered.
        fragment: FragmentId,
        /// Highest `frag_seq` the querier already has.
        have: Option<u64>,
        /// Highest `frag_seq` the querier wants (inclusive), or `None` for
        /// "everything you have". Crash recovery bounds the request at its
        /// known catch-up target so the reply is a closed range served
        /// straight from the responder's WAL `frag_seq` index — updates
        /// committed after the query was sent travel as ordinary
        /// broadcasts, not in the reply.
        upto: Option<u64>,
        /// Node to reply to.
        reply_to: NodeId,
        /// Whether staged-but-uncommitted prepares count as "seen". The
        /// §4.4.1 move needs them (a majority *acknowledged* them); crash
        /// recovery must not resurrect them (their outcome is the live
        /// home's to decide).
        include_staged: bool,
    },
    /// Reply carrying the WAL entries the querier is missing.
    SeqReply {
        /// Fragment being recovered.
        fragment: FragmentId,
        /// Replying node.
        from: NodeId,
        /// Entries with `frag_seq` above the querier's `have`.
        entries: Vec<WalEntry>,
    },

    // ---- §4.4.3 unprepared movement ------------------------------------
    /// New home `Y` announces the old-regime transactions it knows,
    /// carrying them so laggards can catch up (protocol step B.1).
    M0 {
        /// Per-sender broadcast sequence.
        bseq: u64,
        /// Fragment whose agent moved.
        fragment: FragmentId,
        /// The regime (epoch) that just ended.
        old_epoch: u64,
        /// Highest old-regime `frag_seq` installed at the new home (`i`).
        last_seq: Option<u64>,
        /// The old-regime WAL entries the new home has, for catch-up.
        entries: Vec<WalEntry>,
        /// The new home node (`Y`), where missing transactions are forwarded.
        new_home: NodeId,
    },
    /// A late old-regime quasi-transaction forwarded to the new home
    /// (protocol step B.2).
    ForwardMissing {
        /// The late quasi-transaction.
        quasi: QuasiTransaction,
    },

    // ---- §3.2 footnote: multi-fragment transactions (agent 2PC) --------
    /// Coordinator asks `fragment`'s agent to stage this share of a
    /// multi-fragment transaction.
    MfPrepare {
        /// The coordinating transaction (global id of the 2PC).
        xid: TxnId,
        /// The fragment this share updates.
        fragment: FragmentId,
        /// The share's `(object, value)` writes (shared payload).
        updates: Updates,
        /// Coordinator node to vote back to.
        reply_to: NodeId,
    },
    /// Participant vote.
    MfVote {
        /// The coordinating transaction.
        xid: TxnId,
        /// The voting fragment.
        fragment: FragmentId,
        /// `true` = staged and ready; `false` = refused (busy fragment).
        yes: bool,
    },
    /// Commit the staged share.
    MfCommit {
        /// The coordinating transaction.
        xid: TxnId,
        /// The fragment whose share commits.
        fragment: FragmentId,
    },
    /// Abandon the staged share.
    MfAbort {
        /// The coordinating transaction.
        xid: TxnId,
        /// The fragment whose share is dropped.
        fragment: FragmentId,
    },

    // ---- self-healing token recovery ----------------------------------
    /// "I am alive" — periodic liveness beacon from the failure detector.
    /// Rides `ReliableNet` directly (no broadcast sequencing: liveness is
    /// per-pair, and a heartbeat must not stall behind held-back updates).
    Heartbeat {
        /// The beating node.
        from: NodeId,
        /// The sender's beat counter, monotone per node.
        beat: u64,
    },
    /// An election initiator asks a replica to vote for re-homing
    /// `fragment`'s token away from its suspected home.
    VoteReq {
        /// Fragment whose home is suspected.
        fragment: FragmentId,
        /// The token epoch the initiator observed; a voter refuses when
        /// its own view has moved past it (a newer election or an
        /// explicit move already re-homed the token).
        epoch: u64,
        /// Proposed new home (the initiator itself).
        candidate: NodeId,
        /// Node to send the vote back to.
        reply_to: NodeId,
    },
    /// A replica's answer to a [`Envelope::VoteReq`].
    Vote {
        /// Fragment being voted on.
        fragment: FragmentId,
        /// Epoch the vote fences on (copied from the request).
        epoch: u64,
        /// The voting node.
        from: NodeId,
        /// `true` = vote granted; `false` = refused (stale epoch, or this
        /// voter already granted another candidate this epoch).
        granted: bool,
    },
}

impl Envelope {
    /// Short tag for metrics and traces.
    pub fn kind(&self) -> &'static str {
        match self {
            Envelope::Quasi { .. } => "quasi",
            Envelope::Batch { .. } => "batch",
            Envelope::LockReq { .. } => "lock_req",
            Envelope::LockGrant { .. } => "lock_grant",
            Envelope::LockDenied { .. } => "lock_denied",
            Envelope::LockRelease { .. } => "lock_release",
            Envelope::Prepare { .. } => "prepare",
            Envelope::PrepareAck { .. } => "prepare_ack",
            Envelope::CommitCmd { .. } => "commit_cmd",
            Envelope::AbortCmd { .. } => "abort_cmd",
            Envelope::SeqQuery { .. } => "seq_query",
            Envelope::SeqReply { .. } => "seq_reply",
            Envelope::M0 { .. } => "m0",
            Envelope::ForwardMissing { .. } => "forward_missing",
            Envelope::MfPrepare { .. } => "mf_prepare",
            Envelope::MfVote { .. } => "mf_vote",
            Envelope::MfCommit { .. } => "mf_commit",
            Envelope::MfAbort { .. } => "mf_abort",
            Envelope::Heartbeat { .. } => "heartbeat",
            Envelope::VoteReq { .. } => "vote_req",
            Envelope::Vote { .. } => "vote",
        }
    }

    /// The pre-formed `msg.<kind>` metric key, so the delivery hot path
    /// counts messages without a per-delivery `format!` allocation.
    pub fn metric_key(&self) -> &'static str {
        match self {
            Envelope::Quasi { .. } => "msg.quasi",
            Envelope::Batch { .. } => "msg.batch",
            Envelope::LockReq { .. } => "msg.lock_req",
            Envelope::LockGrant { .. } => "msg.lock_grant",
            Envelope::LockDenied { .. } => "msg.lock_denied",
            Envelope::LockRelease { .. } => "msg.lock_release",
            Envelope::Prepare { .. } => "msg.prepare",
            Envelope::PrepareAck { .. } => "msg.prepare_ack",
            Envelope::CommitCmd { .. } => "msg.commit_cmd",
            Envelope::AbortCmd { .. } => "msg.abort_cmd",
            Envelope::SeqQuery { .. } => "msg.seq_query",
            Envelope::SeqReply { .. } => "msg.seq_reply",
            Envelope::M0 { .. } => "msg.m0",
            Envelope::ForwardMissing { .. } => "msg.forward_missing",
            Envelope::MfPrepare { .. } => "msg.mf_prepare",
            Envelope::MfVote { .. } => "msg.mf_vote",
            Envelope::MfCommit { .. } => "msg.mf_commit",
            Envelope::MfAbort { .. } => "msg.mf_abort",
            Envelope::Heartbeat { .. } => "msg.heartbeat",
            Envelope::VoteReq { .. } => "msg.vote_req",
            Envelope::Vote { .. } => "msg.vote",
        }
    }

    /// Approximate bytes of immutable shared payload this envelope carries,
    /// if any — the amount that a per-receiver deep copy used to duplicate
    /// before payloads were reference-counted. Drives the `payload.shares`
    /// / `payload.share_bytes` cost-model metrics.
    pub fn payload_bytes(&self) -> Option<u64> {
        match self {
            Envelope::Quasi { quasi, .. }
            | Envelope::Prepare { quasi, .. }
            | Envelope::ForwardMissing { quasi } => Some(quasi.updates.approx_bytes()),
            Envelope::Batch { batch, .. } => {
                Some(batch.iter().map(|q| q.updates.approx_bytes()).sum())
            }
            Envelope::M0 { entries, .. } | Envelope::SeqReply { entries, .. } => {
                Some(entries.iter().map(|e| e.updates.approx_bytes()).sum())
            }
            Envelope::MfPrepare { updates, .. } => Some(updates.approx_bytes()),
            _ => None,
        }
    }

    /// The broadcast sequence number, for envelopes that travel through the
    /// FIFO broadcast layer.
    pub fn bseq(&self) -> Option<u64> {
        match self {
            Envelope::Quasi { bseq, .. }
            | Envelope::Batch { bseq, .. }
            | Envelope::Prepare { bseq, .. }
            | Envelope::CommitCmd { bseq, .. }
            | Envelope::AbortCmd { bseq, .. }
            | Envelope::M0 { bseq, .. } => Some(*bseq),
            _ => None,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn kinds_are_distinct() {
        let q = Envelope::LockRelease {
            txn: TxnId::new(NodeId(0), 0),
        };
        assert_eq!(q.kind(), "lock_release");
        assert_eq!(q.bseq(), None);
    }

    #[test]
    fn metric_key_matches_kind_and_registry() {
        let q = Envelope::LockRelease {
            txn: TxnId::new(NodeId(0), 0),
        };
        assert_eq!(q.metric_key(), "msg.lock_release");
        assert_eq!(q.metric_key(), format!("msg.{}", q.kind()));
        assert!(fragdb_sim::metrics::keys::is_registered(q.metric_key()));
        // Every wire kind the registry knows structurally is a real kind.
        assert!(fragdb_sim::metrics::keys::MSG_KINDS.contains(&q.kind()));
    }

    #[test]
    fn broadcast_envelopes_carry_bseq() {
        let q = Envelope::Quasi {
            bseq: 7,
            quasi: QuasiTransaction {
                txn: TxnId::new(NodeId(0), 0),
                fragment: FragmentId(0),
                frag_seq: 0,
                epoch: 0,
                updates: Updates::empty(),
            },
        };
        assert_eq!(q.bseq(), Some(7));
        assert_eq!(q.kind(), "quasi");
    }

    #[test]
    fn self_heal_envelopes_bypass_broadcast_sequencing() {
        for env in [
            Envelope::Heartbeat {
                from: NodeId(1),
                beat: 3,
            },
            Envelope::VoteReq {
                fragment: FragmentId(0),
                epoch: 2,
                candidate: NodeId(1),
                reply_to: NodeId(1),
            },
            Envelope::Vote {
                fragment: FragmentId(0),
                epoch: 2,
                from: NodeId(2),
                granted: true,
            },
        ] {
            assert_eq!(env.bseq(), None, "{} must be direct", env.kind());
            assert_eq!(env.payload_bytes(), None);
            assert_eq!(env.metric_key(), format!("msg.{}", env.kind()));
            assert!(fragdb_sim::metrics::keys::MSG_KINDS.contains(&env.kind()));
        }
    }
}
