//! Transaction programs.
//!
//! A transaction is domain logic: it reads objects, decides, and writes
//! objects of its initiator's fragment. Programs are closures over a
//! [`TxnCtx`], which
//!
//! * serves reads from the executing node's replica (or, under §4.1 read
//!   locks, from the *granted snapshot* fetched from the lock site, which
//!   is what makes that strategy truly serializable),
//! * buffers a record of every read — flushed into the run history only if
//!   the transaction commits, so aborted attempts leave no trace in the
//!   serialization graphs (reads are recorded *at the node the value came
//!   from*),
//! * buffers writes and enforces the **initiation requirement** (§3.2) —
//!   a write outside the initiator's fragment aborts the transaction, and
//! * supports read-your-own-writes within the transaction.

use std::collections::BTreeMap;
use std::fmt;

use fragdb_model::{FragmentCatalog, FragmentId, NodeId, ObjectId, TxnId, Value};
use fragdb_sim::SimTime;
use fragdb_storage::Replica;

/// Why a program aborted itself or was aborted by the context.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum ProgramError {
    /// Domain logic decided to abort (e.g. "insufficient funds" under a
    /// strict policy).
    Logic(String),
    /// The program wrote outside its fragment (initiation requirement).
    InitiationViolation(ObjectId),
}

impl fmt::Display for ProgramError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ProgramError::Logic(m) => write!(f, "aborted by program: {m}"),
            ProgramError::InitiationViolation(o) => {
                write!(f, "initiation requirement violated on {o}")
            }
        }
    }
}

impl std::error::Error for ProgramError {}

/// An update (or read-only) transaction body.
pub type UpdateFn = Box<dyn FnOnce(&mut TxnCtx<'_>) -> Result<(), ProgramError>>;

/// The effects a finished program produced, to be applied by the system.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TxnEffects {
    /// `(site, object)` for every read performed, in program order. The
    /// site is the node the value came from (the local node, or the §4.1
    /// lock site).
    pub reads: Vec<(NodeId, ObjectId)>,
    /// Buffered writes, deduplicated last-write-wins, in first-write order.
    pub writes: Vec<(ObjectId, Value)>,
}

/// Execution context handed to a transaction program.
pub struct TxnCtx<'a> {
    node: NodeId,
    txn: TxnId,
    fragment: FragmentId,
    /// Additional fragments this transaction may write (multi-fragment
    /// transactions, the §3.2 footnote; empty for ordinary transactions).
    extra_fragments: Vec<FragmentId>,
    now: SimTime,
    replica: &'a Replica,
    catalog: &'a FragmentCatalog,
    /// §4.1: values fetched with remote read locks, keyed by object, with
    /// the node they came from. Reads of these objects use the snapshot.
    granted: &'a BTreeMap<ObjectId, (NodeId, Value)>,
    writes: Vec<(ObjectId, Value)>,
    read_records: Vec<(NodeId, ObjectId)>,
    reads_seen: Vec<(ObjectId, Value)>,
    read_only: bool,
}

impl<'a> TxnCtx<'a> {
    /// Create a context (called by the system, not by applications).
    #[allow(clippy::too_many_arguments)]
    pub(crate) fn new(
        node: NodeId,
        txn: TxnId,
        fragment: FragmentId,
        now: SimTime,
        replica: &'a Replica,
        catalog: &'a FragmentCatalog,
        granted: &'a BTreeMap<ObjectId, (NodeId, Value)>,
        read_only: bool,
    ) -> Self {
        TxnCtx {
            node,
            txn,
            fragment,
            extra_fragments: Vec::new(),
            now,
            replica,
            catalog,
            granted,
            writes: Vec::new(),
            read_records: Vec::new(),
            reads_seen: Vec::new(),
            read_only,
        }
    }

    /// Extend the set of writable fragments (multi-fragment path).
    pub(crate) fn allow_fragments(&mut self, extra: &[FragmentId]) {
        self.extra_fragments.extend_from_slice(extra);
    }

    /// This transaction's id.
    pub fn txn(&self) -> TxnId {
        self.txn
    }

    /// The node executing the transaction.
    pub fn node(&self) -> NodeId {
        self.node
    }

    /// Current virtual time.
    pub fn now(&self) -> SimTime {
        self.now
    }

    /// The initiating agent's fragment.
    pub fn fragment(&self) -> FragmentId {
        self.fragment
    }

    /// Read an object. Own buffered writes win; then §4.1 granted
    /// snapshots; then the local replica.
    pub fn read(&mut self, object: ObjectId) -> Value {
        if let Some((_, v)) = self.writes.iter().rev().find(|(o, _)| *o == object) {
            return v.clone();
        }
        let (site, value) = match self.granted.get(&object) {
            Some((site, v)) => (*site, v.clone()),
            None => (self.node, self.replica.read(object).clone()),
        };
        self.read_records.push((site, object));
        self.reads_seen.push((object, value.clone()));
        value
    }

    /// Read and interpret as integer with `default` for `Null`.
    pub fn read_int(&mut self, object: ObjectId, default: i64) -> i64 {
        self.read(object)
            .as_int_or(default)
            .expect("read_int on non-integer object")
    }

    /// Buffer a write. Fails (aborting the transaction) if the object lies
    /// outside the initiator's fragment or the transaction is read-only.
    pub fn write(&mut self, object: ObjectId, value: impl Into<Value>) -> Result<(), ProgramError> {
        if self.read_only {
            return Err(ProgramError::Logic("write in read-only transaction".into()));
        }
        match self.catalog.fragment_of(object) {
            Ok(f) if f == self.fragment || self.extra_fragments.contains(&f) => {
                self.writes.push((object, value.into()));
                Ok(())
            }
            _ => Err(ProgramError::InitiationViolation(object)),
        }
    }

    /// Abort with a domain reason.
    pub fn abort(&self, reason: impl Into<String>) -> ProgramError {
        ProgramError::Logic(reason.into())
    }

    /// Values read so far (for drivers that inspect mid-program).
    pub fn reads(&self) -> &[(ObjectId, Value)] {
        &self.reads_seen
    }

    /// Finish: hand the buffered effects to the system.
    pub(crate) fn finish(self) -> TxnEffects {
        let mut order: Vec<ObjectId> = Vec::new();
        let mut last: BTreeMap<ObjectId, Value> = BTreeMap::new();
        for (o, v) in self.writes {
            if !last.contains_key(&o) {
                order.push(o);
            }
            last.insert(o, v);
        }
        TxnEffects {
            reads: self.read_records,
            writes: order
                .into_iter()
                .map(|o| {
                    let v = last.remove(&o).expect("present");
                    (o, v)
                })
                .collect(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fragdb_model::Fragment;

    fn setup() -> (FragmentCatalog, Replica) {
        let catalog = FragmentCatalog::new(vec![
            Fragment::new(FragmentId(0), "A", vec![ObjectId(0), ObjectId(1)]),
            Fragment::new(FragmentId(1), "B", vec![ObjectId(2)]),
        ])
        .unwrap();
        let mut replica = Replica::new(NodeId(0));
        replica.commit_local(
            TxnId::new(NodeId(0), 999),
            FragmentId(0),
            0,
            0,
            vec![(ObjectId(0), Value::Int(100))].into(),
            SimTime(0),
        );
        (catalog, replica)
    }

    fn ctx<'a>(
        catalog: &'a FragmentCatalog,
        replica: &'a Replica,
        granted: &'a BTreeMap<ObjectId, (NodeId, Value)>,
        read_only: bool,
    ) -> TxnCtx<'a> {
        TxnCtx::new(
            NodeId(0),
            TxnId::new(NodeId(0), 1),
            FragmentId(0),
            SimTime(5),
            replica,
            catalog,
            granted,
            read_only,
        )
    }

    #[test]
    fn reads_come_from_replica_and_are_buffered() {
        let (catalog, replica) = setup();
        let granted = BTreeMap::new();
        let mut c = ctx(&catalog, &replica, &granted, false);
        assert_eq!(c.read(ObjectId(0)), Value::Int(100));
        assert_eq!(
            c.read_int(ObjectId(1), -7),
            -7,
            "unwritten reads as default"
        );
        let eff = c.finish();
        assert_eq!(
            eff.reads,
            vec![(NodeId(0), ObjectId(0)), (NodeId(0), ObjectId(1))]
        );
        assert!(eff.writes.is_empty());
    }

    #[test]
    fn read_your_own_writes_not_recorded_as_reads() {
        let (catalog, replica) = setup();
        let granted = BTreeMap::new();
        let mut c = ctx(&catalog, &replica, &granted, false);
        c.write(ObjectId(0), 555i64).unwrap();
        assert_eq!(c.read(ObjectId(0)), Value::Int(555));
        let eff = c.finish();
        assert!(eff.reads.is_empty(), "own-buffer reads touch no replica");
        assert_eq!(eff.writes, vec![(ObjectId(0), Value::Int(555))]);
    }

    #[test]
    fn granted_snapshot_wins_and_records_lock_site() {
        let (catalog, replica) = setup();
        let mut granted = BTreeMap::new();
        granted.insert(ObjectId(2), (NodeId(3), Value::Int(42)));
        let mut c = ctx(&catalog, &replica, &granted, false);
        assert_eq!(c.read(ObjectId(2)), Value::Int(42));
        let eff = c.finish();
        assert_eq!(eff.reads, vec![(NodeId(3), ObjectId(2))]);
    }

    #[test]
    fn initiation_requirement_enforced_at_write() {
        let (catalog, replica) = setup();
        let granted = BTreeMap::new();
        let mut c = ctx(&catalog, &replica, &granted, false);
        assert_eq!(
            c.write(ObjectId(2), 1i64),
            Err(ProgramError::InitiationViolation(ObjectId(2)))
        );
        assert!(c.write(ObjectId(99), 1i64).is_err(), "unknown object");
        assert!(c.write(ObjectId(1), 1i64).is_ok(), "own fragment");
    }

    #[test]
    fn read_only_context_rejects_writes() {
        let (catalog, replica) = setup();
        let granted = BTreeMap::new();
        let mut c = ctx(&catalog, &replica, &granted, true);
        assert!(matches!(
            c.write(ObjectId(0), 1i64),
            Err(ProgramError::Logic(_))
        ));
    }

    #[test]
    fn finish_dedupes_writes_last_wins() {
        let (catalog, replica) = setup();
        let granted = BTreeMap::new();
        let mut c = ctx(&catalog, &replica, &granted, false);
        c.write(ObjectId(0), 1i64).unwrap();
        c.write(ObjectId(1), 2i64).unwrap();
        c.write(ObjectId(0), 3i64).unwrap();
        let eff = c.finish();
        assert_eq!(
            eff.writes,
            vec![(ObjectId(0), Value::Int(3)), (ObjectId(1), Value::Int(2))]
        );
    }

    #[test]
    fn abort_helper_builds_logic_error() {
        let (catalog, replica) = setup();
        let granted = BTreeMap::new();
        let c = ctx(&catalog, &replica, &granted, false);
        let err = c.abort("no funds");
        assert_eq!(err, ProgramError::Logic("no funds".into()));
        assert!(err.to_string().contains("no funds"));
    }

    #[test]
    fn reads_seen_exposes_values() {
        let (catalog, replica) = setup();
        let granted = BTreeMap::new();
        let mut c = ctx(&catalog, &replica, &granted, false);
        c.read(ObjectId(0));
        assert_eq!(c.reads(), &[(ObjectId(0), Value::Int(100))]);
    }
}
