#![forbid(unsafe_code)]
#![warn(missing_docs)]

//! `fragdb-core` — the fragments-and-agents engine.
//!
//! This crate implements the paper's contribution: a distributed database
//! in which the data is divided into fragments, each updatable only by its
//! token-holding agent, with updates propagated to all replicas as
//! quasi-transactions over a reliable FIFO broadcast (§2–§3), under any of
//! the paper's control options:
//!
//! | module | paper section | what it implements |
//! |--------|---------------|--------------------|
//! | [`strategy`] | §4.1–§4.3 | read-locks / acyclic-RAG / unrestricted admission |
//! | [`movement`] | §4.4 | fixed, majority-commit, move-with-data, move-with-seqno, no-prep |
//! | [`tokens`] | §3.1 | the token registry (one token per fragment, epochs) |
//! | [`program`] | §3.2 | transaction programs and their execution context |
//! | [`envelope`] | §3.2 | every message type nodes exchange |
//! | [`events`] | — | simulation events and the notifications handed back to the driver |
//! | [`system`] | — | the [`System`]: n nodes wired to the network, the event loop |
//!
//! The [`System`] is deliberately application-free: domain logic (banking
//! rules, reservation rules, corrective actions such as overdraft fines)
//! lives in the *driver*, which submits transaction programs and reacts to
//! [`events::Notification`]s. That mirrors the paper's framing: the
//! mechanism is generic; the database design (fragment layout + triggers)
//! is what makes an application work (§2, "a good database design is
//! essential").

pub mod config;
pub mod envelope;
pub mod events;
pub mod movement;
pub mod program;
pub mod strategy;
pub mod system;
pub mod tokens;

pub use config::{BatchConfig, DetectorConfig, SystemConfig};
pub use envelope::Envelope;
pub use events::{AbortReason, Ev, Notification, Submission};
pub use movement::MovePolicy;
pub use program::{ProgramError, TxnCtx, TxnEffects, UpdateFn};
pub use strategy::{StrategyError, StrategyKind};
pub use system::{BuildError, McChoice, McDelivery, System};
pub use tokens::TokenRegistry;
