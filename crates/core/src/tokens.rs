//! The token registry (§3.1).
//!
//! One token per fragment; the owner is the fragment's agent; the owner's
//! home node is where update transactions execute. The registry also owns
//! the fragment's **update sequence** — the single uninterrupted numbering
//! of its committed transactions (§4.4.1) — because allocating the next
//! number is the home node's prerogative.

use std::collections::BTreeMap;

use fragdb_model::{AgentId, FragmentId, NodeId, Token};

/// All tokens, plus per-fragment sequence allocation.
#[derive(Clone, Debug, Default)]
pub struct TokenRegistry {
    tokens: BTreeMap<FragmentId, Token>,
    next_frag_seq: BTreeMap<FragmentId, u64>,
}

impl TokenRegistry {
    /// Empty registry.
    pub fn new() -> Self {
        TokenRegistry::default()
    }

    /// Mint the token for `fragment`, owned by `owner` homed at `home`.
    ///
    /// # Panics
    /// Panics if the fragment already has a token — "for every fragment,
    /// there is exactly one token".
    pub fn mint(&mut self, fragment: FragmentId, owner: AgentId, home: NodeId) {
        let prev = self
            .tokens
            .insert(fragment, Token::new(fragment, owner, home));
        assert!(prev.is_none(), "fragment {fragment} already has a token");
        self.next_frag_seq.entry(fragment).or_insert(0);
    }

    /// The token for `fragment`.
    pub fn token(&self, fragment: FragmentId) -> &Token {
        self.tokens
            .get(&fragment)
            .unwrap_or_else(|| panic!("no token minted for {fragment}"))
    }

    /// Current home node of `fragment`'s agent.
    pub fn home(&self, fragment: FragmentId) -> NodeId {
        self.token(fragment).home
    }

    /// Current epoch of `fragment`'s token.
    pub fn epoch(&self, fragment: FragmentId) -> u64 {
        self.token(fragment).epoch
    }

    /// Is `node` the current home of `fragment`?
    pub fn is_home(&self, fragment: FragmentId, node: NodeId) -> bool {
        self.home(fragment) == node
    }

    /// Re-attach `fragment`'s agent to a new home node, bumping the epoch.
    /// Returns the new epoch.
    pub fn reattach(&mut self, fragment: FragmentId, home: NodeId) -> u64 {
        let t = self
            .tokens
            .get_mut(&fragment)
            .unwrap_or_else(|| panic!("no token minted for {fragment}"));
        t.reattach(home);
        t.epoch
    }

    /// Allocate the next position in `fragment`'s update sequence.
    pub fn alloc_frag_seq(&mut self, fragment: FragmentId) -> u64 {
        let c = self
            .next_frag_seq
            .get_mut(&fragment)
            .unwrap_or_else(|| panic!("no token minted for {fragment}"));
        let s = *c;
        *c += 1;
        s
    }

    /// Next sequence number that `alloc_frag_seq` would return.
    pub fn peek_frag_seq(&self, fragment: FragmentId) -> u64 {
        self.next_frag_seq.get(&fragment).copied().unwrap_or(0)
    }

    /// Reset the sequence counter after a move-time recovery (§4.4):
    /// the next transaction at the new home continues the sequence.
    pub fn set_next_frag_seq(&mut self, fragment: FragmentId, next: u64) {
        self.next_frag_seq.insert(fragment, next);
    }

    /// All fragments with tokens.
    pub fn fragments(&self) -> impl Iterator<Item = FragmentId> + '_ {
        self.tokens.keys().copied()
    }

    /// `fragment -> home` map (for the local-serialization-graph builder).
    pub fn homes(&self) -> BTreeMap<FragmentId, NodeId> {
        self.tokens.iter().map(|(&f, t)| (f, t.home)).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fragdb_model::UserId;

    #[test]
    fn mint_and_lookup() {
        let mut r = TokenRegistry::new();
        r.mint(FragmentId(0), AgentId::Node(NodeId(2)), NodeId(2));
        assert_eq!(r.home(FragmentId(0)), NodeId(2));
        assert_eq!(r.epoch(FragmentId(0)), 0);
        assert!(r.is_home(FragmentId(0), NodeId(2)));
        assert!(!r.is_home(FragmentId(0), NodeId(0)));
    }

    #[test]
    #[should_panic(expected = "already has a token")]
    fn double_mint_panics() {
        let mut r = TokenRegistry::new();
        r.mint(FragmentId(0), AgentId::Node(NodeId(0)), NodeId(0));
        r.mint(FragmentId(0), AgentId::Node(NodeId(1)), NodeId(1));
    }

    #[test]
    #[should_panic(expected = "no token minted")]
    fn missing_token_panics() {
        let r = TokenRegistry::new();
        r.token(FragmentId(9));
    }

    #[test]
    fn sequence_allocation_is_dense() {
        let mut r = TokenRegistry::new();
        r.mint(FragmentId(0), AgentId::User(UserId(0)), NodeId(0));
        assert_eq!(r.peek_frag_seq(FragmentId(0)), 0);
        assert_eq!(r.alloc_frag_seq(FragmentId(0)), 0);
        assert_eq!(r.alloc_frag_seq(FragmentId(0)), 1);
        assert_eq!(r.peek_frag_seq(FragmentId(0)), 2);
    }

    #[test]
    fn reattach_bumps_epoch_and_sequence_can_be_restored() {
        let mut r = TokenRegistry::new();
        r.mint(FragmentId(0), AgentId::User(UserId(5)), NodeId(0));
        r.alloc_frag_seq(FragmentId(0));
        let e = r.reattach(FragmentId(0), NodeId(3));
        assert_eq!(e, 1);
        assert_eq!(r.home(FragmentId(0)), NodeId(3));
        // Majority recovery discovered seq 7 was the last committed.
        r.set_next_frag_seq(FragmentId(0), 8);
        assert_eq!(r.alloc_frag_seq(FragmentId(0)), 8);
    }

    #[test]
    fn homes_map_reflects_all_tokens() {
        let mut r = TokenRegistry::new();
        r.mint(FragmentId(0), AgentId::Node(NodeId(0)), NodeId(0));
        r.mint(FragmentId(1), AgentId::User(UserId(1)), NodeId(2));
        let homes = r.homes();
        assert_eq!(homes[&FragmentId(0)], NodeId(0));
        assert_eq!(homes[&FragmentId(1)], NodeId(2));
        assert_eq!(r.fragments().count(), 2);
    }
}
