//! Simulation events and driver notifications.
//!
//! The [`System`] is driven by popping [`Ev`]s off the engine; each handled
//! event yields [`Notification`]s that the *driver* (workload/experiment
//! code) reacts to — e.g. the banking workload submits a BALANCES update
//! when it sees an ACTIVITY installation at the central office
//! (the §2 trigger), or assesses an overdraft fine (a corrective action).
//!
//! [`System`]: crate::system::System

use fragdb_model::{FragmentId, NodeId, QuasiTransaction, TxnId, Value};
use fragdb_net::{NetworkChange, PktDelivery, RetransmitTimer};
use fragdb_sim::SimTime;

use crate::envelope::Envelope;
use crate::program::UpdateFn;

/// A transaction submission from the driver.
pub struct Submission {
    /// The initiating agent's fragment. Updates execute at this fragment's
    /// current home node.
    pub fragment: FragmentId,
    /// The transaction body.
    pub program: UpdateFn,
    /// `true` for read-only transactions (no writes allowed; any node may
    /// run them).
    pub read_only: bool,
    /// §4.1 only: the foreign objects the transaction will read, declared
    /// up front so shared locks can be acquired before execution. Ignored
    /// by other strategies.
    pub foreign_reads: Vec<fragdb_model::ObjectId>,
    /// For read-only transactions: the node to execute at (defaults to the
    /// initiator fragment's home).
    pub at_node: Option<NodeId>,
    /// Additional fragments this transaction updates (multi-fragment
    /// transactions, §3.2 footnote): committed atomically with a
    /// two-phase commit among the fragments' agents. Empty for ordinary
    /// single-fragment transactions.
    pub extra_fragments: Vec<FragmentId>,
}

impl Submission {
    /// An update transaction on `fragment`.
    pub fn update(fragment: FragmentId, program: UpdateFn) -> Self {
        Submission {
            fragment,
            program,
            read_only: false,
            foreign_reads: Vec::new(),
            at_node: None,
            extra_fragments: Vec::new(),
        }
    }

    /// A multi-fragment update transaction (§3.2 footnote): initiated by
    /// the first fragment's agent, writing any of `fragments`, committed
    /// atomically via a two-phase commit among the fragments' agents.
    ///
    /// # Panics
    /// Panics if `fragments` is empty.
    pub fn multi_update(fragments: Vec<FragmentId>, program: UpdateFn) -> Self {
        assert!(!fragments.is_empty(), "a transaction needs a fragment");
        let fragment = fragments[0];
        Submission {
            fragment,
            program,
            read_only: false,
            foreign_reads: Vec::new(),
            at_node: None,
            extra_fragments: fragments[1..].to_vec(),
        }
    }

    /// An update transaction that declares the foreign objects it reads
    /// (required for §4.1 read locks).
    pub fn update_reading(
        fragment: FragmentId,
        foreign_reads: Vec<fragdb_model::ObjectId>,
        program: UpdateFn,
    ) -> Self {
        Submission {
            fragment,
            program,
            read_only: false,
            foreign_reads,
            at_node: None,
            extra_fragments: Vec::new(),
        }
    }

    /// A read-only transaction initiated by `fragment`'s agent.
    pub fn read_only(fragment: FragmentId, program: UpdateFn) -> Self {
        Submission {
            fragment,
            program,
            read_only: true,
            foreign_reads: Vec::new(),
            at_node: None,
            extra_fragments: Vec::new(),
        }
    }

    /// Pin execution to a specific node (read-only transactions).
    pub fn at(mut self, node: NodeId) -> Self {
        self.at_node = Some(node);
        self
    }

    /// Declare foreign reads (builder form).
    pub fn with_foreign_reads(mut self, objects: Vec<fragdb_model::ObjectId>) -> Self {
        self.foreign_reads = objects;
        self
    }
}

impl std::fmt::Debug for Submission {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Submission")
            .field("fragment", &self.fragment)
            .field("read_only", &self.read_only)
            .field("foreign_reads", &self.foreign_reads)
            .finish_non_exhaustive()
    }
}

/// A simulation event.
pub enum Ev {
    /// A transaction arrives.
    Submit(Submission),
    /// A network packet (data or ack) reaches its destination host.
    Pkt(PktDelivery<Envelope>),
    /// A reliable-layer retransmission timer fires.
    Rto(RetransmitTimer),
    /// The network changes (partition onset/heal, single link flaps).
    Net(NetworkChange),
    /// `node` fails: its volatile state (store, locks, staged prepares,
    /// hold-back queues) is lost; only the WAL survives. In-flight
    /// deliveries addressed to it are dropped on arrival.
    Crash(NodeId),
    /// `node` restarts: WAL replay rebuilds the store, then anti-entropy
    /// (`SeqQuery`) catches up on what was missed while down.
    Recover(NodeId),
    /// The driver moves `fragment`'s agent to `to` (token transfer is
    /// out-of-band, §3.1, so this fires regardless of partitions).
    Move {
        /// Fragment whose token moves.
        fragment: FragmentId,
        /// New home node.
        to: NodeId,
    },
    /// §4.4.2A: the physically transported fragment copy arrives at the
    /// new home.
    DataArrive {
        /// Fragment whose data was couriered.
        fragment: FragmentId,
        /// The new home receiving the copy.
        to: NodeId,
        /// The transported `(object, value)` snapshot.
        snapshot: Vec<(fragdb_model::ObjectId, Value)>,
        /// Next fragment sequence number to issue at the new home.
        next_frag_seq: u64,
        /// Token epoch after the move.
        epoch: u64,
    },
    /// A pending transaction's patience runs out (lock wait or majority
    /// wait); if still pending it aborts as unavailable.
    Timeout {
        /// The transaction to give up on.
        txn: TxnId,
    },
    /// A group-commit linger timer fired: flush `fragment`'s open batch if
    /// it is still the one the timer was armed for (`gen` matches).
    FlushBatch {
        /// Fragment whose open batch should flush.
        fragment: FragmentId,
        /// Generation of the batch the timer guards; stale timers no-op.
        gen: u64,
    },
    /// The failure-detector heartbeat period elapsed: every live node
    /// broadcasts a heartbeat and sweeps its local detector for newly
    /// silent peers. Never scheduled when the detector is off.
    DetectorTick,
    /// An election's patience ran out: if the election for `fragment` at
    /// `epoch` is still open, abort the round (a retry starts at the next
    /// detector tick if the home is still suspected).
    ElectionTimeout {
        /// Fragment whose token is being recovered.
        fragment: FragmentId,
        /// Token epoch the election was fenced to; stale timers no-op.
        epoch: u64,
    },
    /// §6: the allocator shrinks `fragment`'s replica set to `new_set` —
    /// a subset of the current set containing the token home. Dropped
    /// replicas stop receiving broadcasts; quorums recompute over the new
    /// set. No-op (deferred to the caller's retry) while a move or
    /// election is in flight on the fragment.
    ShrinkReplicaSet {
        /// Fragment whose replica set shrinks.
        fragment: FragmentId,
        /// The new, smaller replica set.
        new_set: std::collections::BTreeSet<NodeId>,
    },
}

impl std::fmt::Debug for Ev {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Ev::Submit(s) => f.debug_tuple("Submit").field(s).finish(),
            Ev::Pkt(p) => {
                let what = match &p.pkt {
                    fragdb_net::Pkt::Data { id, msg, .. } => format!("data#{id} {}", msg.kind()),
                    fragdb_net::Pkt::Ack { upto } => format!("ack<{upto}"),
                };
                write!(f, "Pkt({what} {}->{})", p.from, p.to)
            }
            Ev::Rto(t) => write!(f, "Rto(gen{} {}->{})", t.gen, t.from, t.to),
            Ev::Net(c) => f.debug_tuple("Net").field(c).finish(),
            Ev::Crash(n) => write!(f, "Crash({n})"),
            Ev::Recover(n) => write!(f, "Recover({n})"),
            Ev::Move { fragment, to } => write!(f, "Move({fragment} -> {to})"),
            Ev::DataArrive { fragment, to, .. } => write!(f, "DataArrive({fragment} at {to})"),
            Ev::Timeout { txn } => write!(f, "Timeout({txn})"),
            Ev::FlushBatch { fragment, gen } => write!(f, "FlushBatch({fragment} gen{gen})"),
            Ev::DetectorTick => write!(f, "DetectorTick"),
            Ev::ElectionTimeout { fragment, epoch } => {
                write!(f, "ElectionTimeout({fragment} e{epoch})")
            }
            Ev::ShrinkReplicaSet { fragment, new_set } => {
                write!(
                    f,
                    "ShrinkReplicaSet({fragment} -> {} replicas)",
                    new_set.len()
                )
            }
        }
    }
}

/// Why a transaction failed.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum AbortReason {
    /// The program's own logic aborted (e.g. overdraft refused).
    Logic(String),
    /// The initiation requirement was violated.
    Initiation,
    /// §4.1: lock acquisition deadlocked.
    Deadlock,
    /// Locks or majority acknowledgments didn't arrive in time —
    /// the operation was *unavailable*.
    Unavailable,
    /// §4.2: the transaction's declared class is not in the validated
    /// read-access graph.
    UndeclaredClass,
    /// The submission was malformed at the model level (e.g. it declared a
    /// read of an object belonging to no fragment).
    Model(fragdb_model::ModelError),
}

/// What the system tells the driver after handling an event.
#[derive(Clone, Debug)]
pub enum Notification {
    /// An update transaction committed at its home node.
    Committed {
        /// The transaction.
        txn: TxnId,
        /// Its fragment.
        fragment: FragmentId,
        /// Home node where it executed.
        node: NodeId,
        /// Commit time.
        at: SimTime,
    },
    /// A read-only transaction finished.
    ReadFinished {
        /// The transaction.
        txn: TxnId,
        /// Node it ran at.
        node: NodeId,
    },
    /// A transaction aborted.
    Aborted {
        /// The transaction.
        txn: TxnId,
        /// Its fragment.
        fragment: FragmentId,
        /// Why.
        reason: AbortReason,
    },
    /// A quasi-transaction was installed at a (remote) node. The banking
    /// trigger (§2) and all staleness metrics hang off this.
    Installed {
        /// Node that installed it.
        node: NodeId,
        /// The installed quasi-transaction.
        quasi: QuasiTransaction,
        /// Install time.
        at: SimTime,
    },
    /// A node crashed, losing its volatile state.
    Crashed {
        /// The failed node.
        node: NodeId,
        /// When it failed.
        at: SimTime,
    },
    /// A node came back: WAL replayed, anti-entropy catch-up under way.
    Recovered {
        /// The restarted node.
        node: NodeId,
        /// When it restarted.
        at: SimTime,
    },
    /// §4.4: an agent finished moving; update processing resumes at `node`.
    MoveCompleted {
        /// The fragment whose agent moved.
        fragment: FragmentId,
        /// The new home.
        node: NodeId,
        /// Completion time.
        at: SimTime,
    },
    /// A received quasi-transaction failed model-level validation and was
    /// refused instead of being installed (the replica is untouched).
    InstallRejected {
        /// Node that refused it.
        node: NodeId,
        /// The offending quasi-transaction's id.
        txn: TxnId,
        /// Fragment it claimed to update.
        fragment: FragmentId,
        /// What was wrong with it.
        error: fragdb_model::ModelError,
        /// When it was refused.
        at: SimTime,
    },
    /// §4.4.3: a missing (late) transaction was found and repackaged at the
    /// new home; the driver should run its corrective actions (e.g. cancel
    /// an overbooked reservation, assess a fine).
    MissingRepackaged {
        /// The fragment concerned.
        fragment: FragmentId,
        /// New home node that repackaged it.
        node: NodeId,
        /// The original late transaction.
        original: TxnId,
        /// The repackaged transaction carrying the surviving updates.
        repackaged: TxnId,
        /// Updates that survived the overwrite check.
        kept: Vec<(fragdb_model::ObjectId, Value)>,
        /// Updates dropped because newer values exist.
        dropped: Vec<(fragdb_model::ObjectId, Value)>,
    },
}

#[cfg(test)]
mod tests {
    use super::*;
    use fragdb_model::ObjectId;

    #[test]
    fn submission_builders_set_fields() {
        let s = Submission::update(FragmentId(1), Box::new(|_| Ok(())));
        assert!(!s.read_only);
        assert!(s.foreign_reads.is_empty());

        let s = Submission::update_reading(FragmentId(1), vec![ObjectId(9)], Box::new(|_| Ok(())));
        assert_eq!(s.foreign_reads, vec![ObjectId(9)]);

        let s = Submission::read_only(FragmentId(0), Box::new(|_| Ok(()))).at(NodeId(3));
        assert!(s.read_only);
        assert_eq!(s.at_node, Some(NodeId(3)));

        let s = Submission::update(FragmentId(0), Box::new(|_| Ok(())))
            .with_foreign_reads(vec![ObjectId(1)]);
        assert_eq!(s.foreign_reads, vec![ObjectId(1)]);
    }

    #[test]
    fn debug_impls_do_not_panic() {
        let s = Submission::update(FragmentId(0), Box::new(|_| Ok(())));
        let _ = format!("{s:?}");
        let ev = Ev::Move {
            fragment: FragmentId(0),
            to: NodeId(1),
        };
        assert!(format!("{ev:?}").contains("Move"));
        let ev = Ev::Timeout {
            txn: TxnId::new(NodeId(0), 3),
        };
        assert!(format!("{ev:?}").contains("T0.3"));
    }
}
