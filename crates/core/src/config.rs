//! System configuration.
//!
//! §6: *"it is also possible to combine several of our strategies in a
//! single system … guarantee mutual consistency for some fragments,
//! fragmentwise serializability for a set of other fragments, and
//! conventional serializability within another group."* The configuration
//! therefore carries a *default* strategy and movement policy plus
//! per-fragment overrides; the system consults the effective policy of
//! the fragment each decision concerns.

use std::collections::BTreeMap;

use fragdb_model::FragmentId;
use fragdb_net::{FaultConfig, RetransmitConfig};
use fragdb_sim::SimDuration;

use crate::movement::MovePolicy;
use crate::strategy::StrategyKind;

/// Group-commit batching of the §3.2 quasi-transaction broadcast.
///
/// The home node coalesces consecutive commits for the same fragment into
/// one `Batch` envelope, cutting steady-state messages from
/// O(commits × R) to O(batches × R). Each batched quasi-transaction keeps
/// its own causal id `(fragment, epoch, frag_seq)`, so FIFO/hold-back
/// logic and telemetry joins are unchanged. Defaults to **off**: the
/// default path is byte-identical to the unbatched broadcast.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct BatchConfig {
    /// Maximum quasi-transactions coalesced into one envelope; a full
    /// window flushes immediately. `0` or `1` disables batching.
    pub window: usize,
    /// How long an under-full batch may wait for more commits. Zero means
    /// "flush on idle": the batch is flushed once every event at the
    /// current instant has run, so same-instant commits still coalesce.
    pub linger: SimDuration,
}

impl BatchConfig {
    /// Batching disabled (the default): every commit broadcasts alone.
    pub fn off() -> Self {
        BatchConfig {
            window: 1,
            linger: SimDuration::ZERO,
        }
    }

    /// Batch up to `window` commits, lingering at most 5 ms for the
    /// window to fill.
    pub fn window(window: usize) -> Self {
        BatchConfig {
            window,
            linger: SimDuration::from_millis(5),
        }
    }

    /// No size bound; a batch flushes as soon as the engine drains every
    /// event at the current instant (maximal same-instant coalescing with
    /// no added latency).
    pub fn flush_on_idle() -> Self {
        BatchConfig {
            window: usize::MAX,
            linger: SimDuration::ZERO,
        }
    }

    /// Replace the linger bound (builder style).
    pub fn with_linger(mut self, linger: SimDuration) -> Self {
        self.linger = linger;
        self
    }

    /// Is group-commit batching on?
    pub fn enabled(&self) -> bool {
        self.window > 1
    }
}

impl Default for BatchConfig {
    fn default() -> Self {
        BatchConfig::off()
    }
}

/// Self-healing token recovery: heartbeat failure detection plus quorum
/// election.
///
/// When enabled, every node broadcasts a heartbeat each `heartbeat_period`
/// over `ReliableNet`, and every node counts beats it should have seen
/// from each peer. After `suspect_after` consecutive missed beats the
/// observer raises a suspicion; if the suspect is the token home of a
/// fragment the observer replicates, the lowest-id live replica starts a
/// majority vote among the fragment's replicas. Winning re-homes the token
/// through the §4.4.1 recovery machinery under a **bumped epoch**, fencing
/// out the old home: in-flight majority commits from the dead epoch are
/// refused at completion time, so a falsely-suspected (slow or
/// partitioned) home that rejoins cannot split-brain the token.
///
/// Defaults to **off**: with the detector disabled no heartbeat traffic
/// or timers exist and runs are byte-identical to a build without it
/// (same pattern as [`BatchConfig`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct DetectorConfig {
    /// Heartbeat broadcast period; `ZERO` disables the detector.
    pub heartbeat_period: SimDuration,
    /// Consecutive missed heartbeats before raising a suspicion.
    pub suspect_after: u32,
    /// How long an election waits for votes before aborting the round.
    pub election_timeout: SimDuration,
}

impl DetectorConfig {
    /// Detector disabled (the default): no heartbeats, no elections.
    pub fn off() -> Self {
        DetectorConfig {
            heartbeat_period: SimDuration::ZERO,
            suspect_after: 3,
            election_timeout: SimDuration::from_secs(2),
        }
    }

    /// Detector enabled with the given heartbeat period, suspecting after
    /// 3 missed beats, with a 2-second election timeout.
    pub fn period(heartbeat_period: SimDuration) -> Self {
        DetectorConfig {
            heartbeat_period,
            ..DetectorConfig::off()
        }
    }

    /// Replace the missed-beat suspicion threshold (builder style).
    pub fn with_suspect_after(mut self, suspect_after: u32) -> Self {
        self.suspect_after = suspect_after;
        self
    }

    /// Replace the election timeout (builder style).
    pub fn with_election_timeout(mut self, election_timeout: SimDuration) -> Self {
        self.election_timeout = election_timeout;
        self
    }

    /// Is the failure detector on?
    pub fn enabled(&self) -> bool {
        self.heartbeat_period > SimDuration::ZERO
    }

    /// Upper bound on detection latency: the suspicion threshold worth of
    /// heartbeat periods, plus one period of sampling skew.
    pub fn detection_bound(&self) -> SimDuration {
        SimDuration::from_micros(
            self.heartbeat_period.micros() * (u64::from(self.suspect_after) + 1),
        )
    }
}

impl Default for DetectorConfig {
    fn default() -> Self {
        DetectorConfig::off()
    }
}

/// Everything the [`System`](crate::system::System) needs besides the
/// schema and the topology.
#[derive(Debug, Clone)]
pub struct SystemConfig {
    /// Default control strategy (§4.1–§4.3).
    pub strategy: StrategyKind,
    /// Default agent movement policy (§4.4).
    pub move_policy: MovePolicy,
    /// §6: per-fragment strategy overrides.
    pub strategy_overrides: BTreeMap<FragmentId, StrategyKind>,
    /// §6: per-fragment movement-policy overrides.
    pub move_overrides: BTreeMap<FragmentId, MovePolicy>,
    /// §6: partial replication — the nodes holding a copy of each
    /// fragment. Fragments absent from the map are fully replicated.
    /// A fragment's agent home must always be in its replica set.
    pub replica_sets: BTreeMap<FragmentId, std::collections::BTreeSet<fragdb_model::NodeId>>,
    /// Per-link fault injection (drop/duplicate/jitter); clean by default.
    pub faults: FaultConfig,
    /// Reliable-layer retransmission timing.
    pub retransmit: RetransmitConfig,
    /// Group-commit batching of the quasi broadcast (off by default).
    pub batch: BatchConfig,
    /// Self-healing token recovery (off by default).
    pub detector: DetectorConfig,
    /// RNG seed for the run.
    pub seed: u64,
}

impl SystemConfig {
    /// The paper's "center of the spectrum" default: unrestricted reads
    /// (§4.3), fixed agents.
    pub fn unrestricted(seed: u64) -> Self {
        SystemConfig {
            strategy: StrategyKind::Unrestricted,
            move_policy: MovePolicy::Fixed,
            strategy_overrides: BTreeMap::new(),
            move_overrides: BTreeMap::new(),
            replica_sets: BTreeMap::new(),
            faults: FaultConfig::clean(),
            retransmit: RetransmitConfig::default(),
            batch: BatchConfig::off(),
            detector: DetectorConfig::off(),
            seed,
        }
    }

    /// §4.1 with a default 30-second lock patience.
    pub fn read_locks(seed: u64) -> Self {
        SystemConfig::unrestricted(seed).with_strategy(StrategyKind::ReadLocks {
            timeout: SimDuration::from_secs(30),
        })
    }

    /// Replace the default movement policy (builder style).
    pub fn with_move_policy(mut self, policy: MovePolicy) -> Self {
        self.move_policy = policy;
        self
    }

    /// Replace the default strategy (builder style).
    pub fn with_strategy(mut self, strategy: StrategyKind) -> Self {
        self.strategy = strategy;
        self
    }

    /// Inject link faults (builder style).
    pub fn with_faults(mut self, faults: FaultConfig) -> Self {
        self.faults = faults;
        self
    }

    /// Tune the reliable layer's retransmission timing (builder style).
    pub fn with_retransmit(mut self, retransmit: RetransmitConfig) -> Self {
        self.retransmit = retransmit;
        self
    }

    /// Turn on group-commit batching of the quasi broadcast (builder
    /// style).
    pub fn with_batching(mut self, batch: BatchConfig) -> Self {
        self.batch = batch;
        self
    }

    /// Turn on self-healing token recovery (builder style).
    pub fn with_detector(mut self, detector: DetectorConfig) -> Self {
        self.detector = detector;
        self
    }

    /// §6: run `fragment` under its own strategy (builder style).
    pub fn with_fragment_strategy(mut self, fragment: FragmentId, strategy: StrategyKind) -> Self {
        self.strategy_overrides.insert(fragment, strategy);
        self
    }

    /// §6: move `fragment`'s agent under its own policy (builder style).
    pub fn with_fragment_move_policy(mut self, fragment: FragmentId, policy: MovePolicy) -> Self {
        self.move_overrides.insert(fragment, policy);
        self
    }

    /// §6: replicate `fragment` only at `nodes` (builder style). The
    /// fragment's agent home must be one of them.
    pub fn with_replica_set(
        mut self,
        fragment: FragmentId,
        nodes: impl IntoIterator<Item = fragdb_model::NodeId>,
    ) -> Self {
        self.replica_sets
            .insert(fragment, nodes.into_iter().collect());
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn presets_and_builders() {
        let c = SystemConfig::unrestricted(7);
        assert!(matches!(c.strategy, StrategyKind::Unrestricted));
        assert_eq!(c.move_policy, MovePolicy::Fixed);
        assert_eq!(c.seed, 7);

        let c = SystemConfig::read_locks(1).with_move_policy(MovePolicy::NoPrep);
        assert!(c.strategy.uses_read_locks());
        assert_eq!(c.move_policy, MovePolicy::NoPrep);

        let c = SystemConfig::unrestricted(1).with_strategy(StrategyKind::ReadLocks {
            timeout: SimDuration::from_secs(1),
        });
        assert!(c.strategy.uses_read_locks());
    }

    #[test]
    fn batching_defaults_off_and_builders_enable() {
        let c = SystemConfig::unrestricted(1);
        assert_eq!(c.batch, BatchConfig::off());
        assert!(!c.batch.enabled());
        assert!(!BatchConfig::window(1).enabled());

        let c = c.with_batching(BatchConfig::window(8));
        assert!(c.batch.enabled());
        assert_eq!(c.batch.window, 8);
        assert_eq!(c.batch.linger, SimDuration::from_millis(5));

        let idle = BatchConfig::flush_on_idle();
        assert!(idle.enabled());
        assert_eq!(idle.linger, SimDuration::ZERO);
        let tuned = BatchConfig::window(4).with_linger(SimDuration::from_millis(1));
        assert_eq!(tuned.linger, SimDuration::from_millis(1));
    }

    #[test]
    fn detector_defaults_off_and_builders_enable() {
        let c = SystemConfig::unrestricted(1);
        assert_eq!(c.detector, DetectorConfig::off());
        assert!(!c.detector.enabled());

        let d = DetectorConfig::period(SimDuration::from_millis(500))
            .with_suspect_after(4)
            .with_election_timeout(SimDuration::from_secs(1));
        assert!(d.enabled());
        assert_eq!(d.suspect_after, 4);
        assert_eq!(d.election_timeout, SimDuration::from_secs(1));
        // 4 missed beats + 1 period of sampling skew at 500 ms each.
        assert_eq!(d.detection_bound(), SimDuration::from_millis(2500));

        let c = c.with_detector(d);
        assert!(c.detector.enabled());
    }

    #[test]
    fn per_fragment_overrides_accumulate() {
        let c = SystemConfig::unrestricted(1)
            .with_fragment_strategy(
                FragmentId(1),
                StrategyKind::ReadLocks {
                    timeout: SimDuration::from_secs(2),
                },
            )
            .with_fragment_move_policy(FragmentId(2), MovePolicy::NoPrep);
        assert!(c.strategy_overrides[&FragmentId(1)].uses_read_locks());
        assert_eq!(c.move_overrides[&FragmentId(2)], MovePolicy::NoPrep);
        assert!(matches!(c.strategy, StrategyKind::Unrestricted));
    }
}
