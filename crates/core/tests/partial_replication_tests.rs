//! Tests for partial replication (§6: "databases that are not fully
//! replicated").

use fragdb_core::{AbortReason, MovePolicy, Notification, Submission, System, SystemConfig};
use fragdb_model::{AgentId, FragmentCatalog, FragmentId, NodeId, ObjectId, Value};
use fragdb_net::{NetworkChange, Topology};
use fragdb_sim::{SimDuration, SimTime};

fn secs(s: u64) -> SimTime {
    SimTime::from_secs(s)
}

/// Two fragments on 4 nodes: F0 replicated everywhere, F1 only at {1, 2}.
fn build(seed: u64, policy: MovePolicy) -> (System, Vec<ObjectId>, Vec<ObjectId>) {
    let mut b = FragmentCatalog::builder();
    let (f0, o0) = b.add_fragment("FULL", 2);
    let (f1, o1) = b.add_fragment("PARTIAL", 2);
    let catalog = b.build();
    let agents = vec![
        (f0, AgentId::Node(NodeId(0)), NodeId(0)),
        (f1, AgentId::Node(NodeId(1)), NodeId(1)),
    ];
    let sys = System::build(
        Topology::full_mesh(4, SimDuration::from_millis(10)),
        catalog,
        agents,
        SystemConfig::unrestricted(seed)
            .with_move_policy(policy)
            .with_replica_set(f1, [NodeId(1), NodeId(2)]),
    )
    .unwrap();
    (sys, o0, o1)
}

fn write_update(fragment: FragmentId, object: ObjectId, value: i64) -> Submission {
    Submission::update(
        fragment,
        Box::new(move |ctx| {
            ctx.write(object, value)?;
            Ok(())
        }),
    )
}

#[test]
fn partial_fragment_propagates_only_to_its_replicas() {
    let (mut sys, _, o1) = build(1, MovePolicy::Fixed);
    sys.submit_at(secs(1), write_update(FragmentId(1), o1[0], 7));
    let notes = sys.run_until(secs(30));
    let installs: Vec<NodeId> = notes
        .iter()
        .filter_map(|n| match n {
            Notification::Installed { node, .. } => Some(*node),
            _ => None,
        })
        .collect();
    assert_eq!(installs, vec![NodeId(2)], "only the other replica installs");
    assert_eq!(sys.replica(NodeId(1)).read(o1[0]), &Value::Int(7));
    assert_eq!(sys.replica(NodeId(2)).read(o1[0]), &Value::Int(7));
    assert!(sys.replica(NodeId(0)).read(o1[0]).is_null());
    assert!(sys.replica(NodeId(3)).read(o1[0]).is_null());
    assert!(
        sys.divergent_fragments().is_empty(),
        "divergence is judged over the replica set only"
    );
}

#[test]
fn message_traffic_shrinks_with_the_replica_set() {
    let (mut sys, o0, o1) = build(2, MovePolicy::Fixed);
    sys.submit_at(secs(1), write_update(FragmentId(0), o0[0], 1));
    sys.run_until(secs(30));
    let full = sys.net_stats().sent;
    sys.submit_at(secs(31), write_update(FragmentId(1), o1[0], 1));
    sys.run_until(secs(60));
    let partial = sys.net_stats().sent - full;
    assert_eq!(full, 3, "full replication: 3 copies");
    assert_eq!(partial, 1, "partial replication: 1 copy");
}

#[test]
fn read_at_non_replica_node_is_refused() {
    let (mut sys, o0, o1) = build(3, MovePolicy::Fixed);
    let src = o1[0];
    let dst = o0[0];
    // F0's agent (node 0, which holds no replica of F1) reads F1.
    sys.submit_at(
        secs(1),
        Submission::update(
            FragmentId(0),
            Box::new(move |ctx| {
                let v = ctx.read_int(src, 0);
                ctx.write(dst, v + 1)?;
                Ok(())
            }),
        ),
    );
    let notes = sys.run_until(secs(30));
    assert!(notes.iter().any(|n| matches!(
        n,
        Notification::Aborted {
            reason: AbortReason::Logic(m),
            ..
        } if m.contains("no replica")
    )));
    assert!(sys.replica(NodeId(0)).read(dst).is_null(), "no effects");
}

#[test]
fn read_locks_reach_unreplicated_fragments() {
    // §4.1 synergy: a node without a replica can still read the fragment
    // through a remote lock grant, which carries the value from the agent
    // home (always a replica).
    let mut b = FragmentCatalog::builder();
    let (f0, o0) = b.add_fragment("FULL", 1);
    let (f1, o1) = b.add_fragment("PARTIAL", 1);
    let catalog = b.build();
    let agents = vec![
        (f0, AgentId::Node(NodeId(0)), NodeId(0)),
        (f1, AgentId::Node(NodeId(1)), NodeId(1)),
    ];
    let mut sys = System::build(
        Topology::full_mesh(3, SimDuration::from_millis(10)),
        catalog,
        agents,
        SystemConfig::read_locks(4).with_replica_set(f1, [NodeId(1)]),
    )
    .unwrap();
    sys.submit_at(secs(1), write_update(f1, o1[0], 42));
    let (src, dst) = (o1[0], o0[0]);
    sys.submit_at(
        secs(5),
        Submission::update_reading(
            f0,
            vec![src],
            Box::new(move |ctx| {
                let v = ctx.read_int(src, -1);
                ctx.write(dst, v)?;
                Ok(())
            }),
        ),
    );
    let notes = sys.run_until(secs(60));
    let committed = notes
        .iter()
        .filter(|n| matches!(n, Notification::Committed { .. }))
        .count();
    assert_eq!(committed, 2);
    assert_eq!(
        sys.replica(NodeId(0)).read(dst),
        &Value::Int(42),
        "the lock grant carried the unreplicated fragment's value"
    );
    assert!(fragdb_graphs::analyze(&sys.history).globally_serializable);
}

#[test]
fn agent_moves_stay_within_the_replica_set() {
    let (mut sys, _, o1) = build(5, MovePolicy::WithSeqNo);
    sys.submit_at(secs(1), write_update(FragmentId(1), o1[0], 1));
    sys.move_agent_at(secs(5), FragmentId(1), NodeId(2));
    sys.submit_at(secs(6), write_update(FragmentId(1), o1[0], 2));
    sys.run_until(secs(60));
    assert_eq!(sys.replica(NodeId(1)).read(o1[0]), &Value::Int(2));
    assert_eq!(sys.replica(NodeId(2)).read(o1[0]), &Value::Int(2));
    assert!(sys.divergent_fragments().is_empty());
}

#[test]
#[should_panic(expected = "no replica there")]
fn moving_outside_the_replica_set_panics() {
    let (mut sys, _, _) = build(6, MovePolicy::WithSeqNo);
    sys.move_agent_at(secs(5), FragmentId(1), NodeId(3));
    sys.run_until(secs(30));
}

#[test]
fn majority_commit_uses_the_replica_set_majority() {
    // F1 replicated at {1, 2} of 4 nodes: a replica-set majority is 2.
    // Partition {1,2} away from {0,3}: the agent still reaches its replica
    // majority and commits, even though it cannot reach half the cluster.
    let (mut sys, _, o1) = build(
        7,
        MovePolicy::MajorityCommit {
            timeout: SimDuration::from_secs(5),
        },
    );
    sys.net_change_at(
        SimTime::ZERO,
        NetworkChange::Split(vec![vec![NodeId(1), NodeId(2)], vec![NodeId(0), NodeId(3)]]),
    );
    sys.submit_at(secs(1), write_update(FragmentId(1), o1[0], 9));
    let notes = sys.run_until(secs(60));
    let committed = notes
        .iter()
        .filter(|n| matches!(n, Notification::Committed { .. }))
        .count();
    assert_eq!(committed, 1, "replica-set majority {{1,2}} suffices");
    assert_eq!(sys.replica(NodeId(2)).read(o1[0]), &Value::Int(9));
}

#[test]
fn agent_home_outside_replica_set_is_rejected() {
    let mut b = FragmentCatalog::builder();
    let (f0, _) = b.add_fragment("F", 1);
    let catalog = b.build();
    let Err(err) = System::build(
        Topology::full_mesh(3, SimDuration::from_millis(1)),
        catalog,
        vec![(f0, AgentId::Node(NodeId(0)), NodeId(0))],
        SystemConfig::unrestricted(1).with_replica_set(f0, [NodeId(1), NodeId(2)]),
    ) else {
        panic!("home outside replica set must be rejected");
    };
    assert_eq!(
        err,
        fragdb_core::BuildError::HomeNotInReplicaSet {
            fragment: f0,
            home: NodeId(0),
        }
    );
    assert!(err.to_string().contains("must be in its replica set"));
}

#[test]
fn monitor_peers_follow_the_replica_sets() {
    // F0 fully replicated ⇒ everyone monitors everyone.
    let (sys, _, _) = build(8, MovePolicy::Fixed);
    assert_eq!(
        sys.monitor_peers(NodeId(0)),
        [NodeId(1), NodeId(2), NodeId(3)].into_iter().collect()
    );
    // With every fragment under an explicit replica set, only set-sharing
    // peers are monitored.
    let mut b = FragmentCatalog::builder();
    let (f0, _) = b.add_fragment("A", 1);
    let (f1, _) = b.add_fragment("B", 1);
    let catalog = b.build();
    let agents = vec![
        (f0, AgentId::Node(NodeId(0)), NodeId(0)),
        (f1, AgentId::Node(NodeId(2)), NodeId(2)),
    ];
    let sys = System::build(
        Topology::full_mesh(5, SimDuration::from_millis(10)),
        catalog,
        agents,
        SystemConfig::unrestricted(8)
            .with_replica_set(f0, [NodeId(0), NodeId(1)])
            .with_replica_set(f1, [NodeId(1), NodeId(2), NodeId(3)]),
    )
    .unwrap();
    assert_eq!(
        sys.monitor_peers(NodeId(0)),
        [NodeId(1)].into_iter().collect()
    );
    assert_eq!(
        sys.monitor_peers(NodeId(1)),
        [NodeId(0), NodeId(2), NodeId(3)].into_iter().collect()
    );
    assert!(
        sys.monitor_peers(NodeId(4)).is_empty(),
        "a node holding no replica monitors nobody"
    );
}

#[test]
fn runtime_shrink_narrows_broadcasts_and_quorums() {
    // F1 at {1, 2} shrinks to {1}: later commits broadcast to nobody.
    let (mut sys, _, o1) = build(9, MovePolicy::Fixed);
    sys.submit_at(secs(1), write_update(FragmentId(1), o1[0], 1));
    sys.run_until(secs(30));
    let before = sys.net_stats().sent;
    sys.shrink_replica_set_at(secs(31), FragmentId(1), [NodeId(1)].into_iter().collect());
    sys.submit_at(secs(32), write_update(FragmentId(1), o1[0], 2));
    sys.run_until(secs(60));
    assert_eq!(
        sys.net_stats().sent - before,
        0,
        "a single-replica fragment broadcasts no copies"
    );
    assert_eq!(sys.replica(NodeId(1)).read(o1[0]), &Value::Int(2));
    assert_eq!(
        sys.replicas_of(FragmentId(1)).map(|s| s.len()),
        Some(1),
        "the shrink took effect"
    );
    // The dropped replica keeps its old copy but is no longer judged.
    assert_eq!(sys.replica(NodeId(2)).read(o1[0]), &Value::Int(1));
    assert!(sys.divergent_fragments().is_empty());
}

#[test]
fn invalid_shrinks_are_skipped() {
    let (mut sys, o0, _) = build(10, MovePolicy::Fixed);
    // Not a subset of the current set.
    sys.shrink_replica_set_at(
        secs(1),
        FragmentId(1),
        [NodeId(1), NodeId(3)].into_iter().collect(),
    );
    // Home (node 1) missing.
    sys.shrink_replica_set_at(secs(2), FragmentId(1), [NodeId(2)].into_iter().collect());
    // Empty set.
    sys.shrink_replica_set_at(secs(3), FragmentId(1), std::collections::BTreeSet::new());
    sys.run_until(secs(10));
    assert_eq!(
        sys.replicas_of(FragmentId(1)).map(|s| s.len()),
        Some(2),
        "every invalid request left the set untouched"
    );
    // A valid shrink of the fully replicated fragment pins the map.
    sys.shrink_replica_set_at(
        secs(11),
        FragmentId(0),
        [NodeId(0), NodeId(2)].into_iter().collect(),
    );
    sys.submit_at(secs(12), write_update(FragmentId(0), o0[0], 1));
    sys.run_until(secs(30));
    assert_eq!(sys.replicas_of(FragmentId(0)).map(|s| s.len()), Some(2));
}

#[test]
fn mixed_agent_node_does_not_stall_fifo_at_non_replicas() {
    // Regression: a node that is agent of BOTH a partially replicated
    // fragment and a fully replicated one. Its subset-scoped broadcast
    // must not leave a sequence gap that stalls later full broadcasts at
    // the nodes outside the subset.
    let mut b = FragmentCatalog::builder();
    let (fp, op) = b.add_fragment("PARTIAL", 1);
    let (ff, of) = b.add_fragment("FULL", 1);
    let catalog = b.build();
    let agents = vec![
        (fp, AgentId::Node(NodeId(0)), NodeId(0)),
        (ff, AgentId::Node(NodeId(0)), NodeId(0)),
    ];
    let mut sys = System::build(
        Topology::full_mesh(3, SimDuration::from_millis(10)),
        catalog,
        agents,
        SystemConfig::unrestricted(11).with_replica_set(fp, [NodeId(0), NodeId(1)]),
    )
    .unwrap();
    // First a partial-fragment commit (reaches node 1 only)...
    sys.submit_at(secs(1), write_update(fp, op[0], 1));
    // ...then a full-fragment commit: node 2 must still install it.
    sys.submit_at(secs(2), write_update(ff, of[0], 2));
    sys.run_until(secs(60));
    assert_eq!(
        sys.replica(NodeId(2)).read(of[0]),
        &Value::Int(2),
        "node 2's hold-back must not stall on the skipped partial broadcast"
    );
    assert!(sys.replica(NodeId(2)).read(op[0]).is_null());
    assert!(sys.divergent_fragments().is_empty());
}
